"""Setuptools shim.

The environment's setuptools (65.x) predates the integrated bdist_wheel
needed for PEP 517 editable installs without the ``wheel`` package, which is
not installed here.  This shim lets ``pip install -e . --no-build-isolation
--no-use-pep517`` fall back to the legacy editable path.  All metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
