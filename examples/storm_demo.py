#!/usr/bin/env python
"""The broadcast storm, made visible.

Floods a single-cell network (every host in range of every other) at
increasing densities and prints how redundancy, contention and collision
grow with host count -- the paper's Section 2.2 phenomena reproduced on the
full simulator rather than in closed form.  Then shows the counter-based
scheme taming the same workload.

Run:  python examples/storm_demo.py
"""

from repro import ScenarioConfig, run_broadcast_simulation


def run(scheme: str, hosts: int, **params) -> dict:
    config = ScenarioConfig(
        scheme=scheme,
        scheme_params=params,
        map_units=1,  # single cell: everyone hears everyone
        num_hosts=hosts,
        num_broadcasts=20,
        max_speed_kmh=10.0,
        seed=99,
    )
    result = run_broadcast_simulation(config)
    stats = result.channel_stats
    receptions = stats.deliveries + stats.collisions
    return {
        "re": result.re,
        "tx": stats.transmissions,
        "collision_share": stats.collisions / receptions if receptions else 0.0,
        "latency_ms": result.latency * 1000,
    }


def main() -> None:
    print("Flooding a single radio cell (1x1 map): the storm builds\n")
    print(f"{'hosts':>6} {'RE':>7} {'tx':>6} {'collided rx':>12} {'latency':>9}")
    for hosts in (10, 20, 40, 80):
        row = run("flooding", hosts)
        print(
            f"{hosts:>6} {row['re']:>7.3f} {row['tx']:>6} "
            f"{row['collision_share']:>11.1%} {row['latency_ms']:>7.1f}ms"
        )

    print("\nSame workload under the counter-based scheme (C = 3):\n")
    print(f"{'hosts':>6} {'RE':>7} {'tx':>6} {'collided rx':>12} {'latency':>9}")
    for hosts in (10, 20, 40, 80):
        row = run("counter", hosts, threshold=3)
        print(
            f"{hosts:>6} {row['re']:>7.3f} {row['tx']:>6} "
            f"{row['collision_share']:>11.1%} {row['latency_ms']:>7.1f}ms"
        )
    print(
        "\nEvery host rebroadcasting buys nothing in a single cell -- the\n"
        "counter threshold suppresses the redundant transmissions and the\n"
        "collision share falls with them."
    )


if __name__ == "__main__":
    main()
