#!/usr/bin/env python
"""Route discovery on top of broadcasting (the paper's motivating use).

MANET routing protocols (DSR, AODV, ZRP...) find routes by broadcasting a
route_request across the network.  This example issues RREQ broadcasts from
random sources toward random destinations and measures, per scheme:

- **discovery rate**: the destination received the request, counted only
  over requests whose destination was actually reachable (multihop) from
  the source at request time -- partitions are not the scheme's fault;
- **data cost**: broadcast transmissions (source + rebroadcasts) per
  request;
- **hello overhead**: control packets the scheme's neighbor discovery
  needed, reported separately so the comparison stays honest;
- **discovery latency**: time until the destination heard the request.

This example measures the RREQ *dissemination* itself; see
``examples/aodv_routing.py`` for the full protocol (route replies, data
forwarding, re-discovery) built on the same schemes.

Run:  python examples/route_discovery.py
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_broadcast_simulation
from repro.net.host import HelloConfig


@dataclass
class DiscoveryStats:
    eligible: int = 0  # requests whose destination was reachable
    delivered: int = 0
    data_tx: int = 0
    hello_tx: int = 0
    requests: int = 0
    total_latency: float = 0.0

    @property
    def discovery_rate(self) -> float:
        return self.delivered / self.eligible if self.eligible else 0.0

    @property
    def data_cost_per_request(self) -> float:
        return self.data_tx / self.requests if self.requests else 0.0

    @property
    def mean_latency(self) -> float:
        return (
            self.total_latency / self.delivered if self.delivered else float("nan")
        )


def discover_routes(scheme: str, hello: HelloConfig, requests: int = 30,
                    seed: int = 7, **scheme_params) -> DiscoveryStats:
    config = ScenarioConfig(
        scheme=scheme,
        scheme_params=scheme_params,
        map_units=7,
        num_broadcasts=requests,
        hello=hello,
        store_reachable_sets=True,
        seed=seed,
    )
    result = run_broadcast_simulation(config)
    rng = random.Random(seed)

    stats = DiscoveryStats(requests=requests)
    stats.hello_tx = result.hellos
    for record in result.metrics.records.values():
        stats.data_tx += 1 + record.rebroadcast_count
        # Pick the RREQ destination among all other hosts.
        dest = rng.randrange(config.num_hosts - 1)
        if dest >= record.source_id:
            dest += 1
        if record.reachable_set is None or dest not in record.reachable_set:
            continue  # partitioned destination: not the scheme's problem
        stats.eligible += 1
        arrival = record.received_times.get(dest)
        if arrival is not None:
            stats.delivered += 1
            stats.total_latency += arrival - record.origin_time
    return stats


def main() -> None:
    print("Route-request discovery over a 7x7 map, 100 hosts, 30 requests\n")
    lineup = [
        ("flooding", "flooding", HelloConfig(), {}),
        ("counter (C=2)", "counter", HelloConfig(), {"threshold": 2}),
        ("adaptive-counter", "adaptive-counter", HelloConfig(), {}),
        ("adaptive-location", "adaptive-location", HelloConfig(), {}),
        ("neighbor-coverage + DHI", "neighbor-coverage",
         HelloConfig(dynamic=True), {}),
    ]
    header = (
        f"{'scheme':<26} {'discovery':>10} {'data tx/req':>12} "
        f"{'hellos':>8} {'latency':>9}"
    )
    print(header)
    for label, scheme, hello, params in lineup:
        stats = discover_routes(scheme, hello, **params)
        print(
            f"{label:<26} {stats.discovery_rate:>10.1%} "
            f"{stats.data_cost_per_request:>12.1f} {stats.hello_tx:>8} "
            f"{stats.mean_latency * 1000:>7.1f}ms"
        )
    print(
        "\nThe suppression schemes cut the per-request broadcast cost well\n"
        "below flooding's one-transmission-per-host.  A too-aggressive\n"
        "fixed threshold (C=2) also cuts the discovery rate; the adaptive\n"
        "schemes keep discovery near flooding's level.  Their HELLO\n"
        "overhead is the price of neighbor knowledge -- amortized across\n"
        "all traffic, and reduced further by the dynamic hello interval."
    )


if __name__ == "__main__":
    main()
