#!/usr/bin/env python
"""Quickstart: run one MANET broadcast simulation and read the metrics.

Builds the paper's default world (100 hosts roaming a 5x5 map of 500 m
units, IEEE 802.11 DSSS MAC), runs 30 broadcasts under the adaptive
counter-based scheme, and prints reachability (RE), saved rebroadcasts
(SRB) and latency, next to plain flooding for contrast.

Run:  python examples/quickstart.py
"""

from repro import ScenarioConfig, run_broadcast_simulation


def main() -> None:
    print("Broadcast-storm relief quickstart (5x5 map, 100 hosts)\n")
    for scheme in ("flooding", "adaptive-counter"):
        config = ScenarioConfig(
            scheme=scheme,
            map_units=5,
            num_broadcasts=30,
            seed=2026,
        )
        result = run_broadcast_simulation(config)
        stats = result.channel_stats
        print(f"scheme: {scheme}")
        print(f"  reachability (RE)        {result.re:6.3f}")
        print(f"  saved rebroadcasts (SRB) {result.srb:6.3f}")
        print(f"  mean latency             {result.latency * 1000:6.1f} ms")
        print(f"  transmissions            {stats.transmissions:6d}")
        print(f"  corrupted receptions     {stats.collisions:6d}")
        print()
    print(
        "The adaptive scheme reaches (at least) the same fraction of hosts\n"
        "while suppressing a large share of the redundant rebroadcasts that\n"
        "cause the broadcast storm."
    )


if __name__ == "__main__":
    main()
