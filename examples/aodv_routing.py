#!/usr/bin/env python
"""End-to-end on-demand routing over the broadcast schemes.

The paper's broadcast schemes exist to serve protocols like AODV/DSR,
whose route_requests flood the network.  This example runs the bundled
AODV-lite agent (`repro.routing`) on a mobile 5x5 network and sends data
between random host pairs.  The RREQ floods propagate through whichever
rebroadcast scheme the hosts run, so the storm-relief schemes directly cut
discovery cost; route replies and data ride the acknowledged unicast MAC.

Reported per scheme: end-to-end delivery rate, route-discovery success,
mean hop count of installed routes, and the control-plane cost (RREQ
rebroadcasts + HELLOs).

Run:  python examples/aodv_routing.py
"""

from __future__ import annotations

import random

from repro.experiments.config import ScenarioConfig
from repro.metrics.collector import MetricsCollector
from repro.mobility.map import RectMap
from repro.net.host import HelloConfig
from repro.net.network import Network
from repro.routing import attach_agents
from repro.schemes import make_scheme
from repro.sim.engine import Scheduler
from repro.sim.randomness import RandomStreams

NUM_HOSTS = 60
MAP_UNITS = 5
NUM_FLOWS = 20


def run_routing(scheme_name: str, hello: HelloConfig, seed: int = 11,
                **scheme_params):
    scheduler = Scheduler()
    streams = RandomStreams(seed)
    metrics = MetricsCollector()
    config = ScenarioConfig()  # for PHY defaults only
    network = Network(
        scheduler=scheduler,
        params=config.phy,
        world=RectMap.square_units(MAP_UNITS),
        streams=streams,
        num_hosts=NUM_HOSTS,
        scheme_factory=lambda: make_scheme(scheme_name, **scheme_params),
        metrics=metrics,
        max_speed_kmh=30.0,
        hello_config=hello,
    )
    agents = attach_agents(network)
    network.start()

    traffic_rng = streams.stream("routing-traffic")
    first_hop_ok = []
    t = 12.0  # let neighbor tables warm up
    for _ in range(NUM_FLOWS):
        t += traffic_rng.uniform(0.5, 1.5)
        src = traffic_rng.randrange(NUM_HOSTS)
        dst = traffic_rng.randrange(NUM_HOSTS - 1)
        if dst >= src:
            dst += 1
        scheduler.schedule_at(
            t, agents[src].send_data, dst, f"flow-{src}-{dst}",
            first_hop_ok.append,
        )
    scheduler.run(until=t + 6.0)

    delivered = sum(agent.stats.data_delivered for agent in agents.values())
    flood_tx = (
        sum(h.mac.stats.broadcast_frames_sent for h in network.hosts)
        - metrics.hello_packets_sent
    )
    discovered = sum(agent.stats.routes_discovered for agent in agents.values())
    rreq_tx = sum(agent.stats.rreqs_originated for agent in agents.values())
    failures = sum(agent.stats.discovery_failures for agent in agents.values())
    hops = [
        entry.hop_count
        for agent in agents.values()
        for entry in agent.table.known_destinations(scheduler.now).values()
    ]
    return {
        "delivery": delivered / NUM_FLOWS,
        "discovered": discovered,
        "disc_failures": failures,
        "rreqs": rreq_tx,
        "mean_hops": sum(hops) / len(hops) if hops else float("nan"),
        "flood_tx": flood_tx,
        "hellos": metrics.hello_packets_sent,
    }


def main() -> None:
    print(
        f"AODV-lite over broadcast schemes: {NUM_HOSTS} hosts, "
        f"{MAP_UNITS}x{MAP_UNITS} map, 30 km/h, {NUM_FLOWS} flows\n"
    )
    lineup = [
        ("flooding", "flooding", HelloConfig(), {}),
        ("adaptive-counter", "adaptive-counter", HelloConfig(), {}),
        ("adaptive-location", "adaptive-location", HelloConfig(), {}),
        ("NC + DHI", "neighbor-coverage", HelloConfig(dynamic=True), {}),
    ]
    print(
        f"{'RREQ scheme':<20} {'delivery':>9} {'routes':>7} {'fail':>5} "
        f"{'hops':>6} {'flood tx':>9} {'hellos':>7}"
    )
    for label, scheme, hello, params in lineup:
        row = run_routing(scheme, hello, **params)
        print(
            f"{label:<20} {row['delivery']:>9.1%} {row['discovered']:>7} "
            f"{row['disc_failures']:>5} {row['mean_hops']:>6.2f} "
            f"{row['flood_tx']:>9} {row['hellos']:>7}"
        )
    print(
        "\n'flood tx' counts the RREQ broadcast transmissions alone\n"
        "(HELLO beacons are listed separately; RREPs/data/ACKs are\n"
        "unicast).  The suppression schemes discover the same routes with\n"
        "fewer RREQ rebroadcasts (NC-DHI ~40% fewer on this mid-density\n"
        "map; the saving grows with host density, cf. Fig. 13) -- the\n"
        "paper's pitch for storm relief under on-demand routing protocols."
    )


if __name__ == "__main__":
    main()
