#!/usr/bin/env python
"""Rescue-scene scenario: dissemination across clustered field teams.

The paper motivates MANETs with infrastructure-less deployments such as
rescue scenes.  This example builds one explicitly: four team clusters
working distinct sectors, connected by a sparse chain of relay vehicles.
A command post in cluster 0 broadcasts an evacuation order; we compare how
each scheme propagates it.

The scene is deliberately adversarial for counter-style suppression:

- inside a cluster, rebroadcasts are almost pure redundancy (everyone
  already heard the order), so suppression is exactly right there;
- each relay vehicle is an articulation point *and* sits next to a dense
  cluster, so it hears many copies quickly -- a counter scheme (fixed or
  adaptive) can count it into silence and black out every sector behind it;
- the location-based schemes see through this: the relay's own radio disk
  is mostly uncovered by the cluster's transmitters, so its additional
  coverage stays high and it keeps talking.

This is the concrete version of the paper's Observation 1 (hosts at
critical positions must rebroadcast) and of its conclusion that the
adaptive location-based scheme is the strongest overall choice.

Run:  python examples/rescue_scene.py
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from repro.experiments.topologies import build_static_network
from repro.net.host import HelloConfig
from repro.schemes import make_scheme
from repro.sim.engine import Scheduler

CLUSTER_GAP = 1600.0  # center-to-center distance between sectors
RELAY_OFFSETS = (550.0, 1050.0)  # relay vehicles inside each gap
TEAM_RADIUS = 150.0
TEAMS = 4
RESPONDERS_PER_TEAM = 12


def scene_positions(seed: int = 3) -> List[Tuple[float, float]]:
    """Clusters at x = 0, 1600, 3200, 4800 bridged by relay vehicles.

    Every hop along the chain (cluster edge -> relay -> relay -> next
    cluster edge) is within the 500 m radio radius, so the whole scene is
    connected -- but only through the relays, which makes each relay an
    articulation point.
    """
    rng = random.Random(seed)
    positions: List[Tuple[float, float]] = []
    for team in range(TEAMS):
        cx = team * CLUSTER_GAP
        for _ in range(RESPONDERS_PER_TEAM):
            radius = TEAM_RADIUS * math.sqrt(rng.random())
            theta = rng.uniform(0.0, 2.0 * math.pi)
            positions.append(
                (cx + radius * math.cos(theta), radius * math.sin(theta))
            )
    for team in range(TEAMS - 1):
        for offset in RELAY_OFFSETS:
            positions.append((team * CLUSTER_GAP + offset, 0.0))
    return positions


def run_scene(scheme_name: str, **scheme_params):
    scheduler = Scheduler()
    positions = scene_positions()
    hello = HelloConfig(interval=1.0)
    network, metrics = build_static_network(
        scheduler,
        positions,
        lambda: make_scheme(scheme_name, **scheme_params),
        hello_config=hello,
        seed=17,
    )
    network.start()
    scheduler.schedule_at(4.0, network.initiate_broadcast, 0)  # command post
    scheduler.run(until=15.0)
    record = next(iter(metrics.records.values()))
    return record, network.channel.stats


def main() -> None:
    total = TEAMS * RESPONDERS_PER_TEAM + len(RELAY_OFFSETS) * (TEAMS - 1)
    print(
        f"Rescue scene: {TEAMS} team clusters ({RESPONDERS_PER_TEAM} each) "
        f"+ {len(RELAY_OFFSETS) * (TEAMS - 1)} relay vehicles = {total} hosts\n"
    )
    lineup = [
        ("flooding", {}),
        ("counter", {"threshold": 2}),
        ("adaptive-counter", {}),
        ("location", {"threshold": 0.0134}),
        ("adaptive-location", {}),
        ("neighbor-coverage", {}),
    ]
    print(f"{'scheme':<20} {'RE':>6} {'SRB':>6} {'rebroadcasts':>13} {'collided rx':>12}")
    for name, params in lineup:
        record, stats = run_scene(name, **params)
        print(
            f"{name:<20} {record.reachability:>6.2f} "
            f"{record.saved_rebroadcast:>6.2f} "
            f"{record.rebroadcast_count:>13} {stats.collisions:>12}"
        )
    print(
        "\nReading the table: flooding reaches everyone but spends a\n"
        "rebroadcast per host and collides heavily inside the clusters.\n"
        "Counter-style suppression (fixed or adaptive) can silence the\n"
        "relay vehicles -- each sits beside a dense cluster and hears many\n"
        "copies before its own transmission leaves the MAC queue -- which\n"
        "blacks out the sectors behind them.  The location-based schemes\n"
        "keep the relays talking because a relay's radio disk is mostly\n"
        "uncovered by cluster transmitters; the adaptive variant (A(n)=0\n"
        "for sparse neighborhoods) additionally forces them.  This is the\n"
        "paper's Observation 1 made concrete, and why its overall\n"
        "recommendation is the adaptive location-based scheme."
    )


if __name__ == "__main__":
    main()
