#!/usr/bin/env python
"""Inspect the adaptive threshold machinery: EAC(k), C(n) and A(n).

Prints the coverage analysis that motivates the thresholds (paper Fig. 1)
and ASCII sketches of the tuned threshold functions (Figs. 3/6 and 4/8),
then runs a miniature tuning sweep like the paper's Section 4.1 to show how
the mid-curve choice trades RE against SRB.

Run:  python examples/threshold_tuning.py  [--sweep]
"""

from __future__ import annotations

import sys

from repro.analysis.coverage import eac_table
from repro.schemes.thresholds import (
    MIDCURVE_SHAPES,
    make_counter_threshold,
    make_location_threshold,
)


def print_eac() -> None:
    print("Expected additional coverage after k receptions (Fig. 1):")
    table = eac_table(max_k=8, trials=1500, seed=0)
    for k, value in table.items():
        bar = "#" * int(value * 100)
        print(f"  k={k}: {value:5.3f} {bar}")
    print(
        "  -> hearing the packet ~4 times leaves <5% new coverage: the\n"
        "     rationale for small counter thresholds in dense spots.\n"
    )


def print_counter_curves() -> None:
    print("Adaptive counter thresholds C(n) (n1=4, n2=12):")
    fns = {shape: make_counter_threshold(shape=shape) for shape in MIDCURVE_SHAPES}
    header = "  n:   " + " ".join(f"{n:>2}" for n in range(1, 16))
    print(header)
    for shape, fn in fns.items():
        row = " ".join(f"{fn(n):>2}" for n in range(1, 16))
        print(f"  {shape:<7}{row}")
    print()


def print_location_curve() -> None:
    print("Adaptive location threshold A(n) (n1=6, n2=12):")
    fn = make_location_threshold()
    for n in range(1, 16):
        value = fn(n)
        bar = "#" * int(value * 100)
        print(f"  n={n:>2}: {value:5.3f} {bar}")
    print()


def tuning_sweep() -> None:
    from repro.experiments.figures import fig05

    print("Mini tuning sweep (paper Fig. 5d, reduced grid)...")
    result = fig05.run_5d(maps=(3, 9), num_broadcasts=20, seed=5)
    print(result.table(metrics=("re", "srb")))


def main() -> None:
    print_eac()
    print_counter_curves()
    print_location_curve()
    if "--sweep" in sys.argv:
        tuning_sweep()
    else:
        print("(re-run with --sweep to run the Fig. 5d mini tuning sweep)")


if __name__ == "__main__":
    main()
