"""Fig. 7: adaptive counter (AC) vs fixed counter (C = 2, 4, 6).

Paper reading: the fixed scheme has the RE/SRB dilemma -- C = 2 gives
satisfactory RE and SRB on dense maps but RE "degrades sharply" when
sparse; C = 6 raises RE but SRB degrades on all maps.  AC resolves it: RE
stays high everywhere, SRB comparable to C = 2 on dense maps.  Latency
(7b): AC smallest on the densest maps; slightly above C = 2 on sparse maps
(it buys RE there).
"""

from conftest import run_once
from repro.experiments.figures import fig07

DENSE = 1
SPARSE = 9


def test_fig7_counter_dilemma_and_resolution(benchmark, bench_grid):
    maps, n = bench_grid
    result = run_once(benchmark, fig07.run, maps=maps, num_broadcasts=n)
    print()
    print(result.table(metrics=("re", "srb", "latency")))

    # --- The fixed-threshold dilemma -------------------------------
    # C = 2 collapses on the sparse map...
    assert result.value_at("C=2", SPARSE, "re") < 0.8
    # ...while fine and thrifty on the dense map.
    assert result.value_at("C=2", DENSE, "re") > 0.95
    assert result.value_at("C=2", DENSE, "srb") > 0.5
    # C = 6 keeps RE but loses the saving everywhere.
    assert result.value_at("C=6", SPARSE, "re") > 0.9
    for units in maps:
        assert result.value_at("C=6", units, "srb") < 0.35

    # --- AC resolves it --------------------------------------------
    for units in maps:
        assert result.value_at("AC", units, "re") > 0.9
    # Sparse-map RE: AC far above C = 2.
    assert (
        result.value_at("AC", SPARSE, "re")
        > result.value_at("C=2", SPARSE, "re") + 0.1
    )
    # Dense-map SRB comparable to C = 2 (within 15 points).
    assert (
        result.value_at("AC", DENSE, "srb")
        >= result.value_at("C=2", DENSE, "srb") - 0.15
    )

    # --- Fig. 7b: latency ------------------------------------------
    # On the densest map AC's latency beats the loose threshold C = 6.
    assert (
        result.value_at("AC", DENSE, "latency")
        < result.value_at("C=6", DENSE, "latency")
    )
