"""Fig. 2: contention-free probabilities cf(n, k).

Paper shapes: cf(n, 0) > 0.8 for n >= 6; cf(n, 1) drops sharply with n;
cf(n, k) negligible for k >= 2; cf(n, n-1) identically 0.
"""

from repro.experiments.figures import fig02

from conftest import run_once


def test_fig2_contention_free_probabilities(benchmark):
    series = run_once(benchmark, fig02.run, max_n=10, trials=5000, seed=0)
    print()
    print(fig02.format_table(series))

    # cf(2, 0) matches the 59% pairwise-contention integral.
    assert abs(series[2][0] - 0.59) < 0.03
    # All n contended grows past 0.8 from n = 6.
    for n in range(6, 11):
        assert series[n][0] > 0.8
    # cf(n, 0) increases with n (denser -> more contention).
    cf0 = [series[n][0] for n in range(2, 11)]
    assert all(a <= b + 0.03 for a, b in zip(cf0, cf0[1:]))
    # cf(n, 1) drops sharply.
    assert series[10][1] < series[3][1]
    # k >= 2 contention-free hosts are rare for crowded n.
    for n in range(6, 11):
        assert sum(series[n].get(k, 0.0) for k in range(2, n + 1)) < 0.05
    # Exact structural zero: cf(n, n-1) = 0.
    for n in range(2, 11):
        assert series[n][n - 1] == 0.0
