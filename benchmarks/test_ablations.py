"""Ablation benches for the design choices DESIGN.md calls out.

1. **Distance-based baseline** (reviewed in the paper, simulated in [15]):
   sits between flooding and the location scheme.
2. **Oracle vs HELLO-derived neighbor counts** for the adaptive counter:
   quantifies what stale neighbor knowledge costs.
3. **Mobility-model robustness**: the AC conclusions survive swapping the
   paper's random-direction model for random waypoint.
4. **Scheme-level jitter**: removing the S2 random delay (0..31 slots)
   degrades the counter scheme's collision profile.
"""

import pytest

from conftest import run_once
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_broadcast_simulation, run_sweep


def _config(**kwargs):
    defaults = dict(num_broadcasts=30, seed=1)
    defaults.update(kwargs)
    return ScenarioConfig(**defaults)


def test_distance_baseline_between_flood_and_suppression(benchmark):
    def run():
        return {
            name: run_broadcast_simulation(
                _config(scheme=name, scheme_params=params, map_units=3)
            )
            for name, params in [
                ("flooding", {}),
                ("distance", {"threshold": 125.0}),
                ("counter", {"threshold": 2}),
            ]
        }

    results = run_once(benchmark, run)
    print()
    for name, result in results.items():
        print(f"  {result.summary()}")
    # Distance saves something, but less than the aggressive counter.
    assert results["flooding"].srb == 0.0
    assert 0.05 < results["distance"].srb < results["counter"].srb
    assert results["distance"].re > 0.95


def test_oracle_vs_hello_neighbor_counts(benchmark):
    def run():
        hello = run_broadcast_simulation(
            _config(scheme="adaptive-counter", map_units=9)
        )
        oracle = run_broadcast_simulation(
            _config(scheme="adaptive-counter", map_units=9,
                    oracle_neighbors=True)
        )
        return hello, oracle

    hello, oracle = run_once(benchmark, run)
    print()
    print(f"  hello-derived n: {hello.summary()}")
    print(f"  oracle n:        {oracle.summary()}")
    # Oracle knowledge should not be (much) worse; both keep RE high.
    assert oracle.re > 0.9
    assert hello.re > 0.85
    assert oracle.re >= hello.re - 0.05


def test_nc_oracle_knowledge_ablation(benchmark):
    """How much of NC's sparse-map RE loss is neighbor-knowledge staleness?

    Replaces the HELLO-built one/two-hop tables with the channel's
    geometric truth.  The oracle recovers several points of RE; the rest is
    intrinsic to NC's assumption that a heard transmission reached the
    sender's whole neighborhood (hidden-terminal collisions violate it).
    """
    from repro.net.host import HelloConfig

    def run():
        dhi = HelloConfig(dynamic=True)
        hello = run_broadcast_simulation(
            _config(scheme="neighbor-coverage", map_units=9, hello=dhi)
        )
        oracle = run_broadcast_simulation(
            _config(scheme="neighbor-coverage",
                    scheme_params={"oracle": True}, map_units=9, hello=dhi)
        )
        return hello, oracle

    hello, oracle = run_once(benchmark, run)
    print()
    print(f"  hello-built tables: {hello.summary()}")
    print(f"  oracle tables:      {oracle.summary()}")
    assert oracle.re >= hello.re - 0.02  # oracle should not be worse
    assert oracle.re > 0.85


def test_adaptive_counter_robust_to_mobility_model(benchmark):
    def run():
        return {
            model: run_broadcast_simulation(
                _config(scheme="adaptive-counter", map_units=9, mobility=model)
            )
            for model in ("random-direction", "random-waypoint")
        }

    results = run_once(benchmark, run)
    print()
    for model, result in results.items():
        print(f"  {model}: {result.summary()}")
    for model, result in results.items():
        assert result.re > 0.85, model


def test_capture_effect_softens_the_storm(benchmark):
    """How much of flooding's collision damage comes from the no-capture
    assumption?  Enabling SIR-based capture lets the strongest frame of an
    overlap survive; corrupted receptions drop and RE recovers on the
    dense map where flooding collides hardest."""
    from repro.phy.capture import CaptureModel

    def run():
        base = run_broadcast_simulation(
            _config(scheme="flooding", map_units=1, num_broadcasts=20)
        )
        captured = run_broadcast_simulation(
            _config(scheme="flooding", map_units=1, num_broadcasts=20,
                    capture=CaptureModel(threshold_db=10.0))
        )
        return base, captured

    base, captured = run_once(benchmark, run)
    print()
    print(f"  no capture:   {base.summary()} "
          f"collisions={base.channel_stats.collisions}")
    print(f"  capture 10dB: {captured.summary()} "
          f"collisions={captured.channel_stats.collisions}")
    assert captured.channel_stats.collisions < base.channel_stats.collisions
    assert captured.re >= base.re - 0.02


def test_scheme_jitter_reduces_collisions(benchmark):
    """Disable the S2 random assessment delay and watch collisions rise."""
    from repro.schemes.counter import CounterScheme

    class NoJitterCounter(CounterScheme):
        jitter_slots = 0

    def run():
        import repro.schemes as schemes

        baseline = run_broadcast_simulation(
            _config(scheme="counter", scheme_params={"threshold": 3},
                    map_units=1, num_broadcasts=20)
        )
        # Swap the registry entry for the no-jitter variant.
        original = schemes.SCHEME_REGISTRY["counter"]
        schemes.SCHEME_REGISTRY["counter"] = (
            lambda threshold=3: NoJitterCounter(threshold=threshold)
        )
        try:
            nojitter = run_broadcast_simulation(
                _config(scheme="counter", scheme_params={"threshold": 3},
                        map_units=1, num_broadcasts=20)
            )
        finally:
            schemes.SCHEME_REGISTRY["counter"] = original
        return baseline, nojitter

    baseline, nojitter = run_once(benchmark, run)
    print()
    print(f"  with jitter:    {baseline.summary()} "
          f"collisions={baseline.channel_stats.collisions}")
    print(f"  without jitter: {nojitter.summary()} "
          f"collisions={nojitter.channel_stats.collisions}")
    # Removing the random assessment delay concentrates rebroadcasts:
    # more corrupted receptions per transmission.
    base_rate = baseline.channel_stats.collisions / max(
        baseline.channel_stats.transmissions, 1
    )
    nj_rate = nojitter.channel_stats.collisions / max(
        nojitter.channel_stats.transmissions, 1
    )
    assert nj_rate > base_rate * 0.8  # at least comparable; usually higher
