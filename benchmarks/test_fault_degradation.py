"""Graceful degradation under faults: RE vs host churn and loss burstiness.

Not a paper figure -- a robustness probe of the paper's schemes.  Two
sweeps on the default 5x5 map, all with fixed seeds:

- **Churn**: per-host Poisson crash/recover (8 s downtime) at increasing
  rates.  Recovered hosts come back with cold neighbor tables, so the
  suppression schemes briefly run on wrong knowledge.
- **Burstiness**: Gilbert-Elliott link loss at a fixed 25 % stationary rate
  with the heal probability ``r`` swept down (burstier bad states, same
  average loss).

Expected shape: flooding's redundancy masks both fault kinds almost
entirely (RE stays ~0.99) while the adaptive schemes pay a visible but
*graceful* RE cost -- no cliff -- and lose part of their saving (lost
HELLOs shrink the known neighborhood, so they inhibit less).  Notably,
*burstier* loss at equal average rate hurts the schemes less than
near-memoryless loss: bursts concentrate the damage on a few links while
the rest of the neighborhood stays clean.
"""

import os

from conftest import FULL, N_BROADCASTS, SEED, run_once
from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import ParallelRunner
from repro.faults.plan import ChurnProcess, FaultPlan, GilbertElliottLossSpec
from repro.net.host import HelloConfig

#: Worker processes for the sweep (1 = sequential); results are
#: order-preserved so the curves are identical either way.
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1") or "1")

SCHEMES = {
    "flooding": ("flooding", {}, HelloConfig()),
    "AC": ("adaptive-counter", {}, HelloConfig()),
    "AL": ("adaptive-location", {}, HelloConfig()),
    "NC-DHI": (
        "neighbor-coverage",
        {},
        HelloConfig(dynamic=True, nv_max=0.02, hi_min=1.0, hi_max=10.0),
    ),
}
ADAPTIVE = ("AC", "AL", "NC-DHI")

CHURN_RATES = (0.0, 0.002, 0.005, 0.007, 0.01) if FULL else (0.0, 0.002, 0.005, 0.01)
DOWNTIME = 8.0

STATIONARY_LOSS = 0.25
#: Gilbert-Elliott heal probability; smaller = burstier.  None = no loss.
BURST_R = (None, 0.8, 0.4, 0.25, 0.15) if FULL else (None, 0.8, 0.4, 0.15)


def ge_spec(r):
    """GE spec with heal probability ``r`` at the fixed stationary loss."""
    p = STATIONARY_LOSS * r / (1.0 - STATIONARY_LOSS)
    return GilbertElliottLossSpec(p=p, r=r, loss_good=0.0, loss_bad=1.0)


def point_config(label, faults):
    scheme, params, hello = SCHEMES[label]
    return ScenarioConfig(
        scheme=scheme,
        scheme_params=params,
        hello=hello,
        num_broadcasts=N_BROADCASTS,
        seed=SEED,
        faults=faults,
    )


def sweep(fault_for):
    """{scheme: [(level_label, result), ...]} over one fault dimension."""
    points = [
        (label, lvl, point_config(label, plan))
        for label in SCHEMES
        for lvl, plan in fault_for
    ]
    runner = ParallelRunner(max_workers=JOBS)
    results = runner.run_many([config for _, _, config in points])
    curves = {label: [] for label in SCHEMES}
    for (label, lvl, _), result in zip(points, results):
        curves[label].append((lvl, result))
    return curves


def show(title, curves):
    print()
    print(title)
    for label, points in curves.items():
        cells = "  ".join(
            f"{lvl}: RE={res.re:.3f} SRB={res.srb:.3f}" for lvl, res in points
        )
        print(f"  {label:9s}{cells}")


def test_re_vs_churn_rate(benchmark):
    levels = [
        (
            f"rate={rate:g}",
            FaultPlan(churn=ChurnProcess(rate=rate, downtime=DOWNTIME))
            if rate > 0.0
            else None,
        )
        for rate in CHURN_RATES
    ]
    curves = run_once(benchmark, sweep, levels)
    show("RE vs per-host churn rate (downtime 8 s):", curves)

    res = {label: [r for _, r in points] for label, points in curves.items()}
    for label, points in res.items():
        for r in points:
            assert 0.0 <= r.re <= 1.05, (label, r.re)
        # Healthy baseline, graceful worst case for every scheme.
        assert points[0].re > 0.9, label
        assert min(r.re for r in points) > 0.8, label
    # Non-trivial sweep: the heaviest churn level actually crashed hosts.
    for label in SCHEMES:
        assert len(res[label][-1].fault_trace) > 5, label

    # Flooding's redundancy masks churn almost entirely.
    assert min(r.re for r in res["flooding"]) > 0.95

    # NC-DHI: monotone-ish graceful decline, no cliff between adjacent
    # churn levels.
    nc = [r.re for r in res["NC-DHI"]]
    for a, b in zip(nc, nc[1:]):
        assert a - b < 0.15, nc


def test_re_vs_loss_burstiness(benchmark):
    levels = [
        (
            "clean" if r is None else f"r={r:g}",
            FaultPlan(loss=ge_spec(r)) if r is not None else None,
        )
        for r in BURST_R
    ]
    curves = run_once(benchmark, sweep, levels)
    show(
        f"RE vs GE burstiness (stationary loss {STATIONARY_LOSS:.0%}):", curves
    )

    res = {label: [r for _, r in points] for label, points in curves.items()}
    for label, points in res.items():
        for r in points:
            assert 0.0 <= r.re <= 1.05, (label, r.re)
        # 25 % per-link loss degrades, never collapses.
        assert min(r.re for r in points) > 0.8, label

    flooding = res["flooding"]
    # Flooding RE ordering: the clean run tops every lossy run (tiny
    # whisker for seed noise), and even under loss it barely moves.
    clean = flooding[0].re
    for lossy in flooding[1:]:
        assert clean >= lossy.re - 0.01
        assert lossy.re > 0.95
    # The suppression schemes pay more than flooding does at the
    # near-memoryless end (r = 0.8): pruned redundancy is what loss eats.
    mild = 1  # index of r=0.8
    assert flooding[mild].re > res["AC"][mild].re + 0.02
    assert flooding[mild].re > res["AL"][mild].re + 0.02
    # Lost HELLOs shrink the known neighborhood, so every adaptive scheme
    # saves less under loss than on the clean channel.
    for label in ADAPTIVE:
        assert res[label][mild].srb < res[label][0].srb - 0.05, label
