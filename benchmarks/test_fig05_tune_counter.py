"""Fig. 5: tuning the adaptive-counter threshold function C(n).

Reproduces the paper's four-step tuning methodology.  Assertions encode the
paper's reading of each panel:

- 5a: steeper rising slope (slope 1, i.e. C(n) = n + 1) gives the best RE
  on sparse maps.
- 5b: n1 = 4 and 5 give satisfactory (near-top) RE; n1 = 4 saves more.
- 5c: n2 = 12 beats n2 = 8 on sparse-map RE.
- 5d: all mid-curves keep RE high; the curve choice trades SRB.
"""

from conftest import run_once
from repro.experiments.figures import fig05

SPARSE = 9
DENSE = 1
MAPS = (DENSE, 5, SPARSE)
N = 30


def test_fig5a_slope(benchmark):
    result = run_once(benchmark, fig05.run_5a, maps=MAPS, num_broadcasts=N)
    print()
    print(result.table())
    # Slope 1 ("2345...") has the best sparse-map RE (with a whisker of
    # seed tolerance).
    steep = result.value_at("slope-1", SPARSE, "re")
    assert steep >= result.value_at("slope-1/2", SPARSE, "re") - 0.02
    assert steep >= result.value_at("slope-1/3", SPARSE, "re") - 0.02
    # All candidates behave on the dense map.
    for name in ("slope-1", "slope-1/2", "slope-1/3"):
        assert result.value_at(name, DENSE, "re") > 0.95


def test_fig5b_n1(benchmark):
    result = run_once(benchmark, fig05.run_5b, maps=MAPS, num_broadcasts=N)
    print()
    print(result.table())
    # Larger caps give better sparse RE; n1 = 4, 5 satisfactory.
    assert result.value_at("n1=4", SPARSE, "re") >= result.value_at("n1=2", SPARSE, "re") - 0.02
    assert result.value_at("n1=5", SPARSE, "re") >= result.value_at("n1=2", SPARSE, "re") - 0.02
    # n1 = 4 saves at least as much as n1 = 5 on the dense map.
    assert (
        result.value_at("n1=4", DENSE, "srb")
        >= result.value_at("n1=5", DENSE, "srb") - 0.05
    )


def test_fig5c_n2(benchmark):
    result = run_once(benchmark, fig05.run_5c, maps=MAPS, num_broadcasts=N)
    print()
    print(result.table())
    # n2 = 12 at least matches n2 = 8 on sparse-map RE.
    assert (
        result.value_at("n2=12", SPARSE, "re")
        >= result.value_at("n2=8", SPARSE, "re") - 0.02
    )
    # Dense-map saving is preserved for every n2.
    for n2 in (8, 12, 16):
        assert result.value_at(f"n2={n2}", DENSE, "srb") > 0.5


def test_fig5d_midcurve(benchmark):
    result = run_once(benchmark, fig05.run_5d, maps=MAPS, num_broadcasts=N)
    print()
    print(result.table())
    for shape in ("linear", "convex", "concave"):
        # Every candidate keeps RE high on all maps (the paper tunes among
        # close alternatives).
        for units in MAPS:
            assert result.value_at(shape, units, "re") > 0.9
    # The lower (convex) curve suppresses at least as much as the higher
    # (concave) curve on the mid-density map.
    assert (
        result.value_at("convex", 5, "srb")
        >= result.value_at("concave", 5, "srb") - 0.05
    )
