"""Telemetry cost: the disarmed runner must stay within a small factor
of the bare kernel, and arming must stay within the same ceiling of the
disarmed runner.

Every telemetry site sits behind the ``reg is not None`` guard, so a
disarmed process should pay one global read per *run* (not per event)
plus the always-on :class:`ResourceMonitor` bracketing (two getrusage /
gc snapshots per run).  This benchmark runs interleaved CPU-time pairs
of the microbench scenario and asserts on the lower of two estimators
-- the **median per-pair ratio** and the **ratio of per-arm minima** --
the same noise armour as ``benchmarks/test_trace_overhead.py``: a
leaked hot-path cost moves both estimators, shared-machine spikes flake
neither.  Attempts over the ceiling are remeasured (noise is transient;
regressions are not).

Two guarded comparisons:

1. bare ``run_broadcast_simulation`` vs a disarmed single-worker
   ``ParallelRunner`` (no cache) -- the runner's bookkeeping including
   every disarmed telemetry guard;
2. disarmed runner vs armed runner -- the cost of live counters.

Env knobs:

- ``REPRO_TELEMETRY_MAX_OVERHEAD`` -- allowed fractional slowdown per
  comparison (default 0.05).  Set to 0 to record without asserting.
- ``REPRO_TELEMETRY_REPS`` -- interleaved pairs per attempt (default 5).
- ``REPRO_TELEMETRY_ATTEMPTS`` -- measurement attempts before the
  ceiling verdict is final (default 3).
"""

import os
import time

from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import run_broadcast_simulation
from repro.telemetry.registry import MetricsRegistry, arm, disarm, registry

MAX_OVERHEAD = float(os.environ.get("REPRO_TELEMETRY_MAX_OVERHEAD", "0.05"))
REPS = int(os.environ.get("REPRO_TELEMETRY_REPS", "5") or "5")
ATTEMPTS = int(os.environ.get("REPRO_TELEMETRY_ATTEMPTS", "3") or "3")


def config():
    # The microbench scenario (benchmarks/test_microbench.py's
    # end-to-end flooding run).
    return ScenarioConfig(
        scheme="flooding",
        map_units=3,
        num_hosts=50,
        num_broadcasts=10,
        seed=5,
    )


def timed(fn):
    start = time.process_time()
    out = fn()
    return time.process_time() - start, out


def measure(label, baseline_arm, candidate_arm):
    """One attempt: REPS interleaved pairs -> fractional overhead."""
    base_cpus, cand_cpus = [], []
    for _ in range(max(1, REPS)):
        base_cpu, _ = timed(baseline_arm)
        cand_cpu, _ = timed(candidate_arm)
        base_cpus.append(base_cpu)
        cand_cpus.append(cand_cpu)

    ratios = sorted(c / b for c, b in zip(cand_cpus, base_cpus))
    median = ratios[len(ratios) // 2]
    best_of = min(cand_cpus) / min(base_cpus)
    overhead = min(median, best_of) - 1.0
    print(
        f"\n{label} overhead: {overhead:+.1%} "
        f"(median pair ratio {median - 1:+.1%}, ratio of minima "
        f"{best_of - 1:+.1%}; {len(ratios)} interleaved CPU-time pairs: "
        + ", ".join(f"{r - 1:+.1%}" for r in ratios)
        + ")"
    )
    return overhead


def bounded(label, baseline_arm, candidate_arm, hint):
    overhead = float("inf")
    for attempt in range(max(1, ATTEMPTS)):
        overhead = min(overhead, measure(label, baseline_arm, candidate_arm))
        if MAX_OVERHEAD <= 0 or overhead <= MAX_OVERHEAD:
            break
        print(f"over ceiling on attempt {attempt + 1}; remeasuring")
    if MAX_OVERHEAD > 0:
        assert overhead <= MAX_OVERHEAD, (
            f"{label} costs {overhead:+.1%} "
            f"(ceiling {MAX_OVERHEAD:.0%}, best of {ATTEMPTS} attempts); "
            + hint
        )


def test_disarmed_runner_overhead_is_bounded():
    cfg = config()
    previous = registry()
    try:
        disarm()
        runner = ParallelRunner(max_workers=1)

        run_broadcast_simulation(cfg)  # warm both paths before timing
        runner.run_many([cfg])

        bounded(
            "disarmed runner",
            lambda: run_broadcast_simulation(cfg),
            lambda: runner.run_many([cfg]),
            "a disarmed telemetry site is probably doing work that "
            "belongs behind the 'reg is not None' guard",
        )
    finally:
        arm(previous) if previous is not None else disarm()


def test_armed_runner_overhead_is_bounded():
    cfg = config()
    previous = registry()
    try:
        disarmed_runner = ParallelRunner(max_workers=1)
        armed_runner = ParallelRunner(max_workers=1)

        def disarmed_arm():
            disarm()
            return disarmed_runner.run_many([cfg])

        def armed_arm():
            arm(MetricsRegistry())
            return armed_runner.run_many([cfg])

        disarmed_arm()  # warm both paths before timing
        armed_arm()

        bounded(
            "armed runner",
            disarmed_arm,
            armed_arm,
            "live counters must stay O(runs), never O(events); something "
            "is updating metrics inside the simulation hot loop",
        )
    finally:
        arm(previous) if previous is not None else disarm()
