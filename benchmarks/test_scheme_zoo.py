"""Scheme-zoo ablation: the new variants on the Fig. 13 RE/SRB comparison.

Extends the Fig. 13 overall-comparison lineup with the literature variants
the plugin registry added -- fixed gossip ``P(p)``, neighbor-adaptive
gossip, the counter+probability hybrid and self-pruning -- and checks the
qualitative placement the literature reports:

- every zoo variant saves rebroadcasts on the dense map (flooding's SRB
  stays identically 0);
- fixed gossip's saving tracks ``1 - p`` where the network is dense, and
  it loses reachability on sparse maps (the known GOSSIP1 weakness);
- adaptive gossip recovers that sparse-map reachability by forcing
  ``p = 1`` below ``n1`` neighbors while still saving when dense;
- the hybrid never saves less than its pure-counter gate alone... loosely:
  its saving sits between gossip's and the counter scheme's.

Writes ``BENCH_scheme_zoo.json`` (override with ``REPRO_ZOO_OUT``) with
the RE/SRB series per variant for the CI artifact.
"""

import json
import os

from conftest import run_once
from repro.experiments.figures import fig13
from repro.net.host import HelloConfig

OUT_PATH = os.environ.get("REPRO_ZOO_OUT", "BENCH_scheme_zoo.json")

DENSE = 1
SPARSE = 9

#: The Fig. 13 anchors plus every zoo variant at its default setting.
ZOO_LINEUP = {
    "flooding": ("flooding", {}, HelloConfig()),
    "C=4": ("counter", {"threshold": 4}, HelloConfig()),
    "AC": ("adaptive-counter", {}, HelloConfig()),
    "P(0.7)": ("gossip", {"p": 0.7}, HelloConfig()),
    "P(n)": ("adaptive-gossip", {}, HelloConfig()),
    "C+P": ("counter-gossip", {}, HelloConfig()),
    "SP": ("self-pruning", {}, HelloConfig()),
}


def test_scheme_zoo_re_srb_comparison(benchmark, bench_grid):
    maps, n = bench_grid
    result = run_once(
        benchmark, fig13.run, maps=maps, num_broadcasts=n, lineup=ZOO_LINEUP
    )
    print()
    print(result.table(metrics=("re", "srb")))

    # Flooding baseline: SRB identically 0 on every map.
    for units in maps:
        assert result.value_at("flooding", units, "srb") == 0.0

    # Every zoo variant saves rebroadcasts where the network is dense.
    for label in ("P(0.7)", "P(n)", "C+P", "SP"):
        assert result.value_at(label, DENSE, "srb") > 0.1, label

    # Fixed gossip: saving tracks 1 - p on the dense map (within a broad
    # band -- boundary hosts push it around)...
    srb_gossip = result.value_at("P(0.7)", DENSE, "srb")
    assert 0.15 < srb_gossip < 0.45
    # ...but reachability suffers when sparse (the GOSSIP1 weakness).
    re_gossip_sparse = result.value_at("P(0.7)", SPARSE, "re")
    # Adaptive gossip forces p = 1 below n1 neighbors and wins it back.
    re_adaptive_sparse = result.value_at("P(n)", SPARSE, "re")
    assert re_adaptive_sparse >= re_gossip_sparse + 0.1
    assert re_adaptive_sparse > 0.9

    # Every variant keeps sane reachability on the dense map.
    for label in ZOO_LINEUP:
        assert result.value_at(label, DENSE, "re") > 0.9, label

    # The hybrid's gates compose: it saves at least as much as its pure
    # counter gate alone on the dense map (the coin can only thin more).
    assert (
        result.value_at("C+P", DENSE, "srb")
        >= result.value_at("C=4", DENSE, "srb") - 0.02
    )

    report = {
        "bench": "scheme_zoo",
        "maps": list(maps),
        "num_broadcasts": n,
        "series": {
            label: {
                str(units): {
                    "re": result.value_at(label, units, "re"),
                    "srb": result.value_at(label, units, "srb"),
                }
                for units in maps
            }
            for label in ZOO_LINEUP
        },
    }
    with open(OUT_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"wrote {OUT_PATH}")
