"""Kernel hot-path speedup: measured events/sec and BENCH_kernel.json.

Times the fig. 13-style dense scenario (single map unit, 100 hosts,
blind flooding -- the configuration that maximizes per-event channel and
MAC work) and compares against the pre-optimization kernel's recorded
throughput.  Emits ``BENCH_kernel.json`` with the measured events/sec,
the speedup, and the run's :class:`repro.perf.KernelPerf` counters.

The event count is asserted exactly: the optimized kernel must replay
the identical simulation (same seed, same events) -- throughput gains
that change behavior do not count.

Env knobs:

- ``REPRO_KERNEL_BASELINE_EPS`` -- baseline events/sec to compare
  against (default: the pre-optimization kernel measured on the dev
  box; override when benchmarking on different hardware).
- ``REPRO_KERNEL_MIN_SPEEDUP`` -- speedup floor to assert (default 1.5,
  the CI smoke floor; the local target is 2.0).  Set to 0 to record
  without asserting.
- ``REPRO_KERNEL_REPS`` -- timing repetitions, best-of (default 3).
- ``REPRO_KERNEL_OUT`` -- where to write the JSON (default
  ``BENCH_kernel.json`` in the current directory).
"""

import json
import os
import platform
import time

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_broadcast_simulation

#: Pre-optimization kernel on the dense scenario below (best of 3 on the
#: dev box, quiet machine).  Interleaved A/B runs against the seed tree
#: put the true speedup at 2.0-2.2x; absolute eps swings with load, hence
#: the env override and the conservative default floor.
DEFAULT_BASELINE_EPS = 16300.056496213185

#: Scheduler events the dense scenario processes -- bit-identity guard.
GOLDEN_EVENTS = 25919

BASELINE_EPS = float(
    os.environ.get("REPRO_KERNEL_BASELINE_EPS", "") or DEFAULT_BASELINE_EPS
)
MIN_SPEEDUP = float(os.environ.get("REPRO_KERNEL_MIN_SPEEDUP", "1.5"))
REPS = int(os.environ.get("REPRO_KERNEL_REPS", "3") or "3")
OUT_PATH = os.environ.get("REPRO_KERNEL_OUT", "BENCH_kernel.json")


def dense_config():
    """Fig. 13-style worst case: everyone in one unit square."""
    return ScenarioConfig(
        scheme="flooding",
        map_units=1,
        num_hosts=100,
        num_broadcasts=40,
        seed=1,
    )


def test_kernel_speedup_and_bench_json():
    best_wall = float("inf")
    best = None
    for _ in range(max(1, REPS)):
        start = time.perf_counter()
        result = run_broadcast_simulation(dense_config())
        wall = time.perf_counter() - start
        if wall < best_wall:
            best_wall, best = wall, result

    # Bit-identity guard before any throughput claim.
    assert best.events_processed == GOLDEN_EVENTS, (
        f"dense scenario replayed {best.events_processed} events, expected "
        f"{GOLDEN_EVENTS}: the kernel changed simulation behavior"
    )

    eps = best.events_processed / best_wall
    speedup = eps / BASELINE_EPS
    report = {
        "scenario": {
            "scheme": "flooding",
            "map_units": 1,
            "num_hosts": 100,
            "num_broadcasts": 40,
            "seed": 1,
            "events_processed": best.events_processed,
        },
        "reps": REPS,
        "best_wall": best_wall,
        "events_per_sec": eps,
        "baseline_events_per_sec": BASELINE_EPS,
        "speedup": speedup,
        "min_speedup_asserted": MIN_SPEEDUP if MIN_SPEEDUP > 0 else None,
        "kernel": best.perf.as_dict(),
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
    }
    with open(OUT_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(
        f"\nkernel bench: {best.events_processed} events in {best_wall:.3f}s "
        f"= {eps:,.0f} events/sec ({speedup:.2f}x of baseline "
        f"{BASELINE_EPS:,.0f}) -> wrote {OUT_PATH}"
    )

    if MIN_SPEEDUP > 0:
        assert speedup >= MIN_SPEEDUP, (
            f"kernel throughput {eps:,.0f} events/sec is only "
            f"{speedup:.2f}x of the recorded baseline "
            f"{BASELINE_EPS:,.0f} (floor {MIN_SPEEDUP}x); rerun on a quiet "
            f"machine or recalibrate with REPRO_KERNEL_BASELINE_EPS"
        )
