"""Engine micro-benchmarks (performance tracking, not paper figures).

These use pytest-benchmark's statistical timing (multiple rounds) since
they are fast; the figure benches run once by design.
"""

import random

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_broadcast_simulation
from repro.metrics.connectivity import reachable_set
from repro.phy.channel import Channel
from repro.phy.params import PhyParams
from repro.sim.engine import Scheduler


def test_scheduler_event_throughput(benchmark):
    """Raw schedule+dispatch cost for 10k chained events."""

    def run():
        scheduler = Scheduler()
        remaining = [10_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                scheduler.schedule(0.001, tick)

        scheduler.schedule(0.001, tick)
        scheduler.run()
        return scheduler.events_processed

    events = benchmark(run)
    assert events == 10_000


def test_channel_transmission_fanout(benchmark):
    """One transmission delivered to 99 in-range receivers."""
    params = PhyParams()
    # 10x10 grid, 30 m spacing: diagonal 382 m < 500 m radius, so every
    # host hears every transmission.
    positions = [(i % 10 * 30.0, i // 10 * 30.0) for i in range(100)]

    class Sink:
        def on_medium_state(self, busy):
            pass

        def on_frame_received(self, frame, sender_id):
            pass

        def on_frame_corrupted(self, frame, sender_id):
            pass

    def run():
        scheduler = Scheduler()
        channel = Channel(scheduler, params, lambda hid: positions[hid])
        sink = Sink()
        for host_id in range(100):
            channel.attach(host_id, sink)
        for i in range(20):
            channel.start_transmission(i, "x", 0.001)
            scheduler.run()
        return channel.stats.deliveries

    deliveries = benchmark(run)
    assert deliveries == 20 * 99


def test_connectivity_snapshot_cost(benchmark):
    """BFS over 500 hosts with grid bucketing."""
    rng = random.Random(3)
    positions = {
        i: (rng.uniform(0, 5000), rng.uniform(0, 5000)) for i in range(500)
    }

    result = benchmark(reachable_set, positions, 0, 500.0)
    assert isinstance(result, set)


def test_full_simulation_throughput(benchmark):
    """A complete 10-broadcast flooding simulation (end-to-end cost)."""
    config = ScenarioConfig(
        scheme="flooding", map_units=3, num_hosts=50, num_broadcasts=10,
        seed=5,
    )

    result = benchmark(run_broadcast_simulation, config)
    assert result.stats.broadcasts == 10
