"""Fig. 9: comparing A(n) threshold functions for the adaptive location
scheme.

Paper reading: (6,12), (8,12) and (8,10) all deliver satisfactory RE;
(6,12) is picked for better SRB behaviour.  Candidates with small n1 force
fewer rebroadcasts and can lose RE on sparse maps.
"""

from conftest import run_once
from repro.experiments.figures import fig09

MAPS = (1, 5, 9)
SPARSE = 9
GOOD_PAIRS = ("(6,12)", "(8,12)", "(8,10)")


def test_fig9_a_n_candidates(benchmark):
    result = run_once(
        benchmark, fig09.run, maps=MAPS, num_broadcasts=30
    )
    print()
    print(result.table())

    # The paper's "satisfactory" pairs keep RE high on every map.
    for pair in GOOD_PAIRS:
        for units in MAPS:
            assert result.value_at(pair, units, "re") > 0.9, (pair, units)

    # Aggressive small-n1 candidates suppress more on the dense map...
    assert (
        result.value_at("(2,8)", 1, "srb")
        >= result.value_at("(8,12)", 1, "srb") - 0.05
    )
    # ...and never beat the chosen pair's sparse-map RE by a margin.
    assert (
        result.value_at("(2,8)", SPARSE, "re")
        <= result.value_at("(6,12)", SPARSE, "re") + 0.03
    )
