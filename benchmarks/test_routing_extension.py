"""Extension bench: on-demand routing over the broadcast schemes.

Not a paper figure -- this regenerates the paper's *motivating claim*: a
routing protocol's route-request flood benefits from storm relief.  We run
the bundled AODV-lite over flooding vs a suppression scheme and compare
discovery success and RREQ on-air cost.
"""

from conftest import run_once
from repro.experiments.config import ScenarioConfig
from repro.metrics.collector import MetricsCollector
from repro.mobility.map import RectMap
from repro.net.host import HelloConfig
from repro.net.network import Network
from repro.routing import attach_agents
from repro.schemes import make_scheme
from repro.sim.engine import Scheduler
from repro.sim.randomness import RandomStreams

NUM_HOSTS = 50
NUM_FLOWS = 15


def run_routing(scheme_name, hello, seed=4, **scheme_params):
    scheduler = Scheduler()
    streams = RandomStreams(seed)
    metrics = MetricsCollector()
    network = Network(
        scheduler=scheduler,
        params=ScenarioConfig().phy,
        world=RectMap.square_units(3),
        streams=streams,
        num_hosts=NUM_HOSTS,
        scheme_factory=lambda: make_scheme(scheme_name, **scheme_params),
        metrics=metrics,
        max_speed_kmh=30.0,
        hello_config=hello,
    )
    agents = attach_agents(network)
    network.start()
    traffic_rng = streams.stream("routing-traffic")
    t = 12.0
    for _ in range(NUM_FLOWS):
        t += traffic_rng.uniform(0.5, 1.5)
        src = traffic_rng.randrange(NUM_HOSTS)
        dst = traffic_rng.randrange(NUM_HOSTS - 1)
        if dst >= src:
            dst += 1
        scheduler.schedule_at(t, agents[src].send_data, dst, None)
    scheduler.run(until=t + 6.0)

    delivered = sum(a.stats.data_delivered for a in agents.values())
    flood_tx = (
        sum(h.mac.stats.broadcast_frames_sent for h in network.hosts)
        - metrics.hello_packets_sent
    )
    return delivered / NUM_FLOWS, flood_tx


def test_routing_over_suppression_schemes(benchmark):
    def run():
        return {
            "flooding": run_routing("flooding", HelloConfig()),
            "adaptive-counter": run_routing("adaptive-counter", HelloConfig()),
            "nc-dhi": run_routing(
                "neighbor-coverage", HelloConfig(dynamic=True)
            ),
        }

    results = run_once(benchmark, run)
    print()
    for name, (delivery, flood_tx) in results.items():
        print(f"  {name:<18} delivery={delivery:.1%} rreq_tx={flood_tx}")

    flood_delivery, flood_cost = results["flooding"]
    for name in ("adaptive-counter", "nc-dhi"):
        delivery, cost = results[name]
        # Same (or nearly same) route-discovery power...
        assert delivery >= flood_delivery - 0.15, name
        # ...at a lower RREQ flood cost on this dense map.
        assert cost < flood_cost, name
    assert flood_delivery > 0.7
