"""Fig. 12: neighbor coverage with dynamic hello interval (NC-DHI).

Paper reading: (a) RE stays high independent of host mobility and density;
SRB is significant; (b) on sparse maps the neighborhood variation pushes
hosts to the shortest interval (many hellos), while on the 1x1 map there is
almost no variation, so the interval sits near hi_max (few hellos).
"""

import os

from conftest import run_once
from repro.experiments.figures import fig12

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"
MAPS = (1, 5, 9) if not FULL else (1, 3, 5, 7, 9, 11)
SPEEDS = (20.0, 80.0) if not FULL else (20.0, 40.0, 60.0, 80.0)


def test_fig12_dhi_re_and_hello_counts(benchmark):
    result = run_once(
        benchmark, fig12.run, maps=MAPS, speeds=SPEEDS, num_broadcasts=30
    )
    print()
    print(result.table(metrics=("re", "srb", "hellos")))

    # (a) RE stays high across speed and density.
    for units in MAPS:
        for speed in SPEEDS:
            assert result.value_at(f"{units}x{units}", speed, "re") > 0.85, (
                units, speed,
            )
    # Dense-map SRB is significant.
    for speed in SPEEDS:
        assert result.value_at("1x1", speed, "srb") > 0.5

    # (b) Hellos: sparse maps send clearly more than the 1x1 map (whose
    # variation is lowest).  The paper's gap is larger because its 1x1
    # variation is ~0; in our model corner pairs of the 500 m square do
    # exceed the 500 m radius and in-band HELLOs collide with the
    # broadcast storms, both keeping nv (and so the hello rate) above the
    # floor.  Direction and ordering still hold -- see EXPERIMENTS.md.
    fast = SPEEDS[-1]
    slow = SPEEDS[0]
    dense_hellos = result.value_at("1x1", fast, "hellos")
    sparse_hellos = result.value_at("9x9", fast, "hellos")
    assert sparse_hellos > 1.3 * dense_hellos
    # Mid-density maps send more hellos at higher mobility (Fig. 12b).
    assert (
        result.value_at("5x5", fast, "hellos")
        > result.value_at("5x5", slow, "hellos")
    )
