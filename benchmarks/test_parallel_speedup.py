"""Parallel execution layer: measured speedup and BENCH_parallel.json.

Runs the same 3-scheme x 4-seed sweep (12 independent simulations)
sequentially and through the process pool, asserts the pool actually
pays, and emits ``BENCH_parallel.json`` with the timings and the
runner's perf counters (events/sec, cache hit-rate).

Env knobs:

- ``REPRO_BENCH_JOBS`` -- parallel worker count (default 2).
- ``REPRO_BENCH_MIN_SPEEDUP`` -- speedup floor (default 1.3).
- ``REPRO_BENCH_OUT`` -- where to write the JSON (default
  ``BENCH_parallel.json`` in the current directory).

The 2x floor at ``--jobs 4`` from the issue's acceptance criteria is
asserted only when the machine has >= 4 CPUs (gated, not skipped
silently -- the JSON records which assertions ran).
"""

import json
import os
import time

from conftest import SEED
from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import ParallelRunner

JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "2") or "2")
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "1.3"))
OUT_PATH = os.environ.get("REPRO_BENCH_OUT", "BENCH_parallel.json")

SCHEMES = ("flooding", "adaptive-counter", "neighbor-coverage")
SEEDS = (SEED, SEED + 1, SEED + 2, SEED + 3)
#: Per-run size: big enough that pool startup amortizes, small enough
#: for a CI smoke job.
N_BROADCASTS = 25
MAP_UNITS = 5


def sweep_configs():
    return [
        ScenarioConfig(
            scheme=scheme,
            map_units=MAP_UNITS,
            num_broadcasts=N_BROADCASTS,
            seed=seed,
        )
        for scheme in SCHEMES
        for seed in SEEDS
    ]


def timed_sweep(workers):
    """(wall seconds, results, runner) for the sweep at ``workers``."""
    runner = ParallelRunner(max_workers=workers)
    start = time.perf_counter()
    results = runner.run_many(sweep_configs())
    return time.perf_counter() - start, results, runner


def test_parallel_speedup_and_bench_json():
    seq_wall, seq_results, _ = timed_sweep(workers=1)
    par_wall, par_results, par_runner = timed_sweep(workers=JOBS)
    speedup = seq_wall / par_wall if par_wall > 0 else float("inf")

    # Determinism first: the pool must not change a single metric.
    for seq_run, par_run in zip(seq_results, par_results):
        assert seq_run.re == par_run.re
        assert seq_run.srb == par_run.srb
        assert seq_run.latency == par_run.latency
        assert seq_run.events_processed == par_run.events_processed

    cpus = os.cpu_count() or 1
    assert_4x = cpus >= 4 and JOBS >= 4
    report = {
        "sweep": {
            "schemes": list(SCHEMES),
            "seeds": list(SEEDS),
            "map_units": MAP_UNITS,
            "num_broadcasts": N_BROADCASTS,
            "runs": len(seq_results),
        },
        "jobs": JOBS,
        "cpu_count": cpus,
        "sequential_wall": seq_wall,
        "parallel_wall": par_wall,
        "speedup": speedup,
        "min_speedup_asserted": MIN_SPEEDUP if JOBS > 1 else None,
        "two_x_floor_asserted": assert_4x,
        "perf": par_runner.perf.as_dict(),
    }
    with open(OUT_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(
        f"\nparallel sweep: {len(seq_results)} runs, jobs={JOBS}, "
        f"sequential {seq_wall:.2f}s, parallel {par_wall:.2f}s, "
        f"speedup {speedup:.2f}x -> wrote {OUT_PATH}"
    )

    if JOBS > 1 and cpus > 1:
        assert speedup >= MIN_SPEEDUP, (
            f"speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor "
            f"(jobs={JOBS}, cpus={cpus})"
        )
    if assert_4x:
        assert speedup >= 2.0, (
            f"speedup {speedup:.2f}x below the 2x floor at jobs={JOBS} "
            f"on {cpus} CPUs"
        )


def test_warm_cache_skips_completed_runs(tmp_path):
    cold = ParallelRunner(max_workers=1, cache_dir=tmp_path)
    cold_wall = time.perf_counter()
    cold.run_many(sweep_configs())
    cold_wall = time.perf_counter() - cold_wall

    warm = ParallelRunner(max_workers=1, cache_dir=tmp_path)
    warm_wall = time.perf_counter()
    warm.run_many(sweep_configs())
    warm_wall = time.perf_counter() - warm_wall

    assert warm.perf.simulated == 0
    assert warm.perf.cache_hits == len(sweep_configs())
    assert warm_wall < cold_wall
