"""Fig. 10: adaptive location (AL) vs fixed location (A = 0.1871, 0.0469,
0.0134).

Paper reading: fixed thresholds lose RE significantly on sparse maps (the
larger the threshold, the worse); AL conquers the problem and keeps SRB.
Latency (10b): AL lowest on dense maps; on sparse maps slightly above
A = 0.1871 to maintain high RE.
"""

from conftest import run_once
from repro.experiments.figures import fig10

DENSE = 1
SPARSE = 9


def test_fig10_location_dilemma_and_resolution(benchmark, bench_grid):
    maps, n = bench_grid
    result = run_once(benchmark, fig10.run, maps=maps, num_broadcasts=n)
    print()
    print(result.table(metrics=("re", "srb", "latency")))

    # Fixed thresholds degrade on the sparse map, ordered by threshold.
    re_large = result.value_at("A=0.1871", SPARSE, "re")
    re_small = result.value_at("A=0.0134", SPARSE, "re")
    assert re_large < 0.9
    assert re_large <= re_small + 0.03  # bigger threshold, worse or equal

    # All fixed thresholds behave on the dense map.
    for name in ("A=0.1871", "A=0.0469", "A=0.0134"):
        assert result.value_at(name, DENSE, "re") > 0.95

    # AL keeps RE high on every map...
    for units in maps:
        assert result.value_at("AL", units, "re") > 0.9
    # ...and clearly beats the aggressive fixed threshold when sparse.
    assert result.value_at("AL", SPARSE, "re") > re_large + 0.05
    # ...without sacrificing the dense-map saving.
    assert (
        result.value_at("AL", DENSE, "srb")
        >= result.value_at("A=0.0134", DENSE, "srb") - 0.05
    )
