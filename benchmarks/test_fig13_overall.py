"""Fig. 13: overall comparison (RE vs SRB per map).

Paper reading: flooding has SRB = 0 always and suboptimal RE on dense maps
(collisions); all suppression schemes provide saving; adaptive schemes sit
toward the upper-right of the RE/SRB plane; the adaptive schemes' RE stays
around >= 95 % (we assert 0.9 with the reduced workload); NC leads on dense
maps, AC/AL on sparse maps; C = 2 / A = 0.1871 lose RE when sparse.
"""

from conftest import run_once
from repro.experiments.figures import fig13

DENSE = 1
SPARSE = 9
ADAPTIVE = ("AC", "AL", "NC-DHI")


def test_fig13_overall_comparison(benchmark, bench_grid):
    maps, n = bench_grid
    result = run_once(benchmark, fig13.run, maps=maps, num_broadcasts=n)
    print()
    print(result.table(metrics=("re", "srb")))

    # Flooding: SRB identically 0.
    for units in maps:
        assert result.value_at("flooding", units, "srb") == 0.0

    # Every suppression scheme saves something on the dense map.
    for label in ("C=2", "C=6", "AC", "A=0.1871", "A=0.0134", "AL", "NC-DHI"):
        assert result.value_at(label, DENSE, "srb") > 0.1, label

    # Adaptive schemes: high RE across the board.  NC-DHI gets a looser
    # sparse-map bound: with in-band lossy HELLOs its neighbor knowledge
    # degrades at 90 km/h, and even oracle knowledge caps near ~0.94
    # because NC assumes a heard transmission covered the sender's
    # neighbors, which hidden-terminal collisions violate (see the
    # nc-oracle ablation bench and EXPERIMENTS.md).
    for label in ("AC", "AL"):
        for units in maps:
            assert result.value_at(label, units, "re") > 0.9, (label, units)
    for units in maps:
        bound = 0.8 if units >= 7 else 0.9
        assert result.value_at("NC-DHI", units, "re") > bound, units

    # The fixed aggressive thresholds lose RE when sparse...
    assert result.value_at("C=2", SPARSE, "re") < 0.8
    assert result.value_at("A=0.1871", SPARSE, "re") < 0.9
    # ...and the adaptive counterparts clearly beat them there.
    assert (
        result.value_at("AC", SPARSE, "re")
        > result.value_at("C=2", SPARSE, "re") + 0.1
    )
    assert (
        result.value_at("AL", SPARSE, "re")
        > result.value_at("A=0.1871", SPARSE, "re") + 0.05
    )

    # Upper-right dominance on the dense map: each adaptive scheme beats
    # flooding on SRB without losing RE beyond a whisker.
    for label in ADAPTIVE:
        assert result.value_at(label, DENSE, "srb") > 0.3, label
        assert (
            result.value_at(label, DENSE, "re")
            >= result.value_at("flooding", DENSE, "re") - 0.05
        ), label
