"""Shared settings for the figure-reproduction benchmarks.

Every benchmark runs a reduced-but-faithful version of a paper figure:
fixed seeds, a subset of the map/speed grid and fewer broadcast requests
than the paper's 10,000 (RE/SRB/latency are per-broadcast means and
stabilize quickly).  Set ``REPRO_BENCH_FULL=1`` to run the paper's full
grids (slow).

Each test prints the regenerated series (run pytest with ``-s`` to see
them) and asserts the *qualitative* shape the paper reports -- who wins,
where the crossovers are -- not the absolute numbers, which depended on the
authors' C++ simulator internals.
"""

import os

import pytest

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: broadcasts per scenario in reduced mode
N_BROADCASTS = 120 if FULL else 30
SEED = 1

#: Host counts for the scale sweep (``test_scale.py``), smallest first.
#: ``REPRO_BENCH_HOSTS`` overrides as a comma-separated list -- CI smoke
#: uses ``REPRO_BENCH_HOSTS=500`` to bound wall time.
SCALE_HOSTS = tuple(
    int(tok)
    for tok in os.environ.get(
        "REPRO_BENCH_HOSTS", "100,250,500,1000,2000"
    ).split(",")
    if tok.strip()
)

#: Timing repetitions (best-of) for the throughput benchmarks.
BENCH_REPS = int(os.environ.get("REPRO_BENCH_REPS", "2") or "2")


@pytest.fixture
def bench_grid():
    """(maps, n_broadcasts) honoring REPRO_BENCH_FULL."""
    maps = (1, 3, 5, 7, 9, 11) if FULL else (1, 5, 9)
    return maps, N_BROADCASTS


@pytest.fixture
def scale_sweep():
    """(host_counts, reps) honoring REPRO_BENCH_HOSTS / REPRO_BENCH_REPS."""
    return SCALE_HOSTS, BENCH_REPS


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
