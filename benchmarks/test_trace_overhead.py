"""Tracing cost: a fully-traced run must stay within a small factor of an
untraced run.

Runs interleaved (untraced, traced) pairs of the microbench scenario in
process CPU time and asserts on the lower of two estimators: the
**median per-pair ratio** and the **ratio of per-arm minima**.  Each is
noise armour with a different hole -- a pair whose plain arm caught a
spike corrupts that pair's ratio (median discards it), while an unlucky
spread of spikes can still tilt the median itself (per-arm minima
ignore everything but the two cleanest runs).  Taking the lower bound
keeps the test honest for its actual job: a hot path doing traced work
outside the ``trace is not None`` guard shows up at +50% or more and
moves *both* estimators, while honest ~10% instrumentation cost plus
shared-machine noise flakes neither.  A measurement attempt that still
lands over the ceiling is retried (noise is transient; regressions are
not), and the best attempt is what the assertion sees.  The traced arm
is the worst realistic case -- every instrumentation site armed plus
the Δt sampler.

Env knobs:

- ``REPRO_TRACE_MAX_OVERHEAD`` -- allowed fractional slowdown (default
  0.15, i.e. traced may be at most 15% slower).  Set to 0 to record
  without asserting.
- ``REPRO_TRACE_REPS`` -- interleaved pairs per attempt (default 7;
  each pair is ~100ms).
- ``REPRO_TRACE_ATTEMPTS`` -- measurement attempts before the ceiling
  verdict is final (default 3).
"""

import os
import time

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_broadcast_simulation
from repro.trace import TraceRecorder

MAX_OVERHEAD = float(os.environ.get("REPRO_TRACE_MAX_OVERHEAD", "0.15"))
REPS = int(os.environ.get("REPRO_TRACE_REPS", "7") or "7")
ATTEMPTS = int(os.environ.get("REPRO_TRACE_ATTEMPTS", "3") or "3")


def config():
    # The microbench scenario (benchmarks/test_microbench.py's
    # end-to-end flooding run).
    return ScenarioConfig(
        scheme="flooding",
        map_units=3,
        num_hosts=50,
        num_broadcasts=10,
        seed=5,
    )


def timed(fn):
    start = time.process_time()
    out = fn()
    return time.process_time() - start, out


def measure(cfg):
    """One attempt: REPS interleaved pairs -> fractional overhead."""
    last_trace = None

    def traced_arm():
        nonlocal last_trace
        last_trace = TraceRecorder(sample_dt=0.5)
        return run_broadcast_simulation(cfg, trace=last_trace)

    plain_cpus, traced_cpus = [], []
    plain = traced = None
    for _ in range(max(1, REPS)):
        plain_cpu, plain = timed(lambda: run_broadcast_simulation(cfg))
        traced_cpu, traced = timed(traced_arm)
        plain_cpus.append(plain_cpu)
        traced_cpus.append(traced_cpu)

    # The traced run must be the same simulation...
    assert traced.stats == plain.stats
    assert len(last_trace) > 0

    ratios = sorted(t / p for t, p in zip(traced_cpus, plain_cpus))
    median = ratios[len(ratios) // 2]
    best_of = min(traced_cpus) / min(plain_cpus)
    overhead = min(median, best_of) - 1.0
    print(
        f"\ntrace overhead: {overhead:+.1%} "
        f"(median pair ratio {median - 1:+.1%}, ratio of minima "
        f"{best_of - 1:+.1%}; {len(ratios)} interleaved CPU-time pairs: "
        + ", ".join(f"{r - 1:+.1%}" for r in ratios)
        + ")"
    )
    return overhead


def test_tracing_overhead_is_bounded():
    cfg = config()

    # Warm both paths once (imports, allocator) before timing.
    run_broadcast_simulation(cfg)
    run_broadcast_simulation(cfg, trace=TraceRecorder(sample_dt=0.5))

    overhead = float("inf")
    for attempt in range(max(1, ATTEMPTS)):
        overhead = min(overhead, measure(cfg))
        if MAX_OVERHEAD <= 0 or overhead <= MAX_OVERHEAD:
            break
        print(f"over ceiling on attempt {attempt + 1}; remeasuring")

    if MAX_OVERHEAD > 0:
        assert overhead <= MAX_OVERHEAD, (
            f"tracing slows the kernel by {overhead:+.1%} "
            f"(ceiling {MAX_OVERHEAD:.0%}, best of {ATTEMPTS} attempts); "
            "a hot path is probably doing work while tracing is on that "
            "belongs behind the 'trace is not None' guard"
        )
