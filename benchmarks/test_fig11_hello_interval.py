"""Fig. 11: neighbor-coverage RE vs hello interval and host speed.

Paper reading: on sparse maps a long hello interval significantly degrades
RE, especially at high mobility; on small maps mobility has little impact
(hosts cannot roam far from the source).
"""

import os

from conftest import run_once
from repro.experiments.figures import fig11

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"
MAPS = (5, 9) if not FULL else (5, 7, 9, 11)
SPEEDS = (20.0, 80.0) if not FULL else (20.0, 40.0, 60.0, 80.0)
INTERVALS = (1.0, 10.0, 30.0) if not FULL else (1.0, 5.0, 10.0, 20.0, 30.0)


def test_fig11_hello_interval_vs_speed(benchmark):
    panels = run_once(
        benchmark,
        fig11.run,
        maps=MAPS,
        speeds=SPEEDS,
        hello_intervals=INTERVALS,
        num_broadcasts=30,
    )
    print()
    for units, panel in panels.items():
        print(panel.table(metrics=("re", "srb")))
        print()

    sparse = panels[9]
    fast = SPEEDS[-1]
    slow = SPEEDS[0]
    # Long hello interval degrades RE at high speed on the sparse map.
    assert (
        sparse.value_at("hello=30s", fast, "re")
        < sparse.value_at("hello=1s", fast, "re") - 0.05
    )
    # The degradation is worse at high speed than at low speed.
    drop_fast = (
        sparse.value_at("hello=1s", fast, "re")
        - sparse.value_at("hello=30s", fast, "re")
    )
    drop_slow = (
        sparse.value_at("hello=1s", slow, "re")
        - sparse.value_at("hello=30s", slow, "re")
    )
    assert drop_fast >= drop_slow - 0.05
    # Fresh hellos keep RE reasonable everywhere.
    for units, panel in panels.items():
        for speed in SPEEDS:
            assert panel.value_at("hello=1s", speed, "re") > 0.8, (units, speed)
