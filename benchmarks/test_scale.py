"""Scale sweep: events/sec by host count, scalar vs vector kernel.

Runs the fig. 13-style dense scenario (everyone in one unit square,
blind flooding) at growing host counts under both kernels and emits
``BENCH_scale.json`` with the measured throughput curve.  The broadcast
count shrinks as the host count grows so every point stays a few
seconds of kernel work; events/sec is the honest cross-size metric.

Two guards before any throughput claim:

- **bit-identity** -- at every size the two kernels must process exactly
  the same number of scheduler events (the vector kernel replays the
  scalar simulation, it does not approximate it);
- **speedup floor** -- at ``ASSERT_AT`` hosts and above, the vector
  kernel must beat the scalar kernel by ``REPRO_SCALE_MIN_SPEEDUP``
  (default 3.0; set 0 to record without asserting).

The sweep also times the batch driver
(:func:`repro.experiments.runner.run_broadcast_batch`) at the largest
size: many seeds, one process, shared numpy allocations.

Env knobs (see ``conftest.py`` for the first two):

- ``REPRO_BENCH_HOSTS`` -- comma-separated host counts
  (default ``100,250,500,1000,2000``).
- ``REPRO_BENCH_REPS`` -- timing repetitions, best-of (default 2).
- ``REPRO_SCALE_MIN_SPEEDUP`` -- vector/scalar floor (default 3.0).
- ``REPRO_SCALE_OUT`` -- output path (default ``BENCH_scale.json``).
"""

import json
import os
import platform
import time

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import (
    run_broadcast_batch,
    run_broadcast_simulation,
)
from repro.kernel import vector_supported

MIN_SPEEDUP = float(os.environ.get("REPRO_SCALE_MIN_SPEEDUP", "3.0"))
OUT_PATH = os.environ.get("REPRO_SCALE_OUT", "BENCH_scale.json")

#: Host count at (and above) which the speedup floor is asserted; smaller
#: sizes are recorded for the curve but carry too little per-scan work
#: for the vectorization win to be stable across machines.
ASSERT_AT = 1000

#: Seeds for the batch-mode measurement at the largest size.
BATCH_SEEDS = (1, 2, 3)


def dense_config(num_hosts: int) -> ScenarioConfig:
    """Dense map-1 flooding, broadcasts scaled down with host count."""
    return ScenarioConfig(
        scheme="flooding",
        map_units=1,
        num_hosts=num_hosts,
        num_broadcasts=max(2, 3000 // num_hosts),
        seed=1,
    )


def _best_run(config: ScenarioConfig, kernel: str, reps: int):
    """Best-of-``reps`` wall time; returns (events_processed, wall)."""
    best_wall = float("inf")
    events = None
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        result = run_broadcast_simulation(config, kernel=kernel)
        wall = time.perf_counter() - start
        if wall < best_wall:
            best_wall = wall
            events = result.events_processed
    return events, best_wall


@pytest.mark.skipif(not vector_supported(), reason="numpy unavailable")
def test_scale_sweep_and_bench_json(scale_sweep):
    sizes, reps = scale_sweep
    rows = []
    for num_hosts in sizes:
        config = dense_config(num_hosts)
        scalar_events, scalar_wall = _best_run(config, "scalar", reps)
        vector_events, vector_wall = _best_run(config, "vector", reps)

        # Bit-identity guard before any throughput claim.
        assert vector_events == scalar_events, (
            f"{num_hosts} hosts: vector kernel processed {vector_events} "
            f"events, scalar {scalar_events}: the kernels diverged"
        )

        scalar_eps = scalar_events / scalar_wall
        vector_eps = vector_events / vector_wall
        speedup = vector_eps / scalar_eps
        rows.append({
            "num_hosts": num_hosts,
            "num_broadcasts": config.num_broadcasts,
            "events_processed": scalar_events,
            "scalar_wall": scalar_wall,
            "vector_wall": vector_wall,
            "scalar_events_per_sec": scalar_eps,
            "vector_events_per_sec": vector_eps,
            "speedup": speedup,
        })
        print(
            f"\n{num_hosts:>5} hosts: scalar {scalar_eps:>10,.0f} eps, "
            f"vector {vector_eps:>10,.0f} eps ({speedup:.2f}x, "
            f"{scalar_events} events)"
        )

    # Batch mode at the largest size: per-seed eps with shared buffers.
    largest = dense_config(sizes[-1])
    start = time.perf_counter()
    batch = run_broadcast_batch(largest, list(BATCH_SEEDS), kernel="vector")
    batch_wall = time.perf_counter() - start
    batch_events = sum(r.events_processed for r in batch)
    batch_eps = batch_events / batch_wall
    print(
        f"batch x{len(BATCH_SEEDS)} @ {sizes[-1]} hosts: "
        f"{batch_events} events in {batch_wall:.3f}s = {batch_eps:,.0f} eps"
    )

    report = {
        "scenario": {
            "scheme": "flooding",
            "map_units": 1,
            "seed": 1,
            "broadcasts": "max(2, 3000 // num_hosts)",
        },
        "reps": reps,
        "sweep": rows,
        "batch": {
            "num_hosts": sizes[-1],
            "seeds": list(BATCH_SEEDS),
            "events_processed": batch_events,
            "wall": batch_wall,
            "events_per_sec": batch_eps,
        },
        "min_speedup_asserted": MIN_SPEEDUP if MIN_SPEEDUP > 0 else None,
        "assert_at_hosts": ASSERT_AT,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
    }
    with open(OUT_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"wrote {OUT_PATH}")

    if MIN_SPEEDUP > 0:
        for row in rows:
            if row["num_hosts"] < ASSERT_AT:
                continue
            assert row["speedup"] >= MIN_SPEEDUP, (
                f"{row['num_hosts']} hosts: vector kernel is only "
                f"{row['speedup']:.2f}x of scalar (floor {MIN_SPEEDUP}x); "
                f"rerun on a quiet machine or lower REPRO_SCALE_MIN_SPEEDUP"
            )
