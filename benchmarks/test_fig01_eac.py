"""Fig. 1: expected additional coverage EAC(k).

Paper series: EAC(1) ~ 0.41, decreasing, < 5% for k >= 4.  Also checks the
text's closed-form quotes (0.61 max, 0.41 mean, 59% contention).
"""

import pytest

from repro.analysis.integrals import (
    expected_contention_probability,
    max_additional_coverage_fraction,
    mean_additional_coverage_fraction,
)
from repro.experiments.figures import fig01

from conftest import run_once


def test_fig1_eac_series(benchmark):
    series = run_once(benchmark, fig01.run, max_k=10, trials=2000, seed=0)
    print()
    print(fig01.format_table(series))

    # EAC(1) ~ 0.41 (the mean additional coverage).
    assert series[1] == pytest.approx(fig01.PAPER_EAC1, abs=0.02)
    # EAC(2) ~ 0.187 (the A(n) plateau constant).
    assert series[2] == pytest.approx(0.187, abs=0.02)
    # Monotone decreasing.
    values = [series[k] for k in sorted(series)]
    assert all(a > b for a, b in zip(values, values[1:]))
    # Below 5% from k = 4 on.
    for k in range(fig01.PAPER_TAIL_K, 11):
        assert series[k] < fig01.PAPER_TAIL_BOUND


def test_section_2_2_closed_forms(benchmark):
    def closed_forms():
        return (
            max_additional_coverage_fraction(),
            mean_additional_coverage_fraction(),
            expected_contention_probability(),
        )

    max_frac, mean_frac, contention = run_once(benchmark, closed_forms)
    print(f"\nmax additional coverage  {max_frac:.4f} (paper ~0.61)")
    print(f"mean additional coverage {mean_frac:.4f} (paper ~0.41)")
    print(f"expected contention      {contention:.4f} (paper ~0.59)")
    assert max_frac == pytest.approx(0.609, abs=0.002)
    assert mean_frac == pytest.approx(0.41, abs=0.005)
    assert contention == pytest.approx(0.59, abs=0.005)
