"""MobileHost behaviour: dispatch, hello protocol, rebroadcast bookkeeping."""

import pytest

from repro.experiments.topologies import build_static_network, line_positions
from repro.net.host import HelloConfig
from repro.schemes import CounterScheme, FloodingScheme, NeighborCoverageScheme
from repro.sim.engine import Scheduler


def test_hello_disabled_for_flooding_by_default():
    scheduler = Scheduler()
    network, metrics = build_static_network(
        scheduler, line_positions(3, 400.0), FloodingScheme
    )
    network.start()
    scheduler.run(until=10.0)
    assert metrics.hello_packets_sent == 0


def test_hello_enabled_when_scheme_needs_it():
    scheduler = Scheduler()
    network, metrics = build_static_network(
        scheduler, line_positions(3, 400.0), NeighborCoverageScheme,
        hello_config=HelloConfig(interval=1.0),
    )
    network.start()
    scheduler.run(until=10.5)
    # Each host sends its first hello within [0, 1) then every 1 s:
    # at least 10 each over 10.5 s.
    assert metrics.hello_packets_sent >= 30
    for host_id in range(3):
        assert metrics.hello_counts_by_host[host_id] >= 10


def test_hello_can_be_force_enabled():
    scheduler = Scheduler()
    network, metrics = build_static_network(
        scheduler, line_positions(2, 400.0), FloodingScheme,
        hello_config=HelloConfig(enabled=True, interval=1.0),
    )
    network.start()
    scheduler.run(until=5.0)
    assert metrics.hello_packets_sent > 0


def test_neighbor_tables_populated_by_hellos():
    scheduler = Scheduler()
    network, _ = build_static_network(
        scheduler, line_positions(3, 400.0), NeighborCoverageScheme,
        hello_config=HelloConfig(interval=1.0),
    )
    network.start()
    scheduler.run(until=5.0)
    middle = network.hosts[1]
    assert middle.neighbor_table.neighbor_ids(now=5.0) == {0, 2}
    end = network.hosts[0]
    assert end.neighbor_table.neighbor_ids(now=5.0) == {1}


def test_two_hop_knowledge_piggybacked():
    scheduler = Scheduler()
    network, _ = build_static_network(
        scheduler, line_positions(3, 400.0), NeighborCoverageScheme,
        hello_config=HelloConfig(interval=1.0),
    )
    network.start()
    scheduler.run(until=5.0)
    # Host 0 knows N_{0,1} (what host 1 announced): {0, 2}.
    assert network.hosts[0].neighbor_table.two_hop_neighbors(1) == {0, 2}


def test_host_rebroadcasts_at_most_once():
    scheduler = Scheduler()
    network, metrics = build_static_network(
        scheduler, line_positions(3, 400.0), FloodingScheme
    )
    network.start()
    scheduler.schedule_at(1.0, network.initiate_broadcast, 0)
    scheduler.run(until=5.0)
    for host in network.hosts:
        assert host.mac.stats.frames_sent <= 1


def test_duplicate_receptions_do_not_recount():
    """Host 1 hears the packet from 0 and again from 2; r counts it once."""
    scheduler = Scheduler()
    network, metrics = build_static_network(
        scheduler, line_positions(3, 400.0), FloodingScheme
    )
    network.start()
    scheduler.schedule_at(1.0, network.initiate_broadcast, 0)
    scheduler.run(until=5.0)
    record = next(iter(metrics.records.values()))
    assert record.received_count == 2  # hosts 1 and 2, each once


def test_oracle_neighbor_count():
    scheduler = Scheduler()
    network, _ = build_static_network(
        scheduler, line_positions(3, 400.0), CounterScheme,
        oracle_neighbors=True,
    )
    assert network.hosts[0].neighbor_count() == 1
    assert network.hosts[1].neighbor_count() == 2


def test_hello_derived_neighbor_count_without_hellos_is_zero():
    scheduler = Scheduler()
    network, _ = build_static_network(
        scheduler, line_positions(3, 400.0), CounterScheme
    )
    assert network.hosts[1].neighbor_count() == 0


def test_dynamic_hello_interval_announced():
    scheduler = Scheduler()
    network, _ = build_static_network(
        scheduler, line_positions(2, 400.0), NeighborCoverageScheme,
        hello_config=HelloConfig(dynamic=True, hi_min=1.0, hi_max=10.0),
    )
    network.start()
    scheduler.run(until=15.0)
    # Neighbors heard each other; the announced interval is recorded.
    table = network.hosts[0].neighbor_table
    entry = table._entries[1]
    assert 1.0 <= entry.announced_interval <= 10.0


def test_static_hosts_send_few_dynamic_hellos():
    """A motionless pair has zero variation -> interval converges to
    hi_max, so far fewer hellos than the fixed 1 s interval would send."""
    scheduler = Scheduler()
    network, metrics = build_static_network(
        scheduler, line_positions(2, 400.0), NeighborCoverageScheme,
        hello_config=HelloConfig(dynamic=True, hi_min=1.0, hi_max=10.0),
    )
    network.start()
    scheduler.run(until=100.0)
    # Fixed 1 s would send ~200; converged DHI sends ~10 per host plus the
    # initial ramp while tables warm up.
    assert metrics.hello_packets_sent < 60
