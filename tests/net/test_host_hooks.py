"""Host extension hooks: packet observers and the unicast handler."""

import pytest

from repro.experiments.topologies import build_static_network, line_positions
from repro.schemes import FloodingScheme
from repro.sim.engine import Scheduler


def test_packet_observers_called_once_per_packet():
    scheduler = Scheduler()
    network, metrics = build_static_network(
        scheduler, line_positions(3, 400.0), FloodingScheme
    )
    seen = []
    network.hosts[1].packet_observers.append(
        lambda packet, sender: seen.append((packet.key, sender))
    )
    network.start()
    scheduler.schedule_at(1.0, network.initiate_broadcast, 0)
    scheduler.run(until=5.0)
    # Host 1 hears the original copy once (duplicates don't re-trigger).
    assert seen == [((0, 1), 0)]


def test_observer_runs_before_scheme_decision():
    """Observers see the packet before the scheme may suppress it."""
    scheduler = Scheduler()
    network, _ = build_static_network(
        scheduler, line_positions(2, 400.0), FloodingScheme
    )
    order = []
    host = network.hosts[1]
    host.packet_observers.append(lambda p, s: order.append("observer"))
    original = host.scheme.on_first_hear

    def wrapped(packet, sender, pos):
        order.append("scheme")
        return original(packet, sender, pos)

    host.scheme.on_first_hear = wrapped
    network.start()
    scheduler.schedule_at(1.0, network.initiate_broadcast, 0)
    scheduler.run(until=3.0)
    assert order == ["observer", "scheme"]


def test_unhandled_unicast_payload_raises():
    scheduler = Scheduler()
    network, _ = build_static_network(
        scheduler, line_positions(2, 400.0), FloodingScheme
    )
    network.start()
    scheduler.schedule_at(
        1.0, network.hosts[0].mac.send_unicast, "mystery", 50, 1
    )
    with pytest.raises(TypeError, match="unknown frame"):
        scheduler.run(until=3.0)


def test_unicast_handler_receives_payloads():
    scheduler = Scheduler()
    network, _ = build_static_network(
        scheduler, line_positions(2, 400.0), FloodingScheme
    )
    got = []
    network.hosts[1].unicast_handler = lambda frame, sender: got.append(
        (frame, sender)
    )
    network.start()
    scheduler.schedule_at(
        1.0, network.hosts[0].mac.send_unicast, "direct", 50, 1
    )
    scheduler.run(until=3.0)
    assert got == [("direct", 0)]


def test_multiple_observers_all_called():
    scheduler = Scheduler()
    network, _ = build_static_network(
        scheduler, line_positions(2, 400.0), FloodingScheme
    )
    calls = []
    host = network.hosts[1]
    host.packet_observers.append(lambda p, s: calls.append("a"))
    host.packet_observers.append(lambda p, s: calls.append("b"))
    network.start()
    scheduler.schedule_at(1.0, network.initiate_broadcast, 0)
    scheduler.run(until=3.0)
    assert calls == ["a", "b"]
