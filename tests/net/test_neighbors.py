"""Neighbor tables, two-hop knowledge, variation and the DHI formula."""

import pytest

from repro.net.neighbors import NeighborTable, dynamic_hello_interval
from repro.net.packets import HelloPacket


def hello(sender, neighbors=None, interval=None):
    return HelloPacket(
        sender_id=sender,
        neighbor_ids=frozenset(neighbors) if neighbors is not None else None,
        hello_interval=interval,
    )


class TestNeighborTable:
    def test_hello_enlists_neighbor(self):
        table = NeighborTable(default_interval=1.0)
        table.update_from_hello(hello(5), now=10.0)
        assert table.neighbor_ids() == {5}
        assert table.knows(5)
        assert table.neighbor_count() == 1

    def test_two_interval_timeout(self):
        """'If no HELLO has been received ... for the past two hello
        intervals, host x deletes h'."""
        table = NeighborTable(default_interval=1.0)
        table.update_from_hello(hello(5), now=10.0)
        assert table.neighbor_ids(now=11.9) == {5}
        assert table.neighbor_ids(now=12.1) == set()

    def test_refresh_extends_lifetime(self):
        table = NeighborTable(default_interval=1.0)
        table.update_from_hello(hello(5), now=10.0)
        table.update_from_hello(hello(5), now=11.5)
        assert table.neighbor_ids(now=13.0) == {5}

    def test_announced_interval_governs_timeout(self):
        """DHI: the timeout uses the *sender's* announced interval."""
        table = NeighborTable(default_interval=1.0)
        table.update_from_hello(hello(5, interval=10.0), now=0.0)
        assert table.neighbor_ids(now=15.0) == {5}  # 15 < 2 * 10
        assert table.neighbor_ids(now=21.0) == set()

    def test_two_hop_sets_stored(self):
        table = NeighborTable(default_interval=1.0)
        table.update_from_hello(hello(5, neighbors={7, 8}), now=0.0)
        assert table.two_hop_neighbors(5) == frozenset({7, 8})
        assert table.two_hop_neighbors(99) == frozenset()

    def test_two_hop_set_updates(self):
        table = NeighborTable(default_interval=1.0)
        table.update_from_hello(hello(5, neighbors={7}), now=0.0)
        table.update_from_hello(hello(5, neighbors={8, 9}), now=0.5)
        assert table.two_hop_neighbors(5) == frozenset({8, 9})

    def test_hello_without_neighbors_preserves_known_set(self):
        table = NeighborTable(default_interval=1.0)
        table.update_from_hello(hello(5, neighbors={7}), now=0.0)
        table.update_from_hello(hello(5), now=0.5)
        assert table.two_hop_neighbors(5) == frozenset({7})

    def test_purge_returns_dropped(self):
        table = NeighborTable(default_interval=1.0)
        table.update_from_hello(hello(5), now=0.0)
        table.update_from_hello(hello(6), now=2.0)
        dropped = table.purge(now=3.0)
        assert dropped == {5}
        assert table.neighbor_ids() == {6}

    def test_variation_counts_joins_and_leaves(self):
        table = NeighborTable(default_interval=1.0, variation_window=10.0)
        table.update_from_hello(hello(5), now=100.0)  # join
        table.update_from_hello(hello(6), now=100.5)  # join
        table.update_from_hello(hello(6), now=102.0)  # refresh, not a change
        # At 103, host 5 not refreshed -> leaves (3 events in window).
        nv = table.variation(now=103.0)
        # one neighbor (6) remains: nv = 3 / (1 * 10)
        assert nv == pytest.approx(0.3)

    def test_variation_zero_for_stable_neighborhood(self):
        table = NeighborTable(default_interval=1.0, variation_window=10.0)
        table.update_from_hello(hello(5), now=0.0)
        for t in range(1, 30):
            table.update_from_hello(hello(5), now=float(t))
        # The join at t=0 has left the 10 s window by t=29.
        assert table.variation(now=29.0) == 0.0

    def test_variation_defined_for_isolated_host(self):
        table = NeighborTable(default_interval=1.0)
        assert table.variation(now=50.0) == 0.0

    def test_old_changes_pruned_from_window(self):
        table = NeighborTable(default_interval=1.0, variation_window=10.0)
        table.update_from_hello(hello(5), now=0.0)
        table.update_from_hello(hello(5), now=5.0)
        table.update_from_hello(hello(5), now=11.0)
        assert table.variation(now=11.0) == 0.0  # join at t=0 outside window

    def test_validation(self):
        with pytest.raises(ValueError):
            NeighborTable(default_interval=0.0)
        with pytest.raises(ValueError):
            NeighborTable(default_interval=1.0, timeout_multiplier=0.0)


class TestDynamicHelloInterval:
    def test_zero_variation_gives_max_interval(self):
        assert dynamic_hello_interval(0.0) == 10.0

    def test_max_variation_gives_min_interval(self):
        assert dynamic_hello_interval(0.02) == 1.0

    def test_above_max_variation_clamped(self):
        assert dynamic_hello_interval(0.5) == 1.0

    def test_linear_in_between(self):
        # nv = nv_max / 2 -> hi = hi_max / 2 = 5 (above hi_min).
        assert dynamic_hello_interval(0.01) == pytest.approx(5.0)

    def test_paper_formula_shape(self):
        """hi = max(hi_min, (nv_max - nv)/nv_max * hi_max)."""
        for nv in (0.0, 0.005, 0.01, 0.015, 0.02):
            expected = max(1.0, (0.02 - nv) / 0.02 * 10.0)
            assert dynamic_hello_interval(nv) == pytest.approx(expected)

    def test_custom_bounds(self):
        assert dynamic_hello_interval(0.0, hi_min=2.0, hi_max=20.0) == 20.0
        assert dynamic_hello_interval(1.0, hi_min=2.0, hi_max=20.0) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            dynamic_hello_interval(0.0, nv_max=0.0)
        with pytest.raises(ValueError):
            dynamic_hello_interval(0.0, hi_min=5.0, hi_max=1.0)
