"""Packet types and relaying."""

from repro.net.packets import BroadcastPacket, HelloPacket


def make_packet(**overrides):
    defaults = dict(
        source_id=1, seq=7, origin_time=2.5, tx_id=1,
        tx_position=(100.0, 200.0), hops=0, size_bytes=280,
    )
    defaults.update(overrides)
    return BroadcastPacket(**defaults)


def test_key_is_source_and_seq():
    assert make_packet().key == (1, 7)


def test_relayed_copy_keeps_identity():
    packet = make_packet()
    relayed = packet.relayed_by(9, (300.0, 400.0))
    assert relayed.key == packet.key
    assert relayed.source_id == 1
    assert relayed.seq == 7
    assert relayed.origin_time == 2.5
    assert relayed.size_bytes == 280


def test_relayed_copy_updates_transmitter():
    relayed = make_packet().relayed_by(9, (300.0, 400.0))
    assert relayed.tx_id == 9
    assert relayed.tx_position == (300.0, 400.0)
    assert relayed.hops == 1


def test_relaying_twice_increments_hops():
    relayed = make_packet().relayed_by(9, None).relayed_by(4, None)
    assert relayed.hops == 2
    assert relayed.tx_position is None


def test_original_packet_unchanged_by_relay():
    packet = make_packet()
    packet.relayed_by(9, (0.0, 0.0))
    assert packet.tx_id == 1
    assert packet.hops == 0


def test_hello_base_size():
    assert HelloPacket(sender_id=1).size_bytes == 20


def test_hello_size_grows_with_neighbor_list():
    hello = HelloPacket(sender_id=1, neighbor_ids=frozenset({2, 3, 4}))
    assert hello.size_bytes == 20 + 3 * 4


def test_hello_empty_neighbor_list_costs_nothing_extra():
    hello = HelloPacket(sender_id=1, neighbor_ids=frozenset())
    assert hello.size_bytes == 20


def test_hello_carries_announced_interval():
    hello = HelloPacket(sender_id=1, hello_interval=2.5)
    assert hello.hello_interval == 2.5
    assert HelloPacket(sender_id=1).hello_interval is None


def test_packets_hashable_and_frozen():
    packet = make_packet()
    assert hash(packet) == hash(make_packet())
    hello = HelloPacket(sender_id=1)
    assert hash(hello) == hash(HelloPacket(sender_id=1))
