"""Duplicate-broadcast cache."""

import pytest

from repro.net.dupcache import DuplicateCache


def test_new_key_added():
    cache = DuplicateCache()
    assert cache.add((1, 1)) is True
    assert (1, 1) in cache


def test_duplicate_detected():
    cache = DuplicateCache()
    cache.add((1, 1))
    assert cache.add((1, 1)) is False


def test_distinct_sources_distinct_keys():
    cache = DuplicateCache()
    assert cache.add((1, 5))
    assert cache.add((2, 5))
    assert cache.add((1, 6))
    assert len(cache) == 3


def test_check_and_add_alias():
    cache = DuplicateCache()
    assert cache.check_and_add("k") is True
    assert cache.check_and_add("k") is False


def test_capacity_evicts_oldest():
    cache = DuplicateCache(capacity=2)
    cache.add("a")
    cache.add("b")
    cache.add("c")
    assert "a" not in cache
    assert "b" in cache and "c" in cache
    assert len(cache) == 2


def test_unbounded_by_default():
    cache = DuplicateCache()
    for i in range(10000):
        cache.add(i)
    assert len(cache) == 10000


def test_clear():
    cache = DuplicateCache()
    cache.add("x")
    cache.clear()
    assert "x" not in cache
    assert len(cache) == 0


def test_invalid_capacity():
    with pytest.raises(ValueError):
        DuplicateCache(capacity=0)
