"""Network construction, connectivity snapshots and broadcast initiation."""

import pytest

from repro.experiments.topologies import (
    build_static_network,
    line_positions,
    two_clusters_positions,
)
from repro.metrics.collector import MetricsCollector
from repro.mobility.map import RectMap
from repro.net.network import Network
from repro.phy.params import PhyParams
from repro.schemes import FloodingScheme
from repro.sim.engine import Scheduler
from repro.sim.randomness import RandomStreams


def test_positions_snapshot():
    scheduler = Scheduler()
    network, _ = build_static_network(
        scheduler, line_positions(3, 400.0), FloodingScheme
    )
    positions = network.positions()
    assert set(positions) == {0, 1, 2}
    # Line spacing preserved (after the margin shift).
    assert positions[1][0] - positions[0][0] == pytest.approx(400.0)


def test_reachable_from_line():
    scheduler = Scheduler()
    network, _ = build_static_network(
        scheduler, line_positions(4, 400.0), FloodingScheme
    )
    assert network.reachable_from(0) == {1, 2, 3}
    assert network.reachable_from(2) == {0, 1, 3}


def test_reachable_from_partitioned():
    scheduler = Scheduler()
    positions = two_clusters_positions(3, 100.0, gap=5000.0)
    network, _ = build_static_network(scheduler, positions, FloodingScheme)
    assert network.reachable_from(0) == {1, 2}
    assert network.reachable_from(3) == {4, 5}


def test_initiate_records_reachable_count():
    scheduler = Scheduler()
    network, metrics = build_static_network(
        scheduler, line_positions(4, 400.0), FloodingScheme
    )
    network.start()
    scheduler.schedule_at(1.0, network.initiate_broadcast, 0)
    scheduler.run(until=3.0)
    record = next(iter(metrics.records.values()))
    assert record.reachable_count == 3
    assert record.source_id == 0
    assert record.origin_time == 1.0


def test_sequence_numbers_unique_across_sources():
    scheduler = Scheduler()
    network, metrics = build_static_network(
        scheduler, line_positions(3, 400.0), FloodingScheme
    )
    network.start()
    scheduler.schedule_at(1.0, network.initiate_broadcast, 0)
    scheduler.schedule_at(2.0, network.initiate_broadcast, 1)
    scheduler.schedule_at(3.0, network.initiate_broadcast, 0)
    scheduler.run(until=5.0)
    assert len(metrics.records) == 3
    assert len({key for key in metrics.records}) == 3


def test_invalid_source_rejected():
    scheduler = Scheduler()
    network, _ = build_static_network(
        scheduler, line_positions(2, 400.0), FloodingScheme
    )
    with pytest.raises(ValueError):
        network.initiate_broadcast(7)


def test_each_host_gets_its_own_scheme_instance():
    scheduler = Scheduler()
    network, _ = build_static_network(
        scheduler, line_positions(3, 400.0), FloodingScheme
    )
    schemes = [host.scheme for host in network.hosts]
    assert len({id(s) for s in schemes}) == 3


def test_zero_hosts_rejected():
    scheduler = Scheduler()
    with pytest.raises(ValueError):
        Network(
            scheduler=scheduler,
            params=PhyParams(),
            world=RectMap(100, 100),
            streams=RandomStreams(0),
            num_hosts=0,
            scheme_factory=FloodingScheme,
            metrics=MetricsCollector(),
            max_speed_kmh=0.0,
        )


def test_same_seed_reproduces_mobility():
    def build(seed):
        scheduler = Scheduler()
        network = Network(
            scheduler=scheduler,
            params=PhyParams(),
            world=RectMap(2000, 2000),
            streams=RandomStreams(seed),
            num_hosts=10,
            scheme_factory=FloodingScheme,
            metrics=MetricsCollector(),
            max_speed_kmh=30.0,
        )
        scheduler.run(until=100.0)
        return network.positions()

    assert build(5) == build(5)
    assert build(5) != build(6)
