"""Host crash/recover round-trips must leave no stale state behind."""

import pytest

from repro.experiments.topologies import build_static_network, line_positions
from repro.net.host import HelloConfig
from repro.phy.params import PhyParams
from repro.schemes.counter import CounterScheme
from repro.schemes.flooding import FloodingScheme
from repro.sim.engine import Scheduler


def make_network(n=3, scheme=FloodingScheme, hello=True, spacing=80.0):
    # spacing 80 with radius 100: only adjacent hosts hear each other, so
    # the middle host is the sole bridge on a 3-host line.
    scheduler = Scheduler()
    network, metrics = build_static_network(
        scheduler,
        line_positions(n, spacing),
        scheme,
        params=PhyParams(radio_radius=100.0),
        hello_config=HelloConfig(enabled=hello, interval=0.5),
    )
    network.start()
    return scheduler, network, metrics


def assert_cold(host, channel):
    """Everything a crash must wipe, per the acceptance criteria."""
    assert not host.alive
    assert host.mac.is_shut_down
    assert host.mac.queue_length == 0
    assert not host.mac.is_transmitting
    assert host.host_id not in channel.attached_ids
    assert host.neighbor_table.neighbor_count() == 0
    assert len(host.dup_cache) == 0
    assert host.scheme.pending_count() == 0
    assert host._hello_event is None


def test_crash_wipes_all_volatile_state():
    scheduler, network, _ = make_network()
    # Let hellos populate tables and run one broadcast so the dup cache,
    # MAC queue and scheme pending sets all have content to lose.
    scheduler.run(until=2.0)
    host = network.hosts[1]
    assert host.neighbor_table.neighbor_count() == 2
    network.initiate_broadcast(0)
    # Crash host 1 a hair after the source's frame reaches it (mid-decision).
    scheduler.run(until=scheduler.now + 0.004)
    network.crash_host(1)
    assert_cold(host, network.channel)
    # The rest of the simulation must proceed without errors.
    scheduler.run(until=scheduler.now + 2.0)
    assert not host.alive


def test_crash_while_transmitting_aborts_cleanly():
    scheduler, network, _ = make_network(hello=False)
    scheduler.run(until=1.0)
    network.initiate_broadcast(1)
    # Advance into host 1's own transmission, then kill it.
    deadline = scheduler.now + 1.0
    while not network.hosts[1].mac.is_transmitting and scheduler.now < deadline:
        scheduler.step()
    assert network.hosts[1].mac.is_transmitting
    network.crash_host(1)
    assert network.channel.stats.aborted_frames == 1
    assert_cold(network.hosts[1], network.channel)
    scheduler.run(until=scheduler.now + 1.0)
    # Neither neighbor decoded the truncated frame.
    assert len(network.hosts[0].dup_cache) == 0
    assert len(network.hosts[2].dup_cache) == 0


def test_recover_round_trip_restores_function():
    scheduler, network, metrics = make_network()
    scheduler.run(until=2.0)
    network.crash_host(1)
    scheduler.run(until=4.0)
    network.recover_host(1)
    host = network.hosts[1]
    assert host.alive
    assert not host.mac.is_shut_down
    assert 1 in network.channel.attached_ids
    # Cold tables right after recovery...
    assert host.neighbor_table.neighbor_count() == 0
    # ...relearned after a couple of hello intervals.
    scheduler.run(until=6.0)
    assert host.neighbor_table.neighbor_count() == 2
    # And the host relays broadcasts again: 0 -> 1 -> 2 on a line.
    network.initiate_broadcast(0)
    scheduler.run(until=scheduler.now + 1.0)
    record = list(metrics.records.values())[-1]
    assert set(record.received_times) == {1, 2}


def test_crash_recover_cycle_is_repeatable():
    scheduler, network, _ = make_network()
    for _ in range(3):
        scheduler.run(until=scheduler.now + 1.0)
        network.crash_host(1)
        scheduler.run(until=scheduler.now + 1.0)
        network.recover_host(1)
    scheduler.run(until=scheduler.now + 2.0)
    assert network.hosts[1].neighbor_table.neighbor_count() == 2


def test_double_crash_and_double_recover_raise():
    scheduler, network, _ = make_network()
    network.crash_host(1)
    with pytest.raises(ValueError, match="already crashed"):
        network.crash_host(1)
    network.recover_host(1)
    with pytest.raises(ValueError, match="not crashed"):
        network.recover_host(1)


def test_crashed_host_cannot_source_or_enqueue():
    scheduler, network, _ = make_network(hello=False)
    network.crash_host(1)
    with pytest.raises(ValueError, match="crashed"):
        network.initiate_broadcast(1)
    with pytest.raises(RuntimeError, match="shut down"):
        network.hosts[1].mac.send("frame", 64)


def test_crashed_host_hears_nothing():
    scheduler, network, metrics = make_network(scheme=CounterScheme)
    scheduler.run(until=2.0)
    network.crash_host(1)
    network.initiate_broadcast(0)
    scheduler.run(until=scheduler.now + 1.0)
    record = list(metrics.records.values())[-1]
    # Host 1 was the only bridge to host 2: nobody receives.
    assert set(record.received_times) == set()
    # And e was computed against the alive reachable set (empty here).
    assert record.reachable_count == 0


def test_mobility_survives_the_crash():
    """It is the radio that dies; the position keeps evolving (static here,
    but the mobility model must remain queryable throughout)."""
    scheduler, network, _ = make_network()
    before = network.hosts[1].position()
    network.crash_host(1)
    scheduler.run(until=1.0)
    assert network.hosts[1].position() == before
    assert 1 not in network.alive_positions()
    assert 1 in network.positions()
