"""Property-based tests: neighbor-table protocol invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.neighbors import NeighborTable
from repro.net.packets import HelloPacket

events = st.lists(
    st.tuples(
        st.integers(1, 6),                   # sender id
        st.floats(0.05, 2.0),                # time gap to previous event
        st.one_of(st.none(), st.floats(0.5, 10.0)),  # announced interval
    ),
    max_size=40,
)


@settings(max_examples=60)
@given(hellos=events, default_interval=st.floats(0.5, 5.0))
def test_table_invariants_under_random_hello_streams(hellos, default_interval):
    table = NeighborTable(default_interval=default_interval)
    now = 0.0
    last_heard = {}
    for sender, gap, interval in hellos:
        now += gap
        table.update_from_hello(
            HelloPacket(sender_id=sender, hello_interval=interval), now=now
        )
        last_heard[sender] = (now, interval or default_interval)

        # Invariant 1: a just-heard neighbor is always present.
        assert sender in table.neighbor_ids(now)
        # Invariant 2: every listed neighbor is within its timeout.
        for neighbor in table.neighbor_ids(now):
            heard_at, announced = last_heard[neighbor]
            assert now - heard_at <= 2.0 * announced + 1e-9
        # Invariant 3: variation is non-negative and finite.
        nv = table.variation(now)
        assert nv >= 0.0
        assert nv < float("inf")


@settings(max_examples=40)
@given(
    hellos=events,
    check_after=st.floats(0.0, 50.0),
)
def test_purge_is_exactly_the_timeout_rule(hellos, check_after):
    default_interval = 1.0
    table = NeighborTable(default_interval=default_interval)
    now = 0.0
    last = {}
    for sender, gap, interval in hellos:
        now += gap
        table.update_from_hello(
            HelloPacket(sender_id=sender, hello_interval=interval), now=now
        )
        last[sender] = (now, interval or default_interval)
    final = now + check_after
    alive = table.neighbor_ids(final)
    for sender, (heard_at, announced) in last.items():
        expected_alive = final - heard_at <= 2.0 * announced
        assert (sender in alive) == expected_alive, (
            sender, final - heard_at, announced,
        )
