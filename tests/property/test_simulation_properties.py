"""Property-based tests over whole simulations (small but real)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_broadcast_simulation


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 1000),
    scheme=st.sampled_from(
        ["flooding", "counter", "adaptive-counter", "neighbor-coverage"]
    ),
    map_units=st.sampled_from([1, 3, 5]),
)
def test_metrics_always_in_range(seed, scheme, map_units):
    config = ScenarioConfig(
        scheme=scheme,
        scheme_params={"threshold": 3} if scheme == "counter" else {},
        map_units=map_units,
        num_hosts=25,
        num_broadcasts=3,
        seed=seed,
    )
    result = run_broadcast_simulation(config)
    for record in result.metrics.records.values():
        re = record.reachability
        if re is not None:
            # Mobility between the snapshot and delivery can nudge a
            # borderline host into range, so allow a whisker above 1.  The
            # whisker must scale with the snapshot size: with a small
            # reachable set a single extra host is a large relative bump
            # (e.g. e=11, r=12 gives RE=1.09).
            whisker = 2.0 / record.reachable_count
            assert 0.0 <= re <= 1.0 + max(0.05, whisker)
        srb = record.saved_rebroadcast
        if srb is not None:
            assert 0.0 <= srb <= 1.0
        latency = record.latency(fallback_end=result.end_time)
        if latency is not None:
            assert latency >= 0.0
        # Rebroadcasters are a subset of receivers.
        assert record.rebroadcasters <= set(record.received_times)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 500))
def test_simulation_is_deterministic(seed):
    config = ScenarioConfig(
        scheme="counter",
        scheme_params={"threshold": 2},
        map_units=3,
        num_hosts=20,
        num_broadcasts=3,
        seed=seed,
    )
    a = run_broadcast_simulation(config)
    b = run_broadcast_simulation(config)
    assert a.events_processed == b.events_processed
    assert a.re == b.re
    assert a.srb == b.srb
    assert a.latency == b.latency
