"""Property-based tests: scheme decision invariants.

Each scheme, fed an arbitrary interleaving of packet copies, must
(a) rebroadcast a given packet at most once, (b) never both transmit and
record an inhibit for the same packet, and (c) always resolve every packet
to exactly one decision once the jitter runs out.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schemes import (
    AdaptiveCounterScheme,
    AdaptiveLocationScheme,
    CounterScheme,
    DistanceScheme,
    FloodingScheme,
    LocationScheme,
    NeighborCoverageScheme,
)

from tests.schemes.harness import FakeHost, make_packet

positions = st.tuples(
    st.floats(-500.0, 500.0), st.floats(-500.0, 500.0)
)


def scheme_factories():
    return st.sampled_from(
        [
            FloodingScheme,
            lambda: CounterScheme(threshold=2),
            lambda: CounterScheme(threshold=4),
            lambda: DistanceScheme(threshold=125.0),
            lambda: LocationScheme(threshold=0.0469),
            AdaptiveCounterScheme,
            AdaptiveLocationScheme,
            NeighborCoverageScheme,
        ]
    )


@settings(max_examples=60, deadline=None)
@given(
    factory=scheme_factories(),
    neighbors=st.integers(0, 20),
    copies=st.lists(
        st.tuples(st.integers(2, 8), positions), min_size=0, max_size=10
    ),
)
def test_exactly_one_decision_per_packet(factory, neighbors, copies):
    host = FakeHost(factory(), neighbors=neighbors, position=(0.0, 0.0))
    packet = make_packet(source=99, tx_id=99, tx_position=(250.0, 0.0))
    host.hear_first(packet)
    for sender_id, sender_position in copies:
        host.hear_again(packet, sender_id=sender_id,
                        sender_position=sender_position)
    host.run_jitter()
    for handle in host.submitted:
        if not handle.cancelled:
            handle.force_transmit()

    transmissions = len(host.transmitted)
    inhibits = host.inhibited.count(packet.key)
    # Exactly one terminal decision, never both.
    assert (transmissions, inhibits) in {(1, 0), (0, 1)}
    assert host.scheme.pending_count() == 0


@settings(max_examples=30, deadline=None)
@given(
    factory=scheme_factories(),
    n_packets=st.integers(1, 5),
    neighbors=st.integers(0, 15),
)
def test_at_most_one_rebroadcast_per_distinct_packet(factory, n_packets, neighbors):
    host = FakeHost(factory(), neighbors=neighbors)
    packets = [
        make_packet(source=s, seq=1, tx_position=(300.0, 0.0))
        for s in range(n_packets)
    ]
    for packet in packets:
        host.hear_first(packet)
        host.hear_again(packet)
    host.run_jitter()
    for handle in host.submitted:
        if not handle.cancelled:
            handle.force_transmit()
    keys = [p.key for p in host.transmitted]
    assert len(keys) == len(set(keys))
