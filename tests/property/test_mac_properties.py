"""Property-based tests: MAC invariants under random traffic."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mac.csma import CsmaCaMac
from repro.phy.channel import Channel
from repro.phy.params import PhyParams
from repro.sim.engine import Scheduler

PARAMS = PhyParams(radio_radius=100.0)


class CountingUpper:
    def __init__(self):
        self.received = 0

    def on_frame_received(self, frame, sender_id):
        self.received += 1

    def on_frame_corrupted(self, frame, sender_id):
        pass


class InvariantChannel(Channel):
    """Channel that asserts no host ever double-transmits (the scheduler
    would raise anyway, but this phrases it as the invariant under test)."""

    def start_transmission(self, sender_id, frame, duration):
        assert not self.is_transmitting(sender_id)
        super().start_transmission(sender_id, frame, duration)


def build(num_hosts, seed):
    scheduler = Scheduler()
    positions = [(i * 40.0, 0.0) for i in range(num_hosts)]
    channel = InvariantChannel(scheduler, PARAMS, lambda hid: positions[hid])
    macs, uppers = [], []
    for host_id in range(num_hosts):
        upper = CountingUpper()
        mac = CsmaCaMac(
            host_id, scheduler, channel, PARAMS,
            random.Random(seed * 1000 + host_id), upper,
        )
        macs.append(mac)
        uppers.append(upper)
    return scheduler, channel, macs, uppers


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    sends=st.lists(
        st.tuples(
            st.integers(0, 3),            # sender
            st.floats(0.0, 0.05),         # time
            st.integers(10, 300),         # size
        ),
        min_size=1,
        max_size=25,
    ),
)
def test_broadcast_traffic_invariants(seed, sends):
    """Arbitrary broadcast workloads: every frame eventually leaves the
    queue, no host double-transmits, and counters are consistent."""
    scheduler, channel, macs, uppers = build(4, seed)
    for sender, time, size in sends:
        scheduler.schedule_at(time, macs[sender].send, f"f{time}", size)
    scheduler.run()
    total_queued = sum(mac.queue_length for mac in macs)
    assert total_queued == 0
    sent = sum(mac.stats.frames_sent for mac in macs)
    assert sent == len(sends)
    assert channel.stats.transmissions == len(sends)
    # Nothing is left on the air.
    for mac in macs:
        assert not mac.is_transmitting


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    sends=st.lists(
        st.tuples(st.floats(0.0, 0.05), st.integers(10, 200)),
        min_size=1,
        max_size=12,
    ),
    drop_rate=st.floats(0.0, 0.9),
)
def test_unicast_always_resolves(seed, sends, drop_rate):
    """Every unicast send terminates in exactly one completion callback,
    whatever the loss rate."""
    loss_rng = random.Random(seed)

    outcomes = []

    def lossy(s, r):
        return loss_rng.random() < drop_rate

    scheduler = Scheduler()
    positions = [(0.0, 0.0), (50.0, 0.0)]
    channel = Channel(scheduler, PARAMS, lambda hid: positions[hid], lossy)
    upper0, upper1 = CountingUpper(), CountingUpper()
    mac0 = CsmaCaMac(0, scheduler, channel, PARAMS, random.Random(seed), upper0)
    CsmaCaMac(1, scheduler, channel, PARAMS, random.Random(seed + 1), upper1)

    for time, size in sends:
        scheduler.schedule_at(
            time, mac0.send_unicast, "payload", size, 1, outcomes.append
        )
    scheduler.run()
    assert len(outcomes) == len(sends)
    assert mac0.stats.unicast_delivered + mac0.stats.unicast_failed == len(sends)
    # Duplicate filtering: the upper layer saw at most one copy per send.
    assert upper1.received <= len(sends)
