"""Property-based tests: mobility invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.points import distance
from repro.mobility.map import RectMap, _fold
from repro.mobility.models import (
    RandomDirectionMobility,
    RandomWaypointMobility,
    kmh_to_ms,
)


@settings(max_examples=25)
@given(
    seed=st.integers(0, 10_000),
    width=st.floats(100.0, 5000.0),
    height=st.floats(100.0, 5000.0),
    speed=st.floats(0.0, 200.0),
    times=st.lists(st.floats(0.0, 2000.0), min_size=1, max_size=30),
)
def test_random_direction_never_leaves_map(seed, width, height, speed, times):
    world = RectMap(width, height)
    rng = random.Random(seed)
    model = RandomDirectionMobility(world, rng, speed)
    for t in sorted(times):
        assert world.contains(model.position(t))


@settings(max_examples=25)
@given(seed=st.integers(0, 10_000), speed=st.floats(1.0, 150.0))
def test_random_direction_speed_bound(seed, speed):
    world = RectMap(10_000.0, 10_000.0)
    model = RandomDirectionMobility(
        world, random.Random(seed), speed, start=(5000.0, 5000.0)
    )
    max_ms = kmh_to_ms(speed)
    dt = 0.5
    prev = model.position(0.0)
    for i in range(1, 200):
        current = model.position(i * dt)
        assert distance(prev, current) <= max_ms * dt + 1e-6
        prev = current


@settings(max_examples=20)
@given(
    seed=st.integers(0, 10_000),
    pause=st.floats(0.0, 60.0),
    times=st.lists(st.floats(0.0, 3000.0), min_size=1, max_size=20),
)
def test_random_waypoint_never_leaves_map(seed, pause, times):
    world = RectMap(800.0, 1200.0)
    model = RandomWaypointMobility(
        world, random.Random(seed), 60.0, pause_time=pause
    )
    for t in sorted(times):
        assert world.contains(model.position(t))


@settings(max_examples=30)
@given(
    x=st.floats(-1e6, 1e6),
    y=st.floats(-1e6, 1e6),
    width=st.floats(1.0, 1e4),
    height=st.floats(1.0, 1e4),
)
def test_reflect_always_lands_inside(x, y, width, height):
    world = RectMap(width, height)
    assert world.contains(world.reflect((x, y)))


# ------------------------------------------- fast path vs slow path
#
# ``reflect`` skips the fold for in-map points, and ``position`` inlines
# the segment arithmetic when the query lands inside the current segment.
# Both shortcuts must agree with the unconditional slow path -- within
# 1e-12, though in practice they are bit-identical (the vector kernel's
# PositionStore leans on exactly this equivalence).


@settings(max_examples=50)
@given(
    x=st.floats(0.0, 1e4),
    y=st.floats(0.0, 1e4),
    width=st.floats(1.0, 1e4),
    height=st.floats(1.0, 1e4),
)
def test_reflect_fast_path_matches_unconditional_fold(x, y, width, height):
    world = RectMap(width, height)
    rx, ry = world.reflect((x, y))
    fx, fy = _fold(x, width), _fold(y, height)
    assert abs(rx - fx) <= 1e-12
    assert abs(ry - fy) <= 1e-12
    if world.contains((x, y)):
        # In-map points take the identity shortcut; the fold must agree
        # exactly, or the shortcut would not be bit-safe to skip.
        assert (rx, ry) == (fx, fy) == (x, y)


@settings(max_examples=25)
@given(
    seed=st.integers(0, 10_000),
    speed=st.floats(1.0, 300.0),
    steps=st.lists(st.floats(0.0, 10.0), min_size=5, max_size=40),
    waypoint=st.booleans(),
)
def test_segmented_fast_path_matches_raw_position(seed, speed, steps, waypoint):
    """``position`` (memoized in-segment fast path) vs ``_roll_to`` +
    ``_raw_position`` (the slow path) on twin identically-seeded models,
    over a randomized monotone trajectory."""
    world = RectMap(900.0, 700.0)
    if waypoint:
        fast = RandomWaypointMobility(world, random.Random(seed), speed)
        slow = RandomWaypointMobility(world, random.Random(seed), speed)
    else:
        fast = RandomDirectionMobility(world, random.Random(seed), speed)
        slow = RandomDirectionMobility(world, random.Random(seed), speed)
    t = 0.0
    for step in steps:
        t += step
        fx, fy = fast.position(t)
        slow._roll_to(t)
        sx, sy = slow._raw_position(t)
        assert abs(fx - sx) <= 1e-12 and abs(fy - sy) <= 1e-12
        # The shortcut is in fact bit-exact, which is the stronger
        # contract the golden determinism suite depends on.
        assert (fx, fy) == (sx, sy)
