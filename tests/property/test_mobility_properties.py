"""Property-based tests: mobility invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.points import distance
from repro.mobility.map import RectMap
from repro.mobility.models import (
    RandomDirectionMobility,
    RandomWaypointMobility,
    kmh_to_ms,
)


@settings(max_examples=25)
@given(
    seed=st.integers(0, 10_000),
    width=st.floats(100.0, 5000.0),
    height=st.floats(100.0, 5000.0),
    speed=st.floats(0.0, 200.0),
    times=st.lists(st.floats(0.0, 2000.0), min_size=1, max_size=30),
)
def test_random_direction_never_leaves_map(seed, width, height, speed, times):
    world = RectMap(width, height)
    rng = random.Random(seed)
    model = RandomDirectionMobility(world, rng, speed)
    for t in sorted(times):
        assert world.contains(model.position(t))


@settings(max_examples=25)
@given(seed=st.integers(0, 10_000), speed=st.floats(1.0, 150.0))
def test_random_direction_speed_bound(seed, speed):
    world = RectMap(10_000.0, 10_000.0)
    model = RandomDirectionMobility(
        world, random.Random(seed), speed, start=(5000.0, 5000.0)
    )
    max_ms = kmh_to_ms(speed)
    dt = 0.5
    prev = model.position(0.0)
    for i in range(1, 200):
        current = model.position(i * dt)
        assert distance(prev, current) <= max_ms * dt + 1e-6
        prev = current


@settings(max_examples=20)
@given(
    seed=st.integers(0, 10_000),
    pause=st.floats(0.0, 60.0),
    times=st.lists(st.floats(0.0, 3000.0), min_size=1, max_size=20),
)
def test_random_waypoint_never_leaves_map(seed, pause, times):
    world = RectMap(800.0, 1200.0)
    model = RandomWaypointMobility(
        world, random.Random(seed), 60.0, pause_time=pause
    )
    for t in sorted(times):
        assert world.contains(model.position(t))


@settings(max_examples=30)
@given(
    x=st.floats(-1e6, 1e6),
    y=st.floats(-1e6, 1e6),
    width=st.floats(1.0, 1e4),
    height=st.floats(1.0, 1e4),
)
def test_reflect_always_lands_inside(x, y, width, height):
    world = RectMap(width, height)
    assert world.contains(world.reflect((x, y)))
