"""Property-based tests: route-table invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.table import RouteTable

operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("update"),
            st.integers(0, 5),    # dest
            st.integers(0, 5),    # next hop
            st.integers(1, 10),   # hop count
        ),
        st.tuples(st.just("invalidate"), st.integers(0, 5)),
        st.tuples(st.just("invalidate_via"), st.integers(0, 5)),
    ),
    max_size=40,
)


@settings(max_examples=60)
@given(ops=operations, lifetime=st.floats(0.5, 20.0))
def test_route_table_invariants(ops, lifetime):
    """After any operation sequence: live entries are within lifetime,
    lookups agree with updates, and hop counts never increased silently."""
    table = RouteTable(lifetime=lifetime)
    now = 0.0
    best_hops = {}
    for op in ops:
        now += 0.1
        if op[0] == "update":
            _, dest, nxt, hops = op
            table.update(dest, next_hop=nxt, hop_count=hops, now=now)
            previous = best_hops.get(dest)
            entry = table.lookup(dest, now)
            assert entry is not None
            # Live better route never replaced by a worse one.
            if previous is not None and previous[1] > now:
                assert entry.hop_count <= previous[0]
            best_hops[dest] = (entry.hop_count, entry.expires_at)
        elif op[0] == "invalidate":
            table.invalidate(op[1])
            best_hops.pop(op[1], None)
        else:
            table.invalidate_via(op[1])
            best_hops = {
                d: v for d, v in best_hops.items()
                if (e := table.lookup(d, now)) is not None
            }
        # Global invariant: every live entry expires in the future.
        for dest, entry in table.known_destinations(now).items():
            assert entry.expires_at > now
            assert entry.dest_id == dest


@settings(max_examples=30)
@given(
    dest=st.integers(0, 3),
    hops=st.integers(1, 5),
    gap=st.floats(0.0, 40.0),
)
def test_expiry_is_exact(dest, hops, gap):
    table = RouteTable(lifetime=10.0)
    table.update(dest, next_hop=9, hop_count=hops, now=0.0)
    entry = table.lookup(dest, now=gap)
    if gap < 10.0:
        assert entry is not None
    else:
        assert entry is None
