"""Property-based tests: scheduler ordering and determinism."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Scheduler


@settings(max_examples=50)
@given(
    delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50),
)
def test_events_fire_in_nondecreasing_time_order(delays):
    scheduler = Scheduler()
    fired = []
    for delay in delays:
        scheduler.schedule(delay, lambda: fired.append(scheduler.now))
    scheduler.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@settings(max_examples=50)
@given(
    delays=st.lists(
        st.tuples(st.floats(0.0, 100.0), st.integers(-5, 5)),
        min_size=1, max_size=40,
    )
)
def test_total_order_time_then_priority_then_fifo(delays):
    scheduler = Scheduler()
    fired = []
    for index, (delay, priority) in enumerate(delays):
        scheduler.schedule(
            delay, fired.append, (delay, priority, index), priority=priority
        )
    scheduler.run()
    assert fired == sorted(fired)


@settings(max_examples=25)
@given(
    delays=st.lists(st.floats(0.0, 50.0), min_size=1, max_size=30),
    cancel_indices=st.sets(st.integers(0, 29)),
)
def test_cancelled_subset_never_fires(delays, cancel_indices):
    scheduler = Scheduler()
    fired = []
    events = [
        scheduler.schedule(delay, fired.append, i)
        for i, delay in enumerate(delays)
    ]
    for index in cancel_indices:
        if index < len(events):
            events[index].cancel()
    scheduler.run()
    surviving = {i for i in range(len(delays))} - cancel_indices
    assert set(fired) == surviving
