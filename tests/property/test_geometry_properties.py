"""Property-based tests: geometry invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.circles import (
    additional_coverage_fraction,
    lens_area,
)
from repro.geometry.coverage import DiskSampler

radii = st.floats(min_value=0.01, max_value=1000.0, allow_nan=False)
unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@given(r=radii, t=st.floats(min_value=0.0, max_value=2.5))
def test_lens_area_bounded_by_disk(r, t):
    area = lens_area(r, t * r)
    assert 0.0 <= area <= math.pi * r * r + 1e-9


@given(r=radii, t1=st.floats(0.0, 2.5), t2=st.floats(0.0, 2.5))
def test_lens_area_monotone_in_distance(r, t1, t2):
    lo, hi = sorted((t1, t2))
    assert lens_area(r, lo * r) >= lens_area(r, hi * r) - 1e-9


@given(r=radii, t=st.floats(0.0, 3.0))
def test_additional_coverage_fraction_unit_interval(r, t):
    frac = additional_coverage_fraction(t * r, r)
    assert 0.0 <= frac <= 1.0


@given(t=st.floats(0.0, 2.0))
def test_lens_plus_additional_equals_disk(t):
    """INTC(d) + additional coverage = pi r^2 for d <= 2r."""
    total = lens_area(1.0, t) + additional_coverage_fraction(t) * math.pi
    assert math.isclose(total, math.pi, rel_tol=1e-9)


@settings(max_examples=30)
@given(
    centers=st.lists(
        st.tuples(st.floats(-2.0, 2.0), st.floats(-2.0, 2.0)),
        min_size=0,
        max_size=6,
    )
)
def test_uncovered_fraction_unit_interval_and_monotone(centers):
    sampler = DiskSampler(128)
    previous = 1.0
    for k in range(len(centers) + 1):
        frac = sampler.uncovered_fraction((0.0, 0.0), 1.0, centers[:k], 1.0)
        assert 0.0 <= frac <= 1.0
        assert frac <= previous + 1e-12  # adding covers never uncovers
        previous = frac
