"""ASCII charts."""

import math

import pytest

from repro.viz.ascii_chart import bar_chart, line_chart, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_levels(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_constant_series_mid_level(self):
        line = sparkline([5, 5, 5])
        assert len(set(line)) == 1

    def test_nan_renders_as_space(self):
        assert sparkline([1.0, math.nan, 2.0])[1] == " "

    def test_all_nan(self):
        assert sparkline([math.nan, math.nan]) == "  "

    def test_empty(self):
        assert sparkline([]) == ""


class TestBarChart:
    def test_rows_and_scaling(self):
        chart = bar_chart(["a", "bb"], [1.0, 0.5], width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_labels_aligned(self):
        chart = bar_chart(["x", "long-label"], [1.0, 1.0])
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_nan_value(self):
        chart = bar_chart(["a"], [math.nan])
        assert "nan" in chart

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_explicit_max(self):
        chart = bar_chart(["a"], [0.5], width=10, max_value=1.0)
        assert chart.count("#") == 5


class TestLineChart:
    def test_contains_marks_and_legend(self):
        chart = line_chart(
            {"one": [(1, 0.5), (9, 0.9)], "two": [(1, 0.2), (9, 0.1)]},
            width=30, height=8, title="demo",
        )
        assert "demo" in chart
        assert "o one" in chart
        assert "x two" in chart
        assert chart.count("o") >= 2  # two plotted points (legend adds one)

    def test_y_range_override(self):
        chart = line_chart({"s": [(0, 0.5)]}, y_range=(0.0, 1.0))
        assert "1.000" in chart and "0.000" in chart

    def test_extremes_land_on_borders(self):
        chart = line_chart({"s": [(0, 0.0), (10, 1.0)]}, width=20, height=5)
        body = [l for l in chart.splitlines() if l.startswith(" " * 9 + "|")]
        assert body[0].rstrip().endswith("o")  # top-right: the maximum
        assert body[-1][10] == "o"  # bottom-left: the minimum

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"s": [(0, math.nan)]})

    def test_nan_points_skipped(self):
        chart = line_chart({"s": [(0, 0.1), (1, math.nan), (2, 0.9)]})
        assert "s" in chart
