"""The package's public surface: imports, exports, version."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_exports_exist():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_docstring_example_runs():
    """The example in the package docstring must actually work."""
    from repro import ScenarioConfig, run_broadcast_simulation

    config = ScenarioConfig(
        scheme="adaptive-counter", map_units=1, num_hosts=10,
        num_broadcasts=2, seed=7,
    )
    result = run_broadcast_simulation(config)
    assert "RE=" in result.summary()


def test_scheme_registry_exposed():
    from repro import SCHEME_REGISTRY, make_scheme

    assert "adaptive-counter" in SCHEME_REGISTRY
    scheme = make_scheme("flooding")
    assert scheme.name == "flooding"


def test_all_subpackages_importable():
    import importlib

    for module in (
        "repro.sim", "repro.geometry", "repro.analysis", "repro.mobility",
        "repro.phy", "repro.mac", "repro.net", "repro.schemes",
        "repro.metrics", "repro.experiments", "repro.routing", "repro.viz",
        "repro.cli", "repro.campaigns",
        "repro.experiments.figures", "repro.experiments.io",
        "repro.experiments.replication", "repro.experiments.report",
        "repro.experiments.topologies",
        "repro.campaigns.spec", "repro.campaigns.planner",
        "repro.campaigns.checkpoint", "repro.campaigns.queue",
        "repro.campaigns.service", "repro.campaigns.client",
        "repro.telemetry", "repro.telemetry.registry",
        "repro.telemetry.expose", "repro.telemetry.resources",
        "repro.telemetry.bench",
    ):
        importlib.import_module(module)


def test_examples_are_importable_scripts():
    """Every example compiles and has a main() entry point."""
    import ast
    from pathlib import Path

    examples = sorted(Path("examples").glob("*.py"))
    assert len(examples) >= 5
    for path in examples:
        tree = ast.parse(path.read_text())
        names = {
            node.name for node in tree.body
            if isinstance(node, ast.FunctionDef)
        }
        assert "main" in names, path
