"""Disk sampling and multi-circle coverage estimation."""

import math

import pytest

from repro.geometry.circles import additional_coverage_fraction
from repro.geometry.coverage import DiskSampler, uncovered_fraction


def test_sampler_points_inside_unit_disk():
    sampler = DiskSampler(500)
    for x, y in sampler.points((0.0, 0.0), 1.0):
        assert x * x + y * y <= 1.0 + 1e-12


def test_sampler_points_scaled_and_translated():
    sampler = DiskSampler(100)
    for x, y in sampler.points((10.0, -5.0), 3.0):
        assert (x - 10.0) ** 2 + (y + 5.0) ** 2 <= 9.0 + 1e-9


def test_no_cover_means_fraction_one():
    assert uncovered_fraction((0, 0), 1.0, [], 1.0) == 1.0


def test_full_cover_by_coincident_circle():
    assert uncovered_fraction((0, 0), 1.0, [(0, 0)], 1.0) == 0.0


def test_far_away_circle_covers_nothing():
    assert uncovered_fraction((0, 0), 1.0, [(5.0, 0.0)], 1.0) == 1.0


def test_single_cover_matches_closed_form():
    """Sampled uncovered fraction ~= 1 - INTC(d)/(pi r^2)."""
    sampler = DiskSampler(4096)
    for d in (0.25, 0.5, 1.0, 1.5):
        estimated = sampler.uncovered_fraction((0, 0), 1.0, [(d, 0.0)], 1.0)
        exact = additional_coverage_fraction(d)
        assert estimated == pytest.approx(exact, abs=0.02)


def test_more_covers_never_increase_uncovered():
    sampler = DiskSampler(512)
    centers = [(0.8, 0.0), (-0.5, 0.4), (0.1, -0.9)]
    previous = 1.0
    for k in range(1, len(centers) + 1):
        frac = sampler.uncovered_fraction((0, 0), 1.0, centers[:k], 1.0)
        assert frac <= previous + 1e-12
        previous = frac


def test_deterministic():
    a = DiskSampler(256).uncovered_fraction((0, 0), 1.0, [(0.7, 0.2)], 1.0)
    b = DiskSampler(256).uncovered_fraction((0, 0), 1.0, [(0.7, 0.2)], 1.0)
    assert a == b


def test_result_scale_invariant():
    small = uncovered_fraction((0, 0), 1.0, [(0.5, 0.0)], 1.0)
    large = uncovered_fraction((0, 0), 500.0, [(250.0, 0.0)], 500.0)
    assert small == pytest.approx(large, abs=1e-12)


def test_invalid_sampler_size():
    with pytest.raises(ValueError):
        DiskSampler(0)


def test_lattice_near_uniform():
    """Quadrant counts of the Fibonacci lattice stay within a few percent."""
    sampler = DiskSampler(4000)
    quadrants = [0, 0, 0, 0]
    for x, y in sampler.points((0.0, 0.0), 1.0):
        index = (0 if x >= 0 else 1) + (0 if y >= 0 else 2)
        quadrants[index] += 1
    for count in quadrants:
        assert count == pytest.approx(1000, rel=0.05)
