"""Two-circle lens area and the paper's coverage formulas."""

import math

import pytest

from repro.geometry.circles import (
    additional_coverage_area,
    additional_coverage_fraction,
    intc,
    intc_integrand_form,
    lens_area,
)


def test_coincident_circles_full_overlap():
    assert lens_area(1.0, 0.0) == pytest.approx(math.pi)


def test_disjoint_circles_zero_overlap():
    assert lens_area(1.0, 2.0) == 0.0
    assert lens_area(1.0, 5.0) == 0.0


def test_lens_area_known_value_at_d_equals_r():
    # INTC(r) = (2*pi/3 - sqrt(3)/2) r^2; classic result.
    expected = 2.0 * math.pi / 3.0 - math.sqrt(3.0) / 2.0
    assert lens_area(1.0, 1.0) == pytest.approx(expected, rel=1e-12)


def test_lens_area_monotonically_decreasing_in_d():
    values = [lens_area(1.0, d / 10.0) for d in range(0, 21)]
    assert all(a >= b for a, b in zip(values, values[1:]))


def test_lens_area_scales_with_radius_squared():
    assert lens_area(2.0, 1.0) == pytest.approx(4.0 * lens_area(1.0, 0.5))


def test_closed_form_matches_paper_integral_definition():
    for d in (0.1, 0.5, 1.0, 1.5, 1.9):
        assert lens_area(1.0, d) == pytest.approx(
            intc_integrand_form(d), rel=1e-5
        )


def test_intc_paper_argument_order():
    assert intc(0.7, r=1.0) == lens_area(1.0, 0.7)


def test_intc_integrand_form_disjoint():
    assert intc_integrand_form(2.5, r=1.0) == 0.0


def test_additional_coverage_peak_is_61_percent():
    """The paper's bound: rebroadcast at d = r adds ~0.61 pi r^2."""
    assert additional_coverage_fraction(1.0) == pytest.approx(0.609, abs=0.001)


def test_additional_coverage_zero_at_zero_distance():
    assert additional_coverage_area(0.0) == 0.0


def test_additional_coverage_full_disk_when_disjoint():
    assert additional_coverage_area(2.0) == pytest.approx(math.pi)
    assert additional_coverage_area(10.0) == pytest.approx(math.pi)


def test_additional_coverage_fraction_in_unit_interval():
    for d in (0.0, 0.3, 0.9, 1.4, 2.0, 3.0):
        frac = additional_coverage_fraction(d)
        assert 0.0 <= frac <= 1.0


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        lens_area(0.0, 1.0)
    with pytest.raises(ValueError):
        lens_area(-1.0, 1.0)
    with pytest.raises(ValueError):
        lens_area(1.0, -0.1)
