"""Point and distance helpers."""

import math

from repro.geometry.points import Point, distance, distance_sq


def test_point_is_a_tuple():
    p = Point(1.0, 2.0)
    assert p == (1.0, 2.0)
    assert p.x == 1.0 and p.y == 2.0


def test_distance_345_triangle():
    assert distance((0, 0), (3, 4)) == 5.0


def test_distance_sq_avoids_sqrt():
    assert distance_sq((0, 0), (3, 4)) == 25.0


def test_distance_symmetric():
    a, b = (1.5, -2.0), (4.0, 7.25)
    assert distance(a, b) == distance(b, a)


def test_distance_zero_for_same_point():
    assert distance((2.0, 3.0), (2.0, 3.0)) == 0.0


def test_translated():
    assert Point(1.0, 2.0).translated(0.5, -1.0) == Point(1.5, 1.0)


def test_towards_midpoint():
    assert Point(0.0, 0.0).towards(Point(2.0, 4.0), 0.5) == Point(1.0, 2.0)


def test_towards_endpoints():
    a, b = Point(1.0, 1.0), Point(3.0, 5.0)
    assert a.towards(b, 0.0) == a
    assert a.towards(b, 1.0) == b


def test_plain_tuples_accepted():
    assert math.isclose(distance((0.0, 0.0), (1.0, 1.0)), math.sqrt(2.0))
