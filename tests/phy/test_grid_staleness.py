"""Spatial-grid staleness: the index must never miss a receiver.

The grid is rebuilt only when accumulated drift (``max_speed * elapsed``)
could push a host across more than ``GRID_MAX_DRIFT_FRACTION`` of the
radio radius; between rebuilds the scan widens its search ring by the
drift slop instead.  At high speeds and large host counts that slop
logic is the part most likely to rot, so this property test drives 1000
fast hosts through many query instants and checks the grid-backed scan
against a brute-force distance filter at every one -- on both kernels.
"""

import random

import pytest

from repro.experiments.config import ScenarioConfig
from repro.geometry.points import distance
from repro.kernel import vector_supported
from repro.metrics.collector import MetricsCollector
from repro.mobility.map import RectMap
from repro.net.network import Network
from repro.phy.params import PhyParams
from repro.schemes import make_scheme
from repro.sim.engine import Scheduler
from repro.sim.randomness import RandomStreams

NUM_HOSTS = 1000
SPEED_KMH = 300.0  # far above the paper's grid, to maximize drift slop


def build_network(kernel):
    scheduler = Scheduler()
    network = Network(
        scheduler=scheduler,
        params=PhyParams(),
        world=RectMap.square_units(3),
        streams=RandomStreams(11),
        num_hosts=NUM_HOSTS,
        scheme_factory=lambda: make_scheme("flooding"),
        metrics=MetricsCollector(),
        max_speed_kmh=SPEED_KMH,
        kernel=kernel,
    )
    return scheduler, network


def brute_force_in_range(network, host_id):
    positions = network.positions()
    center = positions[host_id]
    radius = network.params.radio_radius
    return sorted(
        other
        for other, pos in positions.items()
        if other != host_id and distance(center, pos) <= radius
    )


def check_scans_at_many_instants(kernel):
    scheduler, network = build_network(kernel)
    rng = random.Random(23)
    failures = []

    def check(host_id):
        observed = sorted(network.channel.neighbors_in_range(host_id))
        expected = brute_force_in_range(network, host_id)
        if observed != expected:
            failures.append((scheduler.now, host_id, observed, expected))

    # Irregular query times: some bunched (no rebuild between them, max
    # slop), some far apart (forced rebuilds).
    t = 0.0
    for _ in range(120):
        t += rng.choice((0.001, 0.01, 0.4, 3.0)) * rng.random()
        scheduler.schedule_at(t, check, rng.randrange(NUM_HOSTS))
    scheduler.run(until=t + 1.0)

    assert not failures, (
        f"{len(failures)} stale scans; first: t={failures[0][0]} "
        f"host={failures[0][1]}"
    )
    return network


def test_scalar_grid_never_misses_receivers_at_high_speed():
    network = check_scans_at_many_instants("scalar")
    # The grid was actually exercised: some rebuilds, but not one per scan
    # (otherwise the staleness/slop logic never ran).
    rebuilds = network.channel.stats.grid_rebuilds
    assert 0 < rebuilds < 120


@pytest.mark.skipif(not vector_supported(), reason="numpy unavailable")
def test_vector_scan_never_misses_receivers_at_high_speed():
    network = check_scans_at_many_instants("vector")
    assert network.kernel == "vector"
    assert network.channel.stats.batch_scans > 0
