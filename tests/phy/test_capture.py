"""Capture-effect model and its channel integration."""

import pytest

from repro.phy.capture import CaptureModel
from repro.phy.channel import Channel
from repro.phy.params import PhyParams
from repro.sim.engine import Scheduler

from tests.phy.test_channel import StubRadio


class TestCaptureModel:
    def test_threshold_conversion(self):
        assert CaptureModel(threshold_db=10.0).threshold_linear == pytest.approx(10.0)
        assert CaptureModel(threshold_db=0.0).threshold_linear == 1.0

    def test_power_decays_with_distance(self):
        model = CaptureModel(pathloss_exponent=4.0)
        assert model.power(10.0) > model.power(20.0)
        # Factor-two distance, alpha=4: 16x power ratio.
        assert model.power(10.0) / model.power(20.0) == pytest.approx(16.0)

    def test_power_clamped_at_min_distance(self):
        model = CaptureModel(min_distance=1.0)
        assert model.power(0.0) == model.power(0.5) == model.power(1.0)

    def test_survives(self):
        model = CaptureModel(threshold_db=10.0)
        assert model.survives(10.0, 1.0)  # SIR = 10 >= 10
        assert not model.survives(9.0, 1.0)
        assert model.survives(0.001, 0.0)  # no interference

    def test_validation(self):
        with pytest.raises(ValueError):
            CaptureModel(pathloss_exponent=0.0)
        with pytest.raises(ValueError):
            CaptureModel(min_distance=0.0)
        with pytest.raises(ValueError):
            CaptureModel().power(-1.0)


def capture_channel(positions, capture):
    scheduler = Scheduler()
    channel = Channel(
        scheduler, PhyParams(radio_radius=100.0),
        lambda hid: positions[hid], capture=capture,
    )
    radios = []
    for host_id in range(len(positions)):
        radio = StubRadio().bind(scheduler)
        channel.attach(host_id, radio)
        radios.append(radio)
    return scheduler, channel, radios


class TestChannelCapture:
    def test_near_frame_captures_over_far_interferer(self):
        """Receiver at 5 m from sender A, 95 m from sender C: A's frame is
        ~(95/5)^4 stronger and survives the overlap; C's frame dies."""
        positions = [(0, 0), (5, 0), (100, 0)]
        scheduler, channel, radios = capture_channel(
            positions, CaptureModel(threshold_db=10.0, pathloss_exponent=4.0)
        )
        channel.start_transmission(0, "near", 0.002)
        scheduler.schedule(0.0005, channel.start_transmission, 2, "far", 0.002)
        scheduler.run()
        assert [f for _, f, _ in radios[1].received] == ["near"]
        assert [f for _, f, _ in radios[1].corrupted] == ["far"]

    def test_comparable_powers_still_collide(self):
        """Equidistant senders: SIR = 1 < threshold, both frames die."""
        positions = [(0, 0), (50, 0), (100, 0)]
        scheduler, channel, radios = capture_channel(
            positions, CaptureModel(threshold_db=10.0)
        )
        channel.start_transmission(0, "a", 0.002)
        scheduler.schedule(0.0005, channel.start_transmission, 2, "b", 0.002)
        scheduler.run()
        assert radios[1].received == []
        assert len(radios[1].corrupted) == 2

    def test_corrupted_frame_stays_corrupted(self):
        """A frame garbled by one overlap is not resurrected when a later,
        weaker frame would have let it pass."""
        positions = [(0, 0), (50, 0), (100, 0), (51, 1)]
        scheduler, channel, radios = capture_channel(
            positions, CaptureModel(threshold_db=10.0)
        )
        # a and b comparable at host 1 -> both corrupted.
        channel.start_transmission(0, "a", 0.004)
        scheduler.schedule(0.0005, channel.start_transmission, 2, "b", 0.001)
        scheduler.run(until=0.002)
        # b ended; only a remains, but a was already corrupted.
        scheduler.run()
        assert all(f in ("a", "b") for _, f, _ in radios[1].corrupted)
        assert [f for _, f, _ in radios[1].received] == []

    def test_no_capture_default_garbles_everything(self):
        positions = [(0, 0), (5, 0), (100, 0)]
        scheduler, channel, radios = capture_channel(positions, None)
        channel.start_transmission(0, "near", 0.002)
        scheduler.schedule(0.0005, channel.start_transmission, 2, "far", 0.002)
        scheduler.run()
        assert radios[1].received == []
