"""Channel propagation, collision and carrier-sense behaviour."""

import pytest

from repro.phy.channel import Channel
from repro.phy.params import PhyParams
from repro.sim.engine import Scheduler


class StubRadio:
    """Records everything the channel tells it."""

    def __init__(self):
        self.received = []  # (time, frame, sender)
        self.corrupted = []
        self.medium_events = []  # (time, busy)

    def bind(self, scheduler):
        self._scheduler = scheduler
        return self

    def on_medium_state(self, busy):
        self.medium_events.append((self._scheduler.now, busy))

    def on_frame_received(self, frame, sender_id):
        self.received.append((self._scheduler.now, frame, sender_id))

    def on_frame_corrupted(self, frame, sender_id):
        self.corrupted.append((self._scheduler.now, frame, sender_id))


def make_channel(positions, drop_predicate=None):
    """Channel with static hosts at ``positions`` (id = list index)."""
    scheduler = Scheduler()
    params = PhyParams(radio_radius=100.0)
    channel = Channel(
        scheduler, params, lambda hid: positions[hid], drop_predicate
    )
    radios = []
    for host_id in range(len(positions)):
        radio = StubRadio().bind(scheduler)
        channel.attach(host_id, radio)
        radios.append(radio)
    return scheduler, channel, radios


def test_in_range_host_receives_frame():
    scheduler, channel, radios = make_channel([(0, 0), (50, 0)])
    channel.start_transmission(0, "hello", 0.001)
    scheduler.run()
    assert radios[1].received == [(0.001, "hello", 0)]
    assert radios[0].received == []  # sender does not hear itself


def test_out_of_range_host_hears_nothing():
    scheduler, channel, radios = make_channel([(0, 0), (150, 0)])
    channel.start_transmission(0, "hello", 0.001)
    scheduler.run()
    assert radios[1].received == []
    assert radios[1].medium_events == []


def test_boundary_distance_exactly_radius_is_in_range():
    scheduler, channel, radios = make_channel([(0, 0), (100, 0)])
    channel.start_transmission(0, "edge", 0.001)
    scheduler.run()
    assert len(radios[1].received) == 1


def test_delivery_at_end_of_airtime():
    scheduler, channel, radios = make_channel([(0, 0), (10, 0)])
    channel.start_transmission(0, "x", 0.002432)
    scheduler.run()
    assert radios[1].received[0][0] == pytest.approx(0.002432)


def test_medium_busy_then_idle_notifications():
    scheduler, channel, radios = make_channel([(0, 0), (10, 0)])
    channel.start_transmission(0, "x", 0.001)
    scheduler.run()
    assert radios[1].medium_events == [(0.0, True), (0.001, False)]


def test_sender_gets_no_self_notifications():
    scheduler, channel, radios = make_channel([(0, 0), (10, 0)])
    channel.start_transmission(0, "x", 0.001)
    scheduler.run()
    assert radios[0].medium_events == []


def test_overlapping_frames_collide_at_receiver():
    # Hosts 0 and 2 both in range of middle host 1.
    scheduler, channel, radios = make_channel([(0, 0), (50, 0), (100, 0)])
    channel.start_transmission(0, "a", 0.002)
    scheduler.schedule(0.001, channel.start_transmission, 2, "b", 0.002)
    scheduler.run()
    assert radios[1].received == []
    assert {frame for _, frame, _ in radios[1].corrupted} == {"a", "b"}


def test_hidden_terminal_collision():
    """0 and 2 cannot hear each other but both reach 1: classic hidden
    terminal -- both frames garble at 1 while 0 and 2 stay oblivious."""
    scheduler, channel, radios = make_channel([(0, 0), (90, 0), (180, 0)])
    channel.start_transmission(0, "left", 0.002)
    scheduler.schedule(0.0005, channel.start_transmission, 2, "right", 0.002)
    scheduler.run()
    assert radios[1].received == []
    assert len(radios[1].corrupted) == 2
    assert channel.stats.collisions == 2


def test_non_overlapping_sequential_frames_both_deliver():
    scheduler, channel, radios = make_channel([(0, 0), (50, 0), (100, 0)])
    channel.start_transmission(0, "a", 0.001)
    scheduler.schedule(0.002, channel.start_transmission, 2, "b", 0.001)
    scheduler.run()
    assert [f for _, f, _ in radios[1].received] == ["a", "b"]


def test_collision_only_at_receivers_hearing_both():
    """Host 3 hears only transmitter 2; its copy survives the collision
    happening at host 1."""
    positions = [(0, 0), (90, 0), (180, 0), (270, 0)]
    scheduler, channel, radios = make_channel(positions)
    channel.start_transmission(0, "a", 0.002)
    scheduler.schedule(0.0005, channel.start_transmission, 2, "b", 0.002)
    scheduler.run()
    assert radios[1].received == []
    assert [f for _, f, _ in radios[3].received] == ["b"]


def test_half_duplex_receiver_transmitting_is_deaf():
    scheduler, channel, radios = make_channel([(0, 0), (50, 0)])
    channel.start_transmission(0, "mine", 0.002)
    scheduler.schedule(0.0005, channel.start_transmission, 1, "yours", 0.002)
    scheduler.run()
    # Host 1 was receiving "mine" and then started transmitting: deaf.
    assert radios[1].received == []
    # Host 0 was transmitting while "yours" arrived: also deaf.
    assert radios[0].received == []
    assert channel.stats.deaf_misses >= 1


def test_carrier_busy_during_transmission():
    scheduler, channel, radios = make_channel([(0, 0), (50, 0), (500, 0)])
    channel.start_transmission(0, "x", 0.001)
    assert channel.carrier_busy(0)  # own transmission
    assert channel.carrier_busy(1)  # incoming energy
    assert not channel.carrier_busy(2)  # out of range
    scheduler.run()
    assert not channel.carrier_busy(0)
    assert not channel.carrier_busy(1)


def test_is_transmitting():
    scheduler, channel, radios = make_channel([(0, 0), (50, 0)])
    channel.start_transmission(0, "x", 0.001)
    assert channel.is_transmitting(0)
    assert not channel.is_transmitting(1)
    scheduler.run()
    assert not channel.is_transmitting(0)


def test_neighbors_in_range_oracle():
    scheduler, channel, radios = make_channel([(0, 0), (50, 0), (99, 0), (250, 0)])
    assert sorted(channel.neighbors_in_range(0)) == [1, 2]
    assert channel.neighbors_in_range(3) == []


def test_double_transmission_rejected():
    scheduler, channel, radios = make_channel([(0, 0), (50, 0)])
    channel.start_transmission(0, "x", 0.001)
    with pytest.raises(RuntimeError):
        channel.start_transmission(0, "y", 0.001)


def test_unattached_sender_rejected():
    scheduler, channel, radios = make_channel([(0, 0)])
    with pytest.raises(ValueError):
        channel.start_transmission(5, "x", 0.001)


def test_invalid_duration_rejected():
    scheduler, channel, radios = make_channel([(0, 0)])
    with pytest.raises(ValueError):
        channel.start_transmission(0, "x", 0.0)


def test_duplicate_attach_rejected():
    scheduler, channel, radios = make_channel([(0, 0)])
    with pytest.raises(ValueError):
        channel.attach(0, StubRadio().bind(scheduler))


def test_detach_mid_frame_is_safe():
    scheduler, channel, radios = make_channel([(0, 0), (50, 0)])
    channel.start_transmission(0, "x", 0.002)
    scheduler.schedule(0.001, channel.detach, 1)
    scheduler.run()
    assert radios[1].received == []


def test_drop_predicate_injects_losses():
    scheduler, channel, radios = make_channel(
        [(0, 0), (50, 0)], drop_predicate=lambda s, r: True
    )
    channel.start_transmission(0, "x", 0.001)
    scheduler.run()
    assert radios[1].received == []
    assert len(radios[1].corrupted) == 1
    assert channel.stats.injected_drops == 1


def test_stats_counters():
    scheduler, channel, radios = make_channel([(0, 0), (50, 0)])
    channel.start_transmission(0, "x", 0.001)
    scheduler.run()
    assert channel.stats.transmissions == 1
    assert channel.stats.deliveries == 1
    assert channel.stats.collisions == 0


def test_three_way_overlap_all_corrupted():
    positions = [(0, 0), (10, 0), (20, 0), (30, 0)]
    scheduler, channel, radios = make_channel(positions)
    channel.start_transmission(0, "a", 0.003)
    scheduler.schedule(0.001, channel.start_transmission, 1, "b", 0.003)
    scheduler.schedule(0.002, channel.start_transmission, 2, "c", 0.003)
    scheduler.run()
    assert radios[3].received == []
    assert {f for _, f, _ in radios[3].corrupted} == {"a", "b", "c"}


def test_airtime_accounting():
    scheduler, channel, radios = make_channel([(0, 0), (50, 0), (500, 0)])
    channel.start_transmission(0, "x", 0.002)
    scheduler.run()
    assert channel.stats.tx_airtime[0] == pytest.approx(0.002)
    assert channel.stats.rx_airtime[1] == pytest.approx(0.002)
    # Out-of-range host 2 spends no receive airtime.
    assert 2 not in channel.stats.rx_airtime
    assert channel.stats.total_tx_airtime == pytest.approx(0.002)
    assert channel.stats.total_rx_airtime == pytest.approx(0.002)


def test_airtime_accumulates_even_for_corrupted_receptions():
    scheduler, channel, radios = make_channel([(0, 0), (50, 0), (100, 0)])
    channel.start_transmission(0, "a", 0.002)
    scheduler.schedule(0.001, channel.start_transmission, 2, "b", 0.002)
    scheduler.run()
    # Host 1 heard both frames (garbled), paying receive energy for both.
    assert channel.stats.rx_airtime[1] == pytest.approx(0.004)


# ------------------------------------------------- spatial grid index


def make_grid_channel(positions, max_speed_ms=0.0, radius=100.0):
    scheduler = Scheduler()
    params = PhyParams(radio_radius=radius)
    channel = Channel(
        scheduler, params, lambda hid: positions[hid],
        max_speed_ms=max_speed_ms,
    )
    radios = []
    for host_id in range(len(positions)):
        radio = StubRadio().bind(scheduler)
        channel.attach(host_id, radio)
        radios.append(radio)
    return scheduler, channel, radios


def test_grid_matches_full_scan_static():
    import random

    rng = random.Random(42)
    positions = [(rng.uniform(0, 1000), rng.uniform(0, 1000)) for _ in range(60)]
    _, plain, _ = make_channel(positions)
    _, gridded, _ = make_grid_channel(positions)
    assert gridded.speed_bound_ms == 0.0
    for host_id in range(len(positions)):
        assert gridded.neighbors_in_range(host_id) == plain.neighbors_in_range(
            host_id
        )
    assert gridded.stats.grid_rebuilds >= 1
    assert plain.stats.grid_rebuilds == 0


def test_grid_matches_full_scan_for_moving_hosts():
    """Slop inflation keeps the grid a superset while hosts drift."""
    import random

    rng = random.Random(7)
    base = [(rng.uniform(0, 800), rng.uniform(0, 800)) for _ in range(40)]
    speed = 20.0  # m/s

    def make_pos_fn(scheduler):
        def pos(hid):
            # Deterministic drift, magnitude <= speed * t.
            t = scheduler.now
            dx = speed * t * (1 if hid % 2 else -1)
            dy = speed * t * (1 if hid % 3 else -1) * 0.5
            return (base[hid][0] + dx, base[hid][1] + dy)

        return pos

    sched_a = Scheduler()
    plain = Channel(sched_a, PhyParams(radio_radius=100.0),
                    make_pos_fn(sched_a))
    sched_b = Scheduler()
    gridded = Channel(sched_b, PhyParams(radio_radius=100.0),
                      make_pos_fn(sched_b), max_speed_ms=speed * 1.2)
    for hid in range(len(base)):
        plain.attach(hid, StubRadio().bind(sched_a))
        gridded.attach(hid, StubRadio().bind(sched_b))
    for t in (0.0, 0.5, 1.0, 2.0, 3.5, 5.0, 9.0):
        sched_a.run(until=t)
        sched_b.run(until=t)
        for hid in range(len(base)):
            assert gridded.neighbors_in_range(hid) == plain.neighbors_in_range(
                hid
            ), (t, hid)
    assert gridded.stats.grid_rebuilds > 1  # staleness forced rebuilds


def test_grid_invalidated_on_attach_and_detach():
    positions = {0: (0.0, 0.0), 1: (50.0, 0.0), 2: (60.0, 0.0)}
    scheduler = Scheduler()
    channel = Channel(scheduler, PhyParams(radio_radius=100.0),
                      lambda hid: positions[hid], max_speed_ms=0.0)
    channel.attach(0, StubRadio().bind(scheduler))
    channel.attach(1, StubRadio().bind(scheduler))
    assert channel.neighbors_in_range(0) == [1]
    channel.attach(2, StubRadio().bind(scheduler))
    assert channel.neighbors_in_range(0) == [1, 2]
    channel.detach(1)
    assert channel.neighbors_in_range(0) == [2]


def test_grid_candidates_follow_attach_order_after_reattach():
    """Re-attached hosts go to the back of the scan order, exactly like
    the full-scan (dict insertion order) path."""
    positions = {0: (0.0, 0.0), 1: (10.0, 0.0), 2: (20.0, 0.0)}
    scheduler = Scheduler()

    def build(max_speed_ms):
        channel = Channel(scheduler, PhyParams(radio_radius=100.0),
                          lambda hid: positions[hid],
                          max_speed_ms=max_speed_ms)
        for hid in positions:
            channel.attach(hid, StubRadio().bind(scheduler))
        channel.detach(1)
        channel.attach(1, StubRadio().bind(scheduler))
        return channel

    assert build(None).neighbors_in_range(0) == [2, 1]
    assert build(0.0).neighbors_in_range(0) == [2, 1]


def test_speed_bound_validation():
    scheduler, channel, _ = make_channel([(0, 0)])
    with pytest.raises(ValueError):
        channel.set_speed_bound(-1.0)
