"""Channel event tracing."""

from repro.phy.channel import Channel
from repro.phy.params import PhyParams
from repro.sim.engine import Scheduler
from repro.sim.trace import RecordingTracer

from tests.phy.test_channel import StubRadio


def traced_channel(positions):
    scheduler = Scheduler()
    tracer = RecordingTracer()
    channel = Channel(
        scheduler, PhyParams(radio_radius=100.0),
        lambda hid: positions[hid], tracer=tracer,
    )
    for host_id in range(len(positions)):
        channel.attach(host_id, StubRadio().bind(scheduler))
    return scheduler, channel, tracer


def test_tx_and_rx_traced():
    scheduler, channel, tracer = traced_channel([(0, 0), (50, 0)])
    channel.start_transmission(0, "x", 0.001)
    scheduler.run()
    assert tracer.count("tx-start", sender=0) == 1
    assert tracer.count("rx", sender=0, receiver=1) == 1
    assert tracer.count("rx-corrupted") == 0


def test_collision_traced_as_corrupted():
    scheduler, channel, tracer = traced_channel([(0, 0), (50, 0), (100, 0)])
    channel.start_transmission(0, "a", 0.002)
    scheduler.schedule(0.001, channel.start_transmission, 2, "b", 0.002)
    scheduler.run()
    assert tracer.count("rx-corrupted", receiver=1) == 2
    assert tracer.count("rx", receiver=1) == 0


def test_trace_times_match_events():
    scheduler, channel, tracer = traced_channel([(0, 0), (50, 0)])
    channel.start_transmission(0, "x", 0.001)
    scheduler.run()
    tx = tracer.filter("tx-start")[0]
    rx = tracer.filter("rx")[0]
    assert tx.time == 0.0
    assert rx.time == 0.001


def test_tracing_off_by_default_costs_nothing():
    scheduler = Scheduler()
    channel = Channel(
        scheduler, PhyParams(radio_radius=100.0), lambda hid: (0.0, 0.0)
    )
    channel.attach(0, StubRadio().bind(scheduler))
    channel.start_transmission(0, "x", 0.001)
    scheduler.run()  # must not raise
