"""DSSS timing parameters and airtime arithmetic."""

import pytest

from repro.phy.params import PhyParams


def test_paper_defaults():
    params = PhyParams()
    assert params.radio_radius == 500.0
    assert params.bitrate == 1_000_000.0
    assert params.slot_time == pytest.approx(20e-6)
    assert params.sifs == pytest.approx(10e-6)
    assert params.difs == pytest.approx(50e-6)
    assert params.cw_min == 31
    assert params.cw_max == 1023
    assert params.broadcast_payload_bytes == 280


def test_plcp_overhead():
    params = PhyParams()
    assert params.plcp_overhead == pytest.approx(192e-6)


def test_broadcast_airtime_paper_value():
    """280 bytes at 1 Mbit/s + 192 us PLCP = 2.432 ms."""
    assert PhyParams().broadcast_airtime == pytest.approx(2432e-6)


def test_airtime_scales_with_payload():
    params = PhyParams()
    assert params.airtime(0) == pytest.approx(params.plcp_overhead)
    assert params.airtime(125) == pytest.approx(192e-6 + 1000e-6)


def test_hello_airtime_smaller_than_broadcast():
    params = PhyParams()
    assert params.hello_airtime < params.broadcast_airtime


def test_airtime_negative_payload_rejected():
    with pytest.raises(ValueError):
        PhyParams().airtime(-1)


def test_frozen():
    params = PhyParams()
    with pytest.raises(AttributeError):
        params.bitrate = 2e6  # type: ignore[misc]


def test_validation():
    with pytest.raises(ValueError):
        PhyParams(radio_radius=0.0)
    with pytest.raises(ValueError):
        PhyParams(bitrate=-1.0)
    with pytest.raises(ValueError):
        PhyParams(slot_time=0.0)
    with pytest.raises(ValueError):
        PhyParams(cw_min=0)
    with pytest.raises(ValueError):
        PhyParams(cw_min=100, cw_max=50)
