"""Channel behaviour under radio crashes: aborts, detach-mid-frame, re-attach."""

import pytest

from repro.phy.channel import Channel
from repro.phy.params import PhyParams
from repro.sim.engine import Scheduler


class StubRadio:
    def __init__(self):
        self.received = []
        self.corrupted = []
        self.medium_events = []

    def bind(self, scheduler):
        self._scheduler = scheduler
        return self

    def on_medium_state(self, busy):
        self.medium_events.append((self._scheduler.now, busy))

    def on_frame_received(self, frame, sender_id):
        self.received.append((self._scheduler.now, frame, sender_id))

    def on_frame_corrupted(self, frame, sender_id):
        self.corrupted.append((self._scheduler.now, frame, sender_id))


def make_channel(positions, drop_predicate=None):
    scheduler = Scheduler()
    params = PhyParams(radio_radius=100.0)
    channel = Channel(
        scheduler, params, lambda hid: positions[hid], drop_predicate
    )
    radios = []
    for host_id in range(len(positions)):
        radio = StubRadio().bind(scheduler)
        channel.attach(host_id, radio)
        radios.append(radio)
    return scheduler, channel, radios


# ------------------------------------------------------- abort_transmission


def test_abort_mid_frame_delivers_nothing():
    scheduler, channel, radios = make_channel([(0, 0), (50, 0)])
    channel.start_transmission(0, "x", 0.002)
    scheduler.schedule(0.001, channel.abort_transmission, 0)
    scheduler.run()
    assert radios[1].received == []
    assert radios[1].corrupted == []
    assert channel.stats.aborted_frames == 1
    assert channel.stats.truncated_receptions == 1
    assert channel.stats.deliveries == 0


def test_abort_emits_medium_idle_edge():
    scheduler, channel, radios = make_channel([(0, 0), (50, 0)])
    channel.start_transmission(0, "x", 0.002)
    scheduler.schedule(0.001, channel.abort_transmission, 0)
    scheduler.run()
    # Busy edge at tx start (zero-delay event), idle edge at the abort.
    assert radios[1].medium_events == [(0.0, True), (0.001, False)]


def test_abort_non_transmitting_host_is_noop():
    scheduler, channel, radios = make_channel([(0, 0), (50, 0)])
    assert channel.abort_transmission(0) is False
    assert channel.stats.aborted_frames == 0


def test_abort_refunds_airtime():
    scheduler, channel, radios = make_channel([(0, 0), (50, 0)])
    channel.start_transmission(0, "x", 0.002)
    scheduler.schedule(0.0005, channel.abort_transmission, 0)
    scheduler.run()
    assert channel.stats.tx_airtime[0] == pytest.approx(0.0005)
    assert channel.stats.rx_airtime[1] == pytest.approx(0.0005)


def test_abort_leaves_other_transmissions_alone():
    # Hosts 0 and 2 both in range of 1; 0 aborts, 2's frame still completes
    # (corrupted at 1 by the overlap -- corruption is not undone by aborts).
    scheduler, channel, radios = make_channel([(0, 0), (50, 0), (100, 0)])
    channel.start_transmission(0, "a", 0.003)
    scheduler.schedule(0.001, channel.start_transmission, 2, "b", 0.003)
    scheduler.schedule(0.002, channel.abort_transmission, 0)
    scheduler.run()
    assert channel.stats.aborted_frames == 1
    # Host 1 heard overlapping frames: "b" completes but stays corrupted.
    assert [f for _, f, _ in radios[1].corrupted] == ["b"]
    assert radios[1].received == []


# ------------------------------------------------------- detach-mid-frame


def test_detach_transmitting_sender_aborts_frame():
    """A sender crashing mid-own-frame must not KeyError at frame end nor
    deliver from a dead radio."""
    scheduler, channel, radios = make_channel([(0, 0), (50, 0)])
    channel.start_transmission(0, "x", 0.002)
    scheduler.schedule(0.001, channel.detach, 0)
    scheduler.run()
    assert radios[1].received == []
    assert channel.stats.aborted_frames == 1
    assert 0 not in channel.attached_ids
    assert not channel.is_transmitting(0)


def test_detach_receiver_mid_frame_is_safe():
    scheduler, channel, radios = make_channel([(0, 0), (50, 0)])
    channel.start_transmission(0, "x", 0.002)
    scheduler.schedule(0.001, channel.detach, 1)
    scheduler.run()
    assert radios[1].received == []
    # The frame itself completed; only the vanished receiver missed it.
    assert channel.stats.aborted_frames == 0


def test_detach_receiver_then_abort_sender():
    """Both ends dying mid-frame must not raise."""
    scheduler, channel, radios = make_channel([(0, 0), (50, 0)])
    channel.start_transmission(0, "x", 0.002)
    scheduler.schedule(0.0005, channel.detach, 1)
    scheduler.schedule(0.001, channel.detach, 0)
    scheduler.run()
    assert radios[1].received == []
    assert channel.stats.aborted_frames == 1


# ----------------------------------------------------------- re-attach


def test_reattach_after_detach_receives_again():
    scheduler, channel, radios = make_channel([(0, 0), (50, 0)])
    channel.detach(1)
    channel.attach(1, radios[1])
    channel.start_transmission(0, "x", 0.001)
    scheduler.run()
    assert [f for _, f, _ in radios[1].received] == ["x"]


def test_reattach_mid_frame_misses_the_ongoing_frame():
    """Receiver sets freeze at tx start: a radio attaching mid-frame hears
    nothing of it (it powered on after the preamble)."""
    scheduler, channel, radios = make_channel([(0, 0), (50, 0)])
    channel.detach(1)
    channel.start_transmission(0, "x", 0.002)
    scheduler.schedule(0.001, channel.attach, 1, radios[1])
    scheduler.run()
    assert radios[1].received == []
    assert radios[1].corrupted == []
    # ...but the next frame is heard normally.
    channel.start_transmission(0, "y", 0.001)
    scheduler.run()
    assert [f for _, f, _ in radios[1].received] == ["y"]


def test_reattach_same_id_twice_still_rejected():
    scheduler, channel, radios = make_channel([(0, 0)])
    channel.detach(0)
    channel.attach(0, radios[0])
    with pytest.raises(ValueError):
        channel.attach(0, radios[0])


def test_drop_predicate_is_settable_at_runtime():
    scheduler, channel, radios = make_channel([(0, 0), (50, 0)])
    channel.start_transmission(0, "a", 0.001)
    scheduler.run()
    channel.drop_predicate = lambda s, r: True
    channel.start_transmission(0, "b", 0.001)
    scheduler.run()
    assert [f for _, f, _ in radios[1].received] == ["a"]
    assert [f for _, f, _ in radios[1].corrupted] == ["b"]
    assert channel.stats.injected_drops == 1
