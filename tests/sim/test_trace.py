"""Tracer behaviour."""

from repro.sim.trace import NullTracer, RecordingTracer


def test_null_tracer_discards():
    tracer = NullTracer()
    tracer.emit(1.0, "anything", foo=1)  # must not raise


def test_recording_tracer_keeps_records():
    tracer = RecordingTracer()
    tracer.emit(1.0, "tx", host=3)
    tracer.emit(2.0, "rx", host=4)
    assert len(tracer.records) == 2
    assert tracer.records[0].time == 1.0
    assert tracer.records[0].category == "tx"
    assert tracer.records[0].fields == {"host": 3}


def test_filter_by_category():
    tracer = RecordingTracer()
    tracer.emit(1.0, "tx", host=1)
    tracer.emit(2.0, "rx", host=1)
    tracer.emit(3.0, "tx", host=2)
    assert [r.time for r in tracer.filter("tx")] == [1.0, 3.0]


def test_filter_by_fields():
    tracer = RecordingTracer()
    tracer.emit(1.0, "tx", host=1)
    tracer.emit(2.0, "tx", host=2)
    assert [r.time for r in tracer.filter("tx", host=2)] == [2.0]


def test_count_and_clear():
    tracer = RecordingTracer()
    tracer.emit(1.0, "tx")
    tracer.emit(2.0, "tx")
    assert tracer.count("tx") == 2
    tracer.clear()
    assert tracer.count() == 0
