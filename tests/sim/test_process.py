"""Generator-based process/signal layer."""

import pytest

from repro.sim.engine import Scheduler, SimulationError
from repro.sim.process import Process, Signal, Timeout, WaitSignal


def test_timeout_suspends_for_delay(scheduler):
    times = []

    def body():
        times.append(scheduler.now)
        yield Timeout(2.5)
        times.append(scheduler.now)

    Process(scheduler, body())
    scheduler.run()
    assert times == [0.0, 2.5]


def test_process_result_captured(scheduler):
    def body():
        yield Timeout(1.0)
        return "done"

    process = Process(scheduler, body())
    scheduler.run()
    assert process.finished
    assert process.result == "done"


def test_signal_wakes_waiter_with_value(scheduler):
    received = []

    def listener(sig):
        value = yield WaitSignal(sig)
        received.append((scheduler.now, value))

    def emitter(sig):
        yield Timeout(3.0)
        sig.emit("payload")

    sig = Signal("test")
    Process(scheduler, listener(sig))
    Process(scheduler, emitter(sig))
    scheduler.run()
    assert received == [(3.0, "payload")]


def test_signal_wakes_all_waiters_in_order(scheduler):
    order = []

    def listener(sig, name):
        yield WaitSignal(sig)
        order.append(name)

    sig = Signal()
    for name in ("a", "b", "c"):
        Process(scheduler, listener(sig, name))

    def emitter():
        yield Timeout(1.0)
        count = sig.emit()
        # emit() returns synchronously; waiters resume via zero-delay
        # events after the current event finishes.
        order.append(count)

    Process(scheduler, emitter())
    scheduler.run()
    assert order == [3, "a", "b", "c"]


def test_emit_with_no_waiters_returns_zero():
    assert Signal().emit("x") == 0


def test_waiter_rearmed_during_emit_sees_only_next_emit(scheduler):
    hits = []

    def listener(sig):
        yield WaitSignal(sig)
        hits.append("first")
        yield WaitSignal(sig)
        hits.append("second")

    sig = Signal()
    Process(scheduler, listener(sig))

    def emitter():
        yield Timeout(1.0)
        sig.emit()
        yield Timeout(1.0)
        sig.emit()

    Process(scheduler, emitter())
    scheduler.run()
    assert hits == ["first", "second"]


def test_interrupt_stops_process(scheduler):
    progress = []

    def body():
        progress.append("started")
        yield Timeout(10.0)
        progress.append("never")

    process = Process(scheduler, body())
    scheduler.schedule(1.0, process.interrupt)
    scheduler.run()
    assert progress == ["started"]
    assert process.finished


def test_interrupt_removes_signal_waiter(scheduler):
    sig = Signal()

    def body():
        yield WaitSignal(sig)

    process = Process(scheduler, body())
    scheduler.schedule(1.0, process.interrupt)
    scheduler.schedule(2.0, sig.emit)
    scheduler.run()
    assert process.finished


def test_invalid_yield_raises(scheduler):
    def body():
        yield "not-a-condition"

    Process(scheduler, body())
    with pytest.raises(SimulationError):
        scheduler.run()


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Timeout(-1.0)


def test_two_processes_ping_pong(scheduler):
    log = []
    ping, pong = Signal("ping"), Signal("pong")

    def player_a():
        for _ in range(3):
            yield Timeout(1.0)
            log.append(("a", scheduler.now))
            ping.emit()
            yield WaitSignal(pong)

    def player_b():
        for _ in range(3):
            yield WaitSignal(ping)
            log.append(("b", scheduler.now))
            pong.emit()

    Process(scheduler, player_a())
    Process(scheduler, player_b())
    scheduler.run()
    assert log == [
        ("a", 1.0), ("b", 1.0),
        ("a", 2.0), ("b", 2.0),
        ("a", 3.0), ("b", 3.0),
    ]
