"""Deterministic random substreams."""

from repro.sim.randomness import RandomStreams


def test_same_seed_same_stream_values():
    a = RandomStreams(7).stream("mobility")
    b = RandomStreams(7).stream("mobility")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_give_different_streams():
    streams = RandomStreams(7)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_give_different_streams():
    a = RandomStreams(1).stream("x").random()
    b = RandomStreams(2).stream("x").random()
    assert a != b


def test_stream_memoized():
    streams = RandomStreams(3)
    assert streams.stream("s") is streams.stream("s")


def test_drawing_from_one_stream_does_not_perturb_another():
    """The core variance-reduction property."""
    baseline = RandomStreams(9)
    baseline_values = [baseline.stream("mobility").random() for _ in range(5)]

    perturbed = RandomStreams(9)
    for _ in range(1000):
        perturbed.stream("mac").random()  # heavy unrelated use
    perturbed_values = [perturbed.stream("mobility").random() for _ in range(5)]
    assert baseline_values == perturbed_values


def test_derive_seed_stable_and_distinct():
    streams = RandomStreams(42)
    assert streams.derive_seed("abc") == streams.derive_seed("abc")
    assert streams.derive_seed("abc") != streams.derive_seed("abd")


def test_fork_independent_of_parent():
    parent = RandomStreams(5)
    child = parent.fork("rep-1")
    assert child.seed != parent.seed
    assert child.stream("x").random() != parent.stream("x").random()


def test_fork_deterministic():
    a = RandomStreams(5).fork("rep-1").stream("x").random()
    b = RandomStreams(5).fork("rep-1").stream("x").random()
    assert a == b


def test_seed_property():
    assert RandomStreams(11).seed == 11
