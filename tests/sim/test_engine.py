"""Scheduler and Event behaviour."""

import pytest

from repro.sim.engine import Scheduler, SimulationError


def test_clock_starts_at_zero(scheduler):
    assert scheduler.now == 0.0


def test_events_run_in_time_order(scheduler):
    fired = []
    scheduler.schedule(2.0, fired.append, "b")
    scheduler.schedule(1.0, fired.append, "a")
    scheduler.schedule(3.0, fired.append, "c")
    scheduler.run()
    assert fired == ["a", "b", "c"]


def test_clock_advances_to_event_time(scheduler):
    seen = []
    scheduler.schedule(1.5, lambda: seen.append(scheduler.now))
    scheduler.run()
    assert seen == [1.5]
    assert scheduler.now == 1.5


def test_same_time_events_fifo(scheduler):
    fired = []
    for i in range(10):
        scheduler.schedule(1.0, fired.append, i)
    scheduler.run()
    assert fired == list(range(10))


def test_priority_breaks_ties(scheduler):
    fired = []
    scheduler.schedule(1.0, fired.append, "low-priority", priority=5)
    scheduler.schedule(1.0, fired.append, "high-priority", priority=-5)
    scheduler.run()
    assert fired == ["high-priority", "low-priority"]


def test_schedule_at_absolute_time(scheduler):
    fired = []
    scheduler.schedule_at(4.0, fired.append, "x")
    scheduler.run()
    assert scheduler.now == 4.0
    assert fired == ["x"]


def test_scheduling_in_past_raises(scheduler):
    scheduler.schedule(1.0, lambda: None)
    scheduler.run()
    with pytest.raises(SimulationError):
        scheduler.schedule_at(0.5, lambda: None)


def test_negative_delay_raises(scheduler):
    with pytest.raises(SimulationError):
        scheduler.schedule(-0.1, lambda: None)


def test_tiny_negative_delay_clamps_to_zero(scheduler):
    # Float round-off: deadline - now can land at -1e-18 even when the
    # deadline is logically "now".  Such delays must not crash the run.
    fired = []
    scheduler.schedule(1.0, lambda: scheduler.schedule(-1e-18, fired.append, "ok"))
    scheduler.run()
    assert fired == ["ok"]
    assert scheduler.now == 1.0


def test_tiny_negative_delay_boundary(scheduler):
    event = scheduler.schedule(-1e-12, lambda: None)
    assert event.time == 0.0
    with pytest.raises(SimulationError):
        scheduler.schedule(-1.0000001e-12, lambda: None)


def test_cancelled_event_does_not_fire(scheduler):
    fired = []
    event = scheduler.schedule(1.0, fired.append, "cancelled")
    scheduler.schedule(2.0, fired.append, "kept")
    event.cancel()
    scheduler.run()
    assert fired == ["kept"]


def test_cancel_is_idempotent(scheduler):
    event = scheduler.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    scheduler.run()
    assert scheduler.events_processed == 0


def test_events_scheduled_during_run_execute(scheduler):
    fired = []

    def first():
        fired.append("first")
        scheduler.schedule(1.0, fired.append, "second")

    scheduler.schedule(1.0, first)
    scheduler.run()
    assert fired == ["first", "second"]
    assert scheduler.now == 2.0


def test_zero_delay_event_fires_at_current_time(scheduler):
    fired = []

    def outer():
        scheduler.schedule(0.0, fired.append, scheduler.now)

    scheduler.schedule(1.0, outer)
    scheduler.run()
    assert fired == [1.0]


def test_run_until_stops_before_later_events(scheduler):
    fired = []
    scheduler.schedule(1.0, fired.append, "early")
    scheduler.schedule(10.0, fired.append, "late")
    scheduler.run(until=5.0)
    assert fired == ["early"]
    assert scheduler.now == 5.0


def test_run_until_includes_events_at_boundary(scheduler):
    fired = []
    scheduler.schedule(5.0, fired.append, "boundary")
    scheduler.run(until=5.0)
    assert fired == ["boundary"]


def test_run_until_can_continue(scheduler):
    fired = []
    scheduler.schedule(10.0, fired.append, "late")
    scheduler.run(until=5.0)
    scheduler.run()
    assert fired == ["late"]


def test_events_processed_counter(scheduler):
    for i in range(5):
        scheduler.schedule(float(i + 1), lambda: None)
    scheduler.run()
    assert scheduler.events_processed == 5


def test_step_runs_single_event(scheduler):
    fired = []
    scheduler.schedule(1.0, fired.append, 1)
    scheduler.schedule(2.0, fired.append, 2)
    assert scheduler.step() is True
    assert fired == [1]
    assert scheduler.step() is True
    assert fired == [1, 2]
    assert scheduler.step() is False


def test_step_skips_cancelled(scheduler):
    event = scheduler.schedule(1.0, lambda: None)
    event.cancel()
    assert scheduler.step() is False


def test_peek_time(scheduler):
    assert scheduler.peek_time() is None
    event = scheduler.schedule(3.0, lambda: None)
    scheduler.schedule(7.0, lambda: None)
    assert scheduler.peek_time() == 3.0
    event.cancel()
    assert scheduler.peek_time() == 7.0


def test_event_args_passed_through(scheduler):
    seen = []
    scheduler.schedule(1.0, lambda a, b: seen.append((a, b)), 1, "two")
    scheduler.run()
    assert seen == [(1, "two")]


def test_reentrant_run_rejected(scheduler):
    def nested():
        scheduler.run()

    scheduler.schedule(1.0, nested)
    with pytest.raises(SimulationError):
        scheduler.run()


def test_run_until_advances_clock_with_empty_queue(scheduler):
    scheduler.run(until=42.0)
    assert scheduler.now == 42.0


# ---------------------------------------------------- husk compaction


def test_cancelled_husks_are_reclaimed(scheduler):
    """Heavy timer churn must not grow the heap unboundedly."""
    live = scheduler.schedule(1e9, lambda: None)
    high_water = 0
    for i in range(10_000):
        event = scheduler.schedule(1.0 + i * 1e-6, lambda: None)
        event.cancel()
        high_water = max(high_water, scheduler.pending)
    # The heap never held more than ~COMPACT_MIN_SIZE husks at once.
    assert high_water <= 2 * Scheduler.COMPACT_MIN_SIZE
    assert scheduler.pending <= 2 * Scheduler.COMPACT_MIN_SIZE
    assert scheduler.compactions > 0
    assert not live.cancelled


def test_compaction_preserves_event_order(scheduler):
    fired = []
    events = [
        scheduler.schedule(float(i % 7) + 1.0, fired.append, i)
        for i in range(400)
    ]
    for i, event in enumerate(events):
        if i % 5 != 0:
            event.cancel()  # 80% husks: forces at least one compaction
    assert scheduler.compactions > 0
    scheduler.run()
    # Survivors fire in (time, seq) order, i.e. by time then insertion.
    expected = [i for _, i in sorted((events[i].time, i) for i in range(0, 400, 5))]
    assert fired == expected
    assert scheduler.events_processed == len(expected)


def test_cancel_after_fire_does_not_corrupt_accounting(scheduler):
    event = scheduler.schedule(1.0, lambda: None)
    scheduler.run()
    event.cancel()  # no-op: already fired and out of the queue
    assert scheduler.cancelled_pending == 0


def test_compaction_keeps_fifo_ties(scheduler):
    """Same-time events keep FIFO order across a forced compaction."""
    fired = []
    husks = [scheduler.schedule(0.5, lambda: None) for _ in range(200)]
    for i in range(10):
        scheduler.schedule(1.0, fired.append, i)
    for husk in husks:
        husk.cancel()  # triggers compaction mid-way
    assert scheduler.compactions > 0
    scheduler.run()
    assert fired == list(range(10))


# ------------------------------------------------- ordering invariants


def test_event_lt_matches_tuple_order():
    """Event.__lt__ is field-wise but must agree exactly with comparing
    (time, priority, seq) tuples -- the heap stores those tuples, and the
    field-wise form is the documented public contract."""
    from itertools import product

    from repro.sim.engine import Event

    values = [0.0, 1.0, 2.5]
    combos = list(product(values, [-1, 0, 1], [0, 1, 2]))
    events = [Event(t, p, s, lambda: None, ()) for t, p, s in combos]
    for a, ka in zip(events, combos):
        for b, kb in zip(events, combos):
            assert (a < b) == (ka < kb), (ka, kb)


def test_execution_order_is_time_priority_seq(scheduler):
    """Stress the full ordering contract: randomized times with many
    exact ties, mixed priorities, and interleaved cancellations still
    execute in strict (time, priority, seq) order."""
    import random

    rng = random.Random(42)
    fired = []
    scheduled = []
    for i in range(500):
        time = rng.choice([1.0, 1.0, 2.0, 2.5, 3.0])  # force many ties
        priority = rng.choice([-1, 0, 0, 1])
        event = scheduler.schedule_at(time, fired.append, i, priority=priority)
        scheduled.append((time, priority, event.seq, i, event))
    cancelled = set()
    for time, priority, seq, i, event in scheduled:
        if i % 7 == 0:
            event.cancel()
            cancelled.add(i)
    scheduler.run()
    expected = [
        i
        for time, priority, seq, i, _ in sorted(
            s for s in scheduled if s[3] not in cancelled
        )
    ]
    assert fired == expected


def test_peek_time_skips_cancelled_head(scheduler):
    """peek_time sees through cancelled husks at the heap head without
    executing anything."""
    head = scheduler.schedule(1.0, lambda: None)
    scheduler.schedule(2.0, lambda: None)
    assert scheduler.peek_time() == 1.0
    head.cancel()
    assert scheduler.peek_time() == 2.0
    assert scheduler.events_processed == 0
