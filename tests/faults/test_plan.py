"""FaultPlan parsing, validation and serialization."""

import math

import pytest

from repro.faults.plan import (
    BernoulliLossSpec,
    ChurnProcess,
    CrashFault,
    FaultPlan,
    GilbertElliottLossSpec,
    MuteHelloFault,
)


# -------------------------------------------------------------- validation


def test_crash_rejects_negative_time():
    with pytest.raises(ValueError):
        CrashFault(time=-1.0, host_id=0)


def test_crash_rejects_recover_before_crash():
    with pytest.raises(ValueError):
        CrashFault(time=5.0, host_id=0, recover_at=5.0)


def test_mute_rejects_empty_window():
    with pytest.raises(ValueError):
        MuteHelloFault(time=3.0, host_id=0, until=3.0)


def test_churn_rejects_bad_params():
    with pytest.raises(ValueError):
        ChurnProcess(rate=-0.1, downtime=5.0)
    with pytest.raises(ValueError):
        ChurnProcess(rate=0.1, downtime=0.0)
    with pytest.raises(ValueError):
        ChurnProcess(rate=0.1, downtime=5.0, start=10.0, stop=10.0)


def test_loss_specs_reject_out_of_range_probabilities():
    with pytest.raises(ValueError):
        BernoulliLossSpec(p=1.5)
    with pytest.raises(ValueError):
        GilbertElliottLossSpec(p=0.1, r=-0.1)


def test_ge_stationary_loss():
    spec = GilbertElliottLossSpec(p=0.1, r=0.3, loss_good=0.0, loss_bad=1.0)
    # bad fraction = p / (p + r) = 0.25
    assert spec.stationary_loss == pytest.approx(0.25)
    degenerate = GilbertElliottLossSpec(p=0.0, r=0.0, loss_good=0.05)
    assert degenerate.stationary_loss == pytest.approx(0.05)


# ----------------------------------------------------------------- parsing


def test_parse_crash_clause():
    plan = FaultPlan.parse("crash:host=3,at=5,recover=12")
    assert plan.crashes == (CrashFault(time=5.0, host_id=3, recover_at=12.0),)
    assert not plan.is_empty()


def test_parse_permanent_crash():
    plan = FaultPlan.parse("crash:host=3,at=5")
    assert plan.crashes[0].recover_at is None


def test_parse_mute_defaults_to_forever():
    plan = FaultPlan.parse("mute:host=1,at=2")
    assert math.isinf(plan.mutes[0].until)


def test_parse_multiple_clauses():
    plan = FaultPlan.parse(
        "crash:host=0,at=1;mute:host=1,at=2,until=8;"
        "churn:rate=0.01,downtime=5;ge:p=0.05,r=0.5,bad=0.8"
    )
    assert len(plan.crashes) == 1
    assert len(plan.mutes) == 1
    assert plan.churn == ChurnProcess(rate=0.01, downtime=5.0)
    assert plan.loss == GilbertElliottLossSpec(p=0.05, r=0.5, loss_bad=0.8)


def test_parse_bernoulli_loss():
    plan = FaultPlan.parse("loss:p=0.1")
    assert plan.loss == BernoulliLossSpec(p=0.1)


def test_parse_rejects_unknown_clause():
    with pytest.raises(ValueError, match="unknown fault clause"):
        FaultPlan.parse("explode:host=1")


def test_parse_rejects_missing_key():
    with pytest.raises(ValueError, match="missing 'at'"):
        FaultPlan.parse("crash:host=1")


def test_parse_rejects_duplicate_loss():
    with pytest.raises(ValueError, match="multiple loss clauses"):
        FaultPlan.parse("loss:p=0.1;ge:p=0.05,r=0.5")


def test_parse_rejects_non_numeric_value():
    with pytest.raises(ValueError, match="non-numeric"):
        FaultPlan.parse("crash:host=abc,at=5")


def test_parse_empty_spec_gives_empty_plan():
    assert FaultPlan.parse("").is_empty()


def test_parse_at_file(tmp_path):
    plan = FaultPlan.parse("crash:host=2,at=4;churn:rate=0.02,downtime=3")
    path = tmp_path / "plan.json"
    path.write_text(plan.to_json())
    assert FaultPlan.parse(f"@{path}") == plan


# ----------------------------------------------------------- serialization


def test_json_round_trip_all_fields():
    plan = FaultPlan(
        crashes=(
            CrashFault(time=5.0, host_id=3, recover_at=12.0),
            CrashFault(time=7.0, host_id=4),
        ),
        mutes=(MuteHelloFault(time=2.0, host_id=1),),
        churn=ChurnProcess(rate=0.01, downtime=5.0, start=10.0),
        loss=GilbertElliottLossSpec(p=0.05, r=0.5, loss_bad=0.8),
    )
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_json_round_trip_bernoulli():
    plan = FaultPlan(loss=BernoulliLossSpec(p=0.25))
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_empty_plan_serializes_to_empty_dict():
    assert FaultPlan().to_dict() == {}
    assert FaultPlan.from_dict({}) == FaultPlan()
