"""FaultInjector: plan execution, churn determinism, loss composition."""

import pytest

from repro.experiments.topologies import build_static_network, line_positions
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    BernoulliLossSpec,
    ChurnProcess,
    CrashFault,
    FaultPlan,
    MuteHelloFault,
)
from repro.phy.params import PhyParams
from repro.schemes.flooding import FloodingScheme
from repro.sim.engine import Scheduler
from repro.sim.randomness import RandomStreams


def make_network(n=4, spacing=50.0):
    scheduler = Scheduler()
    network, metrics = build_static_network(
        scheduler,
        line_positions(n, spacing),
        FloodingScheme,
        params=PhyParams(radio_radius=100.0),
    )
    return scheduler, network, metrics


def install(scheduler, network, plan, seed=0, horizon=100.0):
    injector = FaultInjector(
        scheduler, network, plan, RandomStreams(seed), horizon=horizon
    )
    injector.install()
    return injector


def test_scheduled_crash_and_recover_execute():
    scheduler, network, metrics = make_network()
    plan = FaultPlan(crashes=(CrashFault(time=1.0, host_id=2, recover_at=3.0),))
    injector = install(scheduler, network, plan)
    scheduler.run(until=2.0)
    assert not network.hosts[2].alive
    assert network.alive_ids() == {0, 1, 3}
    scheduler.run(until=4.0)
    assert network.hosts[2].alive
    assert [(e.time, e.kind, e.host_id) for e in injector.trace] == [
        (1.0, "crash", 2),
        (3.0, "recover", 2),
    ]
    assert [(e.time, e.kind, e.host_id) for e in metrics.fault_events] == [
        (1.0, "crash", 2),
        (3.0, "recover", 2),
    ]


def test_overlapping_crashes_are_lenient():
    """Explicit plan + churn can double-crash a host; extras are no-ops."""
    scheduler, network, _ = make_network()
    plan = FaultPlan(
        crashes=(
            CrashFault(time=1.0, host_id=2, recover_at=5.0),
            CrashFault(time=2.0, host_id=2, recover_at=3.0),
        )
    )
    injector = install(scheduler, network, plan)
    scheduler.run(until=10.0)
    assert network.hosts[2].alive
    # Only the first crash and first recover actually executed.
    kinds = [(e.kind, e.host_id) for e in injector.trace]
    assert kinds == [("crash", 2), ("recover", 2)]


def test_mute_records_event_and_suppresses():
    scheduler, network, _ = make_network()
    plan = FaultPlan(mutes=(MuteHelloFault(time=1.0, host_id=0, until=5.0),))
    injector = install(scheduler, network, plan)
    scheduler.run(until=2.0)
    assert injector.trace[0].kind == "hello-mute"
    assert network.hosts[0]._hello_muted_until == 5.0


def test_churn_expansion_is_deterministic():
    def churn_trace(seed):
        scheduler, network, _ = make_network(n=6)
        plan = FaultPlan(churn=ChurnProcess(rate=0.05, downtime=4.0))
        injector = install(scheduler, network, plan, seed=seed, horizon=60.0)
        scheduler.run(until=60.0)
        return [(e.time, e.kind, e.host_id) for e in injector.trace]

    a = churn_trace(seed=42)
    b = churn_trace(seed=42)
    c = churn_trace(seed=43)
    assert a == b
    assert len(a) > 0
    assert a != c


def test_churn_respects_window():
    scheduler, network, _ = make_network(n=6)
    plan = FaultPlan(
        churn=ChurnProcess(rate=0.5, downtime=2.0, start=10.0, stop=20.0)
    )
    injector = install(scheduler, network, plan, horizon=60.0)
    scheduler.run(until=60.0)
    crashes = [e for e in injector.trace if e.kind == "crash"]
    assert crashes, "rate=0.5 over 6 hosts for 10 s should crash someone"
    assert all(10.0 < e.time < 20.0 for e in crashes)


def test_unbounded_churn_without_horizon_raises():
    scheduler, network, _ = make_network()
    plan = FaultPlan(churn=ChurnProcess(rate=0.1, downtime=2.0))
    injector = FaultInjector(
        scheduler, network, plan, RandomStreams(0), horizon=None
    )
    with pytest.raises(ValueError, match="horizon"):
        injector.install()


def test_loss_model_installed_on_channel():
    scheduler, network, _ = make_network()
    plan = FaultPlan(loss=BernoulliLossSpec(p=1.0))
    install(scheduler, network, plan)
    assert network.channel.drop_predicate(0, 1) is True


def test_loss_composes_with_base_drop_predicate():
    scheduler = Scheduler()
    network, _ = build_static_network(
        scheduler,
        line_positions(3, 50.0),
        FloodingScheme,
        params=PhyParams(radio_radius=100.0),
        drop_predicate=lambda s, r: (s, r) == (0, 1),
    )
    plan = FaultPlan(loss=BernoulliLossSpec(p=0.0))
    install(scheduler, network, plan)
    # Base predicate still applies even though the fault loss never drops.
    assert network.channel.drop_predicate(0, 1) is True
    assert network.channel.drop_predicate(1, 2) is False


def test_empty_plan_installs_nothing():
    scheduler, network, _ = make_network()
    injector = install(scheduler, network, FaultPlan())
    scheduler.run(until=10.0)
    assert injector.trace == []
    assert network.channel.drop_predicate is None
