"""Link-loss process behaviour: rates, burstiness, per-link determinism."""

import pytest

from repro.faults.loss import BernoulliLoss, GilbertElliottLoss, make_loss_model
from repro.faults.plan import BernoulliLossSpec, GilbertElliottLossSpec
from repro.sim.randomness import RandomStreams


def drop_rate(model, n=4000, link=(0, 1)):
    return sum(model.should_drop(*link) for _ in range(n)) / n


def test_bernoulli_empirical_rate():
    model = BernoulliLoss(BernoulliLossSpec(p=0.2), RandomStreams(1))
    assert drop_rate(model) == pytest.approx(0.2, abs=0.03)


def test_bernoulli_zero_p_never_drops():
    model = BernoulliLoss(BernoulliLossSpec(p=0.0), RandomStreams(1))
    assert drop_rate(model, n=200) == 0.0


def test_links_are_independent_streams():
    """The sequence on link 0->1 must not depend on traffic crossing 2->3."""
    a = BernoulliLoss(BernoulliLossSpec(p=0.5), RandomStreams(7))
    b = BernoulliLoss(BernoulliLossSpec(p=0.5), RandomStreams(7))
    # Interleave unrelated traffic on model b only.
    seq_a = []
    seq_b = []
    for _ in range(100):
        seq_a.append(a.should_drop(0, 1))
        b.should_drop(2, 3)
        seq_b.append(b.should_drop(0, 1))
    assert seq_a == seq_b


def test_directed_links_are_distinct():
    model = BernoulliLoss(BernoulliLossSpec(p=0.5), RandomStreams(7))
    fwd = [model.should_drop(0, 1) for _ in range(200)]
    model2 = BernoulliLoss(BernoulliLossSpec(p=0.5), RandomStreams(7))
    rev = [model2.should_drop(1, 0) for _ in range(200)]
    assert fwd != rev


def test_ge_starts_good_and_matches_stationary_loss():
    spec = GilbertElliottLossSpec(p=0.05, r=0.2, loss_good=0.0, loss_bad=1.0)
    model = GilbertElliottLoss(spec, RandomStreams(3))
    assert model.link_state(0, 1) == "good"
    assert drop_rate(model, n=8000) == pytest.approx(
        spec.stationary_loss, abs=0.05
    )


def test_ge_losses_are_bursty():
    """At equal average loss, smaller r must produce longer loss runs."""

    def mean_run_length(model, n=8000):
        runs = []
        current = 0
        for _ in range(n):
            if model.should_drop(0, 1):
                current += 1
            elif current:
                runs.append(current)
                current = 0
        if current:
            runs.append(current)
        return sum(runs) / len(runs)

    bursty = GilbertElliottLoss(
        GilbertElliottLossSpec(p=0.02, r=0.1), RandomStreams(5)
    )
    memoryless = BernoulliLoss(
        BernoulliLossSpec(p=bursty.spec.stationary_loss), RandomStreams(5)
    )
    # Mean bad sojourn is 1/r = 10 frames; Bernoulli runs average ~1.2.
    assert mean_run_length(bursty) > 3 * mean_run_length(memoryless)


def test_ge_deterministic_across_instances():
    spec = GilbertElliottLossSpec(p=0.1, r=0.3, loss_bad=0.8)
    a = GilbertElliottLoss(spec, RandomStreams(11))
    b = GilbertElliottLoss(spec, RandomStreams(11))
    seq_a = [a.should_drop(4, 9) for _ in range(500)]
    seq_b = [b.should_drop(4, 9) for _ in range(500)]
    assert seq_a == seq_b


def test_make_loss_model_dispatch():
    streams = RandomStreams(0)
    assert isinstance(
        make_loss_model(BernoulliLossSpec(p=0.1), streams), BernoulliLoss
    )
    assert isinstance(
        make_loss_model(GilbertElliottLossSpec(p=0.1, r=0.5), streams),
        GilbertElliottLoss,
    )
    with pytest.raises(TypeError):
        make_loss_model(object(), streams)
