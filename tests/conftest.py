"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.phy.params import PhyParams
from repro.sim.engine import Scheduler


@pytest.fixture
def scheduler() -> Scheduler:
    return Scheduler()


@pytest.fixture
def params() -> PhyParams:
    return PhyParams()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)
