"""Resource profiles: collection, serialization, aggregation."""

from __future__ import annotations

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.io import result_from_dict, result_to_dict
from repro.experiments.runner import run_broadcast_simulation
from repro.perf import KernelPerf
from repro.telemetry.resources import (
    ResourceMonitor,
    ResourceProfile,
    peak_rss_bytes,
    subsystem_wall_estimate,
)

TINY = ScenarioConfig(
    scheme="flooding", map_units=1, num_hosts=12, num_broadcasts=3, seed=1
)


def test_peak_rss_is_positive_on_posix():
    assert peak_rss_bytes() > 1 << 20  # any Python process exceeds 1 MiB


def test_subsystem_estimate_partitions_wall_time():
    perf = KernelPerf()
    perf.events_processed = 600
    perf.transmissions = 300
    perf.hello_updates = 100
    split = subsystem_wall_estimate(2.0, perf)
    assert {k for k, v in split.items() if v > 0} == {
        "scheduler", "channel", "hello",
    }
    assert sum(split.values()) == pytest.approx(2.0)
    assert split["scheduler"] == pytest.approx(1.2)  # 600/1000 of 2s


def test_subsystem_estimate_degenerate_cases():
    assert subsystem_wall_estimate(1.0, None) == {}
    assert subsystem_wall_estimate(0.0, KernelPerf()) == {}
    assert subsystem_wall_estimate(1.0, KernelPerf()) == {}  # no activity


def test_monitor_brackets_a_run():
    monitor = ResourceMonitor().start()
    junk = [list(range(100)) for _ in range(1000)]  # allocate something
    profile = monitor.finish(0.5, None)
    assert profile.peak_rss_bytes > 0
    assert profile.wall_time == 0.5
    assert profile.gc_collections >= 0
    del junk


def test_every_simulation_result_carries_resources():
    result = run_broadcast_simulation(TINY)
    profile = result.resources
    assert profile is not None
    assert profile.peak_rss_bytes > 0
    assert profile.wall_time == result.wall_time
    assert sum(profile.subsystem_wall.values()) > 0


def test_resources_round_trip_through_json():
    result = run_broadcast_simulation(TINY)
    data = result_to_dict(result)
    assert data["resources"]["peak_rss_bytes"] == result.resources.peak_rss_bytes
    loaded = result_from_dict(data)
    assert loaded.resources is not None
    assert loaded.resources.as_dict() == result.resources.as_dict()


def test_pre_resources_dicts_load_with_none():
    result = run_broadcast_simulation(TINY)
    data = result_to_dict(result)
    data.pop("resources")  # a dict written before the field existed
    assert result_from_dict(data).resources is None


def test_resources_excluded_from_equality():
    a = run_broadcast_simulation(TINY)
    b = run_broadcast_simulation(TINY)
    assert a.resources is not b.resources
    assert a == b  # compare=False on the noisy fields


def test_profile_merge_maxes_peaks_and_sums_counters():
    a = ResourceProfile(
        peak_rss_bytes=100, gc_collections=2, gc_objects_delta=10,
        wall_time=1.0, subsystem_wall={"scheduler": 0.6, "channel": 0.4},
    )
    b = ResourceProfile(
        peak_rss_bytes=300, gc_collections=1, gc_objects_delta=-4,
        wall_time=2.0, subsystem_wall={"scheduler": 1.5, "mac": 0.5},
    )
    merged = a.merge(b)
    assert merged is a
    assert merged.peak_rss_bytes == 300
    assert merged.gc_collections == 3
    assert merged.gc_objects_delta == 6
    assert merged.wall_time == 3.0
    assert merged.subsystem_wall == {
        "scheduler": 2.1, "channel": 0.4, "mac": 0.5,
    }


def test_profile_dict_round_trip():
    profile = ResourceProfile(
        peak_rss_bytes=7, gc_collections=1, gc_objects_delta=-2,
        wall_time=0.25, subsystem_wall={"mac": 0.25},
    )
    assert ResourceProfile.from_dict(profile.as_dict()) == profile
    assert ResourceProfile.from_dict({}) == ResourceProfile()
