"""Prometheus exposition edge cases: escaping, cumulativity, concurrency."""

from __future__ import annotations

import threading

import pytest

from repro.telemetry.registry import disarm
from repro.telemetry.expose import (
    CONTENT_TYPE,
    render_prometheus,
    validate_exposition,
)
from repro.telemetry.registry import MetricsRegistry


def test_content_type_pins_format_version():
    assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"


def test_empty_registry_renders_empty_and_validates():
    assert render_prometheus(MetricsRegistry()) == ""
    assert validate_exposition("") == {}


def test_disarmed_global_renders_empty(fresh_registry):
    disarm()
    assert render_prometheus() == ""


def test_counter_help_type_and_value(fresh_registry):
    fresh_registry.counter("t_total", "Things counted.").inc(42)
    text = render_prometheus(fresh_registry)
    assert "# HELP t_total Things counted.\n" in text
    assert "# TYPE t_total counter\n" in text
    assert "t_total 42.0\n" in text
    assert validate_exposition(text) == {"t_total": "counter"}


@pytest.mark.parametrize(
    "raw, escaped",
    [
        ('say "hi"', r"say \"hi\""),
        ("back\\slash", r"back\\slash"),
        ("two\nlines", r"two\nlines"),
        ('all\\of "them"\ntogether', r'all\\of \"them\"\ntogether'),
    ],
)
def test_label_value_escaping(fresh_registry, raw, escaped):
    fresh_registry.counter("t_total", "", ("scheme",)).labels(raw).inc()
    text = render_prometheus(fresh_registry)
    assert f't_total{{scheme="{escaped}"}} 1.0' in text
    # The validator must accept what the renderer emits...
    validate_exposition(text)
    # ...and no raw newline may survive inside any sample line.
    for line in text.splitlines():
        assert "\n" not in line


def test_help_text_escaping(fresh_registry):
    fresh_registry.counter("t_total", "line one\nline two \\ slash")
    text = render_prometheus(fresh_registry)
    assert r"# HELP t_total line one\nline two \\ slash" in text
    validate_exposition(text)


def test_histogram_exposition_is_cumulative_with_inf(fresh_registry):
    h = fresh_registry.histogram("t_seconds", "Times.", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 0.7, 5.0):
        h.observe(v)
    text = render_prometheus(fresh_registry)
    assert 't_seconds_bucket{le="0.1"} 1.0' in text
    assert 't_seconds_bucket{le="1.0"} 3.0' in text
    assert 't_seconds_bucket{le="+Inf"} 4.0' in text
    assert "t_seconds_count 4.0" in text
    assert "t_seconds_sum 6.25" in text
    assert validate_exposition(text) == {"t_seconds": "histogram"}


def test_labeled_histogram_keeps_le_last(fresh_registry):
    fam = fresh_registry.histogram(
        "t_seconds", "", ("endpoint",), buckets=(1.0,)
    )
    fam.labels("/stats").observe(0.5)
    text = render_prometheus(fresh_registry)
    assert 't_seconds_bucket{endpoint="/stats",le="1.0"} 1.0' in text
    validate_exposition(text)


def test_validator_rejects_broken_documents():
    with pytest.raises(ValueError, match="no # TYPE"):
        validate_exposition("loose_metric 1.0")
    with pytest.raises(ValueError, match="malformed TYPE"):
        validate_exposition("# TYPE t summary")
    with pytest.raises(ValueError, match="malformed sample"):
        validate_exposition("# TYPE t counter\nt one")
    bad_cumulative = (
        "# TYPE h histogram\n"
        'h_bucket{le="1.0"} 5.0\n'
        'h_bucket{le="+Inf"} 3.0\n'
        "h_sum 1.0\nh_count 3.0"
    )
    with pytest.raises(ValueError, match="not cumulative"):
        validate_exposition(bad_cumulative)
    missing_inf = "# TYPE h histogram\n" 'h_bucket{le="1.0"} 1.0\nh_count 1.0'
    with pytest.raises(ValueError, match=r"\+Inf"):
        validate_exposition(missing_inf)


def test_nonfinite_values_render(fresh_registry):
    fresh_registry.gauge("t_gauge").set(float("nan"))
    text = render_prometheus(fresh_registry)
    assert "t_gauge NaN" in text
    validate_exposition(text)


def test_scrape_during_concurrent_updates_is_consistent(fresh_registry):
    """Every scraped document must be internally consistent while 4
    writer threads hammer the registry: bucket counts cumulative, +Inf
    equal to _count, every line well-formed (the snapshot-under-lock
    guarantee)."""
    hist = fresh_registry.histogram("t_seconds", buckets=(0.01, 0.1, 1.0))
    ctr = fresh_registry.counter("t_total", "", ("worker",))
    stop = threading.Event()

    def writer(worker: int) -> None:
        child = ctr.labels(str(worker))
        value = 0.001
        while not stop.is_set():
            hist.observe(value)
            child.inc()
            value = (value * 31) % 2.0

    threads = [
        threading.Thread(target=writer, args=(i,), daemon=True)
        for i in range(4)
    ]
    for t in threads:
        t.start()
    try:
        for _ in range(50):
            text = render_prometheus(fresh_registry)
            types = validate_exposition(text)  # raises on any tear
            assert types == {"t_seconds": "histogram", "t_total": "counter"}
    finally:
        stop.set()
        for t in threads:
            t.join(5)
