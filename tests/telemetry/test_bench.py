"""Bench history: record, load, rolling-baseline regression checks."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.bench import (
    check_history,
    flatten_metrics,
    infer_bench_name,
    load_history,
    record_entry,
)

BENCH_DOC = {
    "bench": "microbench scenario",
    "platform": {"python": "3.11", "cpus": 8},
    "scenario": {"hosts": 100},
    "events_per_sec": 40000.0,
    "wall_time": 1.25,
    "sweep": [
        {"N": 100, "speedup": 2.0},
        {"N": 400, "speedup": 3.5},
    ],
    "vector_ok": True,
}


def write_bench(path, doc=BENCH_DOC):
    path.write_text(json.dumps(doc))
    return path


class TestFlatten:
    def test_dotted_paths_and_list_indices(self):
        flat = flatten_metrics(BENCH_DOC)
        assert flat["events_per_sec"] == 40000.0
        assert flat["sweep.0.speedup"] == 2.0
        assert flat["sweep.1.N"] == 400.0

    def test_context_subtrees_and_bools_excluded(self):
        flat = flatten_metrics(BENCH_DOC)
        assert not any(k.startswith("platform") for k in flat)
        assert not any(k.startswith("scenario") for k in flat)
        assert "vector_ok" not in flat

    def test_infer_name(self):
        assert infer_bench_name("BENCH_kernel.json") == "kernel"
        assert infer_bench_name("/x/BENCH_scheme_zoo.json") == "scheme_zoo"
        assert infer_bench_name("other.json") == "other"


class TestRecordAndLoad:
    def test_record_appends_and_loads(self, tmp_path):
        bench = write_bench(tmp_path / "BENCH_kernel.json")
        history = tmp_path / "history.jsonl"
        entry = record_entry(bench, history, timestamp="2026-08-08T00:00:00")
        assert entry["bench"] == "kernel"
        assert entry["v"] == 1
        record_entry(bench, history, timestamp="2026-08-08T01:00:00")
        entries = load_history(history)
        assert len(entries) == 2
        assert entries[0]["metrics"]["events_per_sec"] == 40000.0

    def test_record_rejects_metricless_doc(self, tmp_path):
        bench = write_bench(tmp_path / "b.json", {"platform": {"cpus": 8}})
        with pytest.raises(ValueError, match="no numeric metrics"):
            record_entry(bench, tmp_path / "h.jsonl")

    def test_name_filter(self, tmp_path):
        history = tmp_path / "h.jsonl"
        bench = write_bench(tmp_path / "BENCH_kernel.json")
        record_entry(bench, history)
        record_entry(bench, history, name="other")
        assert len(load_history(history, name="kernel")) == 1
        assert len(load_history(history)) == 2

    def test_missing_history_is_empty(self, tmp_path):
        assert load_history(tmp_path / "nope.jsonl") == []

    def test_torn_tail_dropped_midfile_corruption_raises(self, tmp_path):
        history = tmp_path / "h.jsonl"
        bench = write_bench(tmp_path / "BENCH_kernel.json")
        record_entry(bench, history)
        with history.open("a") as fh:
            fh.write('{"v": 1, "bench": "kernel", "metr')  # crash mid-append
        assert len(load_history(history)) == 1
        # a complete-but-garbage line *followed by* a valid one is real
        # corruption, not a torn tail, and must raise
        with history.open("a") as fh:
            fh.write("\n")
        record_entry(bench, history)
        with pytest.raises(ValueError, match="corrupt history line"):
            load_history(history)


class TestCheck:
    def _seed(self, tmp_path, values, metric="events_per_sec"):
        history = tmp_path / "h.jsonl"
        for i, v in enumerate(values):
            bench = write_bench(
                tmp_path / "BENCH_kernel.json", {metric: v, "wall_time": 9.9}
            )
            record_entry(bench, history, timestamp=f"2026-08-08T00:0{i}:00")
        return history

    def test_single_entry_passes_bootstrap(self, tmp_path):
        history = self._seed(tmp_path, [100.0])
        report = check_history(history)
        assert report.ok
        assert "no baseline yet" in report.format()

    def test_stable_metrics_pass(self, tmp_path):
        history = self._seed(tmp_path, [100.0, 101.0, 99.0, 100.5])
        report = check_history(history)
        assert report.ok
        assert report.verdicts[0].metric == "events_per_sec"

    def test_regression_fails_and_formats(self, tmp_path):
        history = self._seed(tmp_path, [100.0, 102.0, 98.0, 60.0])
        report = check_history(history, threshold=0.2)
        assert not report.ok
        (verdict,) = report.regressions
        assert verdict.metric == "events_per_sec"
        assert verdict.baseline == 100.0  # median of 100, 102, 98
        assert verdict.change == pytest.approx(-0.4)
        assert "REGRESSED" in report.format()
        assert "FAIL" in report.format()

    def test_median_baseline_shrugs_off_one_noisy_run(self, tmp_path):
        # One crazy-fast outlier must not inflate the baseline and flag
        # a normal follow-up run as a regression.
        history = self._seed(tmp_path, [100.0, 500.0, 101.0, 99.0, 100.0])
        assert check_history(history, threshold=0.2).ok

    def test_window_bounds_the_baseline(self, tmp_path):
        # Old slow entries fall out of a window=2 baseline.
        history = self._seed(tmp_path, [10.0, 10.0, 100.0, 100.0, 95.0])
        assert check_history(history, window=2).ok

    def test_ungated_metrics_never_fail(self, tmp_path):
        history = self._seed(tmp_path, [1.0, 50.0], metric="wall_seconds")
        report = check_history(history)
        assert report.ok
        assert report.verdicts == []

    def test_new_metric_reported_not_failed(self, tmp_path):
        history = tmp_path / "h.jsonl"
        record_entry(
            write_bench(tmp_path / "b.json", {"wall": 1.0}), history
        )
        record_entry(
            write_bench(tmp_path / "b.json", {"wall": 1.0, "speedup": 2.0}),
            history,
        )
        report = check_history(history)
        assert report.ok
        assert report.new_metrics == ["speedup"]

    def test_parameter_validation(self, tmp_path):
        history = self._seed(tmp_path, [100.0])
        with pytest.raises(ValueError, match="threshold"):
            check_history(history, threshold=-0.1)
        with pytest.raises(ValueError, match="window"):
            check_history(history, window=0)


def test_repo_bench_documents_flatten_to_gated_metrics():
    """The committed BENCH_*.json files must keep yielding gated metrics,
    otherwise the CI bench gate silently checks nothing."""
    from pathlib import Path

    repo = Path(__file__).resolve().parents[2]
    for name in ("BENCH_kernel.json", "BENCH_scale.json"):
        doc = json.loads((repo / name).read_text())
        flat = flatten_metrics(doc)
        assert any(
            "events_per_sec" in k or "speedup" in k for k in flat
        ), name
