"""Telemetry test fixtures."""

from __future__ import annotations

import pytest

from repro.telemetry.registry import MetricsRegistry, arm, disarm, registry


@pytest.fixture
def fresh_registry():
    """Arm a fresh isolated registry; restore prior state on teardown.

    Telemetry arming is process-global, so tests must never leak their
    registry (or their disarming) into the rest of the suite.
    """
    previous = registry()
    reg = MetricsRegistry()
    arm(reg)
    yield reg
    if previous is None:
        disarm()
    else:
        arm(previous)
