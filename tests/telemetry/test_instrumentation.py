"""Telemetry threaded through runner / cache / campaigns, and the two
core guarantees: zero observable effect disarmed, zero result drift armed.
"""

from __future__ import annotations

from repro.campaigns.planner import plan_campaign
from repro.campaigns.queue import CampaignExecutor
from repro.campaigns.spec import spec_from_dict
from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import run_broadcast_simulation
from repro.telemetry import counter_value
from repro.telemetry.registry import arm, disarm

from tests.integration.test_determinism import fingerprint

TINY = ScenarioConfig(
    scheme="flooding", map_units=1, num_hosts=12, num_broadcasts=3, seed=1
)


def tiny_plan():
    return plan_campaign(spec_from_dict({
        "name": "telemetry-exec",
        "grid": {"scheme": ["flooding"], "seed": [1, 2, 3, 4]},
        "scenario": {"map_units": 1, "num_hosts": 12, "num_broadcasts": 3},
    }))


def test_armed_telemetry_does_not_change_results(fresh_registry):
    armed = fingerprint(run_broadcast_simulation(TINY))
    disarm()
    disarmed = fingerprint(run_broadcast_simulation(TINY))
    assert armed == disarmed


def test_disarmed_runner_records_nothing(fresh_registry, tmp_path):
    disarm()
    runner = ParallelRunner(max_workers=1, cache_dir=tmp_path / "cache")
    runner.run_many([TINY])
    arm(fresh_registry)
    assert len(fresh_registry) == 0


def test_runner_counters_by_source(fresh_registry, tmp_path):
    runner = ParallelRunner(max_workers=1, cache_dir=tmp_path / "cache")
    runner.run_many([TINY, TINY.with_overrides(seed=2)])
    warm = ParallelRunner(max_workers=1, cache_dir=tmp_path / "cache")
    warm.run_many([TINY, TINY.with_overrides(seed=2), TINY.with_overrides(seed=3)])
    assert counter_value("repro_runner_runs_started_total") == 5.0
    assert counter_value("repro_runner_runs_completed_total", source="sim") == 3.0
    assert counter_value("repro_runner_runs_completed_total", source="cache") == 2.0
    assert counter_value("repro_cache_lookups_total", outcome="hit") == 2.0
    assert counter_value("repro_cache_lookups_total", outcome="miss") == 3.0
    assert counter_value("repro_cache_writes_total") == 3.0
    hist = fresh_registry.histogram("repro_runner_run_wall_seconds")
    assert hist.labels().count == 3  # cache hits never observed


def test_cache_prune_counts_evictions(fresh_registry, tmp_path):
    runner = ParallelRunner(max_workers=1, cache_dir=tmp_path / "cache")
    runner.run_many([TINY, TINY.with_overrides(seed=2)])
    report = runner.cache.prune(max_bytes=0)
    assert report.removed == 2
    assert counter_value("repro_cache_evictions_total") == 2.0


def test_runner_perf_events_per_sec_excludes_cached_runs(tmp_path):
    """Regression pin: cache hits must not count into events/sec.

    A cached result's wall_time is the *original* run's measurement; if
    a warm runner folded those into its throughput aggregate, events/sec
    would report simulation speed it never achieved.
    """
    cold = ParallelRunner(max_workers=1, cache_dir=tmp_path / "cache")
    cold.run_many([TINY])
    assert cold.perf.simulated == 1
    assert cold.perf.events > 0

    warm = ParallelRunner(max_workers=1, cache_dir=tmp_path / "cache")
    results = warm.run_many([TINY])
    assert results[0].from_cache
    assert warm.perf.cache_hits == 1
    assert warm.perf.simulated == 0
    assert warm.perf.events == 0
    assert warm.perf.sim_wall_time == 0.0
    assert warm.perf.events_per_sec == 0.0


def test_campaign_executor_metrics(fresh_registry, tmp_path):
    plan = tiny_plan()
    directory = tmp_path / "camp"
    executor = CampaignExecutor(
        plan, directory, max_workers=1, checkpoint_every=2
    )
    outcome = executor.run()
    assert outcome.status == "complete"
    # fresh campaign: no resume recorded, queue drained to zero
    assert counter_value("repro_campaign_resumes_total") == 0.0
    assert counter_value("repro_campaign_queue_depth") == 0.0
    assert counter_value("repro_checkpoint_appends_total") == 4.0
    chunks = fresh_registry.histogram("repro_campaign_chunk_seconds")
    assert chunks.labels().count == 2  # 4 runs / checkpoint_every=2
    assert counter_value("repro_checkpoint_flushes_total") >= 2.0

    # second session over the same directory is a resume (all cache hits)
    CampaignExecutor(
        plan, directory, max_workers=1, checkpoint_every=2
    ).run()
    assert counter_value("repro_campaign_resumes_total") == 1.0


def test_campaign_resources_block_is_opt_in(tmp_path):
    import json

    plan = tiny_plan()
    executor = CampaignExecutor(
        plan, tmp_path / "camp", max_workers=1, include_resources=True
    )
    executor.run()
    payload = json.loads((tmp_path / "camp" / "results.json").read_text())
    block = payload["resources"]
    assert block["runs_sampled"] == 4
    assert block["peak_rss_bytes"] > 0
    assert block["wall_time"] > 0

    # default (opt-out) payload stays free of host-machine noise
    executor2 = CampaignExecutor(plan, tmp_path / "camp2", max_workers=1)
    executor2.run()
    payload2 = json.loads((tmp_path / "camp2" / "results.json").read_text())
    assert "resources" not in payload2


def test_simulation_overhead_guard_is_cheap_smoke(fresh_registry):
    """Armed or not, the per-site guard is one global read; this smoke
    just pins that running armed doesn't explode (the real overhead
    ceiling lives in benchmarks/test_telemetry_overhead.py)."""
    result = run_broadcast_simulation(TINY)
    assert result.events_processed > 0
