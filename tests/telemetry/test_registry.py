"""Metric registry semantics: types, labels, arming, thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    arm,
    counter_value,
    disarm,
    registry,
)


class TestCounter:
    def test_increments(self, fresh_registry):
        c = fresh_registry.counter("t_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self, fresh_registry):
        c = fresh_registry.counter("t_total")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_labeled_children_are_independent(self, fresh_registry):
        fam = fresh_registry.counter("t_total", "", ("outcome",))
        fam.labels("hit").inc(3)
        fam.labels("miss").inc()
        assert fam.labels("hit").value == 3.0
        assert fam.labels(outcome="miss").value == 1.0

    def test_same_labels_same_child(self, fresh_registry):
        fam = fresh_registry.counter("t_total", "", ("a", "b"))
        assert fam.labels("x", "y") is fam.labels(a="x", b="y")


class TestGauge:
    def test_set_inc_dec(self, fresh_registry):
        g = fresh_registry.gauge("t_depth")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0

    def test_can_go_negative(self, fresh_registry):
        g = fresh_registry.gauge("t_depth")
        g.dec(4)
        assert g.value == -4.0


class TestHistogram:
    def test_cumulative_buckets_and_inf(self, fresh_registry):
        h = fresh_registry.histogram("t_seconds", buckets=(1.0, 5.0))
        for v in (0.5, 0.9, 3.0, 100.0):
            h.observe(v)
        assert h.labels().cumulative() == [(1.0, 2), (5.0, 3), (float("inf"), 4)]
        assert h.labels().count == 4
        assert h.labels().sum == pytest.approx(104.4)

    def test_boundary_lands_in_its_bucket(self, fresh_registry):
        # Prometheus buckets are "le": a value equal to the bound counts.
        h = fresh_registry.histogram("t_seconds", buckets=(1.0, 5.0))
        h.observe(1.0)
        assert h.labels().cumulative()[0] == (1.0, 1)

    def test_buckets_sorted_and_validated(self, fresh_registry):
        h = fresh_registry.histogram("t_seconds", buckets=(5.0, 1.0))
        assert h.buckets == (1.0, 5.0)
        with pytest.raises(ValueError, match="at least one bucket"):
            fresh_registry.histogram("t2_seconds", buckets=())
        with pytest.raises(ValueError, match=r"\+Inf is implicit"):
            fresh_registry.histogram("t3_seconds", buckets=(1.0, float("inf")))


class TestFamilyRegistration:
    def test_same_name_same_family(self, fresh_registry):
        a = fresh_registry.counter("t_total", "first help")
        b = fresh_registry.counter("t_total", "ignored on re-lookup")
        assert a is b

    def test_type_conflict_raises(self, fresh_registry):
        fresh_registry.counter("t_total")
        with pytest.raises(ValueError, match="already registered"):
            fresh_registry.gauge("t_total")

    def test_labelnames_conflict_raises(self, fresh_registry):
        fresh_registry.counter("t_total", "", ("a",))
        with pytest.raises(ValueError, match="already registered"):
            fresh_registry.counter("t_total", "", ("b",))

    def test_invalid_names_rejected(self, fresh_registry):
        with pytest.raises(ValueError, match="invalid metric name"):
            fresh_registry.counter("0bad")
        with pytest.raises(ValueError, match="invalid label name"):
            fresh_registry.counter("t_total", "", ("bad-label",))
        with pytest.raises(ValueError, match="reserved"):
            fresh_registry.histogram("t_seconds", "", ("le",))

    def test_wrong_label_arity(self, fresh_registry):
        fam = fresh_registry.counter("t_total", "", ("a", "b"))
        with pytest.raises(ValueError, match="label value"):
            fam.labels("only-one")
        with pytest.raises(ValueError, match="missing label"):
            fam.labels(a="x")
        with pytest.raises(ValueError, match="use .labels"):
            fam.inc()


class TestArming:
    def test_disarmed_returns_none(self, fresh_registry):
        disarm()
        assert registry() is None

    def test_arm_is_idempotent(self, fresh_registry):
        assert arm() is fresh_registry

    def test_arm_installs_explicit_registry(self, fresh_registry):
        mine = MetricsRegistry()
        assert arm(mine) is mine
        assert registry() is mine

    def test_counter_value_reads_and_defaults(self, fresh_registry):
        fresh_registry.counter("t_total", "", ("k",)).labels("x").inc(7)
        assert counter_value("t_total", k="x") == 7.0
        assert counter_value("t_total", k="never") == 0.0
        assert counter_value("absent_total") == 0.0
        disarm()
        assert counter_value("t_total", k="x") == 0.0


def test_default_buckets_are_sorted():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


def test_concurrent_updates_lose_nothing(fresh_registry):
    """8 threads x 1000 incs must land exactly 8000 (lock coverage)."""
    fam = fresh_registry.counter("t_total", "", ("worker",))
    hist = fresh_registry.histogram("t_seconds")

    def work(worker: int) -> None:
        child = fam.labels(str(worker % 2))
        for _ in range(1000):
            child.inc()
            hist.observe(0.01)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert fam.labels("0").value + fam.labels("1").value == 8000.0
    assert hist.labels().count == 8000
