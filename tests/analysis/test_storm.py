"""Simulation-side storm decomposition."""

import pytest

from repro.analysis.storm import StormDecomposition
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_broadcast_simulation


def run(scheme="flooding", map_units=1, hosts=40, **params):
    config = ScenarioConfig(
        scheme=scheme, scheme_params=params, map_units=map_units,
        num_hosts=hosts, num_broadcasts=10, max_speed_kmh=10.0, seed=21,
    )
    return run_broadcast_simulation(config)


def test_flooding_single_cell_is_maximally_redundant():
    """In one radio cell, flooding delivers ~n copies per distinct receipt."""
    result = run()
    decomposition = StormDecomposition.from_result(result)
    # 40 hosts: each receiving host hears up to 39 copies of each packet.
    assert decomposition.redundancy_factor > 10.0
    assert 0.0 < decomposition.collision_fraction < 1.0


def test_counter_scheme_cuts_redundancy():
    flooding = StormDecomposition.from_result(run())
    suppressed = StormDecomposition.from_result(run("counter", threshold=2))
    assert suppressed.redundancy_factor < flooding.redundancy_factor / 2
    assert suppressed.transmissions < flooding.transmissions


def test_contention_counts_backoffs():
    decomposition = StormDecomposition.from_result(run())
    assert decomposition.contention_backoffs_per_tx > 0.0


def test_empty_simulation_is_all_zeroes():
    config = ScenarioConfig(
        scheme="flooding", map_units=1, num_hosts=5, num_broadcasts=0,
    )
    decomposition = StormDecomposition.from_result(
        run_broadcast_simulation(config)
    )
    assert decomposition.redundancy_factor == 0.0
    assert decomposition.collision_fraction == 0.0
    assert decomposition.transmissions == 0


def test_describe_format():
    text = StormDecomposition.from_result(run()).describe()
    assert "redundancy" in text and "collisions" in text
