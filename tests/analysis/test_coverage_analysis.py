"""EAC(k) Monte Carlo (paper Fig. 1)."""

import random

import pytest

from repro.analysis.coverage import eac_table, expected_additional_coverage


def test_eac1_matches_mean_additional_coverage():
    value = expected_additional_coverage(1, trials=3000, rng=random.Random(1))
    assert value == pytest.approx(0.41, abs=0.02)


def test_eac_below_5_percent_from_k4():
    """Paper: 'when k >= 4, the expected additional coverage is below 5%'."""
    table = eac_table(max_k=6, trials=1500, seed=2)
    for k in range(4, 7):
        assert table[k] < 0.05


def test_eac_monotonically_decreasing():
    table = eac_table(max_k=8, trials=1500, seed=3)
    values = [table[k] for k in range(1, 9)]
    assert all(a > b for a, b in zip(values, values[1:]))


def test_eac2_near_0_187():
    """EAC(2)/pi r^2 ~= 0.187, the A(n) plateau value."""
    value = expected_additional_coverage(2, trials=4000, rng=random.Random(4))
    assert value == pytest.approx(0.187, abs=0.02)


def test_eac_values_in_unit_interval():
    table = eac_table(max_k=5, trials=500, seed=5)
    assert all(0.0 <= v <= 1.0 for v in table.values())


def test_eac_radius_free():
    a = expected_additional_coverage(2, trials=800, rng=random.Random(6), radius=1.0)
    b = expected_additional_coverage(2, trials=800, rng=random.Random(6), radius=500.0)
    assert a == pytest.approx(b, abs=1e-12)


def test_invalid_arguments():
    with pytest.raises(ValueError):
        expected_additional_coverage(0)
    with pytest.raises(ValueError):
        expected_additional_coverage(1, trials=0)
