"""cf(n, k) Monte Carlo (paper Fig. 2)."""

import random

import pytest

from repro.analysis.contention import (
    contention_free_counts,
    contention_free_probabilities,
    count_isolated,
)


def test_single_receiver_always_contention_free():
    cf = contention_free_probabilities(1, trials=100)
    assert cf[1] == 1.0
    assert cf[0] == 0.0


def test_two_receivers_contention_probability_near_59_percent():
    """cf(2, 0) should match the paper's 59% pairwise contention integral."""
    cf = contention_free_probabilities(2, trials=20000, rng=random.Random(7))
    assert cf[0] == pytest.approx(0.59, abs=0.02)


def test_cf_n_nminus1_is_exactly_zero():
    """Having n-1 isolated vertices implies all n are isolated."""
    for n in (2, 3, 5, 8):
        cf = contention_free_probabilities(n, trials=2000, rng=random.Random(n))
        assert cf[n - 1] == 0.0


def test_cf_all_contended_grows_past_08_for_dense():
    """Paper: cf(n, 0) rises over 0.8 as n >= 6."""
    cf6 = contention_free_probabilities(6, trials=5000, rng=random.Random(8))
    assert cf6[0] > 0.8


def test_cf1_declines_with_n():
    """cf(n, 1) 'drops sharply as n increases' (from n = 3 on; cf(2, 1) is
    identically zero by the n-1 rule)."""
    rng = random.Random(9)
    cf_small = contention_free_probabilities(3, trials=5000, rng=rng)
    cf_large = contention_free_probabilities(8, trials=5000, rng=rng)
    assert cf_large[1] < cf_small[1]


def test_probabilities_sum_to_one():
    cf = contention_free_probabilities(5, trials=3000, rng=random.Random(10))
    assert sum(cf.values()) == pytest.approx(1.0)


def test_counts_total_equals_trials():
    counts = contention_free_counts(4, trials=777, rng=random.Random(11))
    assert sum(counts) == 777


def test_count_isolated_known_layouts():
    # Two points far apart: both isolated.
    assert count_isolated([(0, 0), (5, 5)], radius=1.0) == 2
    # Two points within range: none isolated.
    assert count_isolated([(0, 0), (0.5, 0)], radius=1.0) == 0
    # A pair plus a loner.
    assert count_isolated([(0, 0), (0.5, 0), (10, 10)], radius=1.0) == 1


def test_invalid_n():
    with pytest.raises(ValueError):
        contention_free_counts(0)
