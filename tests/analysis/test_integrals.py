"""The paper's Section 2.2 quadrature results."""

import pytest

from repro.analysis.integrals import (
    expected_contention_probability,
    max_additional_coverage_fraction,
    mean_additional_coverage_fraction,
)


def test_max_additional_coverage_is_61_percent():
    """'a rebroadcast can provide at most 61 percent additional coverage'."""
    assert max_additional_coverage_fraction() == pytest.approx(0.609, abs=0.002)


def test_mean_additional_coverage_is_41_percent():
    """'the average additional coverage ... ~= 0.41 pi r^2'."""
    assert mean_additional_coverage_fraction() == pytest.approx(0.41, abs=0.005)


def test_expected_contention_is_59_percent():
    """'the expected probability of contention ... ~= 59%'."""
    assert expected_contention_probability() == pytest.approx(0.59, abs=0.005)


def test_coverage_and_contention_are_complementary():
    """Both integrals weight INTC by the same density; they sum to 1."""
    total = (
        mean_additional_coverage_fraction() + expected_contention_probability()
    )
    assert total == pytest.approx(1.0, abs=1e-9)
