"""Planner: deterministic expansion, stable ids, config fidelity."""

import pytest

from repro.campaigns.planner import axis_order, plan_campaign
from repro.campaigns.spec import NO_FAULTS, SpecError, spec_from_dict
from repro.experiments.parallel import config_digest


def make_spec(**overrides):
    base = {
        "name": "plan-test",
        "grid": {
            "scheme": ["flooding", "counter"],
            "map_units": [1, 3],
            "seed": [1, 2],
        },
        "scenario": {"num_hosts": 20, "num_broadcasts": 5},
    }
    base.update(overrides)
    return spec_from_dict(base)


def test_axis_order_sorted_with_seed_innermost():
    assert axis_order(make_spec()) == ["map_units", "scheme", "seed"]


def test_expansion_count_and_stable_ids():
    plan = plan_campaign(make_spec())
    assert plan.total == 8
    assert [r.run_id for r in plan.runs] == [
        f"run-{i:05d}" for i in range(8)
    ]
    # seed is the innermost axis: consecutive runs share the grid point.
    assert plan.runs[0].point["seed"] == 1
    assert plan.runs[1].point["seed"] == 2
    assert plan.runs[0].point["scheme"] == plan.runs[1].point["scheme"]


def test_expansion_is_deterministic():
    a = plan_campaign(make_spec())
    b = plan_campaign(make_spec())
    assert a.campaign_id == b.campaign_id
    assert [(r.run_id, r.digest) for r in a.runs] == [
        (r.run_id, r.digest) for r in b.runs
    ]


def test_configs_carry_grid_and_scenario_values():
    plan = plan_campaign(make_spec())
    for run in plan.runs:
        assert run.config.scheme == run.point["scheme"]
        assert run.config.map_units == run.point["map_units"]
        assert run.config.seed == run.point["seed"]
        assert run.config.num_hosts == 20
        assert run.digest == config_digest(run.config)


def test_scheme_params_dotted_axis():
    plan = plan_campaign(make_spec(grid={
        "scheme": ["counter"],
        "scheme_params.threshold": [2, 3, 4],
    }))
    thresholds = [r.config.scheme_params["threshold"] for r in plan.runs]
    assert thresholds == [2, 3, 4]


def test_faults_axis_binds_named_plans():
    plan = plan_campaign(make_spec(
        grid={"scheme": ["flooding"], "faults": [NO_FAULTS, "churny"]},
        faults={"churny": "churn:rate=0.01,downtime=5"},
    ))
    none_run, churny_run = plan.runs
    assert none_run.config.faults is None
    assert churny_run.config.faults is not None
    assert churny_run.config.faults.churn.rate == 0.01
    assert none_run.digest != churny_run.digest


def test_invalid_grid_point_names_the_point():
    with pytest.raises(SpecError, match="not a valid scenario"):
        plan_campaign(make_spec(grid={"scheme": ["flooding"],
                                      "num_hosts": [0]}))


def test_by_id_lookup():
    plan = plan_campaign(make_spec())
    assert plan.by_id("run-00003") is plan.runs[3]
    with pytest.raises(KeyError):
        plan.by_id("run-99999")
    with pytest.raises(KeyError):
        plan.by_id("nonsense")


def test_campaign_id_tracks_spec_digest():
    a = plan_campaign(make_spec())
    b = plan_campaign(make_spec(scenario={"num_hosts": 21}))
    assert a.campaign_id != b.campaign_id
    assert a.campaign_id.startswith("plan-test-")


def test_zoo_variant_sweeps_end_to_end():
    """A zoo scheme is plannable and runnable straight from a spec."""
    spec = spec_from_dict({
        "name": "zoo",
        "grid": {"scheme": ["gossip"], "scheme_params.p": [0.4, 1.0]},
        "scenario": {"map_units": 1, "num_hosts": 15, "num_broadcasts": 3},
    })
    plan = plan_campaign(spec)
    assert [r.config.scheme_params["p"] for r in plan.runs] == [0.4, 1.0]


def test_zoo_campaign_executes(tmp_path):
    from repro.campaigns.queue import CampaignExecutor

    spec = spec_from_dict({
        "name": "zoo-exec",
        "grid": {
            "scheme": ["gossip", "counter-gossip"],
            "scheme_params.p": [0.5],
        },
        "scenario": {"map_units": 1, "num_hosts": 15, "num_broadcasts": 3},
    })
    plan = plan_campaign(spec)
    outcome = CampaignExecutor(plan, tmp_path / "c").run()
    assert not outcome.resumable
    assert outcome.completed == 2
