"""Checkpoint file + manifest: durability and crash tolerance."""

import json

import pytest

from repro.campaigns.checkpoint import (
    CheckpointRecord,
    CheckpointWriter,
    load_manifest,
    load_records,
    write_manifest,
)


def record(i, **overrides):
    base = dict(
        run_id=f"run-{i:05d}",
        digest=f"{i:064x}",
        status="done",
        simulated=True,
        re=0.9,
        srb=0.4,
        latency=0.02,
        events=1000 + i,
        wall_time=0.5,
    )
    base.update(overrides)
    return CheckpointRecord(**base)


def test_append_and_load_round_trip(tmp_path):
    path = tmp_path / "progress.jsonl"
    with CheckpointWriter(path) as writer:
        for i in range(3):
            writer.append(record(i))
    loaded = load_records(path)
    assert set(loaded) == {"run-00000", "run-00001", "run-00002"}
    assert loaded["run-00001"] == record(1)


def test_load_missing_file_is_empty(tmp_path):
    assert load_records(tmp_path / "nope.jsonl") == {}


def test_duplicate_run_ids_last_wins(tmp_path):
    path = tmp_path / "progress.jsonl"
    with CheckpointWriter(path) as writer:
        writer.append(record(0, simulated=True))
        writer.append(record(0, simulated=False))
    assert load_records(path)["run-00000"].simulated is False


def test_torn_final_line_is_dropped(tmp_path):
    """A SIGKILL mid-append leaves a partial last line; resume survives."""
    path = tmp_path / "progress.jsonl"
    with CheckpointWriter(path) as writer:
        writer.append(record(0))
        writer.append(record(1))
    full = path.read_text()
    path.write_text(full[:-20])  # tear the tail of the last record
    loaded = load_records(path)
    assert set(loaded) == {"run-00000"}


def test_corruption_before_valid_lines_raises(tmp_path):
    path = tmp_path / "progress.jsonl"
    good = record(1).to_json()
    path.write_text("{broken\n" + good + "\n")
    with pytest.raises(ValueError, match="corrupt checkpoint line"):
        load_records(path)


def test_blank_lines_ignored(tmp_path):
    path = tmp_path / "progress.jsonl"
    path.write_text("\n" + record(0).to_json() + "\n\n")
    assert set(load_records(path)) == {"run-00000"}


def test_records_are_versioned(tmp_path):
    data = json.loads(record(0).to_json())
    assert data["v"] == 1


def test_manifest_round_trip_and_atomicity(tmp_path):
    path = tmp_path / "manifest.json"
    assert load_manifest(path) is None
    write_manifest(path, {"campaign_id": "x", "status": "running"})
    write_manifest(path, {"campaign_id": "x", "status": "complete"})
    assert load_manifest(path)["status"] == "complete"
    # No temp droppings left behind by the atomic replace.
    assert list(tmp_path.iterdir()) == [path]


def test_writer_reopens_after_close(tmp_path):
    path = tmp_path / "progress.jsonl"
    writer = CheckpointWriter(path)
    writer.append(record(0))
    writer.close()
    writer.append(record(1))
    writer.close()
    assert len(load_records(path)) == 2
