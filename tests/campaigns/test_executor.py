"""Work-queue executor: checkpointing, resume, interrupts, payloads."""

import json

import pytest

import repro.experiments.parallel as parallel_mod
from repro.campaigns.checkpoint import load_manifest, load_records
from repro.campaigns.planner import plan_campaign
from repro.campaigns.queue import (
    CampaignExecutor,
    CampaignMismatch,
    campaign_results_payload,
    campaign_status,
)
from repro.campaigns.spec import spec_from_dict
from repro.experiments.runner import run_broadcast_simulation


def tiny_spec(**overrides):
    base = {
        "name": "exec-test",
        "grid": {"scheme": ["flooding"], "seed": [1, 2, 3]},
        "scenario": {"map_units": 1, "num_hosts": 15, "num_broadcasts": 3},
    }
    base.update(overrides)
    return spec_from_dict(base)


def make_executor(tmp_path, plan, **kwargs):
    kwargs.setdefault("max_workers", 1)
    kwargs.setdefault("checkpoint_every", 2)
    return CampaignExecutor(plan, tmp_path / "camp", **kwargs)


def interrupt_after(monkeypatch, n):
    """Let n simulations finish, then raise KeyboardInterrupt."""
    calls = {"n": 0}

    def wrapper(config):
        if calls["n"] >= n:
            raise KeyboardInterrupt
        calls["n"] += 1
        return run_broadcast_simulation(config)

    monkeypatch.setattr(
        parallel_mod, "run_broadcast_simulation", wrapper
    )


# ------------------------------------------------------------- complete


def test_complete_campaign_writes_everything(tmp_path):
    plan = plan_campaign(tiny_spec())
    executor = make_executor(tmp_path, plan)
    outcome = executor.run()
    assert outcome.status == "complete"
    assert outcome.completed == plan.total == 3
    assert all(r is not None for r in outcome.results)

    directory = outcome.directory
    manifest = load_manifest(directory / "manifest.json")
    assert manifest["status"] == "complete"
    assert manifest["completed_runs"] == 3
    assert [r["run_id"] for r in manifest["runs"]] == [
        r.run_id for r in plan.runs
    ]
    assert set(load_records(directory / "progress.jsonl")) == {
        r.run_id for r in plan.runs
    }
    payload = json.loads((directory / "results.json").read_text())
    assert payload["completed_runs"] == 3
    assert payload["missing"] == []


def test_progress_callback_fires_per_run(tmp_path):
    plan = plan_campaign(tiny_spec())
    seen = []
    make_executor(tmp_path, plan).run(
        progress=lambda planned, result: seen.append(planned.run_id)
    )
    assert seen == [r.run_id for r in plan.runs]


def test_rerun_is_all_cache_hits(tmp_path):
    plan = plan_campaign(tiny_spec())
    make_executor(tmp_path, plan).run()
    again = make_executor(tmp_path, plan)
    outcome = again.run()
    assert outcome.status == "complete"
    assert again.runner.perf.simulated == 0
    assert again.runner.perf.cache_hits == plan.total


def test_changed_spec_same_directory_rejected(tmp_path):
    plan = plan_campaign(tiny_spec())
    make_executor(tmp_path, plan).run()
    other = plan_campaign(tiny_spec(scenario={
        "map_units": 1, "num_hosts": 16, "num_broadcasts": 3,
    }))
    with pytest.raises(CampaignMismatch, match="spec changed"):
        make_executor(tmp_path, other).run()


def test_executor_requires_a_cache(tmp_path):
    plan = plan_campaign(tiny_spec())
    runner = parallel_mod.ParallelRunner(max_workers=1)  # no cache
    with pytest.raises(ValueError, match="result cache"):
        CampaignExecutor(plan, tmp_path / "camp", runner=runner)


def test_checkpoint_every_validated(tmp_path):
    plan = plan_campaign(tiny_spec())
    with pytest.raises(ValueError, match="checkpoint_every"):
        make_executor(tmp_path, plan, checkpoint_every=0)


# ------------------------------------------------------------ interrupt


def test_interrupt_flushes_resumable_state(tmp_path, monkeypatch):
    plan = plan_campaign(tiny_spec())
    executor = make_executor(tmp_path, plan)
    interrupt_after(monkeypatch, 2)
    outcome = executor.run()
    assert outcome.status == "interrupted"
    assert outcome.resumable
    assert outcome.completed == 2

    directory = outcome.directory
    assert load_manifest(directory / "manifest.json")["status"] == "interrupted"
    records = load_records(directory / "progress.jsonl")
    assert set(records) == {"run-00000", "run-00001"}
    assert not (directory / "results.json").exists()
    status = campaign_status(directory)
    assert status["status"] == "interrupted"
    assert status["completed_runs"] == 2


def test_resume_after_interrupt_simulates_only_holes(tmp_path, monkeypatch):
    plan = plan_campaign(tiny_spec())
    interrupt_after(monkeypatch, 1)
    first = make_executor(tmp_path, plan)
    assert first.run().status == "interrupted"
    assert first.runner.perf.simulated == 1

    monkeypatch.setattr(
        parallel_mod, "run_broadcast_simulation", run_broadcast_simulation
    )
    second = make_executor(tmp_path, plan)
    outcome = second.run()
    assert outcome.status == "complete"
    # Zero duplicate executions: the checkpointed run returns via cache.
    assert second.runner.perf.simulated == plan.total - 1
    assert second.runner.perf.cache_hits == 1
    assert load_manifest(
        outcome.directory / "manifest.json"
    )["status"] == "complete"


# --------------------------------------------------------------- payload


def test_payload_is_deterministic_and_seedless_grouped(tmp_path):
    spec = tiny_spec(grid={"scheme": ["flooding", "counter"], "seed": [1, 2]})
    plan = plan_campaign(spec)
    outcome = make_executor(tmp_path, plan).run()
    payload = campaign_results_payload(plan, outcome.results)
    assert payload["total_runs"] == 4
    assert len(payload["summary"]) == 2  # one point per scheme
    for point in payload["summary"]:
        assert point["seeds"] == 2
        assert "seed" not in point["point"]
        assert point["re"] is not None
    # No wall-clock noise anywhere in the deterministic document.
    assert "wall_time" not in json.dumps(payload)


def test_payload_lists_missing_runs(tmp_path):
    plan = plan_campaign(tiny_spec())
    outcome = make_executor(tmp_path, plan).run()
    results = list(outcome.results)
    results[1] = None
    payload = campaign_results_payload(plan, results)
    assert payload["missing"] == ["run-00001"]
    assert payload["completed_runs"] == 2
