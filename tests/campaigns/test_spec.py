"""Campaign spec: parsing, validation, identity digests."""

import json

import pytest

from repro.campaigns.spec import (
    NO_FAULTS,
    CampaignSpec,
    SpecError,
    load_spec,
    spec_from_dict,
)
from repro.faults.plan import FaultPlan


def minimal_dict(**overrides):
    base = {
        "name": "sweep",
        "grid": {"scheme": ["flooding"], "seed": [1, 2]},
        "scenario": {"num_hosts": 20, "num_broadcasts": 5},
    }
    base.update(overrides)
    return base


# -------------------------------------------------------------- parsing


def test_spec_from_dict_minimal():
    spec = spec_from_dict(minimal_dict())
    assert spec.name == "sweep"
    assert spec.grid["scheme"] == ("flooding",)
    assert spec.grid["seed"] == (1, 2)
    assert spec.total_runs == 2


def test_spec_named_fault_plans_as_string_and_table():
    spec = spec_from_dict(minimal_dict(
        grid={"scheme": ["flooding"], "faults": [NO_FAULTS, "churny", "lossy"]},
        faults={
            "churny": "churn:rate=0.01,downtime=5",
            "lossy": {"spec": "loss:p=0.1"},
        },
    ))
    assert spec.fault_plans["churny"].churn is not None
    assert spec.fault_plans["lossy"].loss is not None


def test_spec_fault_plan_as_plan_dict():
    plan = FaultPlan.parse("crash:host=3,at=5,recover=12")
    spec = spec_from_dict(minimal_dict(
        grid={"scheme": ["flooding"], "faults": ["crashy"]},
        faults={"crashy": plan.to_dict()},
    ))
    assert spec.fault_plans["crashy"] == plan


def test_load_spec_json(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(minimal_dict()))
    assert load_spec(path).name == "sweep"


def test_load_spec_toml(tmp_path):
    pytest.importorskip("tomllib")
    path = tmp_path / "spec.toml"
    path.write_text(
        'name = "sweep"\n'
        "[grid]\n"
        'scheme = ["flooding", "counter"]\n'
        "seed = [1, 2]\n"
        "[scenario]\n"
        "num_hosts = 20\n"
        "[faults.churny]\n"
        'spec = "churn:rate=0.01,downtime=5"\n'
    )
    spec = load_spec(path)
    assert spec.total_runs == 4
    assert "churny" in spec.fault_plans


def test_load_spec_bad_json(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text("{not json")
    with pytest.raises(SpecError, match="invalid JSON"):
        load_spec(path)


# ----------------------------------------------------------- validation


@pytest.mark.parametrize("mutation, message", [
    ({"name": "bad name!"}, "campaign name"),
    ({"grid": {"scheme": ["flooding"], "warp_factor": [9]}}, "unknown grid axis"),
    ({"grid": {"scheme": []}}, "no values"),
    ({"grid": {"scheme": ["flooding", "flooding"]}}, "repeats"),
    ({"grid": {"scheme": ["antigravity"]}}, "unknown scheme"),
    ({"grid": {"scheme": ["flooding"], "faults": ["ghost"]}}, "undefined plan"),
    ({"scenario": {"num_hostz": 20}}, "invalid .scenario."),
    ({"extra_key": 1}, "unknown top-level"),
])
def test_spec_validation_errors(mutation, message):
    with pytest.raises(SpecError, match=message):
        spec_from_dict(minimal_dict(**mutation))


def test_reserved_none_plan_name_rejected():
    with pytest.raises(SpecError, match="reserved"):
        spec_from_dict(minimal_dict(faults={NO_FAULTS: "loss:p=0.1"}))


def test_grid_values_must_be_scalars():
    with pytest.raises(SpecError, match="not a scalar"):
        spec_from_dict(minimal_dict(grid={"scheme": [["flooding"]]}))


# ------------------------------------------------------------- identity


def test_digest_stable_across_formats(tmp_path):
    data = minimal_dict()
    from_json = spec_from_dict(json.loads(json.dumps(data)))
    direct = spec_from_dict(data)
    assert from_json.digest() == direct.digest()


def test_digest_changes_with_grid():
    a = spec_from_dict(minimal_dict())
    b = spec_from_dict(minimal_dict(
        grid={"scheme": ["flooding"], "seed": [1, 2, 3]}
    ))
    assert a.digest() != b.digest()


def test_to_dict_round_trip():
    spec = spec_from_dict(minimal_dict(
        grid={"scheme": ["flooding"], "faults": [NO_FAULTS, "churny"]},
        faults={"churny": "churn:rate=0.01,downtime=5"},
    ))
    again = spec_from_dict(spec.to_dict())
    assert again == spec
    assert again.digest() == spec.digest()


# ---------------------------------------- scheme_params schema validation


def test_scheme_params_axis_valid_for_swept_scheme():
    spec = spec_from_dict(minimal_dict(
        grid={"scheme": ["gossip"], "scheme_params.p": [0.4, 0.7, 1.0]},
    ))
    assert spec.grid["scheme_params.p"] == (0.4, 0.7, 1.0)


def test_scheme_params_axis_typo_fails_at_load():
    # The satellite bug: a typo'd param axis used to run the whole
    # campaign (and burn the cache) on defaults.
    with pytest.raises(SpecError, match=r"scheme_params\.treshold.*counter"):
        spec_from_dict(minimal_dict(
            grid={"scheme": ["counter"], "scheme_params.treshold": [3, 4]},
        ))


def test_scheme_params_axis_error_names_accepted_params():
    with pytest.raises(SpecError, match="threshold: int = 3"):
        spec_from_dict(minimal_dict(
            grid={"scheme": ["counter"], "scheme_params.nope": [1]},
        ))


def test_scheme_params_axis_must_fit_every_swept_scheme():
    # p is a gossip knob, not a counter knob: the cross product is invalid.
    with pytest.raises(SpecError, match="counter"):
        spec_from_dict(minimal_dict(
            grid={"scheme": ["gossip", "counter"], "scheme_params.p": [0.5]},
        ))


def test_scheme_params_axis_checked_against_base_scenario_scheme():
    with pytest.raises(SpecError, match="flooding"):
        spec_from_dict(minimal_dict(
            grid={"seed": [1], "scheme_params.p": [0.5]},
            scenario={"scheme": "flooding"},
        ))
    spec = spec_from_dict(minimal_dict(
        grid={"seed": [1], "scheme_params.p": [0.5]},
        scenario={"scheme": "gossip"},
    ))
    assert spec.grid["scheme_params.p"] == (0.5,)


def test_scheme_params_axis_values_schema_checked():
    with pytest.raises(SpecError, match="<= 1"):
        spec_from_dict(minimal_dict(
            grid={"scheme": ["gossip"], "scheme_params.p": [0.5, 1.5]},
        ))
    with pytest.raises(SpecError, match="must be an int"):
        spec_from_dict(minimal_dict(
            grid={"scheme": ["counter"], "scheme_params.threshold": [2.5]},
        ))


def test_scheme_params_callable_param_not_sweepable():
    with pytest.raises(SpecError, match="cannot be swept"):
        spec_from_dict(minimal_dict(
            grid={
                "scheme": ["adaptive-counter"],
                "scheme_params.threshold_fn": ["linear"],
            },
        ))


def test_base_scenario_scheme_params_keys_validated():
    with pytest.raises(SpecError, match=r"scheme_params\.treshold"):
        spec_from_dict(minimal_dict(
            scenario={"scheme": "counter", "scheme_params": {"treshold": 4}},
        ))


def test_base_scenario_unknown_scheme_fails_at_load():
    with pytest.raises(SpecError, match="unknown scheme"):
        spec_from_dict(minimal_dict(scenario={"scheme": "telepathy"}))
