"""Campaign spec: parsing, validation, identity digests."""

import json

import pytest

from repro.campaigns.spec import (
    NO_FAULTS,
    CampaignSpec,
    SpecError,
    load_spec,
    spec_from_dict,
)
from repro.faults.plan import FaultPlan


def minimal_dict(**overrides):
    base = {
        "name": "sweep",
        "grid": {"scheme": ["flooding"], "seed": [1, 2]},
        "scenario": {"num_hosts": 20, "num_broadcasts": 5},
    }
    base.update(overrides)
    return base


# -------------------------------------------------------------- parsing


def test_spec_from_dict_minimal():
    spec = spec_from_dict(minimal_dict())
    assert spec.name == "sweep"
    assert spec.grid["scheme"] == ("flooding",)
    assert spec.grid["seed"] == (1, 2)
    assert spec.total_runs == 2


def test_spec_named_fault_plans_as_string_and_table():
    spec = spec_from_dict(minimal_dict(
        grid={"scheme": ["flooding"], "faults": [NO_FAULTS, "churny", "lossy"]},
        faults={
            "churny": "churn:rate=0.01,downtime=5",
            "lossy": {"spec": "loss:p=0.1"},
        },
    ))
    assert spec.fault_plans["churny"].churn is not None
    assert spec.fault_plans["lossy"].loss is not None


def test_spec_fault_plan_as_plan_dict():
    plan = FaultPlan.parse("crash:host=3,at=5,recover=12")
    spec = spec_from_dict(minimal_dict(
        grid={"scheme": ["flooding"], "faults": ["crashy"]},
        faults={"crashy": plan.to_dict()},
    ))
    assert spec.fault_plans["crashy"] == plan


def test_load_spec_json(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(minimal_dict()))
    assert load_spec(path).name == "sweep"


def test_load_spec_toml(tmp_path):
    pytest.importorskip("tomllib")
    path = tmp_path / "spec.toml"
    path.write_text(
        'name = "sweep"\n'
        "[grid]\n"
        'scheme = ["flooding", "counter"]\n'
        "seed = [1, 2]\n"
        "[scenario]\n"
        "num_hosts = 20\n"
        "[faults.churny]\n"
        'spec = "churn:rate=0.01,downtime=5"\n'
    )
    spec = load_spec(path)
    assert spec.total_runs == 4
    assert "churny" in spec.fault_plans


def test_load_spec_bad_json(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text("{not json")
    with pytest.raises(SpecError, match="invalid JSON"):
        load_spec(path)


# ----------------------------------------------------------- validation


@pytest.mark.parametrize("mutation, message", [
    ({"name": "bad name!"}, "campaign name"),
    ({"grid": {"scheme": ["flooding"], "warp_factor": [9]}}, "unknown grid axis"),
    ({"grid": {"scheme": []}}, "no values"),
    ({"grid": {"scheme": ["flooding", "flooding"]}}, "repeats"),
    ({"grid": {"scheme": ["antigravity"]}}, "unknown scheme"),
    ({"grid": {"scheme": ["flooding"], "faults": ["ghost"]}}, "undefined plan"),
    ({"scenario": {"num_hostz": 20}}, "invalid .scenario."),
    ({"extra_key": 1}, "unknown top-level"),
])
def test_spec_validation_errors(mutation, message):
    with pytest.raises(SpecError, match=message):
        spec_from_dict(minimal_dict(**mutation))


def test_reserved_none_plan_name_rejected():
    with pytest.raises(SpecError, match="reserved"):
        spec_from_dict(minimal_dict(faults={NO_FAULTS: "loss:p=0.1"}))


def test_grid_values_must_be_scalars():
    with pytest.raises(SpecError, match="not a scalar"):
        spec_from_dict(minimal_dict(grid={"scheme": [["flooding"]]}))


# ------------------------------------------------------------- identity


def test_digest_stable_across_formats(tmp_path):
    data = minimal_dict()
    from_json = spec_from_dict(json.loads(json.dumps(data)))
    direct = spec_from_dict(data)
    assert from_json.digest() == direct.digest()


def test_digest_changes_with_grid():
    a = spec_from_dict(minimal_dict())
    b = spec_from_dict(minimal_dict(
        grid={"scheme": ["flooding"], "seed": [1, 2, 3]}
    ))
    assert a.digest() != b.digest()


def test_to_dict_round_trip():
    spec = spec_from_dict(minimal_dict(
        grid={"scheme": ["flooding"], "faults": [NO_FAULTS, "churny"]},
        faults={"churny": "churn:rate=0.01,downtime=5"},
    ))
    again = spec_from_dict(spec.to_dict())
    assert again == spec
    assert again.digest() == spec.digest()
