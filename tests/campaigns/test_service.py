"""HTTP result service: warm cache hits, cold runs, campaign endpoints."""

from types import SimpleNamespace

import pytest

from repro.campaigns.client import ServiceClient, ServiceError
from repro.campaigns.planner import plan_campaign
from repro.campaigns.queue import CampaignExecutor
from repro.campaigns.service import CampaignService, serve_in_background
from repro.campaigns.spec import spec_from_dict
from repro.experiments.io import (
    result_to_dict,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.experiments.parallel import config_digest
from repro.experiments.runner import run_broadcast_simulation


@pytest.fixture(scope="module")
def env(tmp_path_factory):
    """One service over a cache warmed by a completed campaign."""
    root = tmp_path_factory.mktemp("service")
    cache_dir = root / "cache"
    campaign_root = root / "campaigns"
    spec = spec_from_dict({
        "name": "svc-test",
        "grid": {"scheme": ["flooding"], "seed": [1, 2]},
        "scenario": {"map_units": 1, "num_hosts": 12, "num_broadcasts": 2},
    })
    plan = plan_campaign(spec)
    executor = CampaignExecutor(
        plan, campaign_root / plan.campaign_id,
        max_workers=1, cache_dir=cache_dir,
    )
    assert executor.run().status == "complete"

    service = CampaignService(
        cache_dir, campaign_root=campaign_root,
        max_workers=1, port=0, poll_interval=0.05,
    )
    handle = serve_in_background(service)
    client = ServiceClient(handle.base_url, timeout=30)
    yield SimpleNamespace(
        service=service, handle=handle, client=client, plan=plan,
    )
    handle.stop()


def test_health_and_index(env):
    assert env.client.health() is True
    index = env.client._request("GET", "/")
    assert "/results/<digest>" in index["endpoints"]


def test_stats_reports_cache_and_queue(env):
    stats = env.client.stats()
    assert stats["cache"]["entries"] >= env.plan.total
    assert stats["queue_depth"] == 0
    assert "simulated" in stats["perf"]


def test_warm_get_serves_cache_without_simulating(env):
    before = env.service.runner.perf.simulated
    run = env.plan.runs[0]
    result = env.client.get_result(run.digest)
    assert result is not None
    expected = result_to_dict(env.service.cache.get(run.digest))
    assert result == expected
    assert env.service.runner.perf.simulated == before


def test_warm_post_returns_cached_result(env):
    before = env.service.runner.perf.simulated
    run = env.plan.runs[1]
    submitted = env.client.submit_scenario(scenario_to_dict(run.config))
    assert submitted["_status"] == 200
    assert submitted["cached"] is True
    assert submitted["digest"] == run.digest
    assert submitted["result"]["metrics"]["re"] is not None
    assert env.service.runner.perf.simulated == before


def test_cold_post_simulates_once_end_to_end(env):
    scenario = {
        "scheme": "flooding", "map_units": 1, "num_hosts": 14,
        "num_broadcasts": 2, "seed": 99,
    }
    before = env.service.runner.perf.simulated
    first = env.client.submit_scenario(scenario)
    assert first["_status"] in (200, 202)
    # A duplicate submit while queued/running must not enqueue again.
    second = env.client.submit_scenario(scenario)
    assert second["digest"] == first["digest"]

    result = env.client.wait_result(first["digest"], timeout=60)
    config = scenario_from_dict(scenario)
    direct = run_broadcast_simulation(config)
    assert first["digest"] == config_digest(config)
    expected = result_to_dict(direct)
    # The perf block carries wall-clock timings; everything else is exact.
    result.pop("perf", None)
    expected.pop("perf", None)
    assert result == expected
    assert env.service.runner.perf.simulated == before + 1
    # Now warm: the run status endpoint reports done.
    assert env.client.run_status(first["digest"])["status"] == "done"


def test_unknown_digest_is_none_and_404(env):
    assert env.client.get_result("f" * 64) is None
    with pytest.raises(ServiceError) as excinfo:
        env.client.run_status("f" * 64)
    assert excinfo.value.status == 404


def test_invalid_scenario_is_400(env):
    with pytest.raises(ServiceError) as excinfo:
        env.client.submit_scenario({"num_hostz": 20})
    assert excinfo.value.status == 400
    assert "invalid scenario" in str(excinfo.value)


def test_unknown_endpoint_is_404(env):
    with pytest.raises(ServiceError) as excinfo:
        env.client._request("GET", "/teapot")
    assert excinfo.value.status == 404


def test_campaign_listing_and_status(env):
    campaign_id = env.plan.campaign_id
    listing = env.client.campaigns()["campaigns"]
    assert [c["campaign_id"] for c in listing] == [campaign_id]
    status = env.client.campaign_status(campaign_id)
    assert status["status"] == "complete"
    assert status["completed_runs"] == env.plan.total


def test_campaign_results_served_verbatim(env):
    payload = env.client.campaign_results(env.plan.campaign_id)
    assert payload["campaign_id"] == env.plan.campaign_id
    assert len(payload["runs"]) == env.plan.total


def test_campaign_path_traversal_rejected(env):
    for bad in ("..", ".hidden"):
        with pytest.raises(ServiceError) as excinfo:
            env.client.campaign_status(bad)
        assert excinfo.value.status == 404


def test_unknown_campaign_is_404(env):
    with pytest.raises(ServiceError) as excinfo:
        env.client.campaign_status("no-such-campaign")
    assert excinfo.value.status == 404


def test_sse_events_replay_and_terminate(env):
    events = list(env.client.iter_events(env.plan.campaign_id, timeout=30))
    # One data event per checkpointed run, then the terminal summary.
    run_events = [e for e in events if "run_id" in e]
    assert {e["run_id"] for e in run_events} == {
        r.run_id for r in env.plan.runs
    }
    assert events[-1]["status"] == "complete"
    assert events[-1]["completed_runs"] == env.plan.total
