"""HTTP result service: warm cache hits, cold runs, campaign endpoints."""

from types import SimpleNamespace

import pytest

from repro.campaigns.client import ServiceClient, ServiceError
from repro.campaigns.planner import plan_campaign
from repro.campaigns.queue import CampaignExecutor
from repro.campaigns.service import CampaignService, serve_in_background
from repro.campaigns.spec import spec_from_dict
from repro.experiments.io import (
    result_to_dict,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.experiments.parallel import config_digest
from repro.experiments.runner import run_broadcast_simulation


@pytest.fixture(scope="module")
def env(tmp_path_factory):
    """One service over a cache warmed by a completed campaign."""
    root = tmp_path_factory.mktemp("service")
    cache_dir = root / "cache"
    campaign_root = root / "campaigns"
    spec = spec_from_dict({
        "name": "svc-test",
        "grid": {"scheme": ["flooding"], "seed": [1, 2]},
        "scenario": {"map_units": 1, "num_hosts": 12, "num_broadcasts": 2},
    })
    plan = plan_campaign(spec)
    executor = CampaignExecutor(
        plan, campaign_root / plan.campaign_id,
        max_workers=1, cache_dir=cache_dir,
    )
    assert executor.run().status == "complete"

    service = CampaignService(
        cache_dir, campaign_root=campaign_root,
        max_workers=1, port=0, poll_interval=0.05,
    )
    handle = serve_in_background(service)
    client = ServiceClient(handle.base_url, timeout=30)
    yield SimpleNamespace(
        service=service, handle=handle, client=client, plan=plan,
    )
    handle.stop()


def test_health_and_index(env):
    assert env.client.health() is True
    index = env.client._request("GET", "/")
    assert "/results/<digest>" in index["endpoints"]


def test_stats_reports_cache_and_queue(env):
    stats = env.client.stats()
    assert stats["cache"]["entries"] >= env.plan.total
    assert stats["queue_depth"] == 0
    assert "simulated" in stats["perf"]


def test_warm_get_serves_cache_without_simulating(env):
    before = env.service.runner.perf.simulated
    run = env.plan.runs[0]
    result = env.client.get_result(run.digest)
    assert result is not None
    expected = result_to_dict(env.service.cache.get(run.digest))
    assert result == expected
    assert env.service.runner.perf.simulated == before


def test_warm_post_returns_cached_result(env):
    before = env.service.runner.perf.simulated
    run = env.plan.runs[1]
    submitted = env.client.submit_scenario(scenario_to_dict(run.config))
    assert submitted["_status"] == 200
    assert submitted["cached"] is True
    assert submitted["digest"] == run.digest
    assert submitted["result"]["metrics"]["re"] is not None
    assert env.service.runner.perf.simulated == before


def test_cold_post_simulates_once_end_to_end(env):
    scenario = {
        "scheme": "flooding", "map_units": 1, "num_hosts": 14,
        "num_broadcasts": 2, "seed": 99,
    }
    before = env.service.runner.perf.simulated
    first = env.client.submit_scenario(scenario)
    assert first["_status"] in (200, 202)
    # A duplicate submit while queued/running must not enqueue again.
    second = env.client.submit_scenario(scenario)
    assert second["digest"] == first["digest"]

    result = env.client.wait_result(first["digest"], timeout=60)
    config = scenario_from_dict(scenario)
    direct = run_broadcast_simulation(config)
    assert first["digest"] == config_digest(config)
    expected = result_to_dict(direct)
    # perf and resources carry wall-clock timings and host GC/RSS noise;
    # everything else is exact.
    for doc in (result, expected):
        doc.pop("perf", None)
        doc.pop("resources", None)
    assert result == expected
    assert env.service.runner.perf.simulated == before + 1
    # Now warm: the run status endpoint reports done.
    assert env.client.run_status(first["digest"])["status"] == "done"


def test_unknown_digest_is_none_and_404(env):
    assert env.client.get_result("f" * 64) is None
    with pytest.raises(ServiceError) as excinfo:
        env.client.run_status("f" * 64)
    assert excinfo.value.status == 404


def test_invalid_scenario_is_400(env):
    with pytest.raises(ServiceError) as excinfo:
        env.client.submit_scenario({"num_hostz": 20})
    assert excinfo.value.status == 400
    assert "invalid scenario" in str(excinfo.value)


def test_unknown_endpoint_is_404(env):
    with pytest.raises(ServiceError) as excinfo:
        env.client._request("GET", "/teapot")
    assert excinfo.value.status == 404


def test_campaign_listing_and_status(env):
    campaign_id = env.plan.campaign_id
    listing = env.client.campaigns()["campaigns"]
    assert [c["campaign_id"] for c in listing] == [campaign_id]
    status = env.client.campaign_status(campaign_id)
    assert status["status"] == "complete"
    assert status["completed_runs"] == env.plan.total


def test_campaign_results_served_verbatim(env):
    payload = env.client.campaign_results(env.plan.campaign_id)
    assert payload["campaign_id"] == env.plan.campaign_id
    assert len(payload["runs"]) == env.plan.total


def test_campaign_path_traversal_rejected(env):
    for bad in ("..", ".hidden"):
        with pytest.raises(ServiceError) as excinfo:
            env.client.campaign_status(bad)
        assert excinfo.value.status == 404


def test_unknown_campaign_is_404(env):
    with pytest.raises(ServiceError) as excinfo:
        env.client.campaign_status("no-such-campaign")
    assert excinfo.value.status == 404


def test_sse_events_replay_and_terminate(env):
    events = list(env.client.iter_events(env.plan.campaign_id, timeout=30))
    # One data event per checkpointed run, then the terminal summary.
    run_events = [e for e in events if "run_id" in e]
    assert {e["run_id"] for e in run_events} == {
        r.run_id for r in env.plan.runs
    }
    assert events[-1]["status"] == "complete"
    assert events[-1]["completed_runs"] == env.plan.total


def test_metrics_endpoint_serves_valid_exposition(env):
    import urllib.request

    from repro.telemetry import CONTENT_TYPE, validate_exposition

    # Generate at least one counted request first.
    env.client.health()
    with urllib.request.urlopen(env.handle.base_url + "/metrics") as resp:
        assert resp.status == 200
        assert resp.headers["Content-Type"] == CONTENT_TYPE
        text = resp.read().decode("utf-8")
    types = validate_exposition(text)
    assert types.get("repro_http_requests_total") == "counter"
    assert types.get("repro_http_request_seconds") == "histogram"
    assert 'endpoint="/healthz"' in text
    # Label values are route templates, never raw per-digest paths.
    assert "/results/<digest>" in text or "repro_http" in text


def test_metrics_requests_label_on_templates_not_paths(env):
    import urllib.request

    run = env.plan.runs[0]
    env.client.get_result(run.digest)
    with urllib.request.urlopen(env.handle.base_url + "/metrics") as resp:
        text = resp.read().decode("utf-8")
    assert 'endpoint="/results/<digest>"' in text
    assert run.digest not in text


def test_sse_heartbeat_keeps_idle_stream_alive(tmp_path):
    """A running-but-quiet campaign stream must emit SSE comment frames
    at the heartbeat interval, and the client must not surface them."""
    import json
    import socket
    import time

    campaign_root = tmp_path / "campaigns"
    camp = campaign_root / "quiet"
    camp.mkdir(parents=True)
    (camp / "manifest.json").write_text(json.dumps({
        "campaign_id": "quiet", "name": "quiet", "status": "running",
        "total_runs": 3, "completed_runs": 0,
    }))
    service = CampaignService(
        tmp_path / "cache", campaign_root=campaign_root,
        max_workers=1, port=0, poll_interval=0.02, sse_heartbeat=0.08,
    )
    handle = serve_in_background(service)
    try:
        sock = socket.create_connection(
            ("127.0.0.1", handle.port), timeout=10
        )
        try:
            sock.sendall(
                b"GET /campaigns/quiet/events HTTP/1.1\r\nHost: t\r\n\r\n"
            )
            sock.settimeout(5)
            buf = b""
            deadline = time.monotonic() + 5
            while (
                buf.count(b": heartbeat\r\n\r\n") < 2
                and time.monotonic() < deadline
            ):
                buf += sock.recv(4096)
            assert buf.count(b": heartbeat\r\n\r\n") >= 2
            # While subscribed, the gauge reports this connection.
            assert service.telemetry.gauge(
                "repro_sse_subscribers"
            ).value == 1.0
            # Finish the campaign so the stream ends server-side before
            # teardown (avoids killing the handler coroutine mid-write).
            (camp / "manifest.json").write_text(json.dumps({
                "campaign_id": "quiet", "name": "quiet",
                "status": "complete", "total_runs": 3, "completed_runs": 3,
            }))
            while b"event: end" not in buf:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                buf += chunk
        finally:
            sock.close()
        deadline = time.monotonic() + 5
        while (
            service.telemetry.gauge("repro_sse_subscribers").value > 0
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
    finally:
        handle.stop()


def test_sse_heartbeat_must_be_positive(tmp_path):
    with pytest.raises(ValueError, match="sse_heartbeat"):
        CampaignService(tmp_path / "cache", sse_heartbeat=0.0)
