"""Kernel perf layer: counters, aggregation, profiling helpers."""

import math

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.io import result_to_dict
from repro.experiments.runner import run_broadcast_simulation
from repro.faults.plan import CrashFault, FaultPlan
from repro.perf import KernelPerf, format_profile, profiled


def small_config(**overrides):
    base = dict(
        scheme="adaptive-counter",
        map_units=3,
        num_hosts=30,
        num_broadcasts=4,
        seed=3,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


@pytest.fixture(scope="module")
def result():
    return run_broadcast_simulation(small_config())


def test_every_run_carries_kernel_counters(result):
    perf = result.perf
    assert isinstance(perf, KernelPerf)
    # Scheduler counters mirror the run itself.
    assert perf.events_processed == result.events_processed
    assert perf.events_scheduled >= perf.events_processed
    assert perf.events_cancelled >= 0
    # Channel counters mirror ChannelStats.
    ch = result.channel_stats
    assert perf.transmissions == ch.transmissions
    assert perf.deliveries == ch.deliveries
    assert perf.collisions == ch.collisions
    assert perf.deaf_misses == ch.deaf_misses
    # MAC counters are summed across hosts; the run clearly sent frames.
    assert perf.frames_sent > 0
    assert perf.frames_received > 0
    assert perf.backoffs_started == result.backoffs_started
    # HELLO-driven neighbor bookkeeping ran (adaptive-counter uses HELLOs).
    assert perf.hello_updates > 0


def test_position_memo_is_effective(result):
    """The per-instant position memo must actually absorb repeat queries
    -- a dense delivery loop asks for the same host positions many times
    at one timestamp."""
    perf = result.perf
    assert perf.pos_misses > 0
    assert perf.pos_hits > 0
    assert 0.0 < perf.pos_hit_rate < 1.0
    assert perf.pos_hit_rate == perf.pos_hits / (perf.pos_hits + perf.pos_misses)


def dense_microbench_config():
    """The BENCH_kernel.json scenario at golden-suite size: flooding on
    one unit square (the configuration whose position-query pattern
    exposed the memo pathology)."""
    return ScenarioConfig(
        scheme="flooding", map_units=1, num_hosts=100, num_broadcasts=12,
        seed=7,
    )


def test_scalar_memo_rate_is_pinned_on_dense_microbench():
    """The scalar per-host memo absorbs only same-host same-instant
    repeats; a dense receiver scan touches each host once per instant, so
    nearly every query misses.  Pinned so the pathology (the motivation
    for the vector kernel's epoch cache) stays measured, not anecdotal."""
    perf = run_broadcast_simulation(
        dense_microbench_config(), kernel="scalar"
    ).perf
    assert (perf.pos_hits, perf.pos_misses) == (1100, 41800)
    assert perf.pos_hit_rate == pytest.approx(0.0256, abs=1e-3)
    assert perf.pos_batch_evals == 0


def test_vector_epoch_cache_rate_is_pinned_on_dense_microbench():
    """The PositionStore's epoch cache serves whole instants: one batched
    evaluation per position epoch, hits for everything after it.  The same
    scenario's hit rate goes from ~2.6% (scalar memo) to ~62%; a miss is
    now an O(n) batch instead of one model call, so fewer total queries
    ever reach Python."""
    pytest.importorskip("numpy")
    perf = run_broadcast_simulation(
        dense_microbench_config(), kernel="vector"
    ).perf
    assert (perf.pos_hits, perf.pos_misses) == (695, 418)
    assert perf.pos_hit_rate == pytest.approx(0.6244, abs=1e-3)
    assert perf.pos_batch_evals == 418
    # The vectorized receiver scans replaced the per-candidate loop: one
    # batch scan per transmission (1101 in the golden fingerprint).
    assert perf.batch_scans == 1101
    assert perf.vector_candidates == 105322


def test_counters_are_deterministic(result):
    rerun = run_broadcast_simulation(small_config())
    assert rerun.perf == result.perf
    assert rerun.perf.as_dict() == result.perf.as_dict()


def test_fresh_perf_is_zeroed_and_hit_rate_defined():
    perf = KernelPerf()
    assert all(value == 0 for value in perf.as_dict().values())
    assert perf.pos_hit_rate == 0.0  # no division by zero


def test_merge_adds_counters(result):
    total = KernelPerf()
    total.merge(result.perf).merge(result.perf)
    for name, value in result.perf.as_dict().items():
        assert getattr(total, name) == 2 * value
    assert total != result.perf
    assert KernelPerf().merge(result.perf) == result.perf


def test_as_dict_covers_all_slots(result):
    exported = result.perf.as_dict()
    assert set(exported) == set(KernelPerf.__slots__)
    assert all(isinstance(v, int) for v in exported.values())


def test_eq_rejects_other_types(result):
    assert result.perf != 42
    assert (result.perf == "x") is False


def test_result_to_dict_includes_kernel_section(result):
    exported = result_to_dict(result)
    assert exported["perf"]["kernel"] == result.perf.as_dict()


def test_result_to_dict_tolerates_missing_perf(result):
    """Old cache entries predate the perf field; export must not choke."""
    result_sans_perf = run_broadcast_simulation(small_config())
    result_sans_perf.perf = None
    assert result_to_dict(result_sans_perf)["perf"]["kernel"] is None


# ---------------------------------------------- heap residue / disposition


def assert_disposition_invariant(perf):
    """Every scheduled event ends up in exactly one disposition bucket."""
    assert perf.events_pending_final >= perf.cancelled_pending_final >= 0
    assert perf.events_scheduled == (
        perf.events_processed
        + perf.events_cancelled
        + (perf.events_pending_final - perf.cancelled_pending_final)
    )


def test_heap_residue_closes_disposition_invariant(result):
    """An adaptive-counter run ends with HELLO timers still on the heap,
    so the residue counters are exercised with real pending events."""
    perf = result.perf
    assert perf.events_pending_final > 0
    assert_disposition_invariant(perf)


def test_early_quiescent_fault_run_still_reports_residue():
    """Crash every host early with no recovery: the heap drains of live
    work and the run quiesces long before the nominal end time.  collect()
    runs after Scheduler.run() returns regardless of why the heap drained,
    so the residue counters are present and the invariant still closes."""
    plan = FaultPlan(
        crashes=tuple(CrashFault(time=0.5, host_id=h) for h in range(10))
    )
    result = run_broadcast_simulation(
        small_config(
            scheme="flooding", num_hosts=10, num_broadcasts=3, faults=plan
        )
    )
    perf = result.perf
    # All broadcast requests drew dead sources.
    assert result.broadcasts_skipped == 3
    assert len(result.fault_trace) == 10
    assert_disposition_invariant(perf)


def test_residue_counters_survive_as_dict_roundtrip(result):
    exported = result.perf.as_dict()
    assert "events_pending_final" in exported
    assert "cancelled_pending_final" in exported
    rebuilt = KernelPerf()
    for name, value in exported.items():
        setattr(rebuilt, name, value)
    assert rebuilt == result.perf


# ------------------------------------------------------------ profiling


def _busy_work():
    return sum(math.sqrt(i) for i in range(2000))


def test_profiled_captures_calls():
    with profiled() as prof:
        _busy_work()
    text = format_profile(prof)
    assert "_busy_work" in text
    assert "cumulative" in text and "tottime" in text


def test_format_profile_top_n_limits_rows():
    with profiled() as prof:
        _busy_work()
    short = format_profile(prof, top_n=1)
    long = format_profile(prof, top_n=50)
    assert len(short) < len(long)


def test_format_profile_rejects_bad_top_n():
    with profiled() as prof:
        pass
    with pytest.raises(ValueError):
        format_profile(prof, top_n=0)


def test_profiled_disables_on_exception():
    profile = None
    with pytest.raises(RuntimeError):
        with profiled() as profile:
            raise RuntimeError("boom")
    # The profiler was disabled on the way out: rendering works and a
    # fresh profiled() block can start cleanly afterwards.
    format_profile(profile, top_n=5)  # must not raise
    with profiled():
        _busy_work()
