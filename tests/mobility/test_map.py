"""RectMap bounds, folding and construction."""

import random

import pytest

from repro.mobility.map import RectMap, _fold


def test_square_units_paper_sizes():
    world = RectMap.square_units(5)
    assert world.width == 2500.0
    assert world.height == 2500.0
    assert world.area == 2500.0 ** 2


def test_square_units_custom_unit_length():
    world = RectMap.square_units(3, unit_length=100.0)
    assert world.width == 300.0


def test_contains_boundaries_inclusive():
    world = RectMap(10.0, 20.0)
    assert world.contains((0.0, 0.0))
    assert world.contains((10.0, 20.0))
    assert not world.contains((10.01, 5.0))
    assert not world.contains((-0.01, 5.0))


def test_reflect_inside_point_unchanged():
    world = RectMap(10.0, 10.0)
    assert world.reflect((3.0, 7.0)) == (3.0, 7.0)


def test_reflect_single_bounce():
    world = RectMap(10.0, 10.0)
    assert world.reflect((12.0, 5.0)) == (8.0, 5.0)
    assert world.reflect((-2.0, 5.0)) == (2.0, 5.0)
    assert world.reflect((5.0, 13.0)) == (5.0, 7.0)


def test_reflect_multiple_bounces():
    world = RectMap(10.0, 10.0)
    # 25 -> fold period 20 -> 5; 10+3 -> 7 after one bounce from 23 - 20 = 3.
    assert world.reflect((25.0, 0.0))[0] == pytest.approx(5.0)
    assert world.reflect((23.0, 0.0))[0] == pytest.approx(3.0)
    assert world.reflect((-13.0, 0.0))[0] == pytest.approx(7.0)


def test_fold_stays_in_range():
    for value in (-103.7, -1.0, 0.0, 9.99, 57.3, 1000.0):
        folded = _fold(value, 10.0)
        assert 0.0 <= folded <= 10.0


def test_random_point_inside(rng):
    world = RectMap(100.0, 50.0)
    for _ in range(200):
        assert world.contains(world.random_point(rng))


def test_invalid_sizes_rejected():
    with pytest.raises(ValueError):
        RectMap(0.0, 10.0)
    with pytest.raises(ValueError):
        RectMap(10.0, -1.0)
    with pytest.raises(ValueError):
        RectMap.square_units(0)
