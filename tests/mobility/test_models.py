"""Mobility model invariants."""

import math
import random

import pytest

from repro.geometry.points import distance
from repro.mobility.map import RectMap
from repro.mobility.models import (
    RandomDirectionMobility,
    RandomWaypointMobility,
    StaticMobility,
    kmh_to_ms,
    make_mobility,
)


def test_kmh_to_ms():
    assert kmh_to_ms(36.0) == pytest.approx(10.0)
    assert kmh_to_ms(0.0) == 0.0


def test_static_never_moves():
    model = StaticMobility((3.0, 4.0))
    assert model.position(0.0) == (3.0, 4.0)
    assert model.position(1e6) == (3.0, 4.0)


class TestRandomDirection:
    def _model(self, seed=1, speed=50.0, world=None):
        world = world or RectMap(1000.0, 1000.0)
        return RandomDirectionMobility(
            world, random.Random(seed), speed, start=(500.0, 500.0)
        )

    def test_position_at_zero_is_start(self):
        assert self._model().position(0.0) == (500.0, 500.0)

    def test_stays_inside_map(self):
        world = RectMap(1000.0, 1000.0)
        model = self._model(world=world, speed=120.0)
        for i in range(2000):
            assert world.contains(model.position(i * 1.7))

    def test_speed_never_exceeds_max(self):
        model = self._model(speed=50.0)
        max_ms = kmh_to_ms(50.0)
        prev = model.position(0.0)
        dt = 0.25
        for i in range(1, 3000):
            current = model.position(i * dt)
            # Reflection can only shorten apparent displacement.
            assert distance(prev, current) <= max_ms * dt + 1e-9
            prev = current

    def test_deterministic_given_seed(self):
        a = self._model(seed=9)
        b = self._model(seed=9)
        for i in range(100):
            assert a.position(i * 3.0) == b.position(i * 3.0)

    def test_different_seeds_diverge(self):
        a = self._model(seed=1)
        b = self._model(seed=2)
        positions_a = [a.position(i * 10.0) for i in range(20)]
        positions_b = [b.position(i * 10.0) for i in range(20)]
        assert positions_a != positions_b


    def test_zero_speed_host_stays_put(self):
        model = self._model(speed=0.0)
        assert model.position(500.0) == (500.0, 500.0)

    def test_non_monotonic_query_raises(self):
        model = self._model()
        model.position(500.0)
        with pytest.raises(ValueError):
            model.position(1.0)

    def test_query_within_current_segment_ok(self):
        """Same-segment re-queries (same event time) must not raise."""
        model = self._model()
        p1 = model.position(0.5)
        p2 = model.position(0.5)
        assert p1 == p2

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            self._model().position(-1.0)

    def test_start_outside_map_rejected(self):
        world = RectMap(10.0, 10.0)
        with pytest.raises(ValueError):
            RandomDirectionMobility(world, random.Random(0), 10.0, start=(50.0, 5.0))

    def test_turn_durations_respected(self):
        """With a fixed duration range, segment rolls happen on schedule."""
        world = RectMap(1e6, 1e6)
        model = RandomDirectionMobility(
            world,
            random.Random(3),
            36.0,
            start=(5e5, 5e5),
            turn_duration_range=(10.0, 10.0),
        )
        # Velocity is constant within [0, 10); displacement is linear.
        p0 = model.position(0.0)
        p5 = model.position(5.0)
        p9 = model.position(9.0)
        v1 = ((p5[0] - p0[0]) / 5.0, (p5[1] - p0[1]) / 5.0)
        v2 = ((p9[0] - p5[0]) / 4.0, (p9[1] - p5[1]) / 4.0)
        assert v1 == pytest.approx(v2)

    def test_invalid_params(self):
        world = RectMap(10.0, 10.0)
        with pytest.raises(ValueError):
            RandomDirectionMobility(world, random.Random(0), -5.0)
        with pytest.raises(ValueError):
            RandomDirectionMobility(
                world, random.Random(0), 5.0, turn_duration_range=(0.0, 10.0)
            )


class TestRandomWaypoint:
    def _model(self, seed=1, pause=0.0):
        world = RectMap(1000.0, 1000.0)
        return RandomWaypointMobility(
            world, random.Random(seed), 50.0, start=(500.0, 500.0),
            pause_time=pause,
        )

    def test_stays_inside_map(self):
        model = self._model()
        world = RectMap(1000.0, 1000.0)
        for i in range(1000):
            assert world.contains(model.position(i * 2.0))

    def test_pause_produces_stationary_periods(self):
        model = self._model(seed=4, pause=30.0)
        positions = [model.position(i * 0.5) for i in range(4000)]
        stationary = sum(
            1 for a, b in zip(positions, positions[1:]) if a == b
        )
        assert stationary > 0

    def test_speed_bounds_validated(self):
        world = RectMap(10.0, 10.0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(world, random.Random(0), 0.0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(
                world, random.Random(0), 10.0, min_speed_kmh=20.0
            )
        with pytest.raises(ValueError):
            RandomWaypointMobility(
                world, random.Random(0), 10.0, pause_time=-1.0
            )


class TestFactory:
    def test_known_names(self):
        world = RectMap(100.0, 100.0)
        rng = random.Random(0)
        assert isinstance(
            make_mobility("random-direction", world, rng, 10.0),
            RandomDirectionMobility,
        )
        assert isinstance(
            make_mobility("random-waypoint", world, rng, 10.0),
            RandomWaypointMobility,
        )
        assert isinstance(
            make_mobility("static", world, rng, 10.0), StaticMobility
        )

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_mobility("teleport", RectMap(1, 1), random.Random(0), 1.0)

    def test_static_with_explicit_start(self):
        model = make_mobility(
            "static", RectMap(10, 10), random.Random(0), 0.0, start=(1.0, 2.0)
        )
        assert model.position(100.0) == (1.0, 2.0)
