"""PositionStore: batched positions must replay the scalar models exactly."""

import random

import numpy as np
import pytest

from repro.mobility.map import RectMap
from repro.mobility.models import (
    MobilityModel,
    RandomDirectionMobility,
    RandomWaypointMobility,
    StaticMobility,
)
from repro.mobility.store import PositionBuffers, PositionStore, supports_models


def make_models(world, n, seed=1, speed_kmh=60.0):
    """A mixed fleet: both segmented models plus a couple of static rows."""
    models = []
    for i in range(n):
        rng = random.Random(seed * 1000 + i)
        if i % 5 == 4:
            models.append(StaticMobility(world.random_point(rng)))
        elif i % 2:
            models.append(RandomWaypointMobility(world, rng, speed_kmh))
        else:
            models.append(RandomDirectionMobility(world, rng, speed_kmh))
    return models


def twin_fleets(world, n, seed=1, speed_kmh=60.0):
    """Two identically-seeded fleets (same RNG streams, separate state)."""
    return (
        make_models(world, n, seed, speed_kmh),
        make_models(world, n, seed, speed_kmh),
    )


def query_times(seed=9, count=60, horizon=120.0):
    rng = random.Random(seed)
    times = sorted(rng.uniform(0.0, horizon) for _ in range(count))
    # Repeats exercise the epoch cache.
    return [t for t in times for _ in (0, 1)]


def test_batched_arrays_bit_identical_to_scalar_models():
    world = RectMap(800.0, 600.0)
    store_fleet, scalar_fleet = twin_fleets(world, 20)
    store = PositionStore(store_fleet, world)
    for t in query_times():
        xs, ys = store.arrays_at(t)
        for i, model in enumerate(scalar_fleet):
            x, y = model.position(t)
            assert float(xs[i]) == x, (i, t)
            assert float(ys[i]) == y, (i, t)


def test_position_of_bit_identical_to_scalar_models():
    world = RectMap(1000.0, 1000.0)
    store_fleet, scalar_fleet = twin_fleets(world, 12, seed=3)
    store = PositionStore(store_fleet, world)
    rng = random.Random(17)
    t = 0.0
    for _ in range(200):
        t += rng.uniform(0.0, 2.0)
        host_id = rng.randrange(12)
        assert store.position_of(host_id, t) == scalar_fleet[host_id].position(t)


def test_lazy_read_promotes_to_epoch_on_second_query():
    world = RectMap(500.0, 500.0)
    store = PositionStore(make_models(world, 8), world)
    store.position_of(0, 1.0)
    assert store.lazy_reads == 1
    assert store.batch_evals == 0
    # Second single-host read at the same instant pays the batched epoch;
    # everything after that at t=1.0 is a cache hit.
    store.position_of(1, 1.0)
    assert store.batch_evals == 1
    hits_before = store.epoch_hits
    store.position_of(2, 1.0)
    assert store.epoch_hits == hits_before + 1


def test_arrays_at_rejects_time_going_backwards():
    world = RectMap(500.0, 500.0)
    store = PositionStore(make_models(world, 4), world)
    store.arrays_at(5.0)
    with pytest.raises(ValueError, match="non-monotonic"):
        store.arrays_at(4.0)


def test_lazy_reads_interleave_with_batches():
    """A lazy model query between epochs must not desync the arrays: the
    next batched epoch re-syncs the row from the model's rolled state."""
    world = RectMap(700.0, 700.0)
    store_fleet, scalar_fleet = twin_fleets(world, 10, seed=5)
    store = PositionStore(store_fleet, world)
    store.arrays_at(1.0)
    # Straggler far ahead: rolls host 3's segments via the model.
    assert store.position_of(3, 40.0) == scalar_fleet[3].position(40.0)
    xs, ys = store.arrays_at(50.0)
    for i, model in enumerate(scalar_fleet):
        assert (float(xs[i]), float(ys[i])) == model.position(50.0)


def test_static_rows_never_roll():
    world = RectMap(500.0, 500.0)
    static = [StaticMobility((10.0, 20.0)), StaticMobility((499.0, 1.0))]
    store = PositionStore(static, world)
    for t in (0.0, 100.0, 1e6):
        xs, ys = store.arrays_at(t)
        assert (float(xs[0]), float(ys[0])) == (10.0, 20.0)
        assert (float(xs[1]), float(ys[1])) == (499.0, 1.0)
    assert store.segment_rolls == 0


def test_supports_models_rejects_custom_models():
    class Orbit(MobilityModel):
        def position(self, time):
            return (0.0, 0.0)

    world = RectMap(500.0, 500.0)
    fleet = make_models(world, 3)
    assert supports_models(fleet)
    assert not supports_models(fleet + [Orbit()])
    with pytest.raises(ValueError, match="Orbit"):
        PositionStore(fleet + [Orbit()], world)


def test_buffers_are_reused_across_stores():
    world = RectMap(500.0, 500.0)
    buffers = PositionBuffers(16)
    assert buffers.capacity == 16
    first = PositionStore(make_models(world, 10), world, buffers=buffers)
    base = buffers._arrays[0]
    # Smaller store: same allocations, sliced views.
    second = PositionStore(make_models(world, 8), world, buffers=buffers)
    assert buffers.capacity == 16
    assert buffers._arrays[0] is base
    assert second.size == 8
    # Larger store grows the buffers.
    third = PositionStore(make_models(world, 32), world, buffers=buffers)
    assert buffers.capacity == 32
    assert third.size == 32
    xs, ys = third.arrays_at(1.0)
    assert xs.shape == (32,)


def test_buffer_reuse_does_not_leak_state_between_stores():
    """A fresh store over reused buffers replays its models exactly even
    though the arrays still hold the previous store's values."""
    world = RectMap(600.0, 600.0)
    buffers = PositionBuffers()
    first = PositionStore(make_models(world, 6, seed=1), world, buffers=buffers)
    first.arrays_at(77.7)
    reused_fleet, scalar_fleet = twin_fleets(world, 6, seed=2)
    reused = PositionStore(reused_fleet, world, buffers=buffers)
    xs, ys = reused.arrays_at(3.0)
    for i, model in enumerate(scalar_fleet):
        assert (float(xs[i]), float(ys[i])) == model.position(3.0)


def test_arrays_are_float64_views():
    world = RectMap(500.0, 500.0)
    store = PositionStore(make_models(world, 5), world)
    xs, ys = store.arrays_at(0.5)
    assert xs.dtype == np.float64 and ys.dtype == np.float64
    assert xs.shape == ys.shape == (5,)
