"""Graceful-degradation metrics: fault events, windows, time-to-recover."""

import math

import pytest

from repro.metrics.collector import FaultEventRecord, MetricsCollector


def add_broadcast(collector, key, origin, reachable, received, rebroadcast=0):
    """Record one synthetic broadcast with the given r / e / t shape."""
    collector.on_originate(key, source_id=0, time=origin, reachable_count=reachable)
    for host_id in range(1, received + 1):
        collector.on_receive(key, host_id, origin + 0.01)
    for host_id in range(1, rebroadcast + 1):
        collector.on_rebroadcast_start(key, host_id, origin + 0.02)
        collector.on_rebroadcast_end(key, host_id, origin + 0.03)


def test_fault_event_hooks_accumulate_in_order():
    collector = MetricsCollector()
    collector.on_host_crash(3, 1.0)
    collector.on_hello_mute(1, 2.0)
    collector.on_broadcast_skipped(3, 2.5)
    collector.on_host_recover(3, 4.0)
    assert collector.fault_events == [
        FaultEventRecord(1.0, "crash", 3),
        FaultEventRecord(2.0, "hello-mute", 1),
        FaultEventRecord(2.5, "skipped-broadcast", 3),
        FaultEventRecord(4.0, "recover", 3),
    ]
    assert collector.broadcasts_skipped == 1


def test_window_summary_buckets_by_origin_time():
    collector = MetricsCollector()
    add_broadcast(collector, (0, 1), origin=1.0, reachable=4, received=4)
    add_broadcast(collector, (0, 2), origin=6.0, reachable=4, received=2)
    add_broadcast(collector, (0, 3), origin=7.0, reachable=4, received=0)
    windows = collector.window_summary([5.0], end_time=10.0)
    assert [(w.start, w.end, w.broadcasts) for w in windows] == [
        (0.0, 5.0, 1),
        (5.0, 10.0, 2),
    ]
    assert windows[0].reachability.mean == 1.0
    assert windows[1].reachability.mean == pytest.approx(0.25)  # (0.5 + 0) / 2
    # The zero-receiver broadcast has undefined SRB; only one sample left.
    assert windows[1].saved_rebroadcast.count == 1


def test_window_summary_ignores_out_of_range_boundaries():
    collector = MetricsCollector()
    add_broadcast(collector, (0, 1), origin=1.0, reachable=2, received=2)
    windows = collector.window_summary([-1.0, 0.0, 99.0], end_time=10.0)
    assert [(w.start, w.end) for w in windows] == [(0.0, 10.0)]
    assert math.isnan(windows[0].row()["srb"]) is False


def test_fault_window_summary_cuts_at_crash_and_recover_only():
    collector = MetricsCollector()
    collector.on_host_crash(1, 3.0)
    collector.on_hello_mute(2, 4.0)  # must NOT create a boundary
    collector.on_host_recover(1, 6.0)
    add_broadcast(collector, (0, 1), origin=1.0, reachable=2, received=2)
    add_broadcast(collector, (0, 2), origin=5.0, reachable=2, received=1)
    add_broadcast(collector, (0, 3), origin=8.0, reachable=2, received=2)
    windows = collector.fault_window_summary(end_time=10.0)
    assert [(w.start, w.end) for w in windows] == [
        (0.0, 3.0),
        (3.0, 6.0),
        (6.0, 10.0),
    ]
    assert [w.broadcasts for w in windows] == [1, 1, 1]
    assert windows[1].reachability.mean == 0.5


def test_time_to_recover_finds_first_sustained_run():
    collector = MetricsCollector()
    # Before the probe point: perfect RE (baseline 1.0).
    add_broadcast(collector, (0, 1), origin=1.0, reachable=4, received=4)
    # Degraded, then a one-off blip, then sustained recovery.
    add_broadcast(collector, (0, 2), origin=10.0, reachable=4, received=1)
    add_broadcast(collector, (0, 3), origin=12.0, reachable=4, received=4)
    add_broadcast(collector, (0, 4), origin=14.0, reachable=4, received=1)
    add_broadcast(collector, (0, 5), origin=16.0, reachable=4, received=4)
    add_broadcast(collector, (0, 6), origin=18.0, reachable=4, received=4)
    # consecutive=1: the blip at t=12 counts.
    assert collector.time_to_recover(9.0, baseline_re=1.0) == pytest.approx(3.0)
    # consecutive=2: only the run starting at t=16 qualifies.
    assert collector.time_to_recover(
        9.0, baseline_re=1.0, consecutive=2
    ) == pytest.approx(7.0)


def test_time_to_recover_none_when_never_recovering():
    collector = MetricsCollector()
    add_broadcast(collector, (0, 1), origin=5.0, reachable=4, received=1)
    assert collector.time_to_recover(0.0, baseline_re=1.0) is None


def test_time_to_recover_rejects_bad_consecutive():
    collector = MetricsCollector()
    with pytest.raises(ValueError):
        collector.time_to_recover(0.0, baseline_re=1.0, consecutive=0)
