"""Unit-disk connectivity snapshots."""

import random

import networkx as nx
import pytest

from repro.metrics.connectivity import connected_components, reachable_set


def test_line_fully_reachable():
    positions = {i: (i * 0.9, 0.0) for i in range(5)}
    assert reachable_set(positions, 0, radius=1.0) == {1, 2, 3, 4}


def test_broken_line_partitions():
    positions = {0: (0.0, 0.0), 1: (0.9, 0.0), 2: (3.0, 0.0), 3: (3.9, 0.0)}
    assert reachable_set(positions, 0, radius=1.0) == {1}
    assert reachable_set(positions, 2, radius=1.0) == {3}


def test_source_excluded_from_result():
    positions = {0: (0.0, 0.0), 1: (0.5, 0.0)}
    assert 0 not in reachable_set(positions, 0, radius=1.0)


def test_isolated_source():
    positions = {0: (0.0, 0.0), 1: (10.0, 0.0)}
    assert reachable_set(positions, 0, radius=1.0) == set()


def test_range_boundary_inclusive():
    positions = {0: (0.0, 0.0), 1: (1.0, 0.0)}
    assert reachable_set(positions, 0, radius=1.0) == {1}


def test_multihop_through_grid_cells():
    """Hosts in far-apart grid cells still connect through relays."""
    positions = {i: (i * 0.95, 0.0) for i in range(20)}
    assert reachable_set(positions, 0, radius=1.0) == set(range(1, 20))


def test_unknown_source_raises():
    with pytest.raises(KeyError):
        reachable_set({0: (0.0, 0.0)}, 99, radius=1.0)


def test_invalid_radius():
    with pytest.raises(ValueError):
        reachable_set({0: (0.0, 0.0)}, 0, radius=0.0)


def test_connected_components_sorted_by_size():
    positions = {
        0: (0.0, 0.0), 1: (0.5, 0.0), 2: (1.0, 0.0),  # triple
        3: (10.0, 0.0), 4: (10.5, 0.0),  # pair
        5: (20.0, 0.0),  # singleton
    }
    components = connected_components(positions, radius=1.0)
    assert [len(c) for c in components] == [3, 2, 1]
    assert components[0] == {0, 1, 2}
    assert components[2] == {5}


def test_matches_networkx_on_random_layouts():
    """Cross-check the grid-bucketed BFS against networkx."""
    rng = random.Random(42)
    for trial in range(10):
        positions = {
            i: (rng.uniform(0, 5), rng.uniform(0, 5)) for i in range(40)
        }
        graph = nx.random_geometric_graph(
            40, radius=1.0, pos={k: list(v) for k, v in positions.items()}
        )
        for source in (0, 17, 39):
            expected = set(nx.node_connected_component(graph, source)) - {source}
            assert reachable_set(positions, source, radius=1.0) == expected
