"""Metric formulas and aggregation."""

import math

import pytest

from repro.metrics.collector import (
    BroadcastRecord,
    MetricsCollector,
    SummaryStat,
)


def make_record(**overrides):
    defaults = dict(key=(0, 1), source_id=0, origin_time=10.0, reachable_count=4)
    defaults.update(overrides)
    return BroadcastRecord(**defaults)


class TestBroadcastRecord:
    def test_reachability_ratio(self):
        record = make_record(reachable_count=4)
        for host, t in [(1, 10.1), (2, 10.2), (3, 10.3)]:
            record.received_times[host] = t
        assert record.reachability == pytest.approx(0.75)

    def test_reachability_none_when_source_isolated(self):
        record = make_record(reachable_count=0)
        assert record.reachability is None

    def test_srb_formula(self):
        record = make_record()
        record.received_times = {1: 10.1, 2: 10.1, 3: 10.1, 4: 10.1}
        record.rebroadcasters = {1}
        assert record.saved_rebroadcast == pytest.approx(0.75)

    def test_srb_zero_when_everyone_rebroadcasts(self):
        record = make_record()
        record.received_times = {1: 10.1, 2: 10.1}
        record.rebroadcasters = {1, 2}
        assert record.saved_rebroadcast == 0.0

    def test_srb_none_when_nothing_received(self):
        assert make_record().saved_rebroadcast is None

    def test_latency_last_decision(self):
        record = make_record(origin_time=10.0)
        record.source_tx_end = 10.002
        record.received_times = {1: 10.1, 2: 10.2}
        record.decision_times = {1: 10.15, 2: 10.4}
        assert record.latency() == pytest.approx(0.4)

    def test_latency_includes_source_tx_when_last(self):
        record = make_record(origin_time=10.0)
        record.source_tx_end = 10.5
        record.received_times = {1: 10.1}
        record.decision_times = {1: 10.2}
        assert record.latency() == pytest.approx(0.5)

    def test_latency_fallback_for_undecided(self):
        record = make_record(origin_time=10.0)
        record.received_times = {1: 10.1}
        assert record.latency(fallback_end=12.0) == pytest.approx(2.0)

    def test_latency_none_when_no_receivers(self):
        assert make_record().latency() is None


class TestSummaryStat:
    def test_of_empty_is_none(self):
        assert SummaryStat.of([]) is None

    def test_mean_and_std(self):
        stat = SummaryStat.of([1.0, 2.0, 3.0])
        assert stat.mean == pytest.approx(2.0)
        assert stat.std == pytest.approx(1.0)
        assert stat.count == 3

    def test_single_value_zero_std(self):
        stat = SummaryStat.of([5.0])
        assert stat.std == 0.0
        assert stat.sem == 0.0

    def test_sem(self):
        stat = SummaryStat.of([1.0, 2.0, 3.0, 4.0])
        assert stat.sem == pytest.approx(stat.std / 2.0)


class TestMetricsCollector:
    def _one_broadcast(self, collector, key=(0, 1)):
        collector.on_originate(key, 0, 10.0, reachable_count=2)
        collector.on_source_tx_end(key, 10.002)
        collector.on_receive(key, 1, 10.1)
        collector.on_receive(key, 2, 10.2)
        collector.on_rebroadcast_start(key, 1, 10.3)
        collector.on_rebroadcast_end(key, 1, 10.31)
        collector.on_inhibit(key, 2, 10.25)

    def test_full_flow(self):
        collector = MetricsCollector()
        self._one_broadcast(collector)
        summary = collector.summarize()
        assert summary.broadcasts == 1
        assert summary.reachability.mean == pytest.approx(1.0)
        assert summary.saved_rebroadcast.mean == pytest.approx(0.5)
        assert summary.latency.mean == pytest.approx(0.31)

    def test_duplicate_receive_ignored(self):
        collector = MetricsCollector()
        collector.on_originate((0, 1), 0, 0.0, 5)
        collector.on_receive((0, 1), 1, 1.0)
        collector.on_receive((0, 1), 1, 2.0)
        assert collector.records[(0, 1)].received_times == {1: 1.0}

    def test_duplicate_originate_rejected(self):
        collector = MetricsCollector()
        collector.on_originate((0, 1), 0, 0.0, 5)
        with pytest.raises(ValueError):
            collector.on_originate((0, 1), 0, 1.0, 5)

    def test_events_for_unknown_key_ignored(self):
        collector = MetricsCollector()
        collector.on_receive((9, 9), 1, 1.0)
        collector.on_inhibit((9, 9), 1, 1.0)
        collector.on_rebroadcast_start((9, 9), 1, 1.0)
        collector.on_rebroadcast_end((9, 9), 1, 1.0)
        collector.on_source_tx_end((9, 9), 1.0)
        assert collector.records == {}

    def test_inhibit_does_not_override_rebroadcast_end(self):
        collector = MetricsCollector()
        collector.on_originate((0, 1), 0, 0.0, 5)
        collector.on_receive((0, 1), 1, 0.1)
        collector.on_rebroadcast_end((0, 1), 1, 0.2)
        collector.on_inhibit((0, 1), 1, 0.3)
        assert collector.records[(0, 1)].decision_times[1] == 0.2

    def test_hello_counters(self):
        collector = MetricsCollector()
        collector.on_hello_sent(3)
        collector.on_hello_sent(3)
        collector.on_hello_sent(7)
        assert collector.hello_packets_sent == 3
        assert collector.hello_counts_by_host == {3: 2, 7: 1}

    def test_summary_row_nan_for_undefined(self):
        collector = MetricsCollector()
        collector.on_originate((0, 1), 0, 0.0, 0)  # isolated source
        row = collector.summarize().row()
        assert math.isnan(row["re"])
        assert math.isnan(row["srb"])
        assert row["broadcasts"] == 1

    def test_aggregation_over_multiple_broadcasts(self):
        collector = MetricsCollector()
        self._one_broadcast(collector, key=(0, 1))
        # Second broadcast: only 1 of 2 reachable receives.
        collector.on_originate((5, 2), 5, 20.0, reachable_count=2)
        collector.on_receive((5, 2), 1, 20.1)
        collector.on_rebroadcast_start((5, 2), 1, 20.2)
        collector.on_rebroadcast_end((5, 2), 1, 20.21)
        summary = collector.summarize()
        assert summary.reachability.mean == pytest.approx((1.0 + 0.5) / 2)
        assert summary.saved_rebroadcast.mean == pytest.approx((0.5 + 0.0) / 2)
