"""Scheme-zoo smoke: every registered scheme runs one small seeded scenario.

The CI ``scheme-zoo-smoke`` job runs this module.  It instantiates every
registry entry with defaults, runs each on the same dense seeded scenario
and checks the cross-scheme invariants: flooding relays everywhere (its
SRB is zero and its data-frame count is the upper bound) and every
suppression scheme saves some rebroadcasts without losing sanity on RE.
Registry completeness (unique names, unique ``describe()`` strings, valid
parameter schemas) is pinned by ``tests/schemes/test_registry.py``.
"""

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_broadcast_simulation
from repro.schemes import SCHEME_REGISTRY

#: Dense enough that every suppression family has something to suppress.
SCENARIO = dict(map_units=3, num_hosts=40, num_broadcasts=8, seed=11)


@pytest.fixture(scope="module")
def zoo_results():
    return {
        name: run_broadcast_simulation(ScenarioConfig(scheme=name, **SCENARIO))
        for name in sorted(SCHEME_REGISTRY)
    }


def _data_frames(result):
    """Broadcast data transmissions (channel total minus HELLO frames)."""
    return result.channel_stats.transmissions - result.stats.hello_packets_sent


def test_every_scheme_runs_with_defaults(zoo_results):
    assert set(zoo_results) == set(SCHEME_REGISTRY)


def test_re_and_srb_are_sane(zoo_results):
    for name, result in zoo_results.items():
        assert 0.0 < result.re <= 1.0, name
        assert 0.0 <= result.srb < 1.0, name
        assert result.stats.broadcasts == SCENARIO["num_broadcasts"], name


def test_flooding_is_the_upper_bound(zoo_results):
    flooding = zoo_results["flooding"]
    assert flooding.srb == 0.0  # flooding never saves a rebroadcast
    for name, result in zoo_results.items():
        assert result.srb >= flooding.srb, name
        assert _data_frames(result) <= _data_frames(flooding), name


def test_every_suppression_scheme_saves_something(zoo_results):
    for name, result in zoo_results.items():
        if name == "flooding":
            continue
        assert result.srb > 0.0, name


def test_hello_traffic_matches_declared_needs(zoo_results):
    for name, result in zoo_results.items():
        needs_hello = SCHEME_REGISTRY[name].needs_hello
        assert (result.stats.hello_packets_sent > 0) == needs_hello, name
