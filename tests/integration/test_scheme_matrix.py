"""Every scheme through one standard scenario: requirements honored.

A completeness net: each registry scheme runs end to end on the same small
mobile network, and the machinery its class flags request (HELLO beacons,
GPS stamping) demonstrably engages.
"""

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_broadcast_simulation
from repro.schemes import SCHEME_REGISTRY, make_scheme

SCENARIO = dict(map_units=3, num_hosts=30, num_broadcasts=5, seed=13)


@pytest.fixture(scope="module", params=sorted(SCHEME_REGISTRY))
def scheme_result(request):
    config = ScenarioConfig(scheme=request.param, **SCENARIO)
    return request.param, run_broadcast_simulation(config)


def test_completes_with_sane_metrics(scheme_result):
    name, result = scheme_result
    assert result.stats.broadcasts == 5
    assert 0.0 <= result.re <= 1.0
    assert 0.0 <= result.srb <= 1.0
    assert result.latency > 0.0
    assert result.channel_stats.transmissions > 0


def test_hello_machinery_matches_declared_needs(scheme_result):
    name, result = scheme_result
    scheme = make_scheme(name)
    if scheme.needs_hello:
        assert result.hellos > 0, name
    else:
        assert result.hellos == 0, name


def test_every_receiving_host_decided(scheme_result):
    """No stuck pending state: every receiver either rebroadcast or was
    inhibited by simulation end."""
    name, result = scheme_result
    for record in result.metrics.records.values():
        for host_id in record.received_times:
            assert host_id in record.decision_times, (name, host_id)


def test_position_stamping_matches_declared_needs():
    """needs_position schemes stamp GPS into relayed copies; others ship
    None (no free information)."""
    from repro.experiments.topologies import build_static_network, line_positions
    from repro.mac.frames import DataFrame
    from repro.net.packets import BroadcastPacket
    from repro.sim.engine import Scheduler
    from repro.sim.trace import RecordingTracer

    for name in sorted(SCHEME_REGISTRY):
        scheme_probe = make_scheme(name)
        scheduler = Scheduler()
        network, metrics = build_static_network(
            scheduler, line_positions(3, 400.0), lambda n=name: make_scheme(n)
        )
        relayed = []

        original = network.channel.start_transmission

        def spy(sender_id, frame, duration, _original=original):
            if isinstance(frame, DataFrame) and isinstance(
                frame.payload, BroadcastPacket
            ):
                if frame.payload.hops > 0:
                    relayed.append(frame.payload)
            return _original(sender_id, frame, duration)

        network.channel.start_transmission = spy
        network.start()
        scheduler.schedule_at(1.0, network.initiate_broadcast, 0)
        scheduler.run(until=4.0)
        assert relayed, name  # the line forces at least one relay
        for packet in relayed:
            if scheme_probe.needs_position:
                assert packet.tx_position is not None, name
            else:
                assert packet.tx_position is None, name
