"""Crash-resume bit-identity: a campaign interrupted at any checkpoint
boundary and resumed must produce results byte-identical to one that
never stopped, without re-running any completed simulation."""

from __future__ import annotations

import pytest

import repro.experiments.parallel as parallel_mod
from repro.campaigns.planner import plan_campaign
from repro.campaigns.queue import RESULTS_NAME, CampaignExecutor
from repro.campaigns.spec import spec_from_dict
from repro.experiments.runner import run_broadcast_simulation
from tests.integration.test_determinism import fingerprint


def make_plan():
    return plan_campaign(spec_from_dict({
        "name": "resume-identity",
        "grid": {
            "scheme": ["flooding", "counter"],
            "seed": [1, 2, 3],
        },
        "scenario": {
            "map_units": 1,
            "num_hosts": 15,
            "num_broadcasts": 3,
            "scheme_params": {},
        },
    }))


def reference_bytes(tmp_path, plan):
    """The results.json of an uninterrupted run in a pristine cache."""
    outcome = CampaignExecutor(
        plan, tmp_path / "reference", max_workers=1
    ).run()
    assert outcome.status == "complete"
    return (outcome.directory / RESULTS_NAME).read_bytes()


def interrupt_after(monkeypatch, n):
    calls = {"n": 0}

    def wrapper(config):
        if calls["n"] >= n:
            raise KeyboardInterrupt
        calls["n"] += 1
        return run_broadcast_simulation(config)

    monkeypatch.setattr(parallel_mod, "run_broadcast_simulation", wrapper)


@pytest.mark.parametrize("stop_after", [1, 3, 5])
def test_interrupt_resume_bit_identical(tmp_path, monkeypatch, stop_after):
    plan = make_plan()
    expected = reference_bytes(tmp_path, plan)

    interrupt_after(monkeypatch, stop_after)
    first = CampaignExecutor(
        plan, tmp_path / "campaign", max_workers=1, checkpoint_every=2
    )
    outcome = first.run()
    assert outcome.status == "interrupted"
    assert outcome.completed == stop_after
    assert first.runner.perf.simulated == stop_after

    monkeypatch.setattr(
        parallel_mod, "run_broadcast_simulation", run_broadcast_simulation
    )
    second = CampaignExecutor(
        plan, tmp_path / "campaign", max_workers=1, checkpoint_every=2
    )
    resumed = second.run()
    assert resumed.status == "complete"
    # Zero duplicate simulations: every pre-interrupt run came from cache.
    assert second.runner.perf.simulated == plan.total - stop_after
    assert second.runner.perf.cache_hits == stop_after

    observed = (resumed.directory / RESULTS_NAME).read_bytes()
    assert observed == expected


def test_double_interrupt_then_resume(tmp_path, monkeypatch):
    """Two successive crashes still converge to the identical document."""
    plan = make_plan()
    expected = reference_bytes(tmp_path, plan)

    for budget in (2, 2):
        interrupt_after(monkeypatch, budget)
        outcome = CampaignExecutor(
            plan, tmp_path / "campaign", max_workers=1, checkpoint_every=1
        ).run()
        assert outcome.status == "interrupted"

    monkeypatch.setattr(
        parallel_mod, "run_broadcast_simulation", run_broadcast_simulation
    )
    final = CampaignExecutor(
        plan, tmp_path / "campaign", max_workers=1, checkpoint_every=1
    )
    outcome = final.run()
    assert outcome.status == "complete"
    assert final.runner.perf.simulated == plan.total - 4
    assert final.runner.perf.cache_hits == 4
    assert (outcome.directory / RESULTS_NAME).read_bytes() == expected


def test_campaign_results_match_direct_simulation(tmp_path):
    """Campaign-run metrics equal a fresh direct run's fingerprint."""
    plan = make_plan()
    outcome = CampaignExecutor(
        plan, tmp_path / "campaign", max_workers=1
    ).run()
    for planned, result in zip(plan.runs, outcome.results):
        direct = fingerprint(run_broadcast_simulation(planned.config))
        observed = fingerprint(result)
        assert observed == direct, planned.run_id
