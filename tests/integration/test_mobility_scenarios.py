"""Integration under mobility: moving hosts change what the schemes see."""

import pytest

from repro.metrics.collector import MetricsCollector
from repro.mobility.map import RectMap
from repro.mobility.models import MobilityModel, StaticMobility
from repro.net.host import HelloConfig
from repro.net.network import Network
from repro.schemes import AdaptiveCounterScheme, FloodingScheme, NeighborCoverageScheme
from repro.sim.engine import Scheduler
from repro.sim.randomness import RandomStreams
from repro.phy.params import PhyParams


class LinearMobility(MobilityModel):
    """Constant-velocity motion (deterministic test trajectories)."""

    def __init__(self, start, velocity):
        self._start = start
        self._velocity = velocity

    def position(self, time):
        return (
            self._start[0] + self._velocity[0] * time,
            self._start[1] + self._velocity[1] * time,
        )


def build(mobilities, scheme_factory, hello=None, world_side=10_000.0):
    scheduler = Scheduler()
    metrics = MetricsCollector()
    network = Network(
        scheduler=scheduler,
        params=PhyParams(),
        world=RectMap(world_side, world_side),
        streams=RandomStreams(5),
        num_hosts=len(mobilities),
        scheme_factory=scheme_factory,
        metrics=metrics,
        max_speed_kmh=0.0,
        hello_config=hello,
        mobility_factory=lambda host_id: mobilities[host_id],
    )
    return scheduler, network, metrics


def test_courier_convoy_bridges_partitions_only_while_aligned():
    """Two static groups 1900 m apart; a convoy of three couriers (475 m
    spacing, 50 m/s) completes the multihop chain only while its lead
    courier sits in x ~ [1550, 1600].  A broadcast during that window
    crosses the gap; one after it reaches only the local group."""
    mobilities = [
        StaticMobility((1000.0, 1000.0)),   # 0: source group
        StaticMobility((1100.0, 1000.0)),   # 1
        StaticMobility((3000.0, 1000.0)),   # 2: far group
        StaticMobility((3100.0, 1000.0)),   # 3
        LinearMobility((1300.0, 1000.0), (50.0, 0.0)),  # 4: convoy lead
        LinearMobility((1775.0, 1000.0), (50.0, 0.0)),  # 5
        LinearMobility((2250.0, 1000.0), (50.0, 0.0)),  # 6
    ]
    scheduler, network, metrics = build(mobilities, FloodingScheme)
    network.start()
    # t = 5.5: convoy at 1575/2050/2525 -- chain 1100-1575-2050-2525-3000
    # with every hop <= 500 m: the whole network is reachable.
    scheduler.schedule_at(5.5, network.initiate_broadcast, 0)
    # t = 25: convoy at 2550/3025/3500 -- the source group is cut off.
    scheduler.schedule_at(25.0, network.initiate_broadcast, 0)
    scheduler.run(until=27.0)

    bridged = metrics.records[(0, 1)]
    assert bridged.reachable_count == 6
    assert bridged.reachability == 1.0
    assert 3 in bridged.received_times  # the far group heard it

    cut_off = metrics.records[(0, 2)]
    assert cut_off.reachable_count == 1
    assert set(cut_off.received_times) == {1}


def test_geometry_of_courier_reachability():
    """Pin down the courier case precisely: reachable set matches the
    unit-disk geometry at initiation time."""
    mobilities = [
        StaticMobility((1000.0, 1000.0)),
        StaticMobility((1100.0, 1000.0)),
        LinearMobility((1400.0, 1000.0), (50.0, 0.0)),
    ]
    scheduler, network, metrics = build(mobilities, FloodingScheme)
    network.start()
    # At t=2 the courier is at 1500: both neighbors within 500.
    scheduler.schedule_at(2.0, network.initiate_broadcast, 0)
    scheduler.run(until=4.0)
    first = metrics.records[(0, 1)]
    assert first.reachable_count == 2
    assert first.reachability == 1.0
    # At t=30 the courier is at 2900: out of everyone's range.
    scheduler.schedule_at(30.0, network.initiate_broadcast, 0)
    scheduler.run(until=32.0)
    second = metrics.records[(0, 2)]
    assert second.reachable_count == 1
    assert set(second.received_times) == {1}


def test_neighbor_tables_track_departing_host():
    """NC's neighbor table drops a host that drives away (two missed
    hellos) and its variation spikes accordingly."""
    mobilities = [
        StaticMobility((0.0, 0.0)),
        LinearMobility((100.0, 0.0), (40.0, 0.0)),  # leaves range at t=10
    ]
    scheduler, network, metrics = build(
        mobilities, NeighborCoverageScheme, hello=HelloConfig(interval=1.0)
    )
    network.start()
    scheduler.run(until=5.0)
    table = network.hosts[0].neighbor_table
    assert table.neighbor_ids(now=5.0) == {1}
    # Host 1 exits radio range (x > 500) at t = 10; after two missed
    # hello intervals host 0 purges it.
    scheduler.run(until=14.0)
    assert table.neighbor_ids(now=14.0) == set()
    assert table.variation(now=14.0) > 0.0


def test_adaptive_counter_threshold_follows_density_change():
    """A host that starts alone and gets surrounded switches from the
    permissive to the aggressive end of C(n)."""
    # Host 0 static; hosts 1..14 drive toward it and arrive around t~25.
    mobilities = [StaticMobility((5000.0, 5000.0))]
    for i in range(14):
        angle_x = 5000.0 + 1500.0 + i * 10.0
        mobilities.append(LinearMobility((angle_x, 5000.0), (-60.0, 0.0)))
    scheduler, network, metrics = build(
        mobilities, AdaptiveCounterScheme, hello=HelloConfig(interval=1.0)
    )
    network.start()
    counts = {}
    scheduler.schedule_at(5.0, lambda: counts.update(early=network.hosts[0].neighbor_count()))
    # The drivers pass closest around t = 25 (1500 m at 60 m/s).
    scheduler.schedule_at(25.0, lambda: counts.update(late=network.hosts[0].neighbor_count()))
    scheduler.run(until=26.0)
    assert counts["early"] <= 2
    assert counts["late"] >= 10
    scheme = network.hosts[0].scheme
    # With >= 12 known neighbors the threshold sits at the aggressive
    # floor C = 2, below what any mid-density neighborhood would get.
    assert scheme.threshold_fn(counts["late"]) == 2
    assert scheme.threshold_fn(4) > scheme.threshold_fn(counts["late"])
