"""Failure injection: forced losses, deaf links, stale neighbor tables."""

import pytest

from repro.experiments.topologies import (
    build_static_network,
    grid_positions,
    line_positions,
)
from repro.net.host import HelloConfig
from repro.schemes import CounterScheme, FloodingScheme, NeighborCoverageScheme
from repro.sim.engine import Scheduler


def run_one(positions, scheme_factory, drop_predicate=None, hello_config=None,
            source=0, start_at=1.0, until=20.0):
    scheduler = Scheduler()
    network, metrics = build_static_network(
        scheduler, positions, scheme_factory,
        drop_predicate=drop_predicate, hello_config=hello_config,
    )
    network.start()
    if hello_config is not None:
        start_at = max(start_at, 3.0 * hello_config.interval)
    scheduler.schedule_at(start_at, network.initiate_broadcast, source)
    scheduler.run(until=until)
    return network, metrics, next(iter(metrics.records.values()))


def test_severed_relay_link_breaks_line():
    """Dropping every frame on the 1 -> 2 link cuts hosts 2+ off."""

    def sever(sender, receiver):
        return sender == 1 and receiver == 2

    _, _, record = run_one(
        line_positions(4, 400.0), FloodingScheme, drop_predicate=sever
    )
    # e was computed geometrically (3 reachable) but only host 1 receives.
    assert record.received_count == 1
    assert record.reachability == pytest.approx(1 / 3)


def test_lossless_control_reaches_everyone():
    _, _, record = run_one(line_positions(4, 400.0), FloodingScheme)
    assert record.reachability == 1.0


def test_redundancy_masks_single_bad_link():
    """In a dense cluster, killing one link leaves other paths intact --
    the redundancy the storm schemes rely on."""

    def sever(sender, receiver):
        return sender == 0 and receiver == 3

    _, _, record = run_one(
        grid_positions(2, 3, 60.0), FloodingScheme, drop_predicate=sever,
        source=0,
    )
    assert record.reachability == 1.0


def test_counter_scheme_under_heavy_random_loss():
    """30% random loss: the counter scheme still resolves every decision
    (no stuck pending state), even if RE suffers."""
    import random
    loss_rng = random.Random(7)

    def lossy(sender, receiver):
        return loss_rng.random() < 0.3

    _, metrics, record = run_one(
        grid_positions(3, 3, 300.0), lambda: CounterScheme(threshold=3),
        drop_predicate=lossy,
    )
    assert 0.0 <= (record.reachability or 0.0) <= 1.0
    # Every receiving host reached a decision.
    for host_id in record.received_times:
        assert host_id in record.decision_times


def test_hello_starvation_degrades_neighbor_coverage():
    """If every HELLO from host 1 is dropped, its neighbors never learn it
    exists; NC may then fail to cover it."""

    def drop_hellos_from_1(sender, receiver):
        return sender == 1

    scheduler = Scheduler()
    network, metrics = build_static_network(
        scheduler, line_positions(3, 400.0), NeighborCoverageScheme,
        hello_config=HelloConfig(interval=1.0),
        drop_predicate=drop_hellos_from_1,
    )
    network.start()
    scheduler.run(until=6.0)
    # Hosts 0 and 2 never enlist host 1.
    assert 1 not in network.hosts[0].neighbor_table.neighbor_ids(now=6.0)
    assert 1 not in network.hosts[2].neighbor_table.neighbor_ids(now=6.0)


def test_detached_host_stops_participating():
    scheduler = Scheduler()
    network, metrics = build_static_network(
        scheduler, line_positions(4, 400.0), FloodingScheme
    )
    network.start()
    scheduler.schedule_at(0.5, network.channel.detach, 2)
    scheduler.schedule_at(1.0, network.initiate_broadcast, 0)
    scheduler.run(until=10.0)
    record = next(iter(metrics.records.values()))
    # Host 2 is offline: the chain stops at host 1.
    assert set(record.received_times) == {1}
