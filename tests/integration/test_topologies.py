"""Full-stack integration on controlled topologies.

These run the real engine end to end (channel, MAC, schemes, metrics) on
networks whose correct outcomes are known by construction.
"""

import pytest

from repro.experiments.topologies import (
    build_static_network,
    grid_positions,
    line_positions,
    star_positions,
    two_clusters_positions,
)
from repro.net.host import HelloConfig
from repro.schemes import (
    AdaptiveCounterScheme,
    CounterScheme,
    FloodingScheme,
    NeighborCoverageScheme,
)
from repro.sim.engine import Scheduler


def run_broadcast(positions, scheme_factory, source=0, until=10.0,
                  hello_config=None, start_at=1.0, **kwargs):
    scheduler = Scheduler()
    network, metrics = build_static_network(
        scheduler, positions, scheme_factory, hello_config=hello_config,
        **kwargs,
    )
    network.start()
    if hello_config is not None:
        start_at = max(start_at, 3.0 * hello_config.interval)
    scheduler.schedule_at(start_at, network.initiate_broadcast, source)
    scheduler.run(until=max(until, start_at + 5.0))
    return network, metrics, next(iter(metrics.records.values()))


class TestFloodingLine:
    def test_multihop_relay_reaches_far_end(self):
        """0-1-2-3-4 line, spacing 400 < 500: only flooding relays get the
        packet to host 4."""
        _, _, record = run_broadcast(line_positions(5, 400.0), FloodingScheme)
        assert record.reachable_count == 4
        assert record.reachability == 1.0

    def test_every_receiver_rebroadcasts(self):
        _, _, record = run_broadcast(line_positions(5, 400.0), FloodingScheme)
        assert record.rebroadcast_count == 4
        assert record.saved_rebroadcast == 0.0

    def test_latency_increases_with_line_length(self):
        _, _, short = run_broadcast(line_positions(3, 400.0), FloodingScheme)
        _, _, long = run_broadcast(line_positions(10, 400.0), FloodingScheme)
        assert long.latency() > short.latency()


class TestPartition:
    def test_unreachable_cluster_does_not_hurt_re(self):
        """RE divides by the reachable set only (e counts the partition)."""
        positions = two_clusters_positions(3, 100.0, gap=5000.0)
        _, _, record = run_broadcast(positions, FloodingScheme, source=0)
        assert record.reachable_count == 2
        assert record.received_count == 2
        assert record.reachability == 1.0

    def test_isolated_source_re_undefined(self):
        positions = [(0.0, 0.0), (5000.0, 0.0), (5400.0, 0.0)]
        _, _, record = run_broadcast(positions, FloodingScheme, source=0)
        assert record.reachable_count == 0
        assert record.reachability is None


class TestCounterCluster:
    def test_dense_cluster_saves_rebroadcasts(self):
        """7 hosts all in mutual range: with C=2 nearly everyone inhibits."""
        positions = grid_positions(1, 7, 50.0)
        _, _, record = run_broadcast(
            positions, lambda: CounterScheme(threshold=2)
        )
        assert record.reachability == 1.0
        # The first rebroadcast inhibits all other hosts.
        assert record.rebroadcast_count <= 2
        assert record.saved_rebroadcast >= 4 / 6

    def test_high_threshold_floods(self):
        positions = grid_positions(1, 5, 50.0)
        _, _, record = run_broadcast(
            positions, lambda: CounterScheme(threshold=6)
        )
        # c can reach at most 5 (one original + 4 rebroadcasts) but hosts
        # transmit before hearing that many copies; all rebroadcast.
        assert record.rebroadcast_count >= 3

    def test_line_relay_not_broken_by_counter(self):
        """On a sparse line each host hears few copies: C=2 still relays...
        to the extent copies do not overlap; RE stays high."""
        _, _, record = run_broadcast(
            line_positions(5, 450.0), lambda: CounterScheme(threshold=2)
        )
        assert record.reachability == 1.0


class TestStar:
    def test_hub_relays_to_all_leaves(self):
        positions = star_positions(6, 450.0)
        _, _, record = run_broadcast(positions, FloodingScheme, source=1)
        assert record.reachability == 1.0


class TestNeighborCoverageLine:
    def test_end_host_suppressed_middle_relays(self):
        positions = line_positions(3, 400.0)
        _, metrics, record = run_broadcast(
            positions, NeighborCoverageScheme,
            hello_config=HelloConfig(interval=1.0), until=15.0,
        )
        assert record.reachability == 1.0
        # Host 1 must relay (host 2 uncovered); host 2 inhibits (its only
        # neighbor 1 already has the packet).
        assert record.rebroadcasters == {1}
        assert record.saved_rebroadcast == pytest.approx(0.5)

    def test_long_line_relays_all_intermediates(self):
        positions = line_positions(6, 400.0)
        _, _, record = run_broadcast(
            positions, NeighborCoverageScheme,
            hello_config=HelloConfig(interval=1.0), until=20.0,
        )
        assert record.reachability == 1.0
        # Hosts 1..4 relay; host 5 (far end) inhibits.
        assert record.rebroadcasters == {1, 2, 3, 4}


class TestAdaptiveCounterTopology:
    def test_sparse_line_forces_rebroadcast(self):
        """With 1-2 neighbors, C(n) is high: the line relays fully."""
        _, _, record = run_broadcast(
            line_positions(6, 450.0), AdaptiveCounterScheme,
            hello_config=HelloConfig(interval=1.0), until=20.0,
        )
        assert record.reachability == 1.0

    def test_dense_cluster_uses_floor(self):
        """With 14 neighbors each, C(n)=2: most rebroadcasts suppressed."""
        positions = grid_positions(3, 5, 60.0)
        _, _, record = run_broadcast(
            positions, AdaptiveCounterScheme,
            hello_config=HelloConfig(interval=1.0), until=20.0,
        )
        assert record.reachability == 1.0
        assert record.saved_rebroadcast >= 0.5
