"""Graceful degradation under faults: schemes keep terminating and RE is
measured against what is physically attainable (the alive reachable set)."""

import math

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_broadcast_simulation
from repro.experiments.topologies import (
    build_static_network,
    grid_positions,
    line_positions,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ChurnProcess,
    FaultPlan,
    GilbertElliottLossSpec,
    MuteHelloFault,
)
from repro.net.host import HelloConfig
from repro.phy.params import PhyParams
from repro.schemes.adaptive_counter import AdaptiveCounterScheme
from repro.schemes.flooding import FloodingScheme
from repro.schemes.neighbor_coverage import NeighborCoverageScheme
from repro.sim.engine import Scheduler
from repro.sim.randomness import RandomStreams

PARAMS = PhyParams(radio_radius=100.0)
HELLO = HelloConfig(enabled=True, interval=0.5)


def make_line(n, scheme, spacing=80.0):
    """Line with adjacent-only connectivity (spacing 80, radius 100)."""
    scheduler = Scheduler()
    network, metrics = build_static_network(
        scheduler,
        line_positions(n, spacing),
        scheme,
        params=PARAMS,
        hello_config=HELLO,
    )
    network.start()
    return scheduler, network, metrics


def last_record(metrics):
    return list(metrics.records.values())[-1]


def test_nc_decides_despite_crashed_two_hop_neighbor():
    """Host 2's pending set T contains crashed host 3 forever; NC must not
    wait for coverage that can never come -- it transmits at the jitter
    deadline and the pending entry drains."""
    scheduler, network, metrics = make_line(4, NeighborCoverageScheme)
    scheduler.run(until=2.0)
    # Tables are warm: host 2 knows 3 as a neighbor, host 1 knows that too.
    assert 3 in network.hosts[2].neighbor_table.neighbor_ids()
    network.crash_host(3)
    # Broadcast immediately, while every table still lists host 3.
    network.initiate_broadcast(0)
    scheduler.run(until=4.0)
    record = last_record(metrics)
    # All alive hosts got it; e was the alive reachable set {1, 2}.
    assert set(record.received_times) == {1, 2}
    assert record.reachable_count == 2
    assert record.reachability == 1.0
    # Host 2 transmitted (its T = {3} never emptied) rather than hanging.
    assert 2 in record.rebroadcasters
    for host in network.hosts:
        assert host.scheme.pending_count() == 0


def test_ac_neighbor_count_inflated_by_stale_tables():
    """Crashed neighbors stay in the table until the hello timeout, so AC
    briefly evaluates C(n) with an inflated n -- and must still deliver to
    everyone alive."""
    scheduler = Scheduler()
    # A dense clique: 6 hosts within one radio radius of each other.
    network, metrics = build_static_network(
        scheduler,
        grid_positions(2, 3, 40.0),
        AdaptiveCounterScheme,
        params=PARAMS,
        hello_config=HELLO,
    )
    network.start()
    scheduler.run(until=2.0)
    host = network.hosts[0]
    assert host.neighbor_table.neighbor_count(scheduler.now) == 5
    for crashed in (3, 4, 5):
        network.crash_host(crashed)
    # Stale window: n is still 5 although only 2 neighbors are alive.
    stale_n = host.neighbor_count()
    assert stale_n == 5
    # The scheme therefore evaluates C(5), not the C(2) the alive
    # neighborhood warrants: in the rising region of the paper's C(n) the
    # stale count makes the host harder to inhibit than it should be.
    scheme = host.scheme
    assert scheme.threshold_fn(stale_n) >= scheme.threshold_fn(2)
    network.initiate_broadcast(1)
    scheduler.run(until=scheduler.now + 1.0)
    record = last_record(metrics)
    assert set(record.received_times) == {0, 2}
    assert record.reachability == 1.0
    # After two hello timeouts the table converges back to the truth.
    scheduler.run(until=scheduler.now + 4.0)
    assert host.neighbor_table.neighbor_count(scheduler.now) == 2


def test_crash_partitions_line_re_counts_alive_side_only():
    scheduler, network, metrics = make_line(5, FloodingScheme)
    scheduler.run(until=2.0)
    network.crash_host(2)
    network.initiate_broadcast(0)
    scheduler.run(until=scheduler.now + 2.0)
    record = last_record(metrics)
    # Hosts 3 and 4 are physically unreachable: they are not in e.
    assert record.reachable_count == 1
    assert set(record.received_times) == {1}
    assert record.reachability == 1.0


def test_hello_mute_ages_host_out_of_neighbor_tables():
    scheduler, network, metrics = make_line(3, FloodingScheme)
    scheduler.run(until=2.0)
    assert 1 in network.hosts[0].neighbor_table.neighbor_ids(scheduler.now)
    plan = FaultPlan(mutes=(MuteHelloFault(time=2.0, host_id=1, until=8.0),))
    FaultInjector(scheduler, network, plan, RandomStreams(0)).install()
    scheduler.run(until=5.0)
    # 2x interval with no HELLO: host 1 aged out of both neighbors' tables.
    assert 1 not in network.hosts[0].neighbor_table.neighbor_ids(scheduler.now)
    assert 1 not in network.hosts[2].neighbor_table.neighbor_ids(scheduler.now)
    # The mute lifts at t=8; host 1 is relearned without a crash/recover.
    scheduler.run(until=10.0)
    assert 1 in network.hosts[0].neighbor_table.neighbor_ids(scheduler.now)
    assert metrics.fault_events[0].kind == "hello-mute"


FAULTY_CONFIG = dict(
    scheme="neighbor-coverage",
    map_units=3,
    num_hosts=30,
    num_broadcasts=8,
    seed=11,
    faults=FaultPlan(
        churn=ChurnProcess(rate=0.004, downtime=6.0),
        loss=GilbertElliottLossSpec(p=0.03, r=0.4, loss_bad=0.9),
    ),
)


def test_seeded_fault_run_is_deterministic():
    a = run_broadcast_simulation(ScenarioConfig(**FAULTY_CONFIG))
    b = run_broadcast_simulation(ScenarioConfig(**FAULTY_CONFIG))
    assert a.events_processed == b.events_processed
    assert a.re == b.re
    assert a.srb == b.srb
    assert a.latency == b.latency
    assert a.fault_trace == b.fault_trace
    assert a.broadcasts_skipped == b.broadcasts_skipped
    assert len(a.fault_trace) > 0


def test_faults_do_not_perturb_mobility_or_traffic():
    """The whole point of the dedicated fault substream: with faults on or
    off, every host follows the identical trajectory and broadcasts are
    requested at the identical times."""
    captured = {}

    def grab(network):
        captured["network"] = network

    base = dict(FAULTY_CONFIG)
    base["faults"] = None
    run_broadcast_simulation(ScenarioConfig(**base), network_hook=grab)
    clean_positions = captured["network"].positions()

    faulty = run_broadcast_simulation(
        ScenarioConfig(**FAULTY_CONFIG), network_hook=grab
    )
    faulty_positions = captured["network"].positions()

    assert faulty_positions == clean_positions
    # Origin times of executed broadcasts line up with the clean run's
    # schedule (the faulty run may skip some, never shift them).
    assert len(faulty.fault_trace) > 0


def test_degraded_run_metrics_stay_in_range():
    result = run_broadcast_simulation(ScenarioConfig(**FAULTY_CONFIG))
    assert not math.isnan(result.re)
    assert 0.0 <= result.re <= 1.1
    assert 0.0 <= result.srb <= 1.0
