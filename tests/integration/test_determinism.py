"""Golden determinism regression suite.

The perf layer and the hot-path kernel rewrite promise **bit-identical**
simulation: same seed, same scenario -> byte-for-byte the same metrics,
event counts, channel counters and fault traces as the pre-optimization
code.  The fingerprints below were captured from the unoptimized tree;
any drift here means an "optimization" changed simulation semantics
(RNG consumption order, float arithmetic, or event ordering) and must be
rejected, however small the numeric difference looks.

Scenarios cover every scheme family the paper sweeps: blind flooding on
the dense single-unit map, the counter and location adaptive schemes,
neighbor-coverage with dynamic HELLO intervals, and flooding under a
fault plan (crash + churn + loss) including the executed fault trace.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_broadcast_batch, run_broadcast_simulation
from repro.faults.plan import FaultPlan
from repro.kernel import vector_supported
from repro.net.host import HelloConfig

# Both kernels must reproduce the same goldens: the numpy vector path is
# a replay of the scalar semantics, not an approximation of them.
KERNELS = [
    "scalar",
    pytest.param(
        "vector",
        marks=pytest.mark.skipif(
            not vector_supported(), reason="numpy unavailable"
        ),
    ),
]

# Captured from the pre-optimization tree (seed 7, 12 broadcasts each).
GOLDEN_JSON = r"""
{
    "adaptive-counter": {
        "aborted_frames": 0,
        "backoffs_started": 1793,
        "broadcasts": 12,
        "broadcasts_skipped": 0,
        "collisions": 2031,
        "deaf_misses": 20,
        "deliveries": 15769,
        "end_time": 17.00467235320274,
        "events_processed": 7736,
        "fault_trace": [],
        "hellos": 1021,
        "injected_drops": 0,
        "latency": 0.02496432457323124,
        "re": 0.8714689265536725,
        "srb": 0.5550165561061751,
        "total_rx_airtime": 14.455359999999992,
        "total_tx_airtime": 1.1084479999999997,
        "transmissions": 1329
    },
    "adaptive-location": {
        "aborted_frames": 0,
        "backoffs_started": 1936,
        "broadcasts": 12,
        "broadcasts_skipped": 0,
        "collisions": 3027,
        "deaf_misses": 20,
        "deliveries": 16171,
        "end_time": 17.00467235320274,
        "events_processed": 8317,
        "fault_trace": [],
        "hellos": 1021,
        "injected_drops": 0,
        "latency": 0.028160824573231696,
        "re": 0.9929378531073446,
        "srb": 0.4363763184993459,
        "total_rx_airtime": 17.855296000000028,
        "total_tx_airtime": 1.351648,
        "transmissions": 1429
    },
    "flooding-dense": {
        "aborted_frames": 0,
        "backoffs_started": 2190,
        "broadcasts": 12,
        "broadcasts_skipped": 0,
        "collisions": 97331,
        "deaf_misses": 1722,
        "deliveries": 6269,
        "end_time": 15.274227671085695,
        "events_processed": 7320,
        "fault_trace": [],
        "hellos": 0,
        "injected_drops": 0,
        "latency": 0.08537800000000197,
        "re": 0.9166666666666666,
        "srb": 0.0,
        "total_rx_airtime": 256.14310400000426,
        "total_tx_airtime": 2.6776320000000067,
        "transmissions": 1101
    },
    "flooding-faults": {
        "aborted_frames": 0,
        "backoffs_started": 725,
        "broadcasts": 11,
        "broadcasts_skipped": 1,
        "collisions": 1396,
        "deaf_misses": 37,
        "deliveries": 1424,
        "end_time": 16.994797034857413,
        "events_processed": 2570,
        "fault_trace": [
            [
                0.6621410589998556,
                "crash",
                26
            ],
            [
                4.129706617312361,
                "crash",
                20
            ],
            [
                4.4302098155336695,
                "crash",
                7
            ],
            [
                4.662141058999856,
                "recover",
                26
            ],
            [
                5.188671066193747,
                "crash",
                9
            ],
            [
                6.0,
                "crash",
                3
            ],
            [
                6.166216472431183,
                "crash",
                34
            ],
            [
                8.129706617312362,
                "recover",
                20
            ],
            [
                8.430209815533669,
                "recover",
                7
            ],
            [
                9.188671066193747,
                "recover",
                9
            ],
            [
                9.806026868618703,
                "crash",
                37
            ],
            [
                10.166216472431184,
                "recover",
                34
            ],
            [
                10.66416415777567,
                "crash",
                30
            ],
            [
                11.293428500838203,
                "crash",
                31
            ],
            [
                13.105539660747507,
                "crash",
                9
            ],
            [
                13.285571866398163,
                "crash",
                36
            ],
            [
                13.806026868618703,
                "recover",
                37
            ],
            [
                14.0,
                "recover",
                3
            ],
            [
                14.153783627164696,
                "crash",
                20
            ],
            [
                14.66416415777567,
                "recover",
                30
            ],
            [
                15.293428500838203,
                "recover",
                31
            ],
            [
                16.572436343849642,
                "crash",
                31
            ]
        ],
        "hellos": 0,
        "injected_drops": 136,
        "latency": 0.03179620000000105,
        "re": 0.8989785068732438,
        "srb": 0.0,
        "total_rx_airtime": 7.2789759999999895,
        "total_tx_airtime": 0.8949760000000003,
        "transmissions": 368
    },
    "nc-dhi": {
        "aborted_frames": 0,
        "backoffs_started": 1956,
        "broadcasts": 12,
        "broadcasts_skipped": 0,
        "collisions": 2786,
        "deaf_misses": 26,
        "deliveries": 17510,
        "end_time": 35.00467235320274,
        "events_processed": 8479,
        "fault_trace": [],
        "hellos": 1090,
        "injected_drops": 0,
        "latency": 0.029972157906562973,
        "re": 0.9872881355932205,
        "srb": 0.46055689340241307,
        "total_rx_airtime": 25.381471999999953,
        "total_tx_airtime": 1.7997119999999993,
        "transmissions": 1479
    }
}
"""

GOLDENS = json.loads(GOLDEN_JSON)

SCENARIOS = {
    "flooding-dense": ScenarioConfig(
        scheme="flooding", map_units=1, num_hosts=100, num_broadcasts=12,
        seed=7,
    ),
    "adaptive-counter": ScenarioConfig(
        scheme="adaptive-counter", map_units=3, num_hosts=60,
        num_broadcasts=12, seed=7,
    ),
    "adaptive-location": ScenarioConfig(
        scheme="adaptive-location", map_units=3, num_hosts=60,
        num_broadcasts=12, seed=7,
    ),
    "nc-dhi": ScenarioConfig(
        scheme="neighbor-coverage", map_units=3, num_hosts=60,
        num_broadcasts=12, seed=7,
        hello=HelloConfig(dynamic=True),
    ),
    "flooding-faults": ScenarioConfig(
        scheme="flooding", map_units=3, num_hosts=40, num_broadcasts=12,
        seed=7,
        faults=FaultPlan.parse(
            "crash:host=3,at=6,recover=14;churn:rate=0.02,downtime=4;"
            "loss:p=0.05"
        ),
    ),
}


def fingerprint(result) -> dict:
    """Everything observable that must not drift, JSON-normalized."""
    ch = result.channel_stats
    return json.loads(json.dumps({
        "events_processed": result.events_processed,
        "end_time": result.end_time,
        "re": result.re,
        "srb": result.srb,
        "latency": result.latency,
        "hellos": result.hellos,
        "broadcasts": result.stats.broadcasts,
        "backoffs_started": result.backoffs_started,
        "transmissions": ch.transmissions,
        "deliveries": ch.deliveries,
        "collisions": ch.collisions,
        "deaf_misses": ch.deaf_misses,
        "injected_drops": ch.injected_drops,
        "aborted_frames": ch.aborted_frames,
        "total_tx_airtime": ch.total_tx_airtime,
        "total_rx_airtime": ch.total_rx_airtime,
        "broadcasts_skipped": result.broadcasts_skipped,
        "fault_trace": [
            (ev.time, ev.kind, ev.host_id) for ev in result.fault_trace
        ],
    }))


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_fingerprint_matches_golden(name, kernel):
    result = run_broadcast_simulation(SCENARIOS[name], kernel=kernel)
    observed = fingerprint(result)
    expected = GOLDENS[name]
    # Field-by-field so a drift names the counter that moved.
    for field_name in expected:
        assert observed[field_name] == expected[field_name], (
            f"{name} ({kernel} kernel): {field_name} drifted: "
            f"{observed[field_name]!r} != golden {expected[field_name]!r}"
        )
    assert observed == expected


def test_run_twice_is_bit_identical():
    """The same config object run twice gives identical fingerprints
    (no hidden state leaks between runs)."""
    config = SCENARIOS["flooding-faults"]
    first = fingerprint(run_broadcast_simulation(config))
    second = fingerprint(run_broadcast_simulation(config))
    assert first == second
    assert first["fault_trace"] == second["fault_trace"]


@pytest.mark.skipif(not vector_supported(), reason="numpy unavailable")
def test_batch_runs_match_solo_fingerprints():
    """run_broadcast_batch (shared position buffers across seeds) gives
    results bit-identical to running each seed solo, on either kernel."""
    config = SCENARIOS["adaptive-counter"]
    seeds = [7, 8]
    batch = run_broadcast_batch(config, seeds, kernel="vector")
    for seed, result in zip(seeds, batch):
        from dataclasses import replace

        solo = run_broadcast_simulation(
            replace(config, seed=seed), kernel="scalar"
        )
        assert fingerprint(result) == fingerprint(solo), f"seed {seed}"
