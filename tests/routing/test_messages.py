"""Routing message types."""

import pytest

from repro.net.packets import BroadcastPacket
from repro.routing.messages import DataPacket, RouteReply, RouteRequest


def make_rreq(**overrides):
    defaults = dict(
        source_id=1, seq=1_000_000_001, origin_time=0.0, tx_id=1,
        tx_position=None, hops=0, target_id=9,
    )
    defaults.update(overrides)
    return RouteRequest(**defaults)


def test_rreq_is_a_broadcast_packet():
    rreq = make_rreq()
    assert isinstance(rreq, BroadcastPacket)
    assert rreq.key == (1, 1_000_000_001)


def test_rreq_relaying_preserves_target():
    relayed = make_rreq().relayed_by(4, (10.0, 20.0))
    assert isinstance(relayed, RouteRequest)
    assert relayed.target_id == 9
    assert relayed.tx_id == 4
    assert relayed.hops == 1


def test_rreq_is_small_control_packet():
    assert make_rreq().size_bytes < 280


def test_rreq_self_target_rejected():
    with pytest.raises(ValueError):
        make_rreq(target_id=1)


def test_rrep_forwarding_increments_hops():
    reply = RouteReply(origin_id=1, target_id=9, request_seq=5, hop_count=0)
    fwd = reply.forwarded()
    assert fwd.hop_count == 1
    assert (fwd.origin_id, fwd.target_id, fwd.request_seq) == (1, 9, 5)


def test_data_packet_fields():
    packet = DataPacket(origin_id=1, dest_id=9, seq=3, payload="x")
    assert packet.size_bytes == 280
    assert packet.payload == "x"
