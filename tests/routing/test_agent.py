"""Routing agent integration on controlled topologies."""

import pytest

from repro.experiments.topologies import (
    build_static_network,
    line_positions,
    two_clusters_positions,
)
from repro.routing import attach_agents
from repro.schemes import FloodingScheme, NeighborCoverageScheme
from repro.net.host import HelloConfig
from repro.sim.engine import Scheduler


def build_line(n=5, spacing=400.0, scheme=FloodingScheme, hello=None,
               **agent_kwargs):
    scheduler = Scheduler()
    network, metrics = build_static_network(
        scheduler, line_positions(n, spacing), scheme, hello_config=hello,
    )
    agents = attach_agents(network, **agent_kwargs)
    network.start()
    return scheduler, network, agents


class TestDiscoveryAndDelivery:
    def test_end_to_end_delivery_on_line(self):
        scheduler, network, agents = build_line()
        outcomes = []
        scheduler.schedule_at(
            1.0, agents[0].send_data, 4, "payload", outcomes.append
        )
        scheduler.run(until=5.0)
        assert outcomes == [True]
        assert agents[4].stats.data_delivered == 1
        assert agents[4].received[0].payload == "payload"
        assert agents[4].received[0].origin_id == 0

    def test_forward_routes_installed_along_path(self):
        scheduler, network, agents = build_line()
        scheduler.schedule_at(1.0, agents[0].send_data, 4, None)
        scheduler.run(until=5.0)
        # Every host on the path knows a route to 4 after the RREP.
        for host_id in (0, 1, 2, 3):
            entry = agents[host_id].table.lookup(4, scheduler.now)
            assert entry is not None
            assert entry.next_hop == host_id + 1

    def test_reverse_routes_learned_from_rreq(self):
        scheduler, network, agents = build_line()
        scheduler.schedule_at(1.0, agents[0].send_data, 4, None)
        scheduler.run(until=5.0)
        # Host 3 heard the RREQ via 2: reverse next hop toward 0 is 2.
        assert agents[3].table.lookup(0, scheduler.now).next_hop == 2

    def test_hop_counts_match_line_distance(self):
        scheduler, network, agents = build_line()
        scheduler.schedule_at(1.0, agents[0].send_data, 4, None)
        scheduler.run(until=5.0)
        assert agents[0].table.lookup(4, scheduler.now).hop_count == 4

    def test_intermediates_forward_data(self):
        scheduler, network, agents = build_line()
        scheduler.schedule_at(1.0, agents[0].send_data, 4, None)
        scheduler.run(until=5.0)
        for host_id in (1, 2, 3):
            assert agents[host_id].stats.data_forwarded == 1

    def test_second_send_reuses_route_without_new_rreq(self):
        scheduler, network, agents = build_line()
        scheduler.schedule_at(1.0, agents[0].send_data, 4, None)
        scheduler.schedule_at(3.0, agents[0].send_data, 4, None)
        scheduler.run(until=6.0)
        assert agents[0].stats.rreqs_originated == 1
        assert agents[4].stats.data_delivered == 2

    def test_multiple_packets_queued_during_discovery(self):
        scheduler, network, agents = build_line()

        def burst():
            agents[0].send_data(4, "a")
            agents[0].send_data(4, "b")
            agents[0].send_data(4, "c")

        scheduler.schedule_at(1.0, burst)
        scheduler.run(until=6.0)
        assert agents[0].stats.rreqs_originated == 1  # one discovery
        assert agents[4].stats.data_delivered == 3
        assert [p.payload for p in agents[4].received] == ["a", "b", "c"]


class TestDiscoveryFailure:
    def test_unreachable_destination_fails_after_retries(self):
        scheduler = Scheduler()
        positions = two_clusters_positions(2, 100.0, gap=5000.0)
        network, _ = build_static_network(scheduler, positions, FloodingScheme)
        agents = attach_agents(
            network, discovery_timeout=0.5, max_discovery_attempts=2
        )
        network.start()
        outcomes = []
        scheduler.schedule_at(1.0, agents[0].send_data, 3, None, outcomes.append)
        scheduler.run(until=5.0)
        assert outcomes == [False]
        assert agents[0].stats.rreqs_originated == 2
        assert agents[0].stats.discovery_failures == 1
        assert agents[0].stats.data_failed == 1

    def test_send_to_self_rejected(self):
        scheduler, network, agents = build_line(n=2)
        with pytest.raises(ValueError):
            agents[0].send_data(0)


class TestRouteMaintenance:
    def test_broken_next_hop_invalidates_routes(self):
        scheduler, network, agents = build_line()
        scheduler.schedule_at(1.0, agents[0].send_data, 4, None)
        # Break the chain: host 2 goes offline after the route is built.
        scheduler.schedule_at(4.0, network.channel.detach, 2)
        outcomes = []
        scheduler.schedule_at(5.0, agents[0].send_data, 4, "late", outcomes.append)
        scheduler.run(until=8.0)
        # Host 1 could not reach 2: per-hop failure recorded, route dropped.
        assert agents[1].stats.forward_failures >= 1
        assert agents[1].table.lookup(4, scheduler.now) is None
        # The second payload never arrived.
        assert agents[4].stats.data_delivered == 1

    def test_route_expiry_triggers_rediscovery(self):
        scheduler, network, agents = build_line(route_lifetime=2.0)
        scheduler.schedule_at(1.0, agents[0].send_data, 4, None)
        # Well past the 2 s lifetime: routes are gone, a new RREQ is needed.
        scheduler.schedule_at(8.0, agents[0].send_data, 4, None)
        scheduler.run(until=12.0)
        assert agents[0].stats.rreqs_originated == 2
        assert agents[4].stats.data_delivered == 2


class TestWithSuppressionScheme:
    def test_discovery_through_neighbor_coverage(self):
        """Route discovery works when RREQs propagate via NC, which
        suppresses the redundant rebroadcasts."""
        scheduler, network, agents = build_line(
            n=6, scheme=NeighborCoverageScheme,
            hello=HelloConfig(interval=1.0),
        )
        outcomes = []
        scheduler.schedule_at(4.0, agents[0].send_data, 5, "x", outcomes.append)
        scheduler.run(until=10.0)
        assert outcomes == [True]
        assert agents[5].stats.data_delivered == 1


def test_double_agent_attachment_rejected():
    scheduler, network, agents = build_line(n=2)
    from repro.routing import RoutingAgent

    with pytest.raises(RuntimeError):
        RoutingAgent(network.hosts[0])


def test_agent_parameter_validation():
    scheduler, network, agents = build_line(n=2)
    from repro.routing import RoutingAgent

    with pytest.raises(ValueError):
        attach_agents_bad = RoutingAgent(
            network.hosts[1], discovery_timeout=0.0
        )
