"""Route table semantics."""

import pytest

from repro.routing.table import RouteTable


def test_update_and_lookup():
    table = RouteTable(lifetime=10.0)
    assert table.update(5, next_hop=2, hop_count=3, now=0.0)
    entry = table.lookup(5, now=1.0)
    assert entry.next_hop == 2
    assert entry.hop_count == 3


def test_expiry():
    table = RouteTable(lifetime=10.0)
    table.update(5, next_hop=2, hop_count=3, now=0.0)
    assert table.lookup(5, now=9.9) is not None
    assert table.lookup(5, now=10.0) is None
    assert len(table) == 0  # expired entries are purged


def test_shorter_route_wins():
    table = RouteTable(lifetime=10.0)
    table.update(5, next_hop=2, hop_count=3, now=0.0)
    assert table.update(5, next_hop=7, hop_count=2, now=1.0)
    assert table.lookup(5, now=1.0).next_hop == 7


def test_longer_route_rejected_while_live():
    table = RouteTable(lifetime=10.0)
    table.update(5, next_hop=2, hop_count=2, now=0.0)
    assert not table.update(5, next_hop=7, hop_count=4, now=1.0)
    assert table.lookup(5, now=1.0).next_hop == 2


def test_longer_route_accepted_after_expiry():
    table = RouteTable(lifetime=10.0)
    table.update(5, next_hop=2, hop_count=2, now=0.0)
    assert table.update(5, next_hop=7, hop_count=9, now=20.0)
    assert table.lookup(5, now=20.0).next_hop == 7


def test_equal_route_refreshes_lifetime():
    table = RouteTable(lifetime=10.0)
    table.update(5, next_hop=2, hop_count=2, now=0.0)
    table.update(5, next_hop=2, hop_count=2, now=8.0)
    assert table.lookup(5, now=15.0) is not None


def test_refresh():
    table = RouteTable(lifetime=10.0)
    table.update(5, next_hop=2, hop_count=2, now=0.0)
    table.refresh(5, now=9.0)
    assert table.lookup(5, now=15.0) is not None


def test_invalidate():
    table = RouteTable(lifetime=10.0)
    table.update(5, next_hop=2, hop_count=2, now=0.0)
    assert table.invalidate(5)
    assert not table.invalidate(5)
    assert table.lookup(5, now=0.1) is None


def test_invalidate_via_broken_next_hop():
    table = RouteTable(lifetime=10.0)
    table.update(5, next_hop=2, hop_count=2, now=0.0)
    table.update(6, next_hop=2, hop_count=3, now=0.0)
    table.update(7, next_hop=3, hop_count=1, now=0.0)
    assert table.invalidate_via(2) == 2
    assert table.lookup(7, now=0.1) is not None


def test_known_destinations_purges():
    table = RouteTable(lifetime=10.0)
    table.update(5, next_hop=2, hop_count=2, now=0.0)
    table.update(6, next_hop=3, hop_count=2, now=5.0)
    live = table.known_destinations(now=12.0)
    assert set(live) == {6}


def test_validation():
    with pytest.raises(ValueError):
        RouteTable(lifetime=0.0)
    table = RouteTable()
    with pytest.raises(ValueError):
        table.update(1, next_hop=2, hop_count=0, now=0.0)
