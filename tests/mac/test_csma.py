"""CSMA/CA DCF behaviour for broadcast frames."""

import random

import pytest

from repro.mac.csma import CsmaCaMac
from repro.phy.channel import Channel
from repro.phy.params import PhyParams
from repro.sim.engine import Scheduler

PARAMS = PhyParams(radio_radius=100.0)
DIFS = PARAMS.difs
SLOT = PARAMS.slot_time


class FixedRandom:
    """randint() returns preset values (then repeats the last one)."""

    def __init__(self, *values):
        self._values = list(values)

    def randint(self, a, b):
        value = self._values.pop(0) if len(self._values) > 1 else self._values[0]
        assert a <= value <= b, f"fixed value {value} outside [{a}, {b}]"
        return value


class Upper:
    """Records frames handed up by the MAC."""

    def __init__(self, scheduler):
        self._scheduler = scheduler
        self.received = []
        self.corrupted = []

    def on_frame_received(self, frame, sender_id):
        self.received.append((self._scheduler.now, frame, sender_id))

    def on_frame_corrupted(self, frame, sender_id):
        self.corrupted.append((self._scheduler.now, frame, sender_id))


def build(positions, backoffs=None):
    """(scheduler, channel, macs, uppers) with one MAC per position."""
    scheduler = Scheduler()
    channel = Channel(scheduler, PARAMS, lambda hid: positions[hid])
    macs, uppers = [], []
    for host_id in range(len(positions)):
        upper = Upper(scheduler)
        rng = FixedRandom(*backoffs[host_id]) if backoffs else random.Random(host_id)
        mac = CsmaCaMac(host_id, scheduler, channel, PARAMS, rng, upper)
        macs.append(mac)
        uppers.append(upper)
    return scheduler, channel, macs, uppers


AIRTIME_10B = PARAMS.airtime(10)


def test_immediate_access_when_idle_longer_than_difs():
    scheduler, channel, macs, uppers = build([(0, 0), (50, 0)])
    scheduler.schedule(1.0, macs[0].send, "frame", 10)
    scheduler.run()
    # Transmission started exactly at t=1.0 (idle since t=0 >= DIFS).
    assert uppers[1].received[0][0] == pytest.approx(1.0 + AIRTIME_10B)


def test_send_at_time_zero_requires_backoff():
    """At t=0 the medium has been idle for 0 s < DIFS: backoff applies."""
    scheduler, channel, macs, uppers = build(
        [(0, 0), (50, 0)], backoffs=[[5], [0]]
    )
    macs[0].send("frame", 10)
    scheduler.run()
    expected = DIFS + 5 * SLOT + AIRTIME_10B
    assert uppers[1].received[0][0] == pytest.approx(expected)


def test_on_transmit_start_callback_fires_at_tx_start():
    scheduler, channel, macs, uppers = build([(0, 0), (50, 0)])
    started = []
    scheduler.schedule(1.0, macs[0].send, "frame", 10, lambda: started.append(scheduler.now))
    scheduler.run()
    assert started == [1.0]


def test_busy_medium_defers_then_backs_off():
    scheduler, channel, macs, uppers = build(
        [(0, 0), (50, 0)], backoffs=[[0], [3]]
    )
    # Host 0 transmits at t=1.0 for AIRTIME_10B (272 us).
    scheduler.schedule(1.0, macs[0].send, "a", 10)
    # Host 1 wants to send while the medium is busy (mid-frame).
    scheduler.schedule(1.0001, macs[1].send, "b", 10)
    scheduler.run()
    busy_end = 1.0 + AIRTIME_10B
    expected_b_start = busy_end + DIFS + 3 * SLOT
    assert uppers[0].received[0][0] == pytest.approx(expected_b_start + AIRTIME_10B)


def test_backoff_freezes_and_resumes():
    """Host 1's countdown pauses during a second busy period and resumes
    with the remaining slots (no redraw)."""
    scheduler, channel, macs, uppers = build(
        [(0, 0), (50, 0), (30, 30)], backoffs=[[0, 0], [10], [0]]
    )
    scheduler.schedule(1.0, macs[0].send, "a", 10)          # busy until b1
    b1 = 1.0 + AIRTIME_10B
    scheduler.schedule(1.0001, macs[1].send, "b", 10)        # draws 10 slots
    # Host 2 grabs the medium 4.5 slots into host 1's countdown (the half
    # slot keeps the floor() robust against float noise).
    t2 = b1 + DIFS + 4.5 * SLOT
    scheduler.schedule(t2, channel.start_transmission, 2, "jam", 0.001)
    scheduler.run()
    # Host 1 consumed 4 slots, froze, then resumed the remaining 6.
    jam_end = t2 + 0.001
    expected_start = jam_end + DIFS + 6 * SLOT
    received_b = [r for r in uppers[0].received if r[1] == "b"]
    assert received_b[0][0] == pytest.approx(expected_start + AIRTIME_10B)


def test_post_transmission_backoff_separates_queued_frames():
    scheduler, channel, macs, uppers = build(
        [(0, 0), (50, 0)], backoffs=[[7], [0]]
    )

    def send_two():
        macs[0].send("first", 10)
        macs[0].send("second", 10)

    scheduler.schedule(1.0, send_two)
    scheduler.run()
    t_first_end = 1.0 + AIRTIME_10B
    t_second_start = t_first_end + DIFS + 7 * SLOT
    times = [t for t, f, _ in uppers[1].received]
    assert times[0] == pytest.approx(t_first_end)
    assert times[1] == pytest.approx(t_second_start + AIRTIME_10B)


def test_cancel_queued_frame_before_transmission():
    scheduler, channel, macs, uppers = build([(0, 0), (50, 0)])
    handles = []
    scheduler.schedule(1.0, lambda: handles.append(macs[0].send("a", 10)))
    # While "a" is on the air (272 us), queue "b" then cancel it.
    scheduler.schedule(1.0001, lambda: handles.append(macs[0].send("b", 10)))
    scheduler.schedule(1.0002, lambda: handles[1].cancel())
    scheduler.run()
    assert [f for _, f, _ in uppers[1].received] == ["a"]
    assert macs[0].stats.frames_cancelled == 1


def test_cancel_after_transmission_started_returns_false():
    scheduler, channel, macs, uppers = build([(0, 0), (50, 0)])
    handles = []
    scheduler.schedule(1.0, lambda: handles.append(macs[0].send("a", 10)))
    outcome = []
    scheduler.schedule(1.0001, lambda: outcome.append(handles[0].cancel()))
    scheduler.run()
    assert outcome == [False]
    assert [f for _, f, _ in uppers[1].received] == ["a"]


def test_equal_backoffs_collide():
    """Two stations drawing the same counter transmit simultaneously."""
    scheduler, channel, macs, uppers = build(
        [(0, 0), (50, 0), (25, 25)], backoffs=[[0, 2], [0, 2], [0]]
    )
    scheduler.schedule(1.0, channel.start_transmission, 2, "trigger", 0.001)
    # Both want to send during the trigger frame -> both back off 2 slots.
    scheduler.schedule(1.0005, macs[0].send, "a", 10)
    scheduler.schedule(1.0005, macs[1].send, "b", 10)
    scheduler.run()
    # Each hears the other's frame corrupted... actually they transmit
    # simultaneously, so each is deaf to the other (half-duplex).
    assert [f for _, f, _ in uppers[0].received if f != "trigger"] == []
    assert [f for _, f, _ in uppers[1].received if f != "trigger"] == []


def test_different_backoffs_serialize():
    scheduler, channel, macs, uppers = build(
        [(0, 0), (50, 0), (25, 25)], backoffs=[[1, 31], [4, 31], [0]]
    )
    scheduler.schedule(1.0, channel.start_transmission, 2, "trigger", 0.001)
    scheduler.schedule(1.0005, macs[0].send, "a", 10)
    scheduler.schedule(1.0005, macs[1].send, "b", 10)
    scheduler.run()
    # Host 0 wins (1 slot < 4 slots); host 1 freezes and sends after.
    got_a = [t for t, f, _ in uppers[1].received if f == "a"]
    got_b = [t for t, f, _ in uppers[0].received if f == "b"]
    assert got_a and got_b and got_a[0] < got_b[0]


def test_queue_length_counts_pending_only():
    scheduler, channel, macs, uppers = build([(0, 0), (50, 0)])

    def fill():
        macs[0].send("a", 10)
        h = macs[0].send("b", 10)
        macs[0].send("c", 10)
        h.cancel()

    scheduler.schedule(1.0, fill)
    scheduler.schedule(1.0001, lambda: checks.append(macs[0].queue_length))
    checks = []
    scheduler.run()
    # "a" is transmitting, "b" cancelled, "c" pending.
    assert checks == [1]


def test_stats_frames_sent():
    scheduler, channel, macs, uppers = build([(0, 0), (50, 0)])
    scheduler.schedule(1.0, macs[0].send, "a", 10)
    scheduler.run()
    assert macs[0].stats.frames_sent == 1
    assert macs[1].stats.frames_received == 1


def test_is_transmitting_flag():
    scheduler, channel, macs, uppers = build([(0, 0), (50, 0)])
    scheduler.schedule(1.0, macs[0].send, "a", 10)
    seen = []
    scheduler.schedule(1.0001, lambda: seen.append(macs[0].is_transmitting))
    scheduler.run()
    assert seen == [True]
    assert not macs[0].is_transmitting
