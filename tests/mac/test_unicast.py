"""Unicast MAC: ACKs, retries, contention-window growth."""

import pytest

from repro.mac.csma import CsmaCaMac
from repro.mac.frames import AckFrame, DataFrame
from repro.phy.channel import Channel
from repro.phy.params import PhyParams
from repro.sim.engine import Scheduler

PARAMS = PhyParams(radio_radius=100.0)


class Upper:
    def __init__(self, scheduler):
        self._scheduler = scheduler
        self.received = []

    def on_frame_received(self, frame, sender_id):
        self.received.append((self._scheduler.now, frame, sender_id))

    def on_frame_corrupted(self, frame, sender_id):
        pass


def build(positions, drop_predicate=None, retry_limit=7):
    scheduler = Scheduler()
    channel = Channel(
        scheduler, PARAMS, lambda hid: positions[hid], drop_predicate
    )
    macs, uppers = [], []
    for host_id in range(len(positions)):
        upper = Upper(scheduler)
        import random
        mac = CsmaCaMac(host_id, scheduler, channel, PARAMS,
                        random.Random(host_id), upper,
                        retry_limit=retry_limit)
        macs.append(mac)
        uppers.append(upper)
    return scheduler, channel, macs, uppers


def test_unicast_delivery_and_ack():
    scheduler, channel, macs, uppers = build([(0, 0), (50, 0)])
    outcome = []
    scheduler.schedule(1.0, macs[0].send_unicast, "msg", 100, 1,
                       outcome.append)
    scheduler.run()
    assert [f for _, f, _ in uppers[1].received] == ["msg"]
    assert outcome == [True]
    assert macs[1].stats.acks_sent == 1
    assert macs[0].stats.unicast_delivered == 1
    assert macs[0].stats.retries == 0


def test_ack_arrives_one_sifs_after_data():
    scheduler, channel, macs, uppers = build([(0, 0), (50, 0)])
    scheduler.schedule(1.0, macs[0].send_unicast, "msg", 100, 1)
    scheduler.run()
    data_end = 1.0 + PARAMS.airtime(100)
    # The receiver got the payload at data_end; the ACK goes on air at
    # data_end + SIFS and completes after the ACK airtime.
    assert uppers[1].received[0][0] == pytest.approx(data_end)


def test_unaddressed_host_does_not_deliver_unicast():
    scheduler, channel, macs, uppers = build([(0, 0), (50, 0), (60, 0)])
    scheduler.schedule(1.0, macs[0].send_unicast, "msg", 100, 1)
    scheduler.run()
    assert uppers[2].received == []
    assert macs[2].stats.overheard == 1


def test_unicast_to_self_rejected():
    scheduler, channel, macs, uppers = build([(0, 0)])
    with pytest.raises(ValueError):
        macs[0].send_unicast("x", 10, 0)


def test_lost_frame_retried_until_delivered():
    """Drop the first two data attempts; the third succeeds."""
    attempts = {"n": 0}

    def lossy(sender, receiver):
        if sender == 0 and receiver == 1:
            attempts["n"] += 1
            return attempts["n"] <= 2
        return False

    scheduler, channel, macs, uppers = build(
        [(0, 0), (50, 0)], drop_predicate=lossy
    )
    outcome = []
    scheduler.schedule(1.0, macs[0].send_unicast, "msg", 100, 1,
                       outcome.append)
    scheduler.run()
    assert outcome == [True]
    assert macs[0].stats.retries == 2
    assert [f for _, f, _ in uppers[1].received] == ["msg"]


def test_unreachable_destination_fails_after_retry_limit():
    scheduler, channel, macs, uppers = build(
        [(0, 0), (500, 0)], retry_limit=3
    )
    outcome = []
    scheduler.schedule(1.0, macs[0].send_unicast, "msg", 100, 1,
                       outcome.append)
    scheduler.run()
    assert outcome == [False]
    assert macs[0].stats.unicast_failed == 1
    # 1 initial + 3 retries.
    assert macs[0].stats.frames_sent == 4


def test_contention_window_doubles_then_resets():
    scheduler, channel, macs, uppers = build(
        [(0, 0), (500, 0)], retry_limit=2
    )
    windows = []
    scheduler.schedule(1.0, macs[0].send_unicast, "x", 50, 1)
    # First ACK timeout lands ~0.95 ms after the send; sample just after
    # it (CW doubled) and again long after the final failure (CW reset).
    for t in (1.0011, 1.2):
        scheduler.schedule_at(t, lambda: windows.append(macs[0].contention_window))
    scheduler.run()
    assert max(windows) > PARAMS.cw_min
    assert macs[0].contention_window == PARAMS.cw_min  # reset after failure


def test_lost_ack_reacked_but_duplicate_filtered():
    """Dropping the ACK (not the data) makes the receiver hear the frame
    twice; per 802.11 duplicate detection it re-ACKs the retransmission
    but delivers the payload only once."""
    drops = {"n": 0}

    def drop_first_ack(sender, receiver):
        # ACK direction: 1 -> 0.
        if sender == 1 and receiver == 0 and drops["n"] == 0:
            drops["n"] += 1
            return True
        return False

    scheduler, channel, macs, uppers = build(
        [(0, 0), (50, 0)], drop_predicate=drop_first_ack
    )
    outcome = []
    scheduler.schedule(1.0, macs[0].send_unicast, "msg", 100, 1,
                       outcome.append)
    scheduler.run()
    assert outcome == [True]
    assert [f for _, f, _ in uppers[1].received] == ["msg"]
    assert macs[1].stats.acks_sent == 2
    assert macs[1].stats.duplicates_filtered == 1


def test_broadcast_and_unicast_interleave():
    scheduler, channel, macs, uppers = build([(0, 0), (50, 0), (60, 0)])

    def both():
        macs[0].send("bcast", 100)
        macs[0].send_unicast("ucast", 100, 1)

    scheduler.schedule(1.0, both)
    scheduler.run()
    assert [f for _, f, _ in uppers[1].received] == ["bcast", "ucast"]
    assert [f for _, f, _ in uppers[2].received] == ["bcast"]


def test_queue_continues_after_unicast_exchange():
    scheduler, channel, macs, uppers = build([(0, 0), (50, 0)])

    def sends():
        macs[0].send_unicast("first", 100, 1)
        macs[0].send("second", 100)

    scheduler.schedule(1.0, sends)
    scheduler.run()
    assert [f for _, f, _ in uppers[1].received] == ["first", "second"]


def test_raw_frames_still_pass_through():
    """Frames injected directly at the channel (tests, legacy) bypass the
    envelope and are delivered as-is."""
    scheduler, channel, macs, uppers = build([(0, 0), (50, 0)])
    channel.start_transmission(0, "raw", 0.001)
    scheduler.run()
    assert [f for _, f, _ in uppers[1].received] == ["raw"]
