"""TraceRecorder, frame identity, and the record schema."""

import pytest

from repro.mac.frames import DataFrame
from repro.net.packets import BroadcastPacket, HelloPacket
from repro.trace import (
    DECISION_VERDICTS,
    SCHEMA,
    TraceRecorder,
    TraceSchemaError,
    frame_ident,
    record_to_dict,
    validate_record,
)


def bcast_packet(src=3, seq=5, hops=2):
    return BroadcastPacket(
        source_id=src, seq=seq, origin_time=1.0, tx_id=src,
        tx_position=None, hops=hops,
    )


# ------------------------------------------------------------ frame_ident


def test_frame_ident_broadcast_payload():
    assert frame_ident(bcast_packet()) == ("bcast", 3, 5, 2)


def test_frame_ident_unwraps_mac_envelope():
    frame = DataFrame(
        src=9, dst=None, payload=bcast_packet(src=1, seq=2, hops=0),
        size_bytes=280,
    )
    assert frame_ident(frame) == ("bcast", 1, 2, 0)


def test_frame_ident_hello():
    assert frame_ident(HelloPacket(sender_id=4)) == ("hello", 4, -1, 0)


def test_frame_ident_unknown_payload_falls_back_to_class_name():
    class AckFrame:
        pass

    assert frame_ident(AckFrame()) == ("ackframe", -1, -1, 0)


# ------------------------------------------------------------- recorder


def test_recorder_starts_empty_and_counts():
    rec = TraceRecorder()
    assert len(rec) == 0
    rec.emit(0.5, "originate", src=1, seq=0, host=1)
    rec.emit(0.7, "receive", src=1, seq=0, host=2, sender=1)
    rec.emit(0.9, "receive", src=1, seq=0, host=3, sender=1)
    assert len(rec) == 3
    assert rec.count("receive") == 2
    assert rec.count("fault") == 0
    assert rec.categories() == {"originate": 1, "receive": 2}
    assert [r[1] for r in rec.filter("receive")] == ["receive", "receive"]
    rec.clear()
    assert len(rec) == 0


def test_emit_orders_fields_per_schema():
    rec = TraceRecorder()
    # Keyword order must not matter; the tuple is in schema order.
    rec.emit(1.0, "receive", sender=9, host=2, seq=0, src=1)
    assert rec.records[0] == (1.0, "receive", 1, 0, 2, 9)


def test_emit_rejects_unknown_category_and_fields():
    rec = TraceRecorder()
    with pytest.raises(ValueError, match="unknown trace category"):
        rec.emit(0.0, "warp-drive", host=1)
    with pytest.raises(ValueError, match="unknown fields"):
        rec.emit(0.0, "originate", src=1, seq=0, host=1, bogus=2)


def test_sample_dt_validation():
    with pytest.raises(ValueError):
        TraceRecorder(sample_dt=-1.0)
    assert TraceRecorder(sample_dt=0).sample_dt is None  # 0 disables
    assert TraceRecorder(sample_dt=0.5).sample_dt == 0.5
    assert TraceRecorder().sample_dt is None


def test_as_dicts_expands_and_filters():
    rec = TraceRecorder()
    rec.emit(0.5, "originate", src=1, seq=0, host=1)
    rec.emit(0.7, "dup", src=1, seq=0, host=2, sender=1)
    dicts = list(rec.as_dicts())
    assert dicts[0] == {"t": 0.5, "ev": "originate", "src": 1, "seq": 0,
                        "host": 1}
    assert [d["ev"] for d in rec.as_dicts("dup")] == ["dup"]


# --------------------------------------------------------------- schema


def test_record_to_dict_rejects_malformed_tuples():
    with pytest.raises(TraceSchemaError, match="unknown trace category"):
        record_to_dict((0.0, "nope", 1))
    with pytest.raises(TraceSchemaError, match="expected 3 fields"):
        record_to_dict((0.0, "originate", 1))  # missing seq + host


def test_every_schema_category_has_unique_fields():
    for category, fields in SCHEMA.items():
        assert len(set(fields)) == len(fields), category
        assert "t" not in fields and "ev" not in fields, category


def test_validate_record_accepts_wellformed():
    validate_record({"t": 1.0, "ev": "fault", "kind": "crash", "host": 3})
    validate_record({"ev": "trace-meta", "schema_version": 1, "seed": 7})


@pytest.mark.parametrize("bad,why", [
    ({"ev": "nope", "t": 0.0}, "unknown trace category"),
    ({"ev": "fault", "t": -1.0, "kind": "crash", "host": 3}, "non-negative"),
    ({"ev": "fault", "t": True, "kind": "crash", "host": 3}, "non-negative"),
    ({"ev": "fault", "kind": "crash", "host": 3}, "non-negative"),
    ({"ev": "fault", "t": 0.0, "kind": "crash"}, "missing"),
    ({"ev": "fault", "t": 0.0, "kind": "crash", "host": 3, "x": 1},
     "unexpected"),
    ({"ev": "trace-meta", "schema_version": 99}, "schema_version"),
])
def test_validate_record_rejections(bad, why):
    with pytest.raises(TraceSchemaError, match=why):
        validate_record(bad)


def test_validate_record_checks_decision_verdicts():
    base = {"t": 0.0, "ev": "decision", "src": 1, "seq": 0, "host": 2,
            "scheme": "counter", "n": None, "threshold": 3, "observed": 1}
    validate_record(dict(base, verdict="defer"))
    for verdict in DECISION_VERDICTS:
        validate_record(dict(base, verdict=verdict))
    with pytest.raises(TraceSchemaError, match="unknown verdict"):
        validate_record(dict(base, verdict="maybe"))
