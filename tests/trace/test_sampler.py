"""Time-series sampler: cadence, content, and determinism."""

import pytest

from repro.trace import TraceRecorder
from repro.trace.sampler import TimeSeriesSampler

from tests.trace.conftest import traced_run

DT = 0.5


@pytest.fixture(scope="module")
def sampled():
    """(result, recorder) of a traced adaptive-counter run with Δt=0.5."""
    return traced_run("adaptive-counter", seed=11, sample_dt=DT)


def test_sampler_requires_positive_dt():
    with pytest.raises(ValueError, match="sample_dt"):
        TimeSeriesSampler(None, None, None, TraceRecorder())


def test_sample_cadence_spans_the_run(sampled):
    result, trace = sampled
    samples = trace.filter("sample")
    # One sample every DT from DT up to (and including) end_time.
    assert len(samples) == int(result.end_time // DT)
    times = [s[0] for s in samples]
    assert times == sorted(times)
    assert times[0] == DT
    for a, b in zip(times, times[1:]):
        assert b - a == pytest.approx(DT)
    assert times[-1] <= result.end_time


def test_sample_content_is_sane(sampled):
    result, trace = sampled
    num_hosts = result.config.num_hosts
    for d in trace.as_dicts("sample"):
        assert d["busy_frac"] >= 0.0
        assert d["in_flight"] >= 0
        assert 0 <= d["alive"] <= num_hosts
        assert d["queue_max"] <= d["queue_total"]
        assert d["receives"] >= 0


def test_cumulative_counters_are_monotonic(sampled):
    result, trace = sampled
    samples = list(trace.as_dicts("sample"))
    for field in ("transmissions", "deliveries", "collisions", "receives"):
        values = [s[field] for s in samples]
        assert values == sorted(values), field
    # The final sample never exceeds the run's own totals.
    last = samples[-1]
    ch = result.channel_stats
    assert last["transmissions"] <= ch.transmissions
    assert last["deliveries"] <= ch.deliveries
    assert last["collisions"] <= ch.collisions


def test_busy_fractions_integrate_to_tx_airtime(sampled):
    """Per-window busy fractions times Δt sum to the airtime started
    before the last sample -- the sampler measures real channel load."""
    result, trace = sampled
    samples = list(trace.as_dicts("sample"))
    integrated = sum(s["busy_frac"] for s in samples) * DT
    total = result.channel_stats.total_tx_airtime
    # Airtime started after the final sample instant is not integrated.
    assert integrated <= total + 1e-9
    assert integrated == pytest.approx(total, rel=0.2)


def test_queue_depths_are_sparse_and_consistent(sampled):
    _, trace = sampled
    samples = {s[0]: s for s in trace.filter("sample")}
    for t, _, depths in trace.filter("queue-depths"):
        # Paired with a same-instant sample whose aggregate matches.
        d = dict(zip(
            ("busy_frac", "in_flight", "queue_total", "queue_max", "alive",
             "transmissions", "deliveries", "collisions", "receives"),
            samples[t][2:],
        ))
        assert depths  # sparse: only emitted when something is queued
        assert sum(depth for _, depth in depths) == d["queue_total"]
        assert max(depth for _, depth in depths) == d["queue_max"]


def test_sampling_is_deterministic(sampled):
    _, trace = sampled
    _, again = traced_run("adaptive-counter", seed=11, sample_dt=DT)
    assert again.filter("sample") == trace.filter("sample")
    assert again.filter("queue-depths") == trace.filter("queue-depths")
