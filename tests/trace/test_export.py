"""JSONL and Chrome trace-event exporters."""

import json

import pytest

from repro.trace import (
    SCHEMA_VERSION,
    TraceRecorder,
    TraceSchemaError,
    chrome_trace,
    iter_jsonl,
    validate_jsonl,
    write_chrome_trace,
    write_jsonl,
)


@pytest.fixture
def recorder():
    rec = TraceRecorder()
    rec.meta.update(scheme="counter", seed=7)
    rec.emit(0.5, "originate", src=1, seq=0, host=1)
    rec.emit(0.51, "tx-start", host=1, kind="bcast", src=1, seq=0, hops=0,
             duration=0.002, receivers=3)
    rec.emit(0.512, "rx", sender=1, receiver=2, kind="bcast", src=1, seq=0)
    rec.emit(0.512, "receive", src=1, seq=0, host=2, sender=1)
    rec.emit(0.512, "decision", src=1, seq=0, host=2, scheme="counter",
             verdict="defer", n=None, threshold=3, observed=1)
    rec.emit(0.512, "rad-wait", src=1, seq=0, host=2, jitter=0.003)
    rec.emit(0.6, "fault", kind="crash", host=9)
    rec.emit(1.0, "sample", busy_frac=0.25, in_flight=1, queue_total=2,
             queue_max=2, alive=29, transmissions=5, deliveries=12,
             collisions=1, receives=4)
    return rec


# ----------------------------------------------------------------- JSONL


def test_jsonl_header_comes_first(recorder):
    lines = list(iter_jsonl(recorder))
    header = json.loads(lines[0])
    assert header["ev"] == "trace-meta"
    assert header["schema_version"] == SCHEMA_VERSION
    assert header["scheme"] == "counter"
    assert header["seed"] == 7
    assert len(lines) == 1 + len(recorder)


def test_write_jsonl_roundtrip_validates(tmp_path, recorder):
    path = tmp_path / "trace.jsonl"
    written = write_jsonl(recorder, path)
    assert written == len(recorder)  # header excluded from the count
    # validate_jsonl counts every line, header included.
    assert validate_jsonl(path) == written + 1


def test_validate_jsonl_reports_line_number_on_garbage(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(
        '{"ev": "trace-meta", "schema_version": %d}\n'
        "not json at all\n" % SCHEMA_VERSION
    )
    with pytest.raises(TraceSchemaError, match=r"bad\.jsonl:2.*not JSON"):
        validate_jsonl(path)


def test_validate_jsonl_reports_line_number_on_schema_violation(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(
        '{"ev": "fault", "t": 1.0, "kind": "crash", "host": 3}\n'
        '{"ev": "fault", "t": 2.0, "kind": "crash"}\n'
    )
    with pytest.raises(TraceSchemaError, match=r"bad\.jsonl:2"):
        validate_jsonl(path)


def test_validate_jsonl_skips_blank_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text(
        '{"ev": "fault", "t": 1.0, "kind": "crash", "host": 3}\n\n\n'
    )
    assert validate_jsonl(path) == 1


# ---------------------------------------------------------- Chrome trace


def test_chrome_trace_structure(recorder):
    doc = chrome_trace(recorder)
    assert doc["displayTimeUnit"] == "ms"
    assert doc["metadata"]["schema_version"] == SCHEMA_VERSION
    assert doc["metadata"]["scheme"] == "counter"
    events = doc["traceEvents"]
    json.dumps(doc)  # must be serializable as-is

    by_phase = {}
    for ev in events:
        by_phase.setdefault(ev["ph"], []).append(ev)

    # Metadata: one process name plus one thread name per seen host.
    names = [e for e in by_phase["M"] if e["name"] == "thread_name"]
    assert {e["tid"] for e in names} == {1, 2, 9}
    assert any(e["name"] == "process_name" for e in by_phase["M"])

    # Spans: the transmission and the RAD wait, in microseconds.
    spans = by_phase["X"]
    tx = next(e for e in spans if e["cat"] == "tx")
    assert tx["ts"] == pytest.approx(0.51 * 1e6)
    assert tx["dur"] == pytest.approx(0.002 * 1e6)
    assert tx["tid"] == 1
    rad = next(e for e in spans if e["cat"] == "scheme")
    assert rad["dur"] == pytest.approx(0.003 * 1e6)

    # Instants land on the owning host's track.
    instants = by_phase["i"]
    rx = next(e for e in instants if e["cat"] == "rx")
    assert rx["tid"] == 2
    fault = next(e for e in instants if e["cat"] == "fault")
    assert fault["tid"] == 9 and fault["name"] == "fault:crash"
    decision = next(e for e in instants if e["cat"] == "decision")
    assert decision["args"]["threshold"] == 3

    # The sample becomes counter tracks.
    counters = {e["name"]: e for e in by_phase["C"]}
    assert counters["channel"]["args"]["busy_frac"] == 0.25
    assert counters["queues"]["args"]["total"] == 2
    assert counters["hosts"]["args"]["alive"] == 29
    assert counters["cumulative"]["args"]["deliveries"] == 12


def test_write_chrome_trace_counts_events(tmp_path, recorder):
    path = tmp_path / "trace.json"
    count = write_chrome_trace(recorder, path)
    doc = json.loads(path.read_text())
    assert count == len(doc["traceEvents"]) > 0
