"""Shared traced-run fixtures for the trace test suite.

Each fixture runs one seeded scenario twice (once plain, once traced) at
module scope so the expensive simulations are paid once per module.  The
three scenarios cover the scheme families the analyzer reconciliation is
asserted against: blind flooding, the adaptive counter scheme, and
neighbor coverage.
"""

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_broadcast_simulation
from repro.trace import TraceRecorder


def small_config(scheme, seed, **overrides):
    base = dict(
        scheme=scheme,
        map_units=3,
        num_hosts=30,
        num_broadcasts=4,
        seed=seed,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def traced_run(scheme, seed, sample_dt=None, **overrides):
    """(result, recorder) of one traced run."""
    trace = TraceRecorder(sample_dt=sample_dt)
    result = run_broadcast_simulation(
        small_config(scheme, seed, **overrides), trace=trace
    )
    return result, trace


# The three reconciliation scenarios (scheme, seed).
SCENARIOS = {
    "flooding": ("flooding", 7),
    "adaptive-counter": ("adaptive-counter", 11),
    "neighbor-coverage": ("neighbor-coverage", 3),
}


@pytest.fixture(scope="module", params=sorted(SCENARIOS))
def traced_scenario(request):
    """(name, result, recorder) for each reconciliation scenario."""
    scheme, seed = SCENARIOS[request.param]
    result, trace = traced_run(scheme, seed, sample_dt=0.5)
    return request.param, result, trace
