"""Golden provenance checks per scheme family (one seeded broadcast each).

Every suppression decision a traced run records must be *explainable* from
its own provenance fields: the threshold must equal the scheme's threshold
function evaluated at the recorded neighbor count, and the verdict must be
the one the recorded ``observed``-vs-``threshold`` comparison implies.
This pins the provenance wiring per family -- a scheme that records a
verdict its own numbers contradict fails here.
"""

import pytest

from repro.net.host import HelloConfig
from repro.schemes.thresholds import (
    make_counter_threshold,
    make_location_threshold,
)
from repro.trace import DECISION_VERDICTS

from tests.trace.conftest import traced_run

FAMILIES = {
    "flooding": dict(scheme="flooding"),
    "adaptive-counter": dict(scheme="adaptive-counter"),
    "adaptive-location": dict(scheme="adaptive-location"),
    "neighbor-coverage": dict(scheme="neighbor-coverage"),
    "nc-dhi": dict(
        scheme="neighbor-coverage", hello=HelloConfig(dynamic=True)
    ),
}

TERMINAL = {"rebroadcast", "inhibit", "inhibit-immediate", "cancel-too-late"}


@pytest.fixture(scope="module", params=sorted(FAMILIES))
def family(request):
    """(name, result, decision dicts) for a single traced broadcast."""
    overrides = dict(FAMILIES[request.param])
    scheme = overrides.pop("scheme")
    result, trace = traced_run(scheme, seed=5, num_broadcasts=1, **overrides)
    decisions = list(trace.as_dicts("decision"))
    assert decisions, request.param
    assert trace.count("originate") == 1
    return request.param, result, trace, decisions


def by_verdict(decisions):
    out = {}
    for d in decisions:
        out.setdefault(d["verdict"], []).append(d)
    return out


def hosts_with(decisions, *verdicts):
    return {d["host"] for d in decisions if d["verdict"] in verdicts}


# ------------------------------------------------- structure (all families)


def test_verdicts_are_known(family):
    _, _, _, decisions = family
    assert {d["verdict"] for d in decisions} <= DECISION_VERDICTS


def test_every_receiver_makes_a_first_decision(family):
    """on_first_hear always records either an immediate inhibit or a
    defer -- exactly one per host that first-heard the packet."""
    name, _, trace, decisions = family
    receivers = {d["host"] for d in trace.as_dicts("receive")}
    first_decisions = [
        d for d in decisions
        if d["verdict"] in ("defer", "inhibit-immediate")
    ]
    assert {d["host"] for d in first_decisions} == receivers, name
    assert len(first_decisions) == len(receivers), name  # one each


def test_every_deferring_host_reaches_a_terminal_verdict(family):
    """The run drains fully, so nobody is left mid-assessment: each
    host's last recorded verdict is terminal."""
    name, _, _, decisions = family
    last = {}
    for d in decisions:
        last[d["host"]] = d["verdict"]
    assert set(last.values()) <= TERMINAL, (name, last)


def test_rebroadcasters_and_suppressed_partition_the_deciders(family):
    name, result, _, decisions = family
    rebroadcast = hosts_with(decisions, "rebroadcast")
    suppressed = hosts_with(decisions, "inhibit", "inhibit-immediate")
    suppressed -= rebroadcast  # cancel-too-late: the copy won the race
    assert not rebroadcast & suppressed, name
    key = next(iter(result.metrics.records))
    record = result.metrics.records[key]
    assert rebroadcast == record.rebroadcasters, name


def test_rad_wait_pairs_with_defer(family):
    name, result, trace, decisions = family
    waits = list(trace.as_dicts("rad-wait"))
    defers = [d for d in decisions if d["verdict"] == "defer"]
    assert len(waits) == len(defers), name
    max_jitter = 31 * result.config.phy.slot_time
    for w in waits:
        if name == "flooding":  # jitter_slots = 0: immediate submission
            assert w["jitter"] == 0.0
        else:
            assert 0.0 <= w["jitter"] <= max_jitter


# ------------------------------------------------------ per-family goldens


def test_flooding_provenance_is_empty_and_never_suppresses(family):
    name, _, _, decisions = family
    if name != "flooding":
        pytest.skip("flooding only")
    # Flooding never inhibits -- but it does record "assess" steps for
    # duplicates heard while its own copy sits in the MAC queue.
    assert {d["verdict"] for d in decisions} <= {
        "defer", "assess", "rebroadcast"
    }
    for d in decisions:
        assert (d["n"], d["threshold"], d["observed"]) == (None, None, None)
    verdicts = by_verdict(decisions)
    assert len(verdicts["defer"]) == len(verdicts["rebroadcast"])


def test_adaptive_counter_provenance(family):
    name, _, _, decisions = family
    if name != "adaptive-counter":
        pytest.skip("adaptive-counter only")
    fn = make_counter_threshold()
    for d in decisions:
        assert d["n"] is not None and d["n"] >= 0
        assert d["threshold"] == fn(d["n"]), d
        assert isinstance(d["observed"], int) and d["observed"] >= 1
        if d["verdict"] in ("inhibit", "inhibit-immediate",
                            "cancel-too-late"):
            assert d["observed"] >= d["threshold"], d
        elif d["verdict"] in ("defer", "assess"):
            assert d["observed"] < d["threshold"], d
        # "rebroadcast": the threshold math above is all that must hold --
        # n is re-read at on-air time, after the last assessment.


def test_adaptive_location_provenance(family):
    name, _, _, decisions = family
    if name != "adaptive-location":
        pytest.skip("adaptive-location only")
    fn = make_location_threshold()
    for d in decisions:
        assert d["n"] is not None and d["n"] >= 0
        assert d["threshold"] == fn(d["n"]), d
        assert 0.0 <= d["observed"] <= 1.0  # a fraction of pi r^2
        # Location logic inverts the comparison: inhibit when the
        # *additional coverage* falls below A(n).
        if d["verdict"] in ("inhibit", "inhibit-immediate",
                            "cancel-too-late"):
            assert d["observed"] < d["threshold"], d
        elif d["verdict"] in ("defer", "assess"):
            assert d["observed"] >= d["threshold"], d


def test_neighbor_coverage_provenance(family):
    name, _, _, decisions = family
    if name not in ("neighbor-coverage", "nc-dhi"):
        pytest.skip("NC family only")
    for d in decisions:
        assert d["n"] is not None and d["n"] >= 0
        assert d["threshold"] == 0  # inhibit iff the pending set is empty
        assert isinstance(d["observed"], int) and d["observed"] >= 0
        if d["verdict"] in ("inhibit", "inhibit-immediate",
                            "cancel-too-late"):
            assert d["observed"] == 0, d
        elif d["verdict"] in ("defer", "assess"):
            assert d["observed"] > 0, d


def test_nc_dhi_actually_used_dynamic_hellos(family):
    name, result, _, _ = family
    if name != "nc-dhi":
        pytest.skip("nc-dhi only")
    assert result.config.hello.dynamic
    assert result.hellos > 0
