"""Per-broadcast reconstruction, reconciled against the metrics layer.

The load-bearing guarantee: for every logical broadcast, the analyzer's
``reached`` equals the SRB denominator (hosts with a recorded first-hear)
and ``transmissions`` the SRB numerator (non-source copies on the air)
that :class:`~repro.metrics.collector.MetricsCollector` computed for the
same run -- the trace is an *explanation* of the metrics, not a second
opinion.
"""

import math

import pytest

from repro.faults.plan import FaultPlan
from repro.trace import analyze_recorder, load_jsonl, write_jsonl

from tests.trace.conftest import traced_run


def test_reached_and_transmissions_match_metrics(traced_scenario):
    name, result, trace = traced_scenario
    analysis = analyze_recorder(trace)
    records = result.metrics.records
    assert set(analysis.broadcasts) == set(records)
    for key, b in analysis.broadcasts.items():
        record = records[key]
        assert b.reached == len(record.received_times), (name, key)
        assert b.transmissions == len(record.rebroadcasters), (name, key)


def test_srb_formula_matches_per_broadcast(traced_scenario):
    name, result, trace = traced_scenario
    analysis = analyze_recorder(trace)
    for key, b in analysis.broadcasts.items():
        record = result.metrics.records[key]
        if b.reached:
            expected = 1.0 - len(record.rebroadcasters) / len(
                record.received_times
            )
            assert b.srb == pytest.approx(expected), (name, key)
        else:
            assert math.isnan(b.srb)


def test_broadcast_bookkeeping_is_internally_consistent(traced_scenario):
    name, result, trace = traced_scenario
    analysis = analyze_recorder(trace)
    for b in analysis.broadcasts.values():
        # A host is never both a rebroadcaster and terminally suppressed.
        assert not set(b.rebroadcasts) & set(b.suppressions)
        # Everyone who acted first heard the packet (the source aside).
        assert set(b.rebroadcasts) <= set(b.receives)
        assert set(b.suppressions) <= set(b.receives)
        # The reception tree is rooted at the source.
        tree = b.tree()
        assert tree[b.source] is None
        for host, parent in tree.items():
            if parent is not None:
                assert parent != host
        assert b.redundancy >= 1.0
        assert b.time_to_quiescence >= 0.0


def test_analysis_totals_and_meta(traced_scenario):
    name, result, trace = traced_scenario
    analysis = analyze_recorder(trace)
    assert analysis.total_reached == sum(
        b.reached for b in analysis.broadcasts.values()
    )
    assert analysis.meta["scheme"] == result.config.scheme
    assert analysis.meta["seed"] == result.config.seed
    # Flooding never suppresses; the adaptive schemes did at least once.
    breakdown = analysis.suppression_breakdown()
    if name == "flooding":
        assert breakdown == {}
    else:
        assert sum(breakdown.values()) > 0


def test_report_mentions_every_broadcast(traced_scenario):
    _, result, trace = traced_scenario
    report = analyze_recorder(trace).report()
    assert f"{len(result.metrics.records)} broadcasts" in report
    for src, seq in result.metrics.records:
        assert f"({src},{seq})" in report


def test_jsonl_roundtrip_preserves_the_analysis(tmp_path, traced_scenario):
    name, _, trace = traced_scenario
    path = tmp_path / f"{name}.jsonl"
    write_jsonl(trace, path)
    from_file = load_jsonl(path)
    in_memory = analyze_recorder(trace)
    assert set(from_file.broadcasts) == set(in_memory.broadcasts)
    for key, b in from_file.broadcasts.items():
        assert b.summary() == in_memory.broadcasts[key].summary()
    assert from_file.faults == in_memory.faults
    assert from_file.meta["scheme"] == in_memory.meta["scheme"]


def test_fault_events_land_in_the_trace():
    plan = FaultPlan.parse("crash:host=3,at=6,recover=14;loss:p=0.05")
    result, trace = traced_run("flooding", seed=7, faults=plan)
    analysis = analyze_recorder(trace)
    assert analysis.faults == [
        (ev.time, ev.kind, ev.host_id) for ev in result.fault_trace
    ]
    assert ("crash", 3) in {(kind, host) for _, kind, host in analysis.faults}
