"""Tracing must observe, never perturb.

A traced run (without the sampler) is **bit-identical** to an untraced
run: same metrics, same channel counters, same event count, same fault
trace.  With the sampler armed, its tick events shift the scheduler's
event count -- and only that.  And two traced runs of the same config
produce identical record streams (pure simulation-time determinism).
"""

import json

from repro.experiments.runner import run_broadcast_simulation
from repro.faults.plan import FaultPlan
from repro.trace import TraceRecorder

from tests.trace.conftest import small_config, traced_run


def fingerprint(result) -> dict:
    """Every observable that must not move when tracing is switched on."""
    ch = result.channel_stats
    return json.loads(json.dumps({
        "events_processed": result.events_processed,
        "end_time": result.end_time,
        "re": result.re,
        "srb": result.srb,
        "latency": result.latency,
        "hellos": result.hellos,
        "broadcasts": result.stats.broadcasts,
        "backoffs_started": result.backoffs_started,
        "transmissions": ch.transmissions,
        "deliveries": ch.deliveries,
        "collisions": ch.collisions,
        "deaf_misses": ch.deaf_misses,
        "injected_drops": ch.injected_drops,
        "total_tx_airtime": ch.total_tx_airtime,
        "total_rx_airtime": ch.total_rx_airtime,
        "broadcasts_skipped": result.broadcasts_skipped,
        "fault_trace": [
            (ev.time, ev.kind, ev.host_id) for ev in result.fault_trace
        ],
    }))


def test_tracing_without_sampler_is_bit_identical(traced_scenario):
    name, traced_result, _ = traced_scenario
    config = traced_result.config
    # The fixture's run used the sampler; compare sampler-less tracing
    # against a plain run -- every field must match, event count included.
    plain = run_broadcast_simulation(config)
    trace = TraceRecorder()
    traced = run_broadcast_simulation(config, trace=trace)
    assert fingerprint(traced) == fingerprint(plain), name
    assert len(trace) > 0  # it did record


def test_tracing_under_faults_is_bit_identical():
    config = small_config(
        "flooding", seed=7,
        faults=FaultPlan.parse(
            "crash:host=3,at=6,recover=14;churn:rate=0.02,downtime=4;"
            "loss:p=0.05"
        ),
    )
    plain = run_broadcast_simulation(config)
    traced = run_broadcast_simulation(config, trace=TraceRecorder())
    assert fingerprint(traced) == fingerprint(plain)


def test_sampler_shifts_only_the_event_count(traced_scenario):
    name, sampled_result, _ = traced_scenario
    plain = run_broadcast_simulation(sampled_result.config)
    sampled_fp = fingerprint(sampled_result)
    plain_fp = fingerprint(plain)
    # The sampler's own ticks are scheduler events...
    assert sampled_fp.pop("events_processed") > plain_fp.pop(
        "events_processed"
    ), name
    # ...and nothing else moves.
    assert sampled_fp == plain_fp, name


def test_traced_twice_yields_identical_records(traced_scenario):
    name, result, trace = traced_scenario
    config = result.config
    scheme, seed = config.scheme, config.seed
    _, again = traced_run(scheme, seed, sample_dt=trace.sample_dt)
    assert again.records == trace.records, name
    assert again.categories() == trace.categories()
