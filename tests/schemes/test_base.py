"""The shared S1-S5 skeleton (via the counter scheme as a concrete case)."""

import pytest

from repro.schemes import CounterScheme, make_scheme, SCHEME_REGISTRY

from tests.schemes.harness import FakeHost, make_packet


def test_on_originate_submits_unconditionally():
    host = FakeHost(CounterScheme(threshold=2), host_id=0)
    packet = make_packet(source=0)
    host.scheme.on_originate(packet)
    assert len(host.submitted) == 1


def test_first_hear_schedules_submit_after_jitter():
    host = FakeHost(CounterScheme(threshold=3), jitter=10)
    host.hear_first(make_packet())
    assert host.submitted == []  # still in the S2 jitter wait
    host.run_jitter()
    assert len(host.submitted) == 1
    # Jitter was 10 slots.
    assert host.scheduler.now == pytest.approx(10 * host.slot_time)


def test_transmit_finalizes_decision():
    host = FakeHost(CounterScheme(threshold=2))
    packet = make_packet()
    host.hear_first(packet)
    host.run_jitter()
    host.submitted[0].force_transmit()
    assert host.scheme.pending_count() == 0
    # Hearing again after transmission is a no-op (S5 future inhibition).
    host.hear_again(packet)
    assert host.inhibited == []


def test_hear_again_without_first_hear_ignored():
    host = FakeHost(CounterScheme(threshold=2))
    host.hear_again(make_packet())
    assert host.submitted == []
    assert host.inhibited == []


def test_cancel_during_jitter_wait():
    host = FakeHost(CounterScheme(threshold=2), jitter=31)
    packet = make_packet()
    host.hear_first(packet)
    host.hear_again(packet)  # c=2 >= C=2 -> cancel the scheduled submit
    host.run_jitter()
    assert host.submitted == []
    assert host.inhibited == [packet.key]
    assert host.scheme.pending_count() == 0


def test_cancel_while_queued_at_mac():
    host = FakeHost(CounterScheme(threshold=2), jitter=0)
    packet = make_packet()
    host.hear_first(packet)
    host.run_jitter()
    assert len(host.submitted) == 1
    host.hear_again(packet)  # threshold reached while MAC-queued
    assert host.submitted[0].cancelled
    assert host.inhibited == [packet.key]


def test_cancel_too_late_after_air(capsys):
    host = FakeHost(CounterScheme(threshold=2), jitter=0)
    packet = make_packet()
    host.hear_first(packet)
    host.run_jitter()
    host.submitted[0].force_transmit()
    host.hear_again(packet)  # too late: already on the air
    assert host.inhibited == []


def test_relayed_copy_submitted_not_original():
    host = FakeHost(CounterScheme(threshold=5), host_id=42, jitter=0)
    packet = make_packet(source=7, tx_id=7)
    host.hear_first(packet)
    host.run_jitter()
    relayed = host.submitted[0].packet
    assert relayed.tx_id == 42
    assert relayed.hops == 1
    assert relayed.key == packet.key


def test_independent_packets_tracked_separately():
    host = FakeHost(CounterScheme(threshold=2), jitter=31)
    p1, p2 = make_packet(seq=1), make_packet(seq=2)
    host.hear_first(p1)
    host.hear_first(p2)
    assert host.scheme.pending_count() == 2
    host.hear_again(p1)  # only p1 inhibited
    assert host.inhibited == [p1.key]
    host.run_jitter()
    assert [h.packet.key for h in host.submitted] == [p2.key]


def test_registry_contains_all_schemes():
    assert set(SCHEME_REGISTRY) == {
        # the paper's schemes and the [15] baselines...
        "flooding", "counter", "distance", "location",
        "adaptive-counter", "adaptive-location", "neighbor-coverage",
        # ...and the literature zoo
        "gossip", "adaptive-gossip", "counter-gossip", "self-pruning",
    }


def test_make_scheme_passes_params():
    scheme = make_scheme("counter", threshold=5)
    assert scheme.threshold == 5


def test_make_scheme_unknown_name():
    with pytest.raises(ValueError, match="unknown scheme"):
        make_scheme("telepathy")


# ------------------------------------------------ S5 edge races (PR 8)


def test_cancel_too_late_race_drained_by_on_air():
    """S5 loses the race to the air: the MAC has started transmitting but
    the on-air callback has not landed yet.  No inhibit is recorded and the
    pending entry survives until _on_air drains it."""
    host = FakeHost(CounterScheme(threshold=2), jitter=0)
    packet = make_packet()
    host.hear_first(packet)
    host.run_jitter()
    handle = host.submitted[0]
    handle.transmitted = True  # on the air; cancel() will return False
    host.hear_again(packet)
    assert host.inhibited == []
    assert host.scheme.pending_count() == 1
    handle.on_transmit_start()  # the in-flight callback lands
    assert host.scheme.pending_count() == 0
    host.hear_again(packet)  # later copies are plain no-ops
    assert host.inhibited == []


def test_reset_with_queued_mac_handle():
    """reset() (host crash) withdraws a queued-but-unsent MAC frame and
    records no inhibit -- a crashed host never decided anything."""
    host = FakeHost(CounterScheme(threshold=3), jitter=0)
    packet = make_packet()
    host.hear_first(packet)
    host.run_jitter()  # submitted to the MAC, not yet transmitted
    handle = host.submitted[0]
    assert not handle.transmitted
    host.scheme.reset()
    assert handle.cancelled
    assert host.scheme.pending_count() == 0
    assert host.inhibited == []
    host.hear_again(packet)  # no stale state resurrects after the crash
    assert host.inhibited == []


def test_reset_during_jitter_wait():
    host = FakeHost(CounterScheme(threshold=3), jitter=10)
    host.hear_first(make_packet())
    host.scheme.reset()
    host.run_jitter()
    assert host.submitted == []
    assert host.inhibited == []


# --------------------------- isolated-host behavior, registry-driven


#: Pending-set schemes prune immediately when no neighbor is known.
ISOLATED_INHIBITORS = {"neighbor-coverage", "self-pruning"}


@pytest.mark.parametrize("name", sorted(SCHEME_REGISTRY))
def test_isolated_host_first_hear(name):
    """A host with zero known neighbors hears one far-away copy.

    Every threshold family keeps an isolated host on the forced-rebroadcast
    side: C(0) maps to the sequence's first value, A(0) = 0, one heard copy
    is below any counter gate, and the fake rng's coin (0.0) always wins.
    Only the pending-set schemes inhibit -- T is empty with nobody to cover.
    """
    spec = SCHEME_REGISTRY[name]
    host = FakeHost(spec.build(), neighbors=0, position=(0.0, 0.0))
    packet = make_packet(tx_position=(400.0, 0.0))
    host.hear_first(packet)
    host.run_jitter()
    if name in ISOLATED_INHIBITORS:
        assert host.inhibited == [packet.key]
        assert host.submitted == []
    else:
        assert host.inhibited == []
        assert len(host.submitted) == 1
