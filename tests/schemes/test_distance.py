"""Distance-based scheme (from [15])."""

import pytest

from repro.schemes import DistanceScheme

from tests.schemes.harness import FakeHost, make_packet


def test_validation_and_describe():
    with pytest.raises(ValueError):
        DistanceScheme(threshold=-1.0)
    assert DistanceScheme(threshold=125.0).describe() == "D=125m"


def test_close_sender_inhibits_immediately():
    host = FakeHost(DistanceScheme(threshold=125.0), position=(0.0, 0.0))
    packet = make_packet(tx_position=(50.0, 0.0))  # d = 50 < 125
    host.hear_first(packet)
    assert host.inhibited == [packet.key]
    assert host.scheme.pending_count() == 0


def test_far_sender_allows_rebroadcast():
    host = FakeHost(DistanceScheme(threshold=125.0), position=(0.0, 0.0))
    packet = make_packet(tx_position=(400.0, 0.0))
    host.hear_first(packet)
    host.run_jitter()
    assert len(host.submitted) == 1


def test_dmin_tracks_closest_transmitter():
    host = FakeHost(DistanceScheme(threshold=125.0), position=(0.0, 0.0), jitter=31)
    packet = make_packet(tx_position=(400.0, 0.0))
    host.hear_first(packet)
    # Another copy from a closer host drops d_min below the threshold.
    host.hear_again(packet, sender_id=5, sender_position=(100.0, 0.0))
    assert host.inhibited == [packet.key]


def test_farther_second_copy_does_not_inhibit():
    host = FakeHost(DistanceScheme(threshold=125.0), position=(0.0, 0.0), jitter=31)
    packet = make_packet(tx_position=(200.0, 0.0))
    host.hear_first(packet)
    host.hear_again(packet, sender_id=5, sender_position=(490.0, 0.0))
    host.run_jitter()
    assert len(host.submitted) == 1


def test_boundary_distance_equal_threshold_rebroadcasts():
    """Inhibition requires d_min strictly below D."""
    host = FakeHost(DistanceScheme(threshold=125.0), position=(0.0, 0.0))
    packet = make_packet(tx_position=(125.0, 0.0))
    host.hear_first(packet)
    host.run_jitter()
    assert len(host.submitted) == 1


def test_missing_position_treated_as_zero_distance():
    host = FakeHost(DistanceScheme(threshold=125.0))
    packet = make_packet(tx_position=None)
    host.hear_first(packet)
    assert host.inhibited == [packet.key]
