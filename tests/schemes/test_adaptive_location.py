"""Adaptive location scheme: A(n) thresholding of the coverage assessment."""

import pytest

from repro.schemes import AdaptiveLocationScheme
from repro.schemes.thresholds import make_location_threshold

from tests.schemes.harness import FakeHost, make_packet


def test_needs_hello_and_position():
    assert AdaptiveLocationScheme.needs_hello is True
    assert AdaptiveLocationScheme.needs_position is True


def test_sparse_host_forced_to_rebroadcast():
    """n <= n1 -> A(n) = 0: even a fully covered host rebroadcasts."""
    host = FakeHost(AdaptiveLocationScheme(), neighbors=3, position=(0.0, 0.0))
    packet = make_packet(tx_position=(0.0, 0.0))  # ac = 0
    host.hear_first(packet)
    host.run_jitter()
    assert len(host.submitted) == 1
    assert host.inhibited == []


def test_crowded_host_inhibited_by_plateau():
    """n >= n2 -> A = 0.187; a close sender leaves ac < 0.187."""
    host = FakeHost(
        AdaptiveLocationScheme(), neighbors=20, position=(0.0, 0.0), radius=500.0
    )
    packet = make_packet(tx_position=(100.0, 0.0))  # ac ~ 0.15
    host.hear_first(packet)
    assert host.inhibited == [packet.key]


def test_crowded_host_with_high_ac_still_rebroadcasts():
    host = FakeHost(
        AdaptiveLocationScheme(), neighbors=20, position=(0.0, 0.0), radius=500.0
    )
    packet = make_packet(tx_position=(500.0, 0.0))  # ac ~ 0.61 > 0.187
    host.hear_first(packet)
    host.run_jitter()
    assert len(host.submitted) == 1


def test_threshold_scales_between_n1_and_n2():
    fn = make_location_threshold(n1=6, n2=12)
    scheme = AdaptiveLocationScheme(threshold_fn=fn)
    host = FakeHost(scheme, neighbors=9, position=(0.0, 0.0), radius=500.0)
    assert scheme.current_threshold() == pytest.approx(0.187 / 2, abs=1e-9)


def test_coverage_updates_inhibit_midwait():
    host = FakeHost(
        AdaptiveLocationScheme(), neighbors=20, position=(0.0, 0.0),
        radius=500.0, jitter=31,
    )
    packet = make_packet(tx_position=(500.0, 0.0))
    host.hear_first(packet)
    assert host.scheme.pending_count() == 1
    # Three more rim senders blanket the disk.
    host.hear_again(packet, sender_position=(-450.0, 0.0))
    host.hear_again(packet, sender_position=(0.0, 450.0))
    host.hear_again(packet, sender_position=(0.0, -450.0))
    assert host.inhibited == [packet.key]


def test_describe():
    assert "AL[" in AdaptiveLocationScheme().describe()
