"""Adaptive counter scheme: C(n) reacts to the live neighbor count."""

from repro.schemes import AdaptiveCounterScheme
from repro.schemes.thresholds import counter_sequence, make_counter_threshold

from tests.schemes.harness import FakeHost, make_packet


def test_needs_hello():
    assert AdaptiveCounterScheme.needs_hello is True


def test_default_threshold_function_is_tuned_curve():
    scheme = AdaptiveCounterScheme()
    assert scheme.threshold_fn(1) == 2
    assert scheme.threshold_fn(4) == 5
    assert scheme.threshold_fn(12) == 2


def test_describe_includes_label():
    assert "AC[" in AdaptiveCounterScheme().describe()


def test_sparse_host_tolerates_many_copies():
    """n = 2 -> C = 3: two copies do not inhibit."""
    host = FakeHost(AdaptiveCounterScheme(), neighbors=2, jitter=31)
    packet = make_packet()
    host.hear_first(packet)
    host.hear_again(packet)  # c = 2 < C(2) = 3
    assert host.scheme.pending_count() == 1
    host.hear_again(packet)  # c = 3 -> inhibit
    assert host.inhibited == [packet.key]


def test_crowded_host_uses_floor_threshold():
    """n >= 12 -> C = 2: the second copy inhibits."""
    host = FakeHost(AdaptiveCounterScheme(), neighbors=15, jitter=31)
    packet = make_packet()
    host.hear_first(packet)
    host.hear_again(packet)
    assert host.inhibited == [packet.key]


def test_threshold_reevaluated_as_neighborhood_changes():
    """A host whose neighborhood grows mid-wait adapts on the fly."""
    host = FakeHost(AdaptiveCounterScheme(), neighbors=3, jitter=31)
    packet = make_packet()
    host.hear_first(packet)
    host.hear_again(packet)  # c = 2 < C(3) = 4: keep waiting
    assert host.scheme.pending_count() == 1
    host._neighbor_count = 20  # neighborhood suddenly crowded
    host.hear_again(packet)  # c = 3 >= C(20) = 2 -> inhibit
    assert host.inhibited == [packet.key]


def test_custom_threshold_function():
    fn = counter_sequence([2, 2, 2, 2], name="always-2")
    host = FakeHost(AdaptiveCounterScheme(threshold_fn=fn), neighbors=1, jitter=31)
    packet = make_packet()
    host.hear_first(packet)
    host.hear_again(packet)
    assert host.inhibited == [packet.key]


def test_isolated_host_always_rebroadcasts_first_copy():
    """n = 0 maps to the sequence head (forced-rebroadcast side)."""
    host = FakeHost(AdaptiveCounterScheme(), neighbors=0)
    packet = make_packet()
    host.hear_first(packet)
    host.run_jitter()
    assert len(host.submitted) == 1
