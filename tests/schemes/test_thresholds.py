"""Threshold function library: C(n) and A(n)."""

import pytest

from repro.schemes.thresholds import (
    EAC2_FRACTION,
    FIG5A_SEQUENCES,
    FIG5B_SEQUENCES,
    counter_sequence,
    make_counter_threshold,
    make_location_threshold,
    midcurve_values,
)


class TestCounterSequence:
    def test_paper_notation_indexing(self):
        fn = counter_sequence([2, 3, 4, 5])
        assert fn(1) == 2
        assert fn(2) == 3
        assert fn(4) == 5

    def test_extends_with_last_value(self):
        fn = counter_sequence([2, 3])
        assert fn(50) == 3

    def test_n_zero_uses_first_value(self):
        fn = counter_sequence([4, 3, 2])
        assert fn(0) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            counter_sequence([])
        with pytest.raises(ValueError):
            counter_sequence([2, 1])
        fn = counter_sequence([2])
        with pytest.raises(ValueError):
            fn(-1)

    def test_label(self):
        assert counter_sequence([2, 3, 4]).label == "234"
        assert counter_sequence([2], name="custom").label == "custom"


class TestTunedCounterThreshold:
    def test_rising_part_is_n_plus_1(self):
        fn = make_counter_threshold(n1=4, n2=12)
        for n in range(1, 5):
            assert fn(n) == n + 1

    def test_floor_is_2_from_n2(self):
        fn = make_counter_threshold(n1=4, n2=12)
        for n in range(12, 30):
            assert fn(n) == 2

    def test_midcurve_monotone_nonincreasing(self):
        for shape in ("linear", "convex", "concave"):
            fn = make_counter_threshold(n1=4, n2=12, shape=shape)
            values = [fn(n) for n in range(4, 13)]
            assert all(a >= b for a, b in zip(values, values[1:])), (shape, values)

    def test_shapes_ordered_convex_below_concave(self):
        convex = make_counter_threshold(shape="convex")
        concave = make_counter_threshold(shape="concave")
        mids = range(5, 12)
        assert all(convex(n) <= concave(n) for n in mids)
        assert any(convex(n) < concave(n) for n in mids)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            make_counter_threshold(n1=5, n2=5)
        with pytest.raises(ValueError):
            make_counter_threshold(n1=0, n2=4)
        with pytest.raises(ValueError):
            midcurve_values(4, 12, "wiggly")


class TestFig5Sequences:
    def test_slope_sequences_match_paper_notation(self):
        # Paper notation 22233344455..., 2233445..., 23455...
        assert FIG5A_SEQUENCES["slope-1/3"] == [2, 2, 2, 3, 3, 3, 4, 4, 4, 5]
        assert FIG5A_SEQUENCES["slope-1/2"] == [2, 2, 3, 3, 4, 4, 5]
        assert FIG5A_SEQUENCES["slope-1"] == [2, 3, 4, 5]

    def test_n1_sequences(self):
        assert FIG5B_SEQUENCES[2] == [2, 3]
        assert FIG5B_SEQUENCES[4] == [2, 3, 4, 5]
        assert FIG5B_SEQUENCES[5] == [2, 3, 4, 5, 6]


class TestLocationThreshold:
    def test_zero_below_n1(self):
        fn = make_location_threshold(n1=6, n2=12)
        for n in range(0, 7):
            assert fn(n) == 0.0

    def test_plateau_at_eac2_from_n2(self):
        fn = make_location_threshold(n1=6, n2=12)
        for n in range(12, 40):
            assert fn(n) == EAC2_FRACTION

    def test_linear_between(self):
        fn = make_location_threshold(n1=6, n2=12)
        assert fn(9) == pytest.approx(EAC2_FRACTION / 2)
        values = [fn(n) for n in range(6, 13)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_custom_plateau(self):
        fn = make_location_threshold(n1=2, n2=4, a_max=0.5)
        assert fn(3) == pytest.approx(0.25)
        assert fn(10) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            make_location_threshold(n1=5, n2=5)
        with pytest.raises(ValueError):
            make_location_threshold(a_max=0.0)
        fn = make_location_threshold()
        with pytest.raises(ValueError):
            fn(-1)

    def test_label_metadata(self):
        fn = make_location_threshold(n1=6, n2=12)
        assert fn.label == "AL(n1=6,n2=12)"
        assert fn.n1 == 6 and fn.n2 == 12


def test_counter_sequence_label_delimits_multidigit_thresholds():
    # [2, 10] must not render as "210" (ambiguous with [2, 1, 0]).
    assert counter_sequence([2, 10]).label == "2-10"
    assert counter_sequence([2, 10, 12]).label == "2-10-12"
    # Single-digit paper sequences keep the compact notation.
    assert counter_sequence([2, 3, 4]).label == "234"
