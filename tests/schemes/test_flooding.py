"""Flooding scheme."""

from repro.schemes import FloodingScheme

from tests.schemes.harness import FakeHost, make_packet


def test_always_rebroadcasts():
    host = FakeHost(FloodingScheme())
    packet = make_packet()
    host.hear_first(packet)
    host.run_jitter()
    assert len(host.submitted) == 1
    assert host.inhibited == []


def test_no_scheme_level_jitter():
    host = FakeHost(FloodingScheme())
    host.hear_first(make_packet())
    host.run_jitter()
    assert host.scheduler.now == 0.0  # submitted at once


def test_duplicates_never_inhibit():
    host = FakeHost(FloodingScheme())
    packet = make_packet()
    host.hear_first(packet)
    for _ in range(10):
        host.hear_again(packet)
    host.run_jitter()
    assert len(host.submitted) == 1
    assert host.inhibited == []


def test_rebroadcasts_each_distinct_packet():
    host = FakeHost(FloodingScheme())
    host.hear_first(make_packet(seq=1))
    host.hear_first(make_packet(seq=2))
    host.hear_first(make_packet(source=9, seq=1))
    host.run_jitter()
    assert len(host.submitted) == 3
