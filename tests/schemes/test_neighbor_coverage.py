"""Neighbor-coverage scheme: pending-set semantics."""

from repro.schemes import NeighborCoverageScheme

from tests.schemes.harness import FakeHost, make_packet


def build_host(**kwargs):
    return FakeHost(NeighborCoverageScheme(), jitter=31, **kwargs)


def test_needs_two_hop_hello():
    assert NeighborCoverageScheme.needs_hello is True
    assert NeighborCoverageScheme.needs_two_hop_hello is True
    assert NeighborCoverageScheme.needs_position is False


def test_no_uncovered_neighbors_inhibits_immediately():
    """T = N_x - N_{x,h} - {h} empty at S1."""
    host = build_host()
    host.learn_neighbor(5, two_hop={1, 6})
    host.learn_neighbor(6, two_hop={1, 5})
    packet = make_packet(source=5, tx_id=5)
    # Sender 5 announced {1, 6}: everything x knows is covered.
    host.hear_first(packet, sender_id=5)
    assert host.inhibited == [packet.key]
    assert host.submitted == []


def test_uncovered_neighbor_triggers_rebroadcast():
    host = build_host()
    host.learn_neighbor(5, two_hop={1})
    host.learn_neighbor(7, two_hop={1})  # 7 not covered by 5's set
    packet = make_packet(source=5, tx_id=5)
    host.hear_first(packet, sender_id=5)
    assert host.scheme.pending_count() == 1
    host.run_jitter()
    assert len(host.submitted) == 1


def test_pending_set_shrinks_with_each_copy():
    host = build_host()
    host.learn_neighbor(5, two_hop={1})
    host.learn_neighbor(6, two_hop={1})
    host.learn_neighbor(7, two_hop={1})
    packet = make_packet(source=5, tx_id=5)
    host.hear_first(packet, sender_id=5)  # T = {6, 7}
    state = host.scheme._pending[packet.key]
    assert state.assessment == {6, 7}
    host.hear_again(packet, sender_id=6)  # 6 covered: T = {7}
    assert state.assessment == {7}
    host.hear_again(packet, sender_id=7)  # T empty -> inhibit
    assert host.inhibited == [packet.key]


def test_senders_two_hop_set_counts_as_covered():
    host = build_host()
    host.learn_neighbor(5, two_hop={1})
    host.learn_neighbor(6, two_hop={1})
    host.learn_neighbor(7, two_hop={1})
    packet = make_packet(source=5, tx_id=5)
    host.hear_first(packet, sender_id=5)  # T = {6, 7}
    # A copy from host 9 (not even a neighbor) announcing {6, 7}:
    host.learn_neighbor(9, two_hop={6, 7})
    host.hear_again(packet, sender_id=9)
    assert host.inhibited == [packet.key]


def test_isolated_host_inhibits():
    """No known neighbors: nothing to cover, so no rebroadcast."""
    host = build_host()
    packet = make_packet(source=5, tx_id=5)
    host.hear_first(packet, sender_id=5)
    assert host.inhibited == [packet.key]


def test_unknown_sender_still_subtracted():
    """The sender itself is covered even if x has no table entry for it."""
    host = build_host()
    host.learn_neighbor(5)  # no two-hop info announced
    packet = make_packet(source=5, tx_id=5)
    host.hear_first(packet, sender_id=5)
    # T = {5} - {} - {5} = empty.
    assert host.inhibited == [packet.key]


def test_line_topology_end_host_inhibits():
    """Middle host of a 0-1-2 line relays; the far end does not."""
    # Perspective of host 2 (end of line): N_2 = {1}, N_{2,1} = {0, 2}.
    host = build_host(host_id=2)
    host.learn_neighbor(1, two_hop={0, 2})
    packet = make_packet(source=0, tx_id=1, hops=1)
    host.hear_first(packet, sender_id=1)
    assert host.inhibited == [packet.key]


def test_describe():
    assert NeighborCoverageScheme().describe() == "NC"
    assert NeighborCoverageScheme(oracle=True).describe() == "NC(oracle)"


class _OracleChannel:
    """Stub geometric oracle: fixed neighbor map."""

    def __init__(self, neighbor_map):
        self._map = neighbor_map

    def neighbors_in_range(self, host_id):
        return list(self._map.get(host_id, ()))


def test_oracle_mode_uses_channel_truth():
    host = build_host()
    host.channel = _OracleChannel({1: [5, 7], 5: [1, 7]})
    host.host_id = 1
    host.scheme.oracle = True
    packet = make_packet(source=5, tx_id=5)
    # Oracle truth: N_1 = {5, 7}; sender 5 covers {1, 7}.
    # T = {5, 7} - {1, 7} - {5} = {} -> inhibit.
    host.hear_first(packet, sender_id=5)
    assert host.inhibited == [packet.key]


def test_oracle_mode_rebroadcasts_for_uncovered_neighbor():
    host = build_host()
    host.channel = _OracleChannel({1: [5, 9], 5: [1]})
    host.host_id = 1
    host.scheme.oracle = True
    packet = make_packet(source=5, tx_id=5)
    # T = {5, 9} - {1} - {5} = {9}: rebroadcast.
    host.hear_first(packet, sender_id=5)
    assert host.scheme.pending_count() == 1
