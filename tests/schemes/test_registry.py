"""The scheme plugin registry: specs, schemas, and make_scheme validation."""

import pytest

from repro.schemes import (
    SCHEME_REGISTRY,
    CounterScheme,
    ParamSpec,
    SchemeSpec,
    get_spec,
    make_scheme,
    register_scheme,
)

# ------------------------------------------------------- registry health


def test_registry_names_match_specs_and_classes():
    for name, spec in SCHEME_REGISTRY.items():
        assert spec.name == name
        assert spec.factory.name == name


def test_registry_descriptions_and_describes_unique():
    descriptions = [spec.description for spec in SCHEME_REGISTRY.values()]
    assert len(set(descriptions)) == len(descriptions)
    describes = [spec.build().describe() for spec in SCHEME_REGISTRY.values()]
    assert len(set(describes)) == len(describes)


def test_registry_capability_flags_consistent():
    for spec in SCHEME_REGISTRY.values():
        assert spec.needs_hello == spec.factory.needs_hello
        # Two-hop piggybacking is pointless without HELLOs at all.
        if spec.needs_two_hop_hello:
            assert spec.needs_hello


def test_registry_defaults_satisfy_own_schema():
    for spec in SCHEME_REGISTRY.values():
        assert spec.validate_params(spec.default_params()) == []
        scheme = spec.build()  # bare defaults always construct
        assert scheme.name == spec.name


def test_registry_params_are_declared_sweepable_correctly():
    for spec in SCHEME_REGISTRY.values():
        for param in spec.params:
            assert param.sweepable == (param.kind != "callable")


# ---------------------------------------------------- make_scheme errors


def test_make_scheme_unknown_kwarg_lists_accepted_params():
    # The satellite bug: a typo'd kwarg used to escape as a bare TypeError.
    with pytest.raises(ValueError) as exc:
        make_scheme("counter", treshold=4)
    message = str(exc.value)
    assert "counter" in message
    assert "treshold" in message
    assert "threshold: int = 3" in message  # the accepted-parameter list


def test_make_scheme_no_params_scheme_reports_none_accepted():
    with pytest.raises(ValueError, match=r"\(none\)"):
        make_scheme("flooding", p=0.5)


def test_make_scheme_bad_type():
    with pytest.raises(ValueError, match="must be an int"):
        make_scheme("counter", threshold=2.5)
    with pytest.raises(ValueError, match="must be a number"):
        make_scheme("gossip", p=True)


def test_make_scheme_out_of_range():
    with pytest.raises(ValueError, match=">= 2"):
        make_scheme("counter", threshold=1)
    with pytest.raises(ValueError, match="<= 1"):
        make_scheme("gossip", p=1.5)
    with pytest.raises(ValueError, match="one of"):
        make_scheme("adaptive-counter", shape="zigzag")


def test_make_scheme_good_params_still_work():
    assert make_scheme("counter", threshold=5).threshold == 5
    assert make_scheme("gossip", p=0.3).p == 0.3
    assert make_scheme("counter-gossip", threshold=6, p=0.5).p == 0.5
    assert make_scheme("self-pruning", oracle=True).oracle
    fn = make_scheme("adaptive-counter", n1=3, n2=8).threshold_fn
    assert fn(1) == 2 and fn(3) == 4 and fn(20) == 2


def test_make_scheme_callable_param_accepted():
    fn = lambda n: 2
    scheme = make_scheme("adaptive-counter", threshold_fn=fn)
    assert scheme.threshold_fn is fn
    with pytest.raises(ValueError, match="must be callable"):
        make_scheme("adaptive-counter", threshold_fn=42)


def test_adaptive_curve_knobs_exclusive_with_threshold_fn():
    with pytest.raises(ValueError, match="not both"):
        make_scheme("adaptive-counter", threshold_fn=lambda n: 2, n1=3)
    with pytest.raises(ValueError, match="not both"):
        make_scheme("adaptive-location", threshold_fn=lambda n: 0.1, a_max=0.2)


def test_get_spec():
    assert get_spec("counter").factory is CounterScheme
    with pytest.raises(ValueError, match="unknown scheme"):
        get_spec("telepathy")


# ------------------------------------------------------ spec plumbing


def test_spec_is_callable_factory():
    # Registry entries stay drop-in callables (benches swap them).
    scheme = SCHEME_REGISTRY["counter"](threshold=4)
    assert isinstance(scheme, CounterScheme)
    assert scheme.threshold == 4


def test_with_factory_keeps_schema():
    calls = []

    def fake_factory(threshold=3):
        calls.append(threshold)
        return CounterScheme(threshold=threshold)

    spec = SCHEME_REGISTRY["counter"].with_factory(fake_factory)
    spec.build(threshold=7)
    assert calls == [7]
    with pytest.raises(ValueError, match="accepted"):
        spec.build(nope=1)


def test_with_factory_signature_drift_still_valueerror():
    spec = SCHEME_REGISTRY["counter"].with_factory(lambda: CounterScheme())
    with pytest.raises(ValueError, match="counter"):
        spec.build(threshold=4)  # schema-valid, factory disagrees


def test_register_scheme_rejects_duplicate_names():
    sandbox = {}

    @register_scheme(registry=sandbox, description="x")
    class One(CounterScheme):
        name = "dup"

    with pytest.raises(ValueError, match="already registered"):
        @register_scheme(registry=sandbox, description="y")
        class Two(CounterScheme):
            name = "dup"

    assert sandbox["dup"].factory is One


def test_paramspec_rejects_bad_schema():
    with pytest.raises(ValueError, match="unknown kind"):
        ParamSpec("x", "complex")
    with pytest.raises(ValueError, match="default violates"):
        ParamSpec("x", "int", 1, minimum=2)
    with pytest.raises(ValueError, match="duplicate parameter"):
        SchemeSpec("dup-params", CounterScheme,
                   params=(ParamSpec("a", "int"), ParamSpec("a", "int")))


def test_paramspec_coerce():
    p_int = ParamSpec("n", "int")
    p_float = ParamSpec("p", "float")
    p_bool = ParamSpec("b", "bool")
    p_str = ParamSpec("s", "str")
    p_fn = ParamSpec("f", "callable")
    assert p_int.coerce("12") == 12
    assert p_float.coerce("0.7") == 0.7
    assert p_bool.coerce("true") is True and p_bool.coerce("0") is False
    assert p_str.coerce("linear") == "linear"
    with pytest.raises(ValueError):
        p_bool.coerce("maybe")
    with pytest.raises(ValueError, match="function object"):
        p_fn.coerce("lambda n: 2")
