"""Location-based scheme: additional-coverage assessment."""

import pytest

from repro.schemes import LocationScheme

from tests.schemes.harness import FakeHost, make_packet


def test_validation_and_describe():
    with pytest.raises(ValueError):
        LocationScheme(threshold=-0.1)
    with pytest.raises(ValueError):
        LocationScheme(threshold=1.5)
    assert LocationScheme(threshold=0.0469).describe() == "A=0.0469"


def test_coincident_sender_covers_everything():
    """A sender at the same position leaves ac = 0 < any positive A."""
    host = FakeHost(LocationScheme(threshold=0.01), position=(100.0, 100.0))
    packet = make_packet(tx_position=(100.0, 100.0))
    host.hear_first(packet)
    assert host.inhibited == [packet.key]


def test_distant_sender_leaves_large_ac():
    """Sender at distance r leaves ~61% uncovered: rebroadcast."""
    host = FakeHost(LocationScheme(threshold=0.1871), position=(0.0, 0.0), radius=500.0)
    packet = make_packet(tx_position=(500.0, 0.0))
    host.hear_first(packet)
    host.run_jitter()
    assert len(host.submitted) == 1


def test_accumulating_senders_erode_coverage():
    host = FakeHost(
        LocationScheme(threshold=0.30), position=(0.0, 0.0), radius=500.0, jitter=31
    )
    packet = make_packet(tx_position=(450.0, 0.0))
    host.hear_first(packet)
    assert host.scheme.pending_count() == 1  # ac ~ 0.66 > 0.30
    host.hear_again(packet, sender_position=(-450.0, 0.0))
    host.hear_again(packet, sender_position=(0.0, 450.0))
    host.hear_again(packet, sender_position=(0.0, -450.0))
    # Four senders around the rim leave only the center & edge slivers.
    assert host.inhibited == [packet.key]


def test_ac_value_matches_closed_form():
    host = FakeHost(LocationScheme(threshold=0.0), position=(0.0, 0.0), radius=500.0)
    packet = make_packet(tx_position=(500.0, 0.0))
    host.hear_first(packet)
    state = host.scheme._pending[packet.key]
    assert state.assessment.ac == pytest.approx(0.609, abs=0.03)


def test_sender_without_position_ignored():
    host = FakeHost(LocationScheme(threshold=0.5), position=(0.0, 0.0))
    packet = make_packet(tx_position=None)
    host.hear_first(packet)
    # No position info: ac stays 1.0, rebroadcast proceeds.
    host.run_jitter()
    assert len(host.submitted) == 1


def test_zero_threshold_never_inhibits():
    host = FakeHost(LocationScheme(threshold=0.0), position=(0.0, 0.0))
    packet = make_packet(tx_position=(0.0, 0.0))
    host.hear_first(packet)
    host.run_jitter()
    assert len(host.submitted) == 1
