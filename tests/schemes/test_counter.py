"""Fixed-threshold counter scheme (S1/S4 counting semantics)."""

import pytest

from repro.schemes import CounterScheme

from tests.schemes.harness import FakeHost, make_packet


def test_threshold_validation():
    with pytest.raises(ValueError):
        CounterScheme(threshold=1)
    with pytest.raises(ValueError):
        CounterScheme(threshold=0)


def test_describe():
    assert CounterScheme(threshold=4).describe() == "C=4"


def test_counter_initialized_to_one():
    host = FakeHost(CounterScheme(threshold=3), jitter=31)
    packet = make_packet()
    host.hear_first(packet)
    state = host.scheme._pending[packet.key]
    assert state.assessment == [1]


def test_rebroadcasts_when_heard_fewer_than_threshold_times():
    host = FakeHost(CounterScheme(threshold=3), jitter=31)
    packet = make_packet()
    host.hear_first(packet)
    host.hear_again(packet)  # c = 2 < 3: still going
    host.run_jitter()
    assert len(host.submitted) == 1
    assert host.inhibited == []


def test_inhibits_at_exactly_threshold():
    host = FakeHost(CounterScheme(threshold=3), jitter=31)
    packet = make_packet()
    host.hear_first(packet)
    host.hear_again(packet)  # c = 2
    host.hear_again(packet)  # c = 3 -> inhibit
    host.run_jitter()
    assert host.submitted == []
    assert host.inhibited == [packet.key]


def test_threshold_two_inhibits_on_second_copy():
    host = FakeHost(CounterScheme(threshold=2), jitter=31)
    packet = make_packet()
    host.hear_first(packet)
    host.hear_again(packet)
    assert host.inhibited == [packet.key]


def test_large_threshold_behaves_like_flooding():
    host = FakeHost(CounterScheme(threshold=10), jitter=0)
    packet = make_packet()
    host.hear_first(packet)
    for _ in range(8):
        host.hear_again(packet)  # c = 9 < 10
    host.run_jitter()
    assert len(host.submitted) == 1


def test_sender_identity_irrelevant_to_counter():
    """The counter counts copies, regardless of which neighbor sent them."""
    host = FakeHost(CounterScheme(threshold=3), jitter=31)
    packet = make_packet()
    host.hear_first(packet, sender_id=10)
    host.hear_again(packet, sender_id=10)  # same sender twice still counts
    host.hear_again(packet, sender_id=10)
    assert host.inhibited == [packet.key]
