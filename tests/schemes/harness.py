"""Fake host harness for driving schemes without a full network."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.net.neighbors import NeighborTable
from repro.net.packets import BroadcastPacket, HelloPacket
from repro.sim.engine import Scheduler


class FakeRng:
    """randint() / random() return fixed values (deterministic draws)."""

    def __init__(self, value: int = 0, random_value: float = 0.0):
        self.value = value
        self.random_value = random_value

    def randint(self, a, b):
        assert a <= self.value <= b
        return self.value

    def random(self):
        assert 0.0 <= self.random_value < 1.0
        return self.random_value


class FakeMacHandle:
    def __init__(self, host, packet, on_transmit_start):
        self.host = host
        self.packet = packet
        self.on_transmit_start = on_transmit_start
        self.cancelled = False
        self.transmitted = False

    def cancel(self):
        if self.transmitted:
            return False
        self.cancelled = True
        return True

    def force_transmit(self):
        """Simulate the MAC putting the frame on the air."""
        assert not self.cancelled
        self.transmitted = True
        self.host.transmitted.append(self.packet)
        if self.on_transmit_start is not None:
            self.on_transmit_start()


class FakeHost:
    """Implements the SchemeHost duck interface with full observability."""

    def __init__(self, scheme, host_id=1, position=(0.0, 0.0), neighbors=0,
                 radius=500.0, jitter=0, random_value=0.0):
        self.scheduler = Scheduler()
        self.scheme_rng = FakeRng(jitter, random_value)
        self.slot_time = 20e-6
        self.host_id = host_id
        self._position = position
        self._radius = radius
        self._neighbor_count = neighbors
        self.neighbor_table = NeighborTable(default_interval=1.0)
        self.submitted: List[FakeMacHandle] = []
        self.transmitted: List[BroadcastPacket] = []
        self.inhibited: List = []
        self.scheme = scheme
        scheme.attach(self)

    # SchemeHost API -------------------------------------------------

    def position(self) -> Tuple[float, float]:
        return self._position

    def radio_radius(self) -> float:
        return self._radius

    def neighbor_count(self) -> int:
        return self._neighbor_count

    def submit_rebroadcast(self, packet, on_transmit_start):
        handle = FakeMacHandle(self, packet, on_transmit_start)
        self.submitted.append(handle)
        return handle

    def record_inhibit(self, key):
        self.inhibited.append(key)

    # Test conveniences ----------------------------------------------

    def learn_neighbor(self, neighbor_id, two_hop=(), now=0.0):
        self.neighbor_table.update_from_hello(
            HelloPacket(
                sender_id=neighbor_id, neighbor_ids=frozenset(two_hop)
            ),
            now=now,
        )
        self._neighbor_count = self.neighbor_table.neighbor_count()

    def run_jitter(self):
        """Run pending zero/short-delay events (the S2 jitter wait)."""
        self.scheduler.run()

    def hear_first(self, packet, sender_id=None, sender_position=None):
        self.scheme.on_first_hear(
            packet, sender_id if sender_id is not None else packet.tx_id,
            sender_position if sender_position is not None else packet.tx_position,
        )

    def hear_again(self, packet, sender_id=None, sender_position=None):
        self.scheme.on_hear_again(
            packet, sender_id if sender_id is not None else packet.tx_id,
            sender_position if sender_position is not None else packet.tx_position,
        )


def make_packet(source=0, seq=1, tx_id=None, tx_position=None, hops=0):
    return BroadcastPacket(
        source_id=source,
        seq=seq,
        origin_time=0.0,
        tx_id=tx_id if tx_id is not None else source,
        tx_position=tx_position,
        hops=hops,
        size_bytes=280,
    )
