"""Unit behavior of the zoo variants: gossip, hybrid, self-pruning."""

import pytest

from repro.schemes import (
    AdaptiveGossipScheme,
    CounterGossipScheme,
    GossipScheme,
    SelfPruningScheme,
)

from tests.schemes.harness import FakeHost, make_packet

# ------------------------------------------------------------- gossip


def test_gossip_winning_coin_relays_once():
    host = FakeHost(GossipScheme(p=0.7), random_value=0.5, jitter=0)
    packet = make_packet()
    host.hear_first(packet)
    host.run_jitter()
    assert len(host.submitted) == 1
    assert host.inhibited == []


def test_gossip_losing_coin_inhibits_immediately():
    host = FakeHost(GossipScheme(p=0.7), random_value=0.9)
    packet = make_packet()
    host.hear_first(packet)
    assert host.scheme.pending_count() == 0  # decided at S1, no defer
    assert host.inhibited == [packet.key]
    host.run_jitter()
    assert host.submitted == []


def test_gossip_rehearing_never_cancels():
    # No S4: the winning coin is final, however often the packet is heard.
    host = FakeHost(GossipScheme(p=0.7), random_value=0.5, jitter=31)
    packet = make_packet()
    host.hear_first(packet)
    for _ in range(10):
        host.hear_again(packet)
    host.run_jitter()
    assert len(host.submitted) == 1
    assert host.inhibited == []


def test_gossip_boundary_probabilities():
    # random() is in [0, 1): p=1 always relays, p=0 never does.
    always = FakeHost(GossipScheme(p=1.0), random_value=0.999, jitter=0)
    always.hear_first(make_packet())
    always.run_jitter()
    assert len(always.submitted) == 1

    never = FakeHost(GossipScheme(p=0.0), random_value=0.0)
    never.hear_first(make_packet())
    assert never.inhibited


def test_gossip_rejects_bad_p():
    with pytest.raises(ValueError):
        GossipScheme(p=1.5)


def test_adaptive_gossip_p_of_n():
    scheme = AdaptiveGossipScheme(n1=4, p_min=0.4)
    host = FakeHost(scheme, neighbors=0)
    assert scheme.rebroadcast_probability() == 1.0  # sparse: sure relay
    host._neighbor_count = 4
    assert scheme.rebroadcast_probability() == 1.0
    host._neighbor_count = 8
    assert scheme.rebroadcast_probability() == pytest.approx(0.5)
    host._neighbor_count = 100
    assert scheme.rebroadcast_probability() == 0.4  # the floor


def test_adaptive_gossip_draws_against_current_p():
    scheme = AdaptiveGossipScheme(n1=4, p_min=0.4)
    host = FakeHost(scheme, neighbors=20, random_value=0.5, jitter=0)
    packet = make_packet()
    host.hear_first(packet)  # p(20) = 0.4 < draw 0.5 -> inhibit
    assert host.inhibited == [packet.key]


# ------------------------------------------------------------- hybrid


def test_hybrid_losing_coin_inhibits_immediately():
    host = FakeHost(CounterGossipScheme(threshold=4, p=0.3), random_value=0.8)
    packet = make_packet()
    host.hear_first(packet)
    assert host.inhibited == [packet.key]


def test_hybrid_winning_coin_still_counter_gated():
    host = FakeHost(
        CounterGossipScheme(threshold=3, p=0.9), random_value=0.1, jitter=31
    )
    packet = make_packet()
    host.hear_first(packet)  # c=1, coin won -> defer
    host.hear_again(packet)  # c=2 < 3
    assert host.inhibited == []
    host.hear_again(packet)  # c=3 >= 3 -> cancel
    assert host.inhibited == [packet.key]
    host.run_jitter()
    assert host.submitted == []


def test_hybrid_winning_coin_below_threshold_relays():
    host = FakeHost(
        CounterGossipScheme(threshold=4, p=0.9), random_value=0.1, jitter=0
    )
    packet = make_packet()
    host.hear_first(packet)
    host.run_jitter()
    assert len(host.submitted) == 1


def test_hybrid_rejects_bad_params():
    with pytest.raises(ValueError):
        CounterGossipScheme(threshold=1)
    with pytest.raises(ValueError):
        CounterGossipScheme(p=-0.1)


# ------------------------------------------------------- self-pruning


def _two_hop_host(scheme):
    """Host 1 with neighbors {2, 3}; sender 2's own neighbors are {1}."""
    host = FakeHost(scheme, host_id=1, jitter=31)
    host.learn_neighbor(2, two_hop=(1,))
    host.learn_neighbor(3, two_hop=(1,))
    return host


def test_self_pruning_relays_when_first_sender_leaves_gap():
    host = _two_hop_host(SelfPruningScheme())
    packet = make_packet(source=2, tx_id=2)
    host.hear_first(packet, sender_id=2)  # T = {2,3} - {1} - {2} = {3}
    assert host.scheme.pending_count() == 1
    host.run_jitter()
    assert len(host.submitted) == 1


def test_self_pruning_prunes_when_first_sender_covers_all():
    host = FakeHost(SelfPruningScheme(), host_id=1, jitter=31)
    host.learn_neighbor(2, two_hop=(1, 3))
    host.learn_neighbor(3, two_hop=(1, 2))
    packet = make_packet(source=2, tx_id=2)
    host.hear_first(packet, sender_id=2)  # T = {2,3} - {1,3} - {2} = {}
    assert host.inhibited == [packet.key]


def test_self_pruning_ignores_later_senders():
    # The NC scheme would cancel here; self-pruning decided at S1.
    host = _two_hop_host(SelfPruningScheme())
    packet = make_packet(source=2, tx_id=2)
    host.hear_first(packet, sender_id=2)  # T = {3}
    host.hear_again(packet, sender_id=3)  # NC: T -> {}; SP: unchanged
    assert host.inhibited == []
    host.run_jitter()
    assert len(host.submitted) == 1


def test_self_pruning_differs_from_nc_only_in_s4():
    from repro.schemes import NeighborCoverageScheme

    nc_host = _two_hop_host(NeighborCoverageScheme())
    packet = make_packet(source=2, tx_id=2)
    nc_host.hear_first(packet, sender_id=2)
    nc_host.hear_again(packet, sender_id=3)
    assert nc_host.inhibited == [packet.key]  # the S4 cancel SP gives up
