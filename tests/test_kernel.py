"""Kernel-mode selection: precedence, validation, overrides."""

import pytest

from repro.kernel import (
    KERNEL_MODES,
    kernel_mode,
    kernel_override,
    resolve_kernel,
    set_kernel_mode,
    vector_supported,
)


def test_default_mode_is_auto(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    with kernel_override("auto"):
        assert kernel_mode() == "auto"


def test_env_variable_sets_mode(monkeypatch):
    import repro.kernel as kernel_module

    monkeypatch.setattr(kernel_module, "_mode", None)
    monkeypatch.setenv("REPRO_KERNEL", "scalar")
    assert kernel_mode() == "scalar"


def test_set_kernel_mode_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "scalar")
    previous = set_kernel_mode("vector")
    try:
        assert kernel_mode() == "vector"
    finally:
        set_kernel_mode(previous)


def test_invalid_mode_rejected_everywhere():
    with pytest.raises(ValueError):
        set_kernel_mode("simd")
    with pytest.raises(ValueError):
        resolve_kernel("simd")
    with pytest.raises(ValueError):
        with kernel_override("simd"):
            pass  # pragma: no cover


def test_override_restores_on_exit():
    before = kernel_mode()
    with kernel_override("scalar"):
        assert kernel_mode() == "scalar"
    assert kernel_mode() == before


def test_override_restores_on_exception():
    before = kernel_mode()
    with pytest.raises(RuntimeError):
        with kernel_override("scalar"):
            raise RuntimeError("boom")
    assert kernel_mode() == before


def test_resolve_explicit_modes_pass_through():
    assert resolve_kernel("scalar") == "scalar"
    if vector_supported():
        assert resolve_kernel("vector") == "vector"


def test_resolve_auto_matches_numpy_availability():
    expected = "vector" if vector_supported() else "scalar"
    assert resolve_kernel("auto") == expected
    with kernel_override("auto"):
        assert resolve_kernel() == expected


def test_resolve_argument_beats_process_mode():
    with kernel_override("scalar"):
        assert resolve_kernel() == "scalar"
        if vector_supported():
            assert resolve_kernel("vector") == "vector"


def test_modes_tuple_is_exhaustive():
    assert KERNEL_MODES == ("auto", "scalar", "vector")
