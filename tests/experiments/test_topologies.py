"""Topology generators and the static-network builder."""

import math

import pytest

from repro.experiments.topologies import (
    build_static_network,
    grid_positions,
    line_positions,
    ring_positions,
    star_positions,
    two_clusters_positions,
)
from repro.geometry.points import distance
from repro.schemes import FloodingScheme
from repro.sim.engine import Scheduler


def test_line_spacing():
    positions = line_positions(4, 100.0)
    assert positions == [(0.0, 0.0), (100.0, 0.0), (200.0, 0.0), (300.0, 0.0)]


def test_grid_count_and_extent():
    positions = grid_positions(3, 4, 10.0)
    assert len(positions) == 12
    assert max(p[0] for p in positions) == 30.0
    assert max(p[1] for p in positions) == 20.0


def test_star_hub_first_leaves_at_radius():
    positions = star_positions(6, 200.0)
    hub = positions[0]
    for leaf in positions[1:]:
        assert distance(hub, leaf) == pytest.approx(200.0)


def test_ring_equidistant_from_center():
    positions = ring_positions(8, 50.0, center=(10.0, 10.0))
    for p in positions:
        assert distance((10.0, 10.0), p) == pytest.approx(50.0)


def test_two_clusters_gap():
    positions = two_clusters_positions(3, 50.0, gap=1000.0)
    assert len(positions) == 6
    left_x = [p[0] for p in positions[:3]]
    right_x = [p[0] for p in positions[3:]]
    assert max(left_x) < min(right_x)


def test_generators_validate():
    with pytest.raises(ValueError):
        line_positions(0, 1.0)
    with pytest.raises(ValueError):
        grid_positions(0, 3, 1.0)
    with pytest.raises(ValueError):
        star_positions(0, 1.0)
    with pytest.raises(ValueError):
        ring_positions(0, 1.0)


def test_build_static_network_preserves_relative_geometry():
    scheduler = Scheduler()
    network, _ = build_static_network(
        scheduler, [(-100.0, -50.0), (300.0, -50.0)], FloodingScheme
    )
    positions = network.positions()
    assert distance(positions[0], positions[1]) == pytest.approx(400.0)
    # Everything inside the world.
    for p in positions.values():
        assert network.world.contains(p)


def test_build_static_network_empty_rejected():
    with pytest.raises(ValueError):
        build_static_network(Scheduler(), [], FloodingScheme)
