"""Multi-seed replication and confidence intervals."""

import math

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.replication import MetricEstimate, replicate


class TestMetricEstimate:
    def test_single_sample_zero_width(self):
        estimate = MetricEstimate.of([0.5])
        assert estimate.mean == 0.5
        assert estimate.half_width == 0.0
        assert estimate.samples == 1

    def test_mean_and_interval(self):
        estimate = MetricEstimate.of([0.8, 0.9, 1.0])
        assert estimate.mean == pytest.approx(0.9)
        assert estimate.half_width > 0.0
        assert estimate.low < 0.9 < estimate.high

    def test_wider_confidence_wider_interval(self):
        values = [0.7, 0.8, 0.9, 1.0]
        narrow = MetricEstimate.of(values, confidence=0.90)
        wide = MetricEstimate.of(values, confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_nan_values_skipped(self):
        estimate = MetricEstimate.of([0.5, math.nan, 0.7])
        assert estimate.samples == 2
        assert estimate.mean == pytest.approx(0.6)

    def test_all_nan_is_none(self):
        assert MetricEstimate.of([math.nan, math.nan]) is None
        assert MetricEstimate.of([]) is None

    def test_infinite_values_skipped(self):
        # Regression: one infinite latency sample (a replication where no
        # broadcast completed) used to poison the mean and CI.
        estimate = MetricEstimate.of([0.5, math.inf, 0.7, -math.inf])
        assert estimate.samples == 2
        assert estimate.mean == pytest.approx(0.6)
        assert math.isfinite(estimate.half_width)

    def test_all_infinite_is_none(self):
        assert MetricEstimate.of([math.inf, -math.inf]) is None

    def test_str_format(self):
        assert "+/-" in str(MetricEstimate.of([0.5, 0.6]))


class TestReplicate:
    def _config(self):
        return ScenarioConfig(
            scheme="flooding", map_units=3, num_hosts=20, num_broadcasts=3
        )

    def test_runs_one_per_seed(self):
        result = replicate(self._config(), seeds=[1, 2, 3])
        assert len(result.results) == 3
        assert result.re.samples == 3
        seeds = [r.config.seed for r in result.results]
        assert seeds == [1, 2, 3]

    def test_interval_contains_individual_means_center(self):
        result = replicate(self._config(), seeds=[1, 2, 3])
        values = [r.re for r in result.results]
        assert result.re.mean == pytest.approx(sum(values) / 3)

    def test_seed_validation(self):
        with pytest.raises(ValueError):
            replicate(self._config(), seeds=[])
        with pytest.raises(ValueError):
            replicate(self._config(), seeds=[1, 1])

    def test_summary_string(self):
        result = replicate(self._config(), seeds=[1, 2])
        assert "flooding@3x3" in result.summary()
