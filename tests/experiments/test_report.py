"""Reproduction-report generator (smoke on a minimal grid)."""

from repro.experiments.report import generate_report


def test_report_contains_every_figure_section():
    progress = []
    report = generate_report(
        maps=(1,), num_broadcasts=2, seed=2, progress=progress.append
    )
    for fig in ("Fig. 1", "Fig. 2", "Fig. 5", "Fig. 7", "Fig. 9",
                "Fig. 10", "Fig. 11", "Fig. 12", "Fig. 13"):
        assert fig in report, fig
    # Progress callback saw each stage.
    assert "fig01" in progress and "fig13" in progress
    # Markdown structure: a title and fenced tables.
    assert report.startswith("# Reproduction report")
    assert report.count("```") % 2 == 0
    assert report.count("```") >= 18


def test_report_records_parameters():
    report = generate_report(maps=(1,), num_broadcasts=2, seed=7)
    assert "broadcasts/scenario=2" in report
    assert "maps=[1]" in report
