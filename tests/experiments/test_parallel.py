"""Parallel execution layer: determinism, caching, perf accounting."""

import pickle

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import (
    CacheKeyError,
    ParallelRunner,
    ResultCache,
    config_digest,
)
from repro.experiments.replication import replicate
from repro.experiments.runner import run_broadcast_simulation, run_sweep
from repro.faults.plan import ChurnProcess, FaultPlan
from repro.schemes.thresholds import make_counter_threshold


def small_config(**overrides):
    base = dict(
        scheme="adaptive-counter",
        map_units=3,
        num_hosts=40,
        num_broadcasts=6,
        seed=1,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def fault_config(**overrides):
    return small_config(
        faults=FaultPlan(churn=ChurnProcess(rate=0.01, downtime=5.0)),
        **overrides,
    )


def assert_same_run(a, b):
    """Bit-identical metrics, counters and fault traces."""
    assert a.re == b.re
    assert a.srb == b.srb
    assert a.latency == b.latency
    assert a.hellos == b.hellos
    assert a.events_processed == b.events_processed
    assert a.end_time == b.end_time
    assert a.channel_stats.transmissions == b.channel_stats.transmissions
    assert a.channel_stats.collisions == b.channel_stats.collisions
    assert [(e.time, e.kind, e.host_id) for e in a.fault_trace] == [
        (e.time, e.kind, e.host_id) for e in b.fault_trace
    ]


# ------------------------------------------------------------ determinism


def test_replicate_matches_sequential():
    config = small_config()
    seeds = [1, 2, 3]
    sequential = replicate(config, seeds=seeds)
    parallel = ParallelRunner(max_workers=2).replicate(config, seeds=seeds)
    assert parallel.re == sequential.re
    assert parallel.srb == sequential.srb
    assert parallel.latency == sequential.latency
    for seq_run, par_run in zip(sequential.results, parallel.results):
        assert_same_run(seq_run, par_run)


def test_run_sweep_matches_sequential_with_faults():
    configs = [fault_config(seed=s) for s in (1, 2)]
    sequential = run_sweep(configs)
    parallel = ParallelRunner(max_workers=2).run_sweep(configs)
    assert len(parallel) == len(sequential)
    for seq_run, par_run in zip(sequential, parallel):
        assert_same_run(seq_run, par_run)


def test_run_sweep_progress_fires_in_submission_order():
    configs = [small_config(seed=s) for s in (1, 2, 3)]
    seen = []
    ParallelRunner(max_workers=2).run_sweep(
        configs, progress=lambda c, r: seen.append(c.seed)
    )
    assert seen == [1, 2, 3]


def test_unpicklable_config_runs_inline():
    # threshold_fn closures cannot cross a process boundary; the runner
    # must fall back to inline execution and still return a result.
    config = small_config(
        scheme_params={"threshold_fn": make_counter_threshold(n1=4, n2=12)}
    )
    with pytest.raises(Exception):
        pickle.dumps(config)
    results = ParallelRunner(max_workers=2).run_many([config, small_config()])
    assert len(results) == 2
    assert all(r.events_processed > 0 for r in results)


# ----------------------------------------------------------------- cache


def test_cache_round_trip_returns_equal_result(tmp_path):
    config = fault_config()
    runner = ParallelRunner(max_workers=1, cache_dir=tmp_path)
    fresh = runner.run_many([config])[0]
    assert not fresh.from_cache
    assert runner.perf.simulated == 1 and runner.perf.cache_hits == 0

    warm = ParallelRunner(max_workers=1, cache_dir=tmp_path)
    cached = warm.run_many([config])[0]
    assert cached.from_cache
    assert warm.perf.simulated == 0 and warm.perf.cache_hits == 1
    assert warm.perf.cache_hit_rate == 1.0
    # Value equality with both the fresh run and a from-scratch rerun.
    assert cached == fresh
    assert cached == run_broadcast_simulation(config)
    assert_same_run(cached, fresh)


def test_no_cache_flag_disables_lookup(tmp_path):
    config = small_config()
    ParallelRunner(max_workers=1, cache_dir=tmp_path).run_many([config])
    runner = ParallelRunner(max_workers=1, cache_dir=tmp_path, use_cache=False)
    runner.run_many([config])
    assert runner.perf.cache_hits == 0
    assert runner.perf.simulated == 1


def test_digest_distinguishes_configs_and_is_stable():
    a, b = small_config(), small_config()
    assert config_digest(a) == config_digest(b)
    assert config_digest(a) != config_digest(small_config(seed=2))
    assert config_digest(a) != config_digest(fault_config())


def test_digest_rejects_callables():
    config = small_config(
        scheme_params={"threshold_fn": make_counter_threshold(n1=4, n2=12)}
    )
    with pytest.raises(CacheKeyError):
        config_digest(config)


def test_uncacheable_config_still_runs_and_is_counted(tmp_path):
    config = small_config(
        scheme_params={"threshold_fn": make_counter_threshold(n1=4, n2=12)}
    )
    runner = ParallelRunner(max_workers=1, cache_dir=tmp_path)
    result = runner.run_many([config])[0]
    assert result.events_processed > 0
    assert runner.perf.uncacheable == 1
    assert len(runner.cache) == 0


def test_cache_survives_corrupt_entry(tmp_path):
    config = small_config()
    digest = config_digest(config)
    cache = ResultCache(tmp_path)
    (tmp_path / f"{digest}.pkl").write_bytes(b"not a pickle")
    assert cache.get(digest) is None
    runner = ParallelRunner(max_workers=1, cache_dir=tmp_path)
    result = runner.run_many([config])[0]
    assert not result.from_cache
    # The corrupt entry was overwritten with a good one.
    assert cache.get(digest) is not None


def test_cache_truncated_entry_is_deleted_and_recomputed(tmp_path):
    """A torn write (valid pickle prefix, cut short) is a miss: the husk
    is unlinked so the recomputed result can take its slot."""
    config = small_config()
    digest = config_digest(config)
    cache = ResultCache(tmp_path)

    good = run_broadcast_simulation(config)
    payload = pickle.dumps(good, protocol=pickle.HIGHEST_PROTOCOL)
    entry = tmp_path / f"{digest}.pkl"
    entry.write_bytes(payload[: len(payload) // 2])

    assert cache.get(digest) is None
    assert not entry.exists()  # husk removed, not left to fail forever

    runner = ParallelRunner(max_workers=1, cache_dir=tmp_path)
    result = runner.run_many([config])[0]
    assert not result.from_cache
    assert runner.perf.simulated == 1 and runner.perf.cache_hits == 0
    # Recomputed result landed in the freed slot and round-trips.
    reloaded = cache.get(digest)
    assert reloaded is not None
    assert_same_run(reloaded, result)


def test_cache_wrong_type_entry_is_deleted(tmp_path):
    """A file that unpickles fine but is not a SimulationResult is
    treated exactly like corruption."""
    cache = ResultCache(tmp_path)
    digest = config_digest(small_config())
    entry = tmp_path / f"{digest}.pkl"
    entry.write_bytes(pickle.dumps({"not": "a result"}))
    assert cache.get(digest) is None
    assert not entry.exists()


def test_cache_missing_entry_is_plain_miss(tmp_path):
    """No file at all: miss without touching the directory."""
    cache = ResultCache(tmp_path)
    before = sorted(p.name for p in tmp_path.iterdir())
    assert cache.get("0" * 16) is None
    assert sorted(p.name for p in tmp_path.iterdir()) == before


def test_cache_clear(tmp_path):
    runner = ParallelRunner(max_workers=1, cache_dir=tmp_path)
    runner.run_many([small_config(seed=s) for s in (1, 2)])
    assert len(runner.cache) == 2
    assert runner.cache.clear() == 2
    assert len(runner.cache) == 0


# ------------------------------------------------------------------ perf


def test_perf_counters_accumulate():
    runner = ParallelRunner(max_workers=1)
    runner.run_many([small_config()])
    runner.run_many([small_config(seed=2)])
    perf = runner.perf
    assert perf.runs == 2
    assert perf.simulated == 2
    assert perf.events > 0
    assert perf.wall_time > 0.0
    assert perf.sim_wall_time > 0.0
    assert perf.events_per_sec > 0.0
    assert perf.as_dict()["runs"] == 2


def test_runner_perf_aggregates_kernel_counters(tmp_path):
    """Simulated runs fold their KernelPerf into the runner aggregate;
    cache hits do not double-count."""
    config = small_config()
    runner = ParallelRunner(max_workers=1, cache_dir=tmp_path)
    result = runner.run_many([config])[0]
    kernel = runner.perf.kernel
    assert kernel is not None
    assert kernel == result.perf
    assert kernel.events_processed == result.events_processed
    assert kernel.transmissions == result.channel_stats.transmissions

    warm = ParallelRunner(max_workers=1, cache_dir=tmp_path)
    warm.run_many([config])
    assert warm.perf.cache_hits == 1
    assert warm.perf.kernel is None  # nothing simulated, nothing merged
    assert warm.perf.as_dict()["kernel"] is None

    exported = runner.perf.as_dict()["kernel"]
    assert exported == result.perf.as_dict()
    assert exported["events_processed"] == result.events_processed


def test_result_perf_fields_and_export():
    from repro.experiments.io import result_to_dict

    result = run_broadcast_simulation(small_config())
    assert result.wall_time > 0.0
    assert result.events_per_sec > 0.0
    assert not result.from_cache
    exported = result_to_dict(result)
    assert exported["perf"]["wall_time"] == result.wall_time
    assert exported["perf"]["from_cache"] is False


def test_max_workers_validation():
    with pytest.raises(ValueError):
        ParallelRunner(max_workers=0)


# ------------------------------------------------------- stats and prune


def fill_cache(tmp_path, n):
    cache = ResultCache(tmp_path)
    digests = []
    for seed in range(1, n + 1):
        config = small_config(seed=seed)
        digest = config_digest(config)
        cache.put(digest, run_broadcast_simulation(config))
        digests.append(digest)
    return cache, digests


def test_cache_stats_empty(tmp_path):
    stats = ResultCache(tmp_path).stats()
    assert stats.entries == 0
    assert stats.total_bytes == 0
    assert stats.oldest_age == stats.newest_age == 0.0


def test_cache_stats_counts_entries_and_bytes(tmp_path):
    cache, _ = fill_cache(tmp_path, 3)
    stats = cache.stats()
    assert stats.entries == 3
    assert stats.total_bytes == sum(
        p.stat().st_size for p in tmp_path.glob("*.pkl")
    )
    assert stats.oldest_age >= stats.newest_age >= 0.0
    exported = stats.as_dict()
    assert exported["entries"] == 3
    assert exported["directory"] == str(tmp_path)


def test_prune_without_bounds_is_noop(tmp_path):
    cache, _ = fill_cache(tmp_path, 2)
    report = cache.prune()
    assert report.removed == 0
    assert report.kept == 2
    assert cache.stats().entries == 2


def test_prune_max_age_drops_stale_entries(tmp_path):
    import os
    import time

    cache, digests = fill_cache(tmp_path, 2)
    old = tmp_path / f"{digests[0]}.pkl"
    stale = time.time() - 3600
    os.utime(old, (stale, stale))
    report = cache.prune(max_age=60)
    assert report.removed == 1
    assert report.kept == 1
    assert report.freed_bytes > 0
    assert cache.get(digests[0]) is None
    assert cache.get(digests[1]) is not None


def test_prune_max_bytes_evicts_least_recently_used(tmp_path):
    import os
    import time

    cache, digests = fill_cache(tmp_path, 3)
    # Spread the mtimes, then touch the oldest digest via a hit: LRU
    # order must follow use, not write time.
    now = time.time()
    for i, digest in enumerate(digests):
        ts = now - 300 * (len(digests) - i)
        os.utime(tmp_path / f"{digest}.pkl", (ts, ts))
    assert cache.get(digests[0]) is not None  # touch -> most recent

    keep_one = (tmp_path / f"{digests[0]}.pkl").stat().st_size
    report = cache.prune(max_bytes=keep_one)
    assert report.removed == 2
    assert report.kept == 1
    assert cache.get(digests[0]) is not None
    assert cache.get(digests[1]) is None
    assert cache.get(digests[2]) is None


def test_prune_max_bytes_zero_clears_everything(tmp_path):
    cache, _ = fill_cache(tmp_path, 2)
    report = cache.prune(max_bytes=0)
    assert report.removed == 2
    assert report.kept == 0
    assert report.kept_bytes == 0
    assert cache.stats().entries == 0


# ------------------------------------------------------------ interrupts


def interrupting_runner(monkeypatch, n):
    """Patch the simulation entry point to die after ``n`` completions."""
    import repro.experiments.parallel as parallel_mod

    calls = {"n": 0}

    def wrapper(config):
        if calls["n"] >= n:
            raise KeyboardInterrupt
        calls["n"] += 1
        return run_broadcast_simulation(config)

    monkeypatch.setattr(parallel_mod, "run_broadcast_simulation", wrapper)


def test_interrupt_raises_execution_interrupted(tmp_path, monkeypatch):
    from repro.experiments.parallel import ExecutionInterrupted

    configs = [small_config(seed=s) for s in (1, 2, 3)]
    interrupting_runner(monkeypatch, 2)
    runner = ParallelRunner(max_workers=1, cache_dir=tmp_path)
    with pytest.raises(ExecutionInterrupted) as excinfo:
        runner.run_many(configs)
    exc = excinfo.value
    assert isinstance(exc, KeyboardInterrupt)
    assert exc.completed == 2
    assert len(exc.results) == 3
    assert exc.results[2] is None
    assert exc.results[0] is not None
    assert runner.perf.simulated == 2


def test_interrupt_partial_results_are_cached(tmp_path, monkeypatch):
    import repro.experiments.parallel as parallel_mod

    from repro.experiments.parallel import ExecutionInterrupted

    configs = [small_config(seed=s) for s in (1, 2, 3)]
    interrupting_runner(monkeypatch, 1)
    runner = ParallelRunner(max_workers=1, cache_dir=tmp_path)
    with pytest.raises(ExecutionInterrupted):
        runner.run_many(configs)

    monkeypatch.setattr(
        parallel_mod, "run_broadcast_simulation", run_broadcast_simulation
    )
    warm = ParallelRunner(max_workers=1, cache_dir=tmp_path)
    results = warm.run_many(configs)
    assert warm.perf.cache_hits == 1
    assert warm.perf.simulated == 2
    assert all(r is not None for r in results)
