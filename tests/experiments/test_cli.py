"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_rejects_unknown_scheme():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--scheme", "magic"])


def test_parser_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "fig99"])


def test_run_command_prints_summary(capsys):
    exit_code = main(
        [
            "run", "--scheme", "flooding", "--map", "3", "--hosts", "20",
            "--broadcasts", "3", "--seed", "5",
        ]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "RE=" in out and "SRB=" in out


def test_run_command_counter_threshold(capsys):
    exit_code = main(
        [
            "run", "--scheme", "counter", "--counter-threshold", "2",
            "--map", "3", "--hosts", "20", "--broadcasts", "3",
        ]
    )
    assert exit_code == 0
    assert "counter@3x3" in capsys.readouterr().out


def test_run_command_perf_flag(capsys):
    exit_code = main(
        [
            "run", "--scheme", "flooding", "--map", "3", "--hosts", "20",
            "--broadcasts", "3", "--seed", "5", "--perf",
        ]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "events_processed" in out
    assert "pos_hit_rate" in out


def test_run_command_profile_flag(capsys):
    exit_code = main(
        [
            "run", "--scheme", "flooding", "--map", "3", "--hosts", "20",
            "--broadcasts", "3", "--seed", "5", "--profile", "5",
        ]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    # cProfile table plus the normal run summary.
    assert "cumulative" in out and "RE=" in out


def test_figure_command_profile_flag(capsys):
    assert main(["figure", "fig01", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "EAC(k)" in out  # analytic figure still renders
    assert "cumulative" in out


def test_figure_fig01(capsys):
    assert main(["figure", "fig01"]) == 0
    out = capsys.readouterr().out
    assert "EAC(k)" in out


def test_figure_fig02(capsys):
    assert main(["figure", "fig02"]) == 0
    assert "cf(n, k)" in capsys.readouterr().out


def test_figure_simulation_with_reduced_grid(capsys):
    exit_code = main(
        ["figure", "fig07", "--broadcasts", "2", "--maps", "1"]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "Fig. 7" in out
    assert "AC" in out


def test_dynamic_hello_flag(capsys):
    exit_code = main(
        [
            "run", "--scheme", "neighbor-coverage", "--dynamic-hello",
            "--map", "1", "--hosts", "10", "--broadcasts", "2",
        ]
    )
    assert exit_code == 0


def test_sweep_command(capsys, tmp_path):
    json_path = tmp_path / "sweep.json"
    exit_code = main(
        [
            "sweep", "--schemes", "flooding", "--maps", "1",
            "--hosts", "15", "--broadcasts", "2", "--seeds", "1", "2",
            "--json", str(json_path),
        ]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "flooding" in out and "+/-" in out
    import json

    runs = json.loads(json_path.read_text())
    assert len(runs) == 2  # one scheme x one map x two seeds
    assert {r["config"]["seed"] for r in runs} == {1, 2}


def test_figure_csv_flag(capsys, tmp_path):
    csv_path = tmp_path / "fig.csv"
    exit_code = main(
        [
            "figure", "fig07", "--broadcasts", "2", "--maps", "1",
            "--csv", str(csv_path),
        ]
    )
    assert exit_code == 0
    assert csv_path.exists()
    assert "series" in csv_path.read_text().splitlines()[0]


def test_figure_chart_flag(capsys):
    exit_code = main(
        ["figure", "fig07", "--broadcasts", "2", "--maps", "1", "--chart"]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "(RE)" in out  # the chart title


# --------------------------------------------------- campaigns and cache


SPEC_JSON = """{
  "name": "cli-test",
  "grid": {"scheme": ["flooding"], "seed": [1, 2]},
  "scenario": {"map_units": 1, "num_hosts": 12, "num_broadcasts": 2}
}"""


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(SPEC_JSON)
    return path


def test_campaign_plan_command(capsys, spec_path):
    assert main(["campaign", "plan", str(spec_path)]) == 0
    out = capsys.readouterr().out
    assert "2 runs" in out
    assert "run-00000" in out and "run-00001" in out


def test_campaign_plan_limit(capsys, spec_path):
    assert main(["campaign", "plan", str(spec_path), "--limit", "1"]) == 0
    out = capsys.readouterr().out
    assert "run-00000" in out
    assert "run-00001" not in out
    assert "1 more" in out


def test_campaign_plan_bad_spec(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"name": "x", "grid": {"warp": [1]}}')
    with pytest.raises(SystemExit, match="unknown grid axis"):
        main(["campaign", "plan", str(path)])


def test_campaign_run_and_status(capsys, tmp_path, spec_path):
    directory = tmp_path / "camp"
    code = main([
        "campaign", "run", str(spec_path),
        "--dir", str(directory), "--jobs", "1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "(sim)" in out
    assert "complete: 2 runs" in out
    assert (directory / "results.json").exists()

    assert main(["campaign", "status", str(directory)]) == 0
    out = capsys.readouterr().out
    assert "complete" in out
    assert "100.0%" in out

    # Rerun: everything comes from the campaign's cache.
    assert main([
        "campaign", "run", str(spec_path),
        "--dir", str(directory), "--jobs", "1",
    ]) == 0
    assert "(cache)" in capsys.readouterr().out


def test_campaign_run_quiet(capsys, tmp_path, spec_path):
    code = main([
        "campaign", "run", str(spec_path),
        "--dir", str(tmp_path / "camp"), "--jobs", "1", "--quiet",
    ])
    assert code == 0
    assert "run-00000" not in capsys.readouterr().out


def test_cache_stats_prune_clear(capsys, tmp_path, spec_path):
    cache_dir = tmp_path / "cache"
    main([
        "campaign", "run", str(spec_path),
        "--dir", str(tmp_path / "camp"), "--jobs", "1", "--quiet",
        "--cache-dir", str(cache_dir),
    ])
    capsys.readouterr()

    assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
    out = capsys.readouterr().out
    assert "entries      2" in out

    assert main([
        "cache", "prune", "--cache-dir", str(cache_dir), "--max-age", "1h",
    ]) == 0
    assert "removed 0 entries" in capsys.readouterr().out

    assert main([
        "cache", "prune", "--cache-dir", str(cache_dir), "--max-bytes", "0",
    ]) == 0
    assert "kept 0" in capsys.readouterr().out

    assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
    assert "removed 0 entries" in capsys.readouterr().out


def test_cache_prune_requires_a_bound(tmp_path):
    with pytest.raises(SystemExit, match="prune needs"):
        main(["cache", "prune", "--cache-dir", str(tmp_path)])


def test_parse_size_and_age():
    from repro.cli import parse_age, parse_size

    assert parse_size("1024") == 1024
    assert parse_size("4K") == 4096
    assert parse_size("1.5M") == int(1.5 * 1024 * 1024)
    assert parse_size("2G") == 2 * 1024 ** 3
    assert parse_age("90") == 90.0
    assert parse_age("2m") == 120.0
    assert parse_age("36h") == 36 * 3600.0
    assert parse_age("1w") == 7 * 86400.0
    with pytest.raises(ValueError):
        parse_size("lots")
    with pytest.raises(ValueError):
        parse_age("soon")


def test_schemes_command_lists_registry(capsys):
    assert main(["schemes"]) == 0
    out = capsys.readouterr().out
    from repro.schemes import SCHEME_REGISTRY

    for name in SCHEME_REGISTRY:
        assert name in out


def test_schemes_command_verbose_shows_params(capsys):
    assert main(["schemes", "-v"]) == 0
    out = capsys.readouterr().out
    assert "threshold: int = 3" in out
    assert "p: float = 0.7" in out


def test_run_command_scheme_param(capsys):
    exit_code = main(
        [
            "run", "--scheme", "counter-gossip", "--scheme-param", "p=0.5",
            "--scheme-param", "threshold=5", "--map", "3", "--hosts", "20",
            "--broadcasts", "3",
        ]
    )
    assert exit_code == 0
    assert "counter-gossip@3x3" in capsys.readouterr().out


def test_run_command_scheme_param_unknown_key():
    with pytest.raises(SystemExit, match="no parameter"):
        main(["run", "--scheme", "gossip", "--scheme-param", "q=0.5"])


def test_run_command_scheme_param_bad_value():
    with pytest.raises(SystemExit, match="p"):
        main(["run", "--scheme", "gossip", "--scheme-param", "p=high"])
    with pytest.raises(SystemExit, match="<= 1"):
        main(["run", "--scheme", "gossip", "--scheme-param", "p=1.5"])
    with pytest.raises(SystemExit, match="KEY=VALUE"):
        main(["run", "--scheme", "gossip", "--scheme-param", "p0.5"])


def test_sweep_command_scheme_param(capsys):
    exit_code = main(
        [
            "sweep", "--schemes", "gossip", "--scheme-param", "p=0.8",
            "--maps", "1", "--hosts", "20", "--broadcasts", "3",
        ]
    )
    assert exit_code == 0
    assert "gossip" in capsys.readouterr().out


def test_sweep_command_scheme_param_must_fit_every_scheme():
    with pytest.raises(SystemExit, match="flooding"):
        main(
            [
                "sweep", "--schemes", "gossip", "flooding",
                "--scheme-param", "p=0.8", "--maps", "1",
            ]
        )


# ------------------------------------------------------- bench and telemetry


def _write_bench(tmp_path, events_per_sec):
    import json

    path = tmp_path / "BENCH_kernel.json"
    path.write_text(json.dumps({
        "bench": "kernel",
        "platform": {"cpus": 4},
        "events_per_sec": events_per_sec,
        "wall_time": 1.0,
    }))
    return path


def test_bench_record_and_check_pass(capsys, tmp_path):
    history = tmp_path / "bench_history.jsonl"
    bench = _write_bench(tmp_path, 1000.0)
    assert main([
        "bench", "record", str(bench), "--history", str(history),
    ]) == 0
    assert "recorded 'kernel'" in capsys.readouterr().out
    assert main([
        "bench", "record", str(bench), "--history", str(history),
    ]) == 0
    capsys.readouterr()

    assert main(["bench", "check", "--history", str(history)]) == 0
    out = capsys.readouterr().out
    assert "events_per_sec" in out
    assert "ok: no gated metric regressed" in out


def test_bench_check_fails_on_regression(capsys, tmp_path):
    history = tmp_path / "bench_history.jsonl"
    for value in (1000.0, 1010.0, 990.0):
        main([
            "bench", "record", str(_write_bench(tmp_path, value)),
            "--history", str(history),
        ])
    capsys.readouterr()
    # 50% drop against a ~1000 median baseline: gate must exit non-zero.
    main([
        "bench", "record", str(_write_bench(tmp_path, 500.0)),
        "--history", str(history),
    ])
    assert main(["bench", "check", "--history", str(history)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSED" in out
    assert "FAIL" in out


def test_bench_record_missing_file_exits(tmp_path):
    with pytest.raises(SystemExit):
        main([
            "bench", "record", str(tmp_path / "nope.json"),
            "--history", str(tmp_path / "h.jsonl"),
        ])


def test_cache_stats_hit_rate_line(capsys, tmp_path, spec_path):
    from repro.telemetry.registry import MetricsRegistry, arm, disarm, registry

    cache_dir = tmp_path / "cache"
    run_args = [
        "campaign", "run", str(spec_path),
        "--dir", str(tmp_path / "camp"), "--jobs", "1", "--quiet",
        "--cache-dir", str(cache_dir),
    ]
    previous = registry()
    try:
        disarm()
        main(run_args)
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        assert "hit rate     n/a (no lookups" in capsys.readouterr().out

        arm(MetricsRegistry())
        main(run_args)  # warm: both runs come back as hits
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "hit rate     100.0% (2/2 lookups since process start)" in out
    finally:
        arm(previous) if previous is not None else disarm()


def test_campaign_run_resources_flag(capsys, tmp_path, spec_path):
    import json

    directory = tmp_path / "camp"
    assert main([
        "campaign", "run", str(spec_path),
        "--dir", str(directory), "--jobs", "1", "--quiet", "--resources",
    ]) == 0
    payload = json.loads((directory / "results.json").read_text())
    assert payload["resources"]["runs_sampled"] == 2
    assert payload["resources"]["peak_rss_bytes"] > 0
