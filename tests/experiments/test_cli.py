"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_rejects_unknown_scheme():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--scheme", "magic"])


def test_parser_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "fig99"])


def test_run_command_prints_summary(capsys):
    exit_code = main(
        [
            "run", "--scheme", "flooding", "--map", "3", "--hosts", "20",
            "--broadcasts", "3", "--seed", "5",
        ]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "RE=" in out and "SRB=" in out


def test_run_command_counter_threshold(capsys):
    exit_code = main(
        [
            "run", "--scheme", "counter", "--counter-threshold", "2",
            "--map", "3", "--hosts", "20", "--broadcasts", "3",
        ]
    )
    assert exit_code == 0
    assert "counter@3x3" in capsys.readouterr().out


def test_run_command_perf_flag(capsys):
    exit_code = main(
        [
            "run", "--scheme", "flooding", "--map", "3", "--hosts", "20",
            "--broadcasts", "3", "--seed", "5", "--perf",
        ]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "events_processed" in out
    assert "pos_hit_rate" in out


def test_run_command_profile_flag(capsys):
    exit_code = main(
        [
            "run", "--scheme", "flooding", "--map", "3", "--hosts", "20",
            "--broadcasts", "3", "--seed", "5", "--profile", "5",
        ]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    # cProfile table plus the normal run summary.
    assert "cumulative" in out and "RE=" in out


def test_figure_command_profile_flag(capsys):
    assert main(["figure", "fig01", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "EAC(k)" in out  # analytic figure still renders
    assert "cumulative" in out


def test_figure_fig01(capsys):
    assert main(["figure", "fig01"]) == 0
    out = capsys.readouterr().out
    assert "EAC(k)" in out


def test_figure_fig02(capsys):
    assert main(["figure", "fig02"]) == 0
    assert "cf(n, k)" in capsys.readouterr().out


def test_figure_simulation_with_reduced_grid(capsys):
    exit_code = main(
        ["figure", "fig07", "--broadcasts", "2", "--maps", "1"]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "Fig. 7" in out
    assert "AC" in out


def test_dynamic_hello_flag(capsys):
    exit_code = main(
        [
            "run", "--scheme", "neighbor-coverage", "--dynamic-hello",
            "--map", "1", "--hosts", "10", "--broadcasts", "2",
        ]
    )
    assert exit_code == 0


def test_sweep_command(capsys, tmp_path):
    json_path = tmp_path / "sweep.json"
    exit_code = main(
        [
            "sweep", "--schemes", "flooding", "--maps", "1",
            "--hosts", "15", "--broadcasts", "2", "--seeds", "1", "2",
            "--json", str(json_path),
        ]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "flooding" in out and "+/-" in out
    import json

    runs = json.loads(json_path.read_text())
    assert len(runs) == 2  # one scheme x one map x two seeds
    assert {r["config"]["seed"] for r in runs} == {1, 2}


def test_figure_csv_flag(capsys, tmp_path):
    csv_path = tmp_path / "fig.csv"
    exit_code = main(
        [
            "figure", "fig07", "--broadcasts", "2", "--maps", "1",
            "--csv", str(csv_path),
        ]
    )
    assert exit_code == 0
    assert csv_path.exists()
    assert "series" in csv_path.read_text().splitlines()[0]


def test_figure_chart_flag(capsys):
    exit_code = main(
        ["figure", "fig07", "--broadcasts", "2", "--maps", "1", "--chart"]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "(RE)" in out  # the chart title
