"""End-to-end runner behaviour."""

import math

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_broadcast_simulation, run_sweep


def small(scheme="flooding", **overrides):
    defaults = dict(
        scheme=scheme, map_units=3, num_hosts=30, num_broadcasts=5, seed=11
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def test_runs_requested_broadcast_count():
    result = run_broadcast_simulation(small())
    assert result.stats.broadcasts == 5
    assert len(result.metrics.records) == 5


def test_metrics_in_valid_ranges():
    result = run_broadcast_simulation(small())
    assert 0.0 <= result.re <= 1.0
    assert 0.0 <= result.srb < 1.0
    assert result.latency > 0.0


def test_deterministic_with_same_seed():
    a = run_broadcast_simulation(small(seed=3))
    b = run_broadcast_simulation(small(seed=3))
    assert a.re == b.re
    assert a.srb == b.srb
    assert a.latency == b.latency
    assert a.events_processed == b.events_processed


def test_different_seeds_differ():
    a = run_broadcast_simulation(small(seed=3, num_broadcasts=10))
    b = run_broadcast_simulation(small(seed=4, num_broadcasts=10))
    assert (a.re, a.latency) != (b.re, b.latency)


def test_zero_broadcasts_allowed():
    result = run_broadcast_simulation(small(num_broadcasts=0))
    assert result.stats.broadcasts == 0
    assert math.isnan(result.re)


def test_network_hook_runs_before_start():
    seen = {}

    def hook(network):
        seen["hosts"] = len(network.hosts)

    run_broadcast_simulation(small(), network_hook=hook)
    assert seen == {"hosts": 30}


def test_hello_counted_for_hello_schemes():
    result = run_broadcast_simulation(small(scheme="adaptive-counter"))
    assert result.hellos > 0


def test_no_hellos_for_flooding():
    result = run_broadcast_simulation(small())
    assert result.hellos == 0


def test_summary_line_format():
    line = run_broadcast_simulation(small()).summary()
    assert "RE=" in line and "SRB=" in line and "latency=" in line


def test_run_sweep_with_progress():
    seen = []
    results = run_sweep(
        [small(seed=1), small(seed=2)],
        progress=lambda c, r: seen.append(c.seed),
    )
    assert len(results) == 2
    assert seen == [1, 2]


def test_channel_stats_exposed():
    result = run_broadcast_simulation(small())
    assert result.channel_stats.transmissions > 0
    assert result.channel_stats.deliveries > 0
