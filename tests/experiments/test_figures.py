"""Figure drivers: smoke runs on minimal grids + result container logic."""

import math

import pytest

from repro.experiments.figures import (
    fig01,
    fig02,
    fig05,
    fig07,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
)
from repro.experiments.figures.common import FigureResult, SeriesPoint

TINY = dict(num_broadcasts=2, seed=3)


class TestFigureResult:
    def _result(self):
        result = FigureResult("test", "x")
        result.add("a", SeriesPoint(x=1, re=0.9, srb=0.5, latency=0.01))
        result.add("a", SeriesPoint(x=2, re=0.8, srb=0.6, latency=0.02))
        result.add("b", SeriesPoint(x=1, re=0.7, srb=0.1, latency=0.03, hellos=5))
        return result

    def test_xs_and_values(self):
        result = self._result()
        assert result.xs("a") == [1, 2]
        assert result.values("a", "re") == [0.9, 0.8]
        assert result.values("b", "hellos") == [5.0]

    def test_value_at(self):
        result = self._result()
        assert result.value_at("a", 2, "srb") == 0.6
        with pytest.raises(KeyError):
            result.value_at("a", 99)

    def test_table_renders_all_rows(self):
        table = self._result().table(metrics=("re", "srb"))
        # Title line + column header + 3 data rows.
        assert len(table.splitlines()) == 5
        assert "0.900" in table

    def test_table_handles_nan(self):
        result = FigureResult("t", "x")
        result.add("s", SeriesPoint(x=1, re=math.nan, srb=0.0, latency=0.0))
        assert "nan" in result.table(metrics=("re",))


class TestAnalyticFigures:
    def test_fig01_series(self):
        series = fig01.run(max_k=3, trials=100, seed=1)
        assert set(series) == {1, 2, 3}

    def test_fig02_series(self):
        series = fig02.run(max_n=3, trials=200, seed=1)
        assert set(series) == {1, 2, 3}
        assert abs(sum(series[3].values()) - 1.0) < 1e-9


class TestSimulationFigureSmoke:
    """Each driver runs end to end on a minimal grid."""

    def test_fig05_all_panels(self):
        for driver in (fig05.run_5a, fig05.run_5b, fig05.run_5c, fig05.run_5d):
            result = driver(maps=(1,), **TINY)
            assert result.series

    def test_fig07(self):
        result = fig07.run(maps=(1,), fixed_thresholds=(2,), **TINY)
        assert set(result.series) == {"C=2", "AC"}

    def test_fig09(self):
        result = fig09.run(maps=(1,), pairs=((6, 12),), **TINY)
        assert set(result.series) == {"(6,12)"}

    def test_fig10(self):
        result = fig10.run(maps=(1,), fixed_thresholds=(0.0134,), **TINY)
        assert set(result.series) == {"A=0.0134", "AL"}

    def test_fig11(self):
        panels = fig11.run(
            maps=(5,), speeds=(20.0,), hello_intervals=(1.0,), **TINY
        )
        assert set(panels) == {5}
        assert "hello=1s" in panels[5].series

    def test_fig12(self):
        result = fig12.run(maps=(1,), speeds=(20.0,), **TINY)
        assert "1x1" in result.series
        point = result.series["1x1"][0]
        assert point.hellos > 0

    def test_fig13(self):
        lineup = {"flooding": ("flooding", {}, fig13.SCHEME_LINEUP["flooding"][2])}
        result = fig13.run(maps=(1,), lineup=lineup, **TINY)
        assert set(result.series) == {"flooding"}
        assert result.value_at("flooding", 1, "srb") == 0.0
