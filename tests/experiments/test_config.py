"""Scenario configuration."""

import pytest

from repro.experiments.config import ScenarioConfig, default_max_speed_kmh
from repro.net.host import HelloConfig


def test_paper_default_speeds():
    """10 km/h on 1x1, 30 on 3x3, 50 on 5x5, ..."""
    assert default_max_speed_kmh(1) == 10.0
    assert default_max_speed_kmh(3) == 30.0
    assert default_max_speed_kmh(5) == 50.0
    assert default_max_speed_kmh(11) == 110.0


def test_resolved_speed_uses_map_default():
    assert ScenarioConfig(map_units=7).resolved_max_speed_kmh == 70.0
    assert ScenarioConfig(map_units=7, max_speed_kmh=20.0).resolved_max_speed_kmh == 20.0


def test_defaults_match_paper_setup():
    config = ScenarioConfig()
    assert config.num_hosts == 100
    assert config.unit_length == 500.0
    assert config.interarrival_max == 2.0
    assert config.phy.broadcast_payload_bytes == 280


def test_warmup_derivation():
    config = ScenarioConfig(hello=HelloConfig(interval=5.0))
    assert config.resolved_warmup(hello_enabled=True) == pytest.approx(11.0)
    assert config.resolved_warmup(hello_enabled=False) == pytest.approx(0.5)


def test_warmup_dynamic_uses_hi_max():
    config = ScenarioConfig(hello=HelloConfig(dynamic=True, hi_max=10.0))
    assert config.resolved_warmup(hello_enabled=True) == pytest.approx(21.0)


def test_warmup_override():
    config = ScenarioConfig(warmup=3.0)
    assert config.resolved_warmup(hello_enabled=True) == 3.0


def test_with_overrides():
    config = ScenarioConfig(map_units=5)
    changed = config.with_overrides(map_units=9, seed=7)
    assert changed.map_units == 9
    assert changed.seed == 7
    assert config.map_units == 5  # original untouched


def test_label_contains_identity():
    label = ScenarioConfig(scheme="counter", map_units=9, seed=3).label()
    assert "counter" in label and "9x9" in label and "seed3" in label


def test_validation():
    with pytest.raises(ValueError):
        ScenarioConfig(map_units=0)
    with pytest.raises(ValueError):
        ScenarioConfig(num_hosts=0)
    with pytest.raises(ValueError):
        ScenarioConfig(num_broadcasts=-1)
    with pytest.raises(ValueError):
        ScenarioConfig(interarrival_max=0.0)
    with pytest.raises(ValueError):
        ScenarioConfig(drain=-1.0)


def test_hello_config_validation():
    with pytest.raises(ValueError):
        HelloConfig(interval=0.0)
    with pytest.raises(ValueError):
        HelloConfig(dynamic=True, hi_min=5.0, hi_max=1.0)
