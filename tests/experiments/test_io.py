"""Result persistence."""

import json
import math

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.figures.common import FigureResult, SeriesPoint
from repro.experiments.io import (
    figure_result_from_dict,
    figure_result_to_csv,
    figure_result_to_dict,
    load_json,
    result_to_dict,
    save_json,
    write_figure_csv,
)
from repro.experiments.runner import run_broadcast_simulation


@pytest.fixture
def small_result():
    return run_broadcast_simulation(
        ScenarioConfig(scheme="flooding", map_units=3, num_hosts=15,
                       num_broadcasts=2, seed=9)
    )


@pytest.fixture
def figure():
    result = FigureResult("Fig. X", "map")
    result.add("a", SeriesPoint(x=1, re=0.95, srb=0.4, latency=0.02, hellos=7))
    result.add("a", SeriesPoint(x=5, re=0.9, srb=0.3, latency=0.03))
    result.add("b", SeriesPoint(x=1, re=0.8, srb=0.0, latency=0.05))
    return result


def test_result_to_dict_roundtrips_through_json(small_result):
    data = result_to_dict(small_result)
    encoded = json.dumps(data)
    decoded = json.loads(encoded)
    assert decoded["config"]["scheme"] == "flooding"
    assert decoded["metrics"]["broadcasts"] == 2
    assert decoded["channel"]["transmissions"] > 0


def test_result_dict_skips_unserializable_scheme_params():
    config = ScenarioConfig(
        scheme="adaptive-counter",
        scheme_params={"threshold_fn": lambda n: 2},
        map_units=1, num_hosts=5, num_broadcasts=1,
    )
    result = run_broadcast_simulation(config)
    data = result_to_dict(result)
    assert data["config"]["scheme_params"] == {}
    json.dumps(data)  # must not raise


def test_figure_result_json_roundtrip(figure):
    data = figure_result_to_dict(figure)
    rebuilt = figure_result_from_dict(json.loads(json.dumps(data)))
    assert rebuilt.figure == figure.figure
    assert rebuilt.series.keys() == figure.series.keys()
    assert rebuilt.value_at("a", 5, "srb") == 0.3
    assert rebuilt.series["a"][0].hellos == 7


def test_save_and_load_json(tmp_path, figure):
    path = tmp_path / "figure.json"
    save_json(figure_result_to_dict(figure), path)
    data = load_json(path)
    assert figure_result_from_dict(data).value_at("b", 1, "re") == 0.8


def test_csv_has_one_row_per_point(figure):
    text = figure_result_to_csv(figure)
    lines = text.strip().splitlines()
    assert len(lines) == 1 + 3  # header + 3 points
    assert lines[0].startswith("figure,series,map")
    assert "Fig. X,a,1,0.95" in lines[1]


def test_write_figure_csv(tmp_path, figure):
    path = tmp_path / "figure.csv"
    write_figure_csv(figure, path)
    assert path.read_text().count("\n") >= 4
