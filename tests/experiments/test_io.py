"""Result persistence."""

import json
import math

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.figures.common import FigureResult, SeriesPoint
from repro.experiments.io import (
    figure_result_from_dict,
    figure_result_to_csv,
    figure_result_to_dict,
    load_json,
    result_from_dict,
    result_to_dict,
    save_json,
    scenario_from_dict,
    scenario_to_dict,
    write_figure_csv,
)
from repro.experiments.parallel import ResultCache, config_digest
from repro.experiments.runner import run_broadcast_simulation


@pytest.fixture
def small_result():
    return run_broadcast_simulation(
        ScenarioConfig(scheme="flooding", map_units=3, num_hosts=15,
                       num_broadcasts=2, seed=9)
    )


@pytest.fixture
def figure():
    result = FigureResult("Fig. X", "map")
    result.add("a", SeriesPoint(x=1, re=0.95, srb=0.4, latency=0.02, hellos=7))
    result.add("a", SeriesPoint(x=5, re=0.9, srb=0.3, latency=0.03))
    result.add("b", SeriesPoint(x=1, re=0.8, srb=0.0, latency=0.05))
    return result


def test_result_to_dict_roundtrips_through_json(small_result):
    data = result_to_dict(small_result)
    encoded = json.dumps(data)
    decoded = json.loads(encoded)
    assert decoded["config"]["scheme"] == "flooding"
    assert decoded["metrics"]["broadcasts"] == 2
    assert decoded["channel"]["transmissions"] > 0


def test_result_dict_skips_unserializable_scheme_params():
    config = ScenarioConfig(
        scheme="adaptive-counter",
        scheme_params={"threshold_fn": lambda n: 2},
        map_units=1, num_hosts=5, num_broadcasts=1,
    )
    result = run_broadcast_simulation(config)
    data = result_to_dict(result)
    assert data["config"]["scheme_params"] == {}
    json.dumps(data)  # must not raise


def test_result_from_dict_is_a_fixed_point(small_result):
    """to_dict(from_dict(to_dict(r))) == to_dict(r): the rebuilt result
    carries everything the export format does."""
    data = result_to_dict(small_result)
    rebuilt = result_from_dict(json.loads(json.dumps(data)))
    assert result_to_dict(rebuilt) == data


def test_result_from_dict_rebuilds_headline_metrics(small_result):
    rebuilt = result_from_dict(result_to_dict(small_result))
    assert rebuilt.config.scheme == "flooding"
    assert rebuilt.config.seed == small_result.config.seed
    assert rebuilt.re == small_result.re
    assert rebuilt.srb == small_result.srb
    assert rebuilt.latency == small_result.latency
    assert rebuilt.stats.reachability == small_result.stats.reachability
    # Airtime totals survive under the sentinel host id.
    ch = rebuilt.channel_stats
    assert ch.total_tx_airtime == small_result.channel_stats.total_tx_airtime
    assert ch.total_rx_airtime == small_result.channel_stats.total_rx_airtime
    assert ch.transmissions == small_result.channel_stats.transmissions
    # Perf metadata survives too.
    assert rebuilt.perf == small_result.perf
    assert rebuilt.wall_time == small_result.wall_time
    assert rebuilt.events_per_sec == pytest.approx(
        small_result.events_per_sec
    )


def test_result_from_dict_accepts_legacy_means_only_dict():
    """Dicts written before the stats block existed load with the means
    as degenerate SummaryStats and NaN metrics dropped."""
    legacy = {
        "config": {
            "scheme": "flooding", "map_units": 1, "num_hosts": 5,
            "num_broadcasts": 4, "seed": 2,
        },
        "metrics": {
            "re": 0.9, "srb": math.nan, "latency": 0.01,
            "hellos": 3, "broadcasts": 4,
        },
        "end_time": 10.0,
        "events_processed": 123,
    }
    rebuilt = result_from_dict(legacy)
    assert rebuilt.re == 0.9
    assert rebuilt.stats.reachability.std == 0.0
    assert rebuilt.stats.reachability.count == 4
    assert math.isnan(rebuilt.srb)  # NaN mean -> stat dropped
    assert rebuilt.latency == 0.01
    # Fields the legacy dict predates come back at their defaults.
    assert rebuilt.backoffs_started == 0
    assert rebuilt.fault_trace == []
    assert rebuilt.broadcasts_skipped == 0
    assert rebuilt.perf is None
    assert rebuilt.from_cache is False


def test_result_cache_preserves_perf_metadata(tmp_path, small_result):
    """A cache round-trip keeps wall_time and the kernel counters, and
    marks the copy as cache-served."""
    cache = ResultCache(tmp_path)
    digest = config_digest(small_result.config)
    assert cache.get(digest) is None
    cache.put(digest, small_result)
    cached = cache.get(digest)
    assert cached is not None
    assert cached.from_cache is True
    assert small_result.from_cache is False  # original untouched
    assert cached.wall_time == small_result.wall_time
    assert cached.perf == small_result.perf
    assert cached.stats == small_result.stats
    assert result_to_dict(cached)["perf"]["from_cache"] is True


def test_figure_result_json_roundtrip(figure):
    data = figure_result_to_dict(figure)
    rebuilt = figure_result_from_dict(json.loads(json.dumps(data)))
    assert rebuilt.figure == figure.figure
    assert rebuilt.series.keys() == figure.series.keys()
    assert rebuilt.value_at("a", 5, "srb") == 0.3
    assert rebuilt.series["a"][0].hellos == 7


def test_save_and_load_json(tmp_path, figure):
    path = tmp_path / "figure.json"
    save_json(figure_result_to_dict(figure), path)
    data = load_json(path)
    assert figure_result_from_dict(data).value_at("b", 1, "re") == 0.8


def test_csv_has_one_row_per_point(figure):
    text = figure_result_to_csv(figure)
    lines = text.strip().splitlines()
    assert len(lines) == 1 + 3  # header + 3 points
    assert lines[0].startswith("figure,series,map")
    assert "Fig. X,a,1,0.95" in lines[1]


def test_write_figure_csv(tmp_path, figure):
    path = tmp_path / "figure.csv"
    write_figure_csv(figure, path)
    assert path.read_text().count("\n") >= 4


# ------------------------------------------------- scenario round trips


def full_scenario():
    from repro.faults.plan import FaultPlan
    from repro.net.host import HelloConfig

    return ScenarioConfig(
        scheme="counter",
        map_units=3,
        num_hosts=25,
        num_broadcasts=4,
        max_speed_kmh=30.0,
        seed=11,
        scheme_params={"threshold": 4},
        hello=HelloConfig(interval=0.7),
        faults=FaultPlan.parse("churn:rate=0.01,downtime=5"),
    )


def test_scenario_round_trip_preserves_digest():
    for config in (
        ScenarioConfig(scheme="flooding", map_units=1, num_hosts=10,
                       num_broadcasts=2, seed=3),
        full_scenario(),
    ):
        data = json.loads(json.dumps(scenario_to_dict(config)))
        again = scenario_from_dict(data)
        assert again == config
        assert config_digest(again) == config_digest(config)


def test_scenario_dict_omits_defaults():
    config = ScenarioConfig(scheme="flooding", map_units=1, num_hosts=10,
                            num_broadcasts=2, seed=3)
    data = scenario_to_dict(config)
    assert "hello" not in data
    assert "faults" not in data
    assert "scheme_params" not in data


def test_scenario_from_dict_accepts_fault_spec_string():
    config = scenario_from_dict({
        "scheme": "flooding", "map_units": 1, "num_hosts": 10,
        "num_broadcasts": 2, "seed": 3,
        "faults": "loss:p=0.1",
    })
    assert config.faults.loss is not None


def test_scenario_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown scenario field"):
        scenario_from_dict({"scheme": "flooding", "num_hostz": 10})


def test_scenario_to_dict_rejects_non_json_configs():
    from repro.phy.capture import CaptureModel

    with pytest.raises(ValueError, match="capture"):
        scenario_to_dict(ScenarioConfig(
            scheme="flooding", map_units=1, num_hosts=10, num_broadcasts=2,
            seed=3, capture=CaptureModel(),
        ))
    with pytest.raises(ValueError, match="not a JSON scalar"):
        scenario_to_dict(ScenarioConfig(
            scheme="counter", map_units=1, num_hosts=10, num_broadcasts=2,
            seed=3, scheme_params={"threshold_fn": lambda n: 3},
        ))
