"""Packet types.

A broadcast packet is identified network-wide by ``(source_id, seq)`` (the
paper's duplicate-detection tuple).  Every relayed copy carries the position
of the host that transmitted *that copy* -- this models the GPS assumption of
the location-based schemes (each rebroadcaster stamps its own coordinates
into the header).  Hosts without the location schemes simply ignore the
field.

HELLO packets announce existence; for the neighbor-coverage scheme they
piggyback the sender's one-hop neighbor set, and for the dynamic-hello-
interval scheme the sender's currently announced interval (the paper notes
the interval "should be appended to its HELLO packets").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Optional, Tuple

__all__ = ["PacketKey", "BroadcastPacket", "HelloPacket"]

PacketKey = Tuple[int, int]

_HELLO_BASE_BYTES = 20
_BYTES_PER_NEIGHBOR_ID = 4


@dataclass(frozen=True)
class BroadcastPacket:
    """One on-air copy of a broadcast packet.

    ``source_id``/``seq`` identify the logical broadcast; ``tx_id`` /
    ``tx_position`` describe the host transmitting this particular copy.
    """

    source_id: int
    seq: int
    origin_time: float
    tx_id: int
    tx_position: Optional[Tuple[float, float]]
    hops: int = 0
    size_bytes: int = 280

    @property
    def key(self) -> PacketKey:
        """Network-wide identity used for duplicate detection."""
        return (self.source_id, self.seq)

    def relayed_by(
        self, host_id: int, position: Optional[Tuple[float, float]]
    ) -> "BroadcastPacket":
        """The copy of this packet as rebroadcast by ``host_id``."""
        return replace(
            self, tx_id=host_id, tx_position=position, hops=self.hops + 1
        )


@dataclass(frozen=True)
class HelloPacket:
    """A periodic neighbor-announcement packet."""

    sender_id: int
    neighbor_ids: Optional[FrozenSet[int]] = None
    hello_interval: Optional[float] = None

    @property
    def size_bytes(self) -> int:
        """Wire size: base header plus 4 bytes per piggybacked neighbor id.

        The growing HELLO of the neighbor-coverage scheme therefore costs
        real airtime, as it would in a deployment.
        """
        extra = len(self.neighbor_ids) if self.neighbor_ids is not None else 0
        return _HELLO_BASE_BYTES + _BYTES_PER_NEIGHBOR_ID * extra
