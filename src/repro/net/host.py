"""The mobile host: mobility + MAC + scheme + hello protocol + metrics taps.

A :class:`MobileHost` implements two interfaces at once:

- :class:`repro.mac.csma.MacReceiver` -- frames coming up from the MAC are
  dispatched by type (HELLO -> neighbor table, broadcast -> duplicate check
  then scheme S1/S4).
- :class:`repro.schemes.base.SchemeHost` -- services the scheme calls down
  into (position, neighbor count, MAC submission, inhibit recording).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.mac.csma import CsmaCaMac, MacFrameHandle
from repro.metrics.collector import MetricsCollector
from repro.mobility.models import MobilityModel
from repro.net.dupcache import DuplicateCache
from repro.net.neighbors import NeighborTable, dynamic_hello_interval
from repro.net.packets import BroadcastPacket, HelloPacket, PacketKey
from repro.phy.channel import Channel
from repro.phy.params import PhyParams
from repro.schemes.base import RebroadcastScheme
from repro.sim.engine import Scheduler

__all__ = ["HelloConfig", "MobileHost"]


@dataclass(frozen=True)
class HelloConfig:
    """Hello-protocol settings.

    ``enabled=None`` means "whatever the scheme needs" (schemes declare
    ``needs_hello``).  With ``dynamic=True`` the interval follows the
    paper's DHI formula between ``hi_min`` and ``hi_max``; otherwise the
    fixed ``interval`` is used.  Paper defaults: interval 1 s, and for DHI
    ``nv_max = 0.02``, ``hi_min = 1 s``, ``hi_max = 10 s``.
    """

    enabled: Optional[bool] = None
    interval: float = 1.0
    dynamic: bool = False
    nv_max: float = 0.02
    hi_min: float = 1.0
    hi_max: float = 10.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"hello interval must be > 0, got {self.interval}")
        if self.dynamic and not 0 < self.hi_min <= self.hi_max:
            raise ValueError(
                f"need 0 < hi_min <= hi_max, got {self.hi_min}..{self.hi_max}"
            )

    def resolved_enabled(self, scheme: RebroadcastScheme) -> bool:
        if self.enabled is not None:
            return self.enabled
        return scheme.needs_hello


class MobileHost:
    """One cooperating mobile host."""

    #: This host's ``on_frame_corrupted`` is a no-op (see below), so the
    #: MAC skips the per-garbled-frame upcall entirely.
    handles_corrupted_frames = False

    __slots__ = (
        "host_id", "scheduler", "channel", "params", "mobility", "scheme",
        "metrics", "scheme_rng", "_hello_rng", "hello_config",
        "oracle_neighbors", "slot_time", "packet_observers",
        "unicast_handler", "dup_cache", "neighbor_table", "mac",
        "hello_enabled", "_hello_started", "_hello_event",
        "_hello_muted_until", "alive", "_pos_time", "_pos", "pos_hits",
        "pos_misses", "_airtime_cache", "trace", "position_store",
    )

    def __init__(
        self,
        host_id: int,
        scheduler: Scheduler,
        channel: Channel,
        params: PhyParams,
        mobility: MobilityModel,
        scheme: RebroadcastScheme,
        metrics: MetricsCollector,
        mac_rng: random.Random,
        scheme_rng: random.Random,
        hello_rng: random.Random,
        hello_config: Optional[HelloConfig] = None,
        oracle_neighbors: bool = False,
        trace: Optional[Any] = None,
        position_store: Optional[Any] = None,
    ) -> None:
        self.host_id = host_id
        self.scheduler = scheduler
        self.channel = channel
        self.params = params
        self.mobility = mobility
        self.scheme = scheme
        self.metrics = metrics
        self.scheme_rng = scheme_rng
        self._hello_rng = hello_rng
        self.hello_config = hello_config or HelloConfig()
        self.oracle_neighbors = oracle_neighbors
        #: Optional :class:`repro.trace.TraceRecorder`; ``None`` keeps
        #: every instrumentation site on this host's paths inert.
        self.trace = trace

        self.slot_time = params.slot_time
        #: Callbacks ``(packet, sender_id)`` invoked on the *first*
        #: successful reception of each broadcast packet (before the scheme
        #: runs S1).  The routing layer hooks reverse-route learning here.
        self.packet_observers: list = []
        #: Handler for unicast payloads addressed to this host (set by the
        #: routing agent); unhandled unicast payloads raise.
        self.unicast_handler = None
        self.dup_cache = DuplicateCache()
        self.neighbor_table = NeighborTable(
            default_interval=self.hello_config.interval
        )
        self.mac = CsmaCaMac(
            host_id, scheduler, channel, params, mac_rng, self, trace=trace
        )
        self.hello_enabled = self.hello_config.resolved_enabled(scheme)
        self._hello_started = False
        self._hello_event = None
        self._hello_muted_until = 0.0
        self.alive = True

        # Per-instant position memo: mobility position is a pure function
        # of time, but the channel and the schemes ask for it repeatedly at
        # the same timestamp (measured ~60% duplicate queries on the dense
        # scenario).  ``-1.0`` never equals a valid simulation time.
        self._pos_time = -1.0
        self._pos: Tuple[float, float] = (0.0, 0.0)
        self.pos_hits = 0
        self.pos_misses = 0
        #: Vector kernel only: the network-wide batched position arrays.
        #: When set, :meth:`position` reads through it (epoch cache, then
        #: the model itself) and the per-host memo above goes unused.
        self.position_store = position_store
        self._airtime_cache: dict = {}

        scheme.attach(self)

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Begin periodic activity (the hello protocol, if enabled).

        The first HELLO is desynchronized with a uniform offset in
        [0, interval) so 100 hosts do not all beacon at t = 0.
        """
        if self.hello_enabled and not self._hello_started:
            self._hello_started = True
            offset = self._hello_rng.uniform(0.0, self.hello_config.interval)
            self._hello_event = self.scheduler.schedule(offset, self._send_hello)

    def crash(self) -> None:
        """Go dark: radio off, all volatile protocol state lost.

        The MAC aborts any in-flight frame, flushes its queue and detaches
        from the channel; the hello timer stops; the neighbor table,
        duplicate cache and scheme state are wiped so a later
        :meth:`recover` comes back cold.  Mobility continues -- it is the
        radio that dies, not the vehicle carrying it.
        """
        if not self.alive:
            raise ValueError(f"host {self.host_id} is already crashed")
        self.alive = False
        self.mac.shutdown()
        if self._hello_event is not None:
            self._hello_event.cancel()
            self._hello_event = None
        self._hello_started = False
        self.neighbor_table = NeighborTable(
            default_interval=self.hello_config.interval
        )
        self.dup_cache.clear()
        self.scheme.reset()

    def recover(self) -> None:
        """Power back on after :meth:`crash`, with cold tables.

        The radio re-attaches to the channel and the hello protocol restarts
        with a fresh desynchronization offset; one- and two-hop knowledge
        must be relearned from scratch.
        """
        if self.alive:
            raise ValueError(f"host {self.host_id} is not crashed")
        self.alive = True
        self.mac.restart()
        self.start()

    def suppress_hellos(self, until: float) -> None:
        """Mute this host's HELLO transmissions until time ``until``.

        The hello timer keeps ticking (so the cadence is undisturbed once
        the mute lifts) but no packet goes on the air -- neighbors' tables
        go stale and age this host out after their timeout.
        """
        self._hello_muted_until = max(self._hello_muted_until, until)

    # ------------------------------------------------------- SchemeHost API

    def position(self) -> Tuple[float, float]:
        store = self.position_store
        if store is not None:
            return store.position_of(self.host_id, self.scheduler._now)
        now = self.scheduler._now
        if now == self._pos_time:
            self.pos_hits += 1
            return self._pos
        self.pos_misses += 1
        pos = self.mobility.position(now)
        self._pos_time = now
        self._pos = pos
        return pos

    def radio_radius(self) -> float:
        return self.params.radio_radius

    def neighbor_count(self) -> int:
        if self.oracle_neighbors:
            return len(self.channel.neighbors_in_range(self.host_id))
        return self.neighbor_table.neighbor_count(self.scheduler.now)

    def submit_rebroadcast(
        self, packet: BroadcastPacket, on_transmit_start
    ) -> MacFrameHandle:
        key = packet.key
        is_origin = packet.source_id == self.host_id and packet.hops == 0
        airtime = self._airtime_cache.get(packet.size_bytes)
        if airtime is None:
            airtime = self._airtime_cache[packet.size_bytes] = (
                self.params.airtime(packet.size_bytes)
            )

        def _started() -> None:
            end = self.scheduler.now + airtime
            if is_origin:
                self.scheduler.schedule(
                    airtime, self.metrics.on_source_tx_end, key, end
                )
            else:
                self.metrics.on_rebroadcast_start(key, self.host_id, self.scheduler.now)
                self.scheduler.schedule(
                    airtime, self.metrics.on_rebroadcast_end, key, self.host_id, end
                )
            if on_transmit_start is not None:
                on_transmit_start()

        return self.mac.send(packet, packet.size_bytes, _started)

    def record_inhibit(self, key: PacketKey) -> None:
        self.metrics.on_inhibit(key, self.host_id, self.scheduler.now)

    # ------------------------------------------------------------ broadcast

    def initiate_broadcast(self, seq: int) -> BroadcastPacket:
        """Originate a new broadcast (S0, so to speak).

        The caller (:class:`repro.net.network.Network`) is responsible for
        recording the connectivity snapshot first.
        """
        packet = BroadcastPacket(
            source_id=self.host_id,
            seq=seq,
            origin_time=self.scheduler.now,
            tx_id=self.host_id,
            tx_position=self.position() if self.scheme.needs_position else None,
            hops=0,
            size_bytes=self.params.broadcast_payload_bytes,
        )
        self.dup_cache.add(packet.key)
        self.scheme.on_originate(packet)
        return packet

    # -------------------------------------------------------- MacReceiver

    def on_frame_received(self, frame: Any, sender_id: int) -> None:
        if isinstance(frame, HelloPacket):
            self.neighbor_table.update_from_hello(frame, self.scheduler.now)
            return
        if isinstance(frame, BroadcastPacket):
            trace = self.trace
            if frame.key in self.dup_cache:
                if trace is not None:
                    trace.records.append((
                        self.scheduler._now, "dup", frame.source_id,
                        frame.seq, self.host_id, sender_id,
                    ))
                self.scheme.on_hear_again(frame, sender_id, frame.tx_position)
            else:
                self.dup_cache.add(frame.key)
                if trace is not None:
                    trace.records.append((
                        self.scheduler._now, "receive", frame.source_id,
                        frame.seq, self.host_id, sender_id,
                    ))
                self.metrics.on_receive(frame.key, self.host_id, self.scheduler.now)
                for observer in self.packet_observers:
                    observer(frame, sender_id)
                self.scheme.on_first_hear(frame, sender_id, frame.tx_position)
            return
        if self.unicast_handler is not None:
            self.unicast_handler(frame, sender_id)
            return
        raise TypeError(f"host {self.host_id} received unknown frame {frame!r}")

    def on_frame_corrupted(self, frame: Any, sender_id: int) -> None:
        # A garbled frame carries no decodable information; CSMA hosts only
        # observe the channel occupancy, which the MAC already accounted for.
        pass

    # -------------------------------------------------------------- hello

    def _send_hello(self) -> None:
        now = self.scheduler.now
        if now < self._hello_muted_until:
            # Fault injection: HELLO suppressed; keep the timer ticking.
            self._hello_event = self.scheduler.schedule(
                self.hello_config.interval, self._send_hello
            )
            return
        self.neighbor_table.purge(now)
        neighbor_ids = None
        if self.scheme.needs_two_hop_hello:
            neighbor_ids = self.neighbor_table.neighbor_frozenset()
        if self.hello_config.dynamic:
            interval = dynamic_hello_interval(
                self.neighbor_table.variation(now),
                nv_max=self.hello_config.nv_max,
                hi_min=self.hello_config.hi_min,
                hi_max=self.hello_config.hi_max,
            )
            announced: Optional[float] = interval
        else:
            interval = self.hello_config.interval
            announced = None
        hello = HelloPacket(
            sender_id=self.host_id,
            neighbor_ids=neighbor_ids,
            hello_interval=announced,
        )
        self.mac.send(hello, hello.size_bytes)
        self.metrics.on_hello_sent(self.host_id)
        self._hello_event = self.scheduler.schedule(interval, self._send_hello)
