"""Duplicate-broadcast detection.

"We assume that a host can detect duplicate broadcast packets ... by
associating with each broadcast packet a tuple (source ID, sequence number)"
(paper Section 2.1).  A plain set suffices functionally; this cache also
supports optional capacity bounding with FIFO eviction so multi-hour
simulations do not grow without bound.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional

__all__ = ["DuplicateCache"]


class DuplicateCache:
    """Remembers packet keys this host has already processed."""

    __slots__ = ("_capacity", "_seen")

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self._capacity = capacity
        self._seen: "OrderedDict[Hashable, None]" = OrderedDict()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._seen

    def __len__(self) -> int:
        return len(self._seen)

    def add(self, key: Hashable) -> bool:
        """Record ``key``.  Returns ``True`` if it was new."""
        if key in self._seen:
            return False
        self._seen[key] = None
        if self._capacity is not None and len(self._seen) > self._capacity:
            self._seen.popitem(last=False)
        return True

    def check_and_add(self, key: Hashable) -> bool:
        """Alias of :meth:`add`, named for call-site readability."""
        return self.add(key)

    def clear(self) -> None:
        self._seen.clear()
