"""Network layer: packets, hosts, neighbor discovery, connectivity.

- :mod:`repro.net.packets` -- broadcast data packets (tagged with
  ``(source ID, sequence number)`` for duplicate detection, as in DSR/AODV)
  and HELLO packets (optionally carrying the sender's neighbor list for the
  neighbor-coverage scheme and its announced hello interval for DHI).
- :mod:`repro.net.dupcache` -- the duplicate-broadcast detector.
- :mod:`repro.net.neighbors` -- per-host neighbor tables built from HELLOs,
  two-hop knowledge, neighborhood-variation tracking and the paper's
  dynamic hello interval formula.
- :mod:`repro.net.host` -- the mobile host tying mobility, MAC, scheme and
  hello protocol together.
- :mod:`repro.net.network` -- the world: builds all hosts over one channel
  and provides connectivity snapshots (the ``e`` in RE).
"""

from repro.net.dupcache import DuplicateCache
from repro.net.host import HelloConfig, MobileHost
from repro.net.neighbors import NeighborEntry, NeighborTable, dynamic_hello_interval
from repro.net.network import Network
from repro.net.packets import BroadcastPacket, HelloPacket, PacketKey

__all__ = [
    "BroadcastPacket",
    "HelloPacket",
    "PacketKey",
    "DuplicateCache",
    "NeighborTable",
    "NeighborEntry",
    "dynamic_hello_interval",
    "MobileHost",
    "HelloConfig",
    "Network",
]
