"""The simulated world: all hosts over one shared channel."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.kernel import resolve_kernel
from repro.metrics.collector import MetricsCollector
from repro.metrics.connectivity import reachable_set
from repro.mobility.map import RectMap
from repro.mobility.models import MobilityModel, kmh_to_ms, make_mobility
from repro.net.host import HelloConfig, MobileHost
from repro.net.packets import BroadcastPacket
from repro.phy.capture import CaptureModel
from repro.phy.channel import Channel
from repro.phy.params import PhyParams
from repro.schemes.base import RebroadcastScheme
from repro.sim.engine import Scheduler
from repro.sim.randomness import RandomStreams

__all__ = ["Network"]


class Network:
    """Builds and owns the hosts, channel and connectivity snapshots.

    Host ids are ``0 .. num_hosts - 1``.  Each host gets independent random
    substreams for mobility, MAC backoff, scheme jitter and hello
    desynchronization, so comparisons across schemes with the same master
    seed share identical mobility traces.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        params: PhyParams,
        world: RectMap,
        streams: RandomStreams,
        num_hosts: int,
        scheme_factory: Callable[[], RebroadcastScheme],
        metrics: MetricsCollector,
        max_speed_kmh: float,
        mobility: str = "random-direction",
        hello_config: Optional[HelloConfig] = None,
        oracle_neighbors: bool = False,
        drop_predicate: Optional[Callable[[int, int], bool]] = None,
        mobility_factory: Optional[Callable[[int], "MobilityModel"]] = None,
        capture: Optional["CaptureModel"] = None,
        trace: Optional[Any] = None,
        kernel: Optional[str] = None,
        position_buffers: Optional[Any] = None,
    ) -> None:
        if num_hosts < 1:
            raise ValueError(f"need at least one host, got {num_hosts}")
        self.scheduler = scheduler
        self.params = params
        self.world = world
        self.metrics = metrics
        self.trace = trace
        self.hosts: List[MobileHost] = []
        # A custom mobility_factory gives no speed guarantee, so the
        # channel's spatial index stays off (full scans); the built-in
        # models are bounded by max_speed_kmh (exactly 0 for "static").
        if mobility_factory is not None:
            speed_bound = None
        elif mobility == "static":
            speed_bound = 0.0
        else:
            speed_bound = kmh_to_ms(max_speed_kmh)

        # All mobility models are built before the channel so the vector
        # kernel can mirror them into a PositionStore.  Stream creation
        # order (mobility/0, mobility/1, ...) is unchanged.
        models: List[MobilityModel] = []
        for host_id in range(num_hosts):
            if mobility_factory is not None:
                # Tests and topology-controlled experiments supply exact
                # per-host mobility (e.g. static line / grid layouts).
                models.append(mobility_factory(host_id))
            else:
                models.append(
                    make_mobility(
                        mobility,
                        world,
                        streams.stream(f"mobility/{host_id}"),
                        max_speed_kmh,
                    )
                )

        # Kernel selection (see repro.kernel).  A custom mobility_factory
        # forces the scalar path even under "vector": its models may share
        # RNG state across hosts, which batched advancement would reorder.
        # A capture model does too: capture breaks the single-clean-slot
        # invariant the channel's array reception state relies on.
        store = None
        if (
            resolve_kernel(kernel) == "vector"
            and mobility_factory is None
            and capture is None
        ):
            from repro.mobility.store import PositionStore

            store = PositionStore(models, world, buffers=position_buffers)
        #: The vector kernel's batched position arrays (``None`` on the
        #: scalar path).
        self.position_store = store
        #: The kernel actually running: ``"scalar"`` or ``"vector"``.
        self.kernel = "scalar" if store is None else "vector"

        self.channel = Channel(
            scheduler, params, self._position_of, drop_predicate,
            capture=capture, max_speed_ms=speed_bound, trace=trace,
            position_store=store,
        )
        self._seq = 0

        for host_id in range(num_hosts):
            host = MobileHost(
                host_id=host_id,
                position_store=store,
                scheduler=scheduler,
                channel=self.channel,
                params=params,
                mobility=models[host_id],
                scheme=scheme_factory(),
                metrics=metrics,
                mac_rng=streams.stream(f"mac/{host_id}"),
                scheme_rng=streams.stream(f"scheme/{host_id}"),
                hello_rng=streams.stream(f"hello/{host_id}"),
                hello_config=hello_config,
                oracle_neighbors=oracle_neighbors,
                trace=trace,
            )
            self.hosts.append(host)

    def _position_of(self, host_id: int) -> Tuple[float, float]:
        # The host's per-instant memo (see MobileHost.position), inlined:
        # this is the channel's position callback, invoked once per
        # (candidate receiver, transmission) -- the single hottest call
        # path in a dense broadcast storm.
        host = self.hosts[host_id]
        now = host.scheduler._now
        if now == host._pos_time:
            host.pos_hits += 1
            return host._pos
        host.pos_misses += 1
        pos = host.mobility.position(now)
        host._pos_time = now
        host._pos = pos
        return pos

    # ------------------------------------------------------------- queries

    def positions(self) -> Dict[int, Tuple[float, float]]:
        """Snapshot of all host positions at the current time."""
        store = self.position_store
        if store is not None:
            xs, ys = store.arrays_at(self.scheduler._now)
            return {
                h.host_id: (float(xs[h.host_id]), float(ys[h.host_id]))
                for h in self.hosts
            }
        return {h.host_id: h.position() for h in self.hosts}

    def alive_ids(self) -> Set[int]:
        """Hosts whose radios are currently up."""
        return {h.host_id for h in self.hosts if h.alive}

    def alive_positions(self) -> Dict[int, Tuple[float, float]]:
        """Positions of alive hosts only (crashed radios cannot relay)."""
        store = self.position_store
        if store is not None:
            # One batched epoch instead of n single-host reads: the
            # connectivity snapshot queries every host at one instant.
            xs, ys = store.arrays_at(self.scheduler._now)
            return {
                h.host_id: (float(xs[h.host_id]), float(ys[h.host_id]))
                for h in self.hosts
                if h.alive
            }
        return {h.host_id: h.position() for h in self.hosts if h.alive}

    def reachable_from(self, source_id: int) -> Set[int]:
        """Alive hosts currently reachable from ``source_id`` via alive
        relays (source excluded).

        Crashed hosts are excluded both as destinations and as relays, so
        the ``e`` of RE measures what is *physically attainable* at
        initiation time -- the graceful-degradation denominator.
        """
        return reachable_set(
            self.alive_positions(), source_id, self.params.radio_radius
        )

    # ----------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Start periodic host activity (hello protocols)."""
        for host in self.hosts:
            host.start()

    def crash_host(self, host_id: int) -> None:
        """Crash ``host_id`` (see :meth:`MobileHost.crash`)."""
        if not 0 <= host_id < len(self.hosts):
            raise ValueError(f"no such host {host_id}")
        self.hosts[host_id].crash()
        self.metrics.on_host_crash(host_id, self.scheduler.now)

    def recover_host(self, host_id: int) -> None:
        """Recover a crashed ``host_id`` with cold protocol state."""
        if not 0 <= host_id < len(self.hosts):
            raise ValueError(f"no such host {host_id}")
        self.hosts[host_id].recover()
        self.metrics.on_host_recover(host_id, self.scheduler.now)

    def initiate_broadcast(self, source_id: int) -> BroadcastPacket:
        """Originate a broadcast at ``source_id``, recording the snapshot.

        Takes the connectivity snapshot (the ``e`` of RE) at this instant,
        then hands the packet to the source's scheme.
        """
        if not 0 <= source_id < len(self.hosts):
            raise ValueError(f"no such host {source_id}")
        if not self.hosts[source_id].alive:
            raise ValueError(f"host {source_id} is crashed")
        reachable = self.reachable_from(source_id)
        self._seq += 1
        seq = self._seq
        source = self.hosts[source_id]
        key = (source_id, seq)
        self.metrics.on_originate(
            key,
            source_id,
            self.scheduler.now,
            len(reachable),
            reachable_set=frozenset(reachable),
        )
        if self.trace is not None:
            self.trace.records.append(
                (self.scheduler._now, "originate", source_id, seq, source_id)
            )
        packet = source.initiate_broadcast(seq)
        assert packet.key == key
        return packet
