"""Neighbor tables, two-hop knowledge, and the dynamic hello interval.

One-hop discovery (paper Section 4.3): "A host x enlists another host h as
its one-hop neighbor when a HELLO is received from h.  If no HELLO has been
received from h for the past two hello intervals, host x deletes h as its
one-hop neighbor."  With the dynamic-hello-interval scheme each host
announces its own interval inside the HELLO, so the timeout applied to a
neighbor is two of *that neighbor's* announced intervals.

Two-hop knowledge for the neighbor-coverage scheme: HELLOs piggyback the
sender's neighbor set ``N_h``; the receiver stores it as ``N_{x,h}``.

Neighborhood variation (Section 4.3)::

    nv_x = (#hosts joining or leaving N_x in the past 10 s) / (|N_x| * 10)

Dynamic hello interval::

    hi_x = max(hi_min, (nv_max - nv_x) / nv_max * hi_max)
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.net.packets import HelloPacket

__all__ = [
    "NeighborEntry",
    "NeighborTable",
    "dynamic_hello_interval",
    "DEFAULT_NV_WINDOW",
]

DEFAULT_NV_WINDOW = 10.0


class NeighborEntry:
    """What host x knows about one neighbor h (a ``__slots__`` class)."""

    __slots__ = (
        "host_id", "last_heard", "announced_interval", "neighbor_ids",
        "expiry",
    )

    def __init__(
        self,
        host_id: int,
        last_heard: float,
        announced_interval: float,
        neighbor_ids: FrozenSet[int] = frozenset(),
        expiry: float = 0.0,
    ) -> None:
        self.host_id = host_id
        self.last_heard = last_heard
        self.announced_interval = announced_interval
        self.neighbor_ids = neighbor_ids  # N_{x,h}: h's announced neighbors
        #: ``last_heard + timeout_multiplier * announced_interval``; the
        #: entry is stale strictly after this instant.
        self.expiry = expiry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NeighborEntry(host_id={self.host_id}, "
            f"last_heard={self.last_heard}, "
            f"announced_interval={self.announced_interval}, "
            f"neighbor_ids={self.neighbor_ids!r}, expiry={self.expiry})"
        )


class NeighborTable:
    """Host-local neighbor knowledge built from received HELLOs.

    Expiry is tracked lazily through a min-heap of ``(expiry, host_id)``
    records: every HELLO pushes the entry's new expiry, and :meth:`purge`
    only inspects records that have come due instead of scanning the whole
    table.  A popped record whose entry has since been refreshed (its
    current ``expiry`` is still in the future) is simply discarded -- the
    refresh pushed a newer record.  The observable drop set is exactly the
    seed's ``now - last_heard > timeout`` rule.
    """

    __slots__ = (
        "_default_interval", "_timeout_multiplier", "_variation_window",
        "_entries", "_changes", "_expiry_heap", "_frozen",
        "hello_updates", "expirations",
    )

    def __init__(
        self,
        default_interval: float,
        timeout_multiplier: float = 2.0,
        variation_window: float = DEFAULT_NV_WINDOW,
    ) -> None:
        if default_interval <= 0:
            raise ValueError(f"default_interval must be > 0, got {default_interval}")
        if timeout_multiplier <= 0:
            raise ValueError(
                f"timeout_multiplier must be > 0, got {timeout_multiplier}"
            )
        self._default_interval = default_interval
        self._timeout_multiplier = timeout_multiplier
        self._variation_window = variation_window
        self._entries: Dict[int, NeighborEntry] = {}
        # (time, host_id) of join/leave events, pruned to the window.
        self._changes: Deque[Tuple[float, int]] = deque()
        # Lazy expiry records; may hold stale husks for refreshed entries.
        self._expiry_heap: List[Tuple[float, int]] = []
        # Cached frozenset(N_x); invalidated on join/leave, not on refresh.
        self._frozen: Optional[FrozenSet[int]] = None
        #: Perf counters (see repro.perf): HELLOs absorbed / entries expired.
        self.hello_updates = 0
        self.expirations = 0

    # ----------------------------------------------------------- updates

    def update_from_hello(self, hello: HelloPacket, now: float) -> None:
        """Process a received HELLO packet."""
        self.hello_updates += 1
        interval = (
            hello.hello_interval
            if hello.hello_interval is not None
            else self._default_interval
        )
        expiry = now + self._timeout_multiplier * interval
        entry = self._entries.get(hello.sender_id)
        if entry is None:
            self._entries[hello.sender_id] = NeighborEntry(
                host_id=hello.sender_id,
                last_heard=now,
                announced_interval=interval,
                neighbor_ids=hello.neighbor_ids or frozenset(),
                expiry=expiry,
            )
            self._changes.append((now, hello.sender_id))
            self._frozen = None
        else:
            entry.last_heard = now
            entry.announced_interval = interval
            entry.expiry = expiry
            if hello.neighbor_ids is not None:
                entry.neighbor_ids = hello.neighbor_ids
        heapq.heappush(self._expiry_heap, (expiry, hello.sender_id))

    def purge(self, now: float) -> Set[int]:
        """Drop neighbors not heard within their timeout; returns the dropped ids."""
        dropped: Set[int] = set()
        heap = self._expiry_heap
        if not heap or heap[0][0] >= now:
            return dropped
        entries = self._entries
        changes = self._changes
        heappop = heapq.heappop
        while heap and heap[0][0] < now:
            _, host_id = heappop(heap)
            entry = entries.get(host_id)
            # Stale husk: the entry was refreshed (newer record pending)
            # or already dropped via an earlier record.
            if entry is None or entry.expiry >= now:
                continue
            del entries[host_id]
            dropped.add(host_id)
            changes.append((now, host_id))
        if dropped:
            self._frozen = None
            self.expirations += len(dropped)
        return dropped

    # ----------------------------------------------------------- queries

    def neighbor_ids(self, now: Optional[float] = None) -> Set[int]:
        """Current one-hop neighbor set ``N_x`` (purged first if ``now`` given)."""
        if now is not None:
            self.purge(now)
        return set(self._entries)

    def neighbor_frozenset(self, now: Optional[float] = None) -> FrozenSet[int]:
        """``frozenset(N_x)``, cached across calls until membership changes.

        HELLO piggybacking asks for this set once per HELLO; rebuilding it
        only when a neighbor joined or expired makes the steady-state cost
        O(1) instead of O(|N_x|).
        """
        if now is not None:
            self.purge(now)
        frozen = self._frozen
        if frozen is None:
            frozen = self._frozen = frozenset(self._entries)
        return frozen

    def neighbor_count(self, now: Optional[float] = None) -> int:
        """``n = |N_x|``, the input to the adaptive threshold functions."""
        if now is not None:
            self.purge(now)
        return len(self._entries)

    def two_hop_neighbors(self, host_id: int) -> FrozenSet[int]:
        """``N_{x,h}``: the neighbor set ``h`` announced, empty if unknown."""
        entry = self._entries.get(host_id)
        return entry.neighbor_ids if entry is not None else frozenset()

    def knows(self, host_id: int) -> bool:
        return host_id in self._entries

    def variation(self, now: float) -> float:
        """The paper's ``nv_x`` over the past ``variation_window`` seconds.

        The denominator uses ``max(|N_x|, 1)`` to keep the value defined for
        an isolated host (the paper's formula assumes a non-empty
        neighborhood).
        """
        self.purge(now)
        cutoff = now - self._variation_window
        while self._changes and self._changes[0][0] < cutoff:
            self._changes.popleft()
        denom = max(len(self._entries), 1) * self._variation_window
        return len(self._changes) / denom


def dynamic_hello_interval(
    variation: float,
    nv_max: float = 0.02,
    hi_min: float = 1.0,
    hi_max: float = 10.0,
) -> float:
    """The paper's DHI formula: ``max(hi_min, (nv_max - nv)/nv_max * hi_max)``.

    Variation at or above ``nv_max`` maps to ``hi_min``; zero variation maps
    to ``hi_max``.  Defaults are the paper's simulation values
    (``nv_max = 0.02``, ``hi_min = 1 s``, ``hi_max = 10 s``).
    """
    if nv_max <= 0:
        raise ValueError(f"nv_max must be > 0, got {nv_max}")
    if not 0 < hi_min <= hi_max:
        raise ValueError(f"need 0 < hi_min <= hi_max, got {hi_min}..{hi_max}")
    scaled = (nv_max - variation) / nv_max * hi_max
    return max(hi_min, scaled)
