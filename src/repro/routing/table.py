"""Per-host route table with expiry and invalidation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["RouteEntry", "RouteTable", "DEFAULT_ROUTE_LIFETIME"]

DEFAULT_ROUTE_LIFETIME = 10.0


@dataclass
class RouteEntry:
    """Next hop toward a destination."""

    dest_id: int
    next_hop: int
    hop_count: int
    expires_at: float


class RouteTable:
    """Destination -> next-hop mapping with soft-state expiry.

    Updates keep the better route: a fresher entry replaces an expired one,
    and among live entries the shorter hop count wins (ties refresh the
    lifetime).
    """

    def __init__(self, lifetime: float = DEFAULT_ROUTE_LIFETIME) -> None:
        if lifetime <= 0:
            raise ValueError(f"lifetime must be > 0, got {lifetime}")
        self._lifetime = lifetime
        self._entries: Dict[int, RouteEntry] = {}

    def update(
        self, dest_id: int, next_hop: int, hop_count: int, now: float
    ) -> bool:
        """Offer a route; returns True if the table changed."""
        if hop_count < 1:
            raise ValueError(f"hop_count must be >= 1, got {hop_count}")
        current = self.lookup(dest_id, now)
        if current is not None and current.hop_count < hop_count:
            return False
        self._entries[dest_id] = RouteEntry(
            dest_id=dest_id,
            next_hop=next_hop,
            hop_count=hop_count,
            expires_at=now + self._lifetime,
        )
        return True

    def lookup(self, dest_id: int, now: float) -> Optional[RouteEntry]:
        """The live entry for ``dest_id``, or None (expired entries drop)."""
        entry = self._entries.get(dest_id)
        if entry is None:
            return None
        if entry.expires_at <= now:
            del self._entries[dest_id]
            return None
        return entry

    def refresh(self, dest_id: int, now: float) -> None:
        """Extend the lifetime of a route that just carried traffic."""
        entry = self._entries.get(dest_id)
        if entry is not None and entry.expires_at > now:
            entry.expires_at = now + self._lifetime

    def invalidate(self, dest_id: int) -> bool:
        """Drop the route (e.g. after a forwarding failure)."""
        return self._entries.pop(dest_id, None) is not None

    def invalidate_via(self, next_hop: int) -> int:
        """Drop every route through a broken next hop; returns the count."""
        broken = [
            dest for dest, entry in self._entries.items()
            if entry.next_hop == next_hop
        ]
        for dest in broken:
            del self._entries[dest]
        return len(broken)

    def known_destinations(self, now: float) -> Dict[int, RouteEntry]:
        """All live entries (purging expired ones)."""
        for dest in list(self._entries):
            self.lookup(dest, now)
        return dict(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
