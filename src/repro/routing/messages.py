"""Routing-protocol messages.

A :class:`RouteRequest` *is a* :class:`~repro.net.packets.BroadcastPacket`,
so the host's configured rebroadcast scheme (flooding, counter, adaptive,
neighbor coverage, ...) propagates it unchanged -- the integration point the
paper's introduction describes.  Sequence numbers for RREQs live in a
dedicated high range so they can never collide with the experiment
harness's data-broadcast keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.net.packets import BroadcastPacket

__all__ = ["RouteRequest", "RouteReply", "DataPacket", "RREQ_SEQ_BASE"]

#: RREQ sequence numbers start here (see module docstring).
RREQ_SEQ_BASE = 1_000_000_000


@dataclass(frozen=True)
class RouteRequest(BroadcastPacket):
    """A flooded route request: "who can reach ``target_id``?"."""

    target_id: int = -1
    size_bytes: int = 64  # small control packet, not the 280 B data payload

    def __post_init__(self) -> None:
        if self.target_id == self.source_id:
            raise ValueError("route request targeting its own originator")


@dataclass(frozen=True)
class RouteReply:
    """Unicast reply hopping back along the reverse route.

    ``origin_id`` is the RREQ's originator (where the reply is going);
    ``target_id`` is the discovered destination (where it came from);
    ``hop_count`` counts hops from the target, incremented per relay.
    """

    origin_id: int
    target_id: int
    request_seq: int
    hop_count: int
    size_bytes: int = 44

    def forwarded(self) -> "RouteReply":
        """The copy sent one hop closer to the originator."""
        return RouteReply(
            origin_id=self.origin_id,
            target_id=self.target_id,
            request_seq=self.request_seq,
            hop_count=self.hop_count + 1,
            size_bytes=self.size_bytes,
        )


@dataclass(frozen=True)
class DataPacket:
    """An application payload forwarded hop-by-hop along a route."""

    origin_id: int
    dest_id: int
    seq: int
    payload: Any = None
    size_bytes: int = 280
