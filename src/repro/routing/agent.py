"""The per-host routing agent (AODV-lite).

Protocol summary:

- **Discovery**: the originator floods a :class:`RouteRequest` through its
  host's configured broadcast scheme.  Every host that first-hears the RREQ
  learns a *reverse route* (next hop = the neighbor it heard the copy
  from).  The target answers with a unicast :class:`RouteReply`; each relay
  of the RREP installs a *forward route* to the target and passes the RREP
  one hop toward the originator along its reverse route.
- **Forwarding**: data packets hop through the acknowledged unicast MAC;
  a per-hop ACK failure invalidates every route through that next hop.
- **Re-discovery**: data with no route is queued; discovery retries up to
  ``max_discovery_attempts`` with timeout ``discovery_timeout`` before the
  queued packets are failed.

End-to-end semantics: the originator's ``on_result`` callback reports the
*local* outcome (handed to the first hop and ACKed, or discovery/forward
failure).  True end-to-end delivery is observable at the destination agent
(``stats.data_delivered`` / ``received``), which is what the tests and
benches aggregate -- a MANET source genuinely cannot know more without an
end-to-end acknowledgement layer, which is out of scope here as it is in
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.host import MobileHost
from repro.net.network import Network
from repro.net.packets import BroadcastPacket
from repro.routing.messages import (
    RREQ_SEQ_BASE,
    DataPacket,
    RouteReply,
    RouteRequest,
)
from repro.routing.table import DEFAULT_ROUTE_LIFETIME, RouteTable
from repro.sim.engine import Event

__all__ = ["RoutingAgent", "RoutingStats", "attach_agents"]

ResultCallback = Callable[[bool], None]


@dataclass
class RoutingStats:
    """Per-agent protocol counters."""

    rreqs_originated: int = 0
    rreps_originated: int = 0
    rreps_forwarded: int = 0
    rreps_dropped: int = 0  # no reverse route to forward along
    routes_discovered: int = 0
    discovery_failures: int = 0
    data_sent: int = 0
    data_forwarded: int = 0
    data_delivered: int = 0
    data_failed: int = 0
    forward_failures: int = 0  # per-hop ACK failures observed here


class _PendingDiscovery:
    __slots__ = ("queue", "attempts", "timeout_event")

    def __init__(self) -> None:
        self.queue: List[Tuple[DataPacket, Optional[ResultCallback]]] = []
        self.attempts = 0
        self.timeout_event: Optional[Event] = None


class RoutingAgent:
    """Attach one per host: ``RoutingAgent(host)``."""

    def __init__(
        self,
        host: MobileHost,
        discovery_timeout: float = 1.0,
        max_discovery_attempts: int = 2,
        route_lifetime: float = DEFAULT_ROUTE_LIFETIME,
    ) -> None:
        if discovery_timeout <= 0:
            raise ValueError(f"discovery_timeout must be > 0, got {discovery_timeout}")
        if max_discovery_attempts < 1:
            raise ValueError(
                f"max_discovery_attempts must be >= 1, got {max_discovery_attempts}"
            )
        self.host = host
        self.table = RouteTable(route_lifetime)
        self.stats = RoutingStats()
        #: Payloads delivered to this host as the final destination.
        self.received: List[DataPacket] = []
        self._discovery_timeout = discovery_timeout
        self._max_discovery_attempts = max_discovery_attempts
        self._rreq_seq = RREQ_SEQ_BASE
        self._data_seq = 0
        self._pending: Dict[int, _PendingDiscovery] = {}

        host.packet_observers.append(self._on_broadcast)
        if host.unicast_handler is not None:
            raise RuntimeError(f"host {host.host_id} already has a unicast handler")
        host.unicast_handler = self._on_unicast

    # ------------------------------------------------------------- sending

    def send_data(
        self,
        dest_id: int,
        payload: Any = None,
        on_result: Optional[ResultCallback] = None,
    ) -> DataPacket:
        """Send ``payload`` toward ``dest_id``, discovering a route if needed.

        ``on_result(ok)`` reports the local outcome (see module docstring).
        """
        if dest_id == self.host.host_id:
            raise ValueError("sending data to self")
        self._data_seq += 1
        packet = DataPacket(
            origin_id=self.host.host_id,
            dest_id=dest_id,
            seq=self._data_seq,
            payload=payload,
        )
        self.stats.data_sent += 1
        now = self.host.scheduler.now
        route = self.table.lookup(dest_id, now)
        if route is not None:
            self._forward(packet, on_result)
        else:
            self._enqueue_for_discovery(packet, on_result)
        return packet

    def has_route(self, dest_id: int) -> bool:
        return self.table.lookup(dest_id, self.host.scheduler.now) is not None

    # ----------------------------------------------------------- discovery

    def _enqueue_for_discovery(
        self, packet: DataPacket, on_result: Optional[ResultCallback]
    ) -> None:
        pending = self._pending.get(packet.dest_id)
        if pending is None:
            pending = _PendingDiscovery()
            self._pending[packet.dest_id] = pending
            pending.queue.append((packet, on_result))
            self._issue_rreq(packet.dest_id)
        else:
            pending.queue.append((packet, on_result))

    def _issue_rreq(self, dest_id: int) -> None:
        pending = self._pending[dest_id]
        pending.attempts += 1
        self._rreq_seq += 1
        host = self.host
        rreq = RouteRequest(
            source_id=host.host_id,
            seq=self._rreq_seq,
            origin_time=host.scheduler.now,
            tx_id=host.host_id,
            tx_position=(
                host.position() if host.scheme.needs_position else None
            ),
            hops=0,
            target_id=dest_id,
        )
        host.dup_cache.add(rreq.key)
        self.stats.rreqs_originated += 1
        host.scheme.on_originate(rreq)
        pending.timeout_event = host.scheduler.schedule(
            self._discovery_timeout, self._on_discovery_timeout, dest_id
        )

    def _on_discovery_timeout(self, dest_id: int) -> None:
        pending = self._pending.get(dest_id)
        if pending is None:
            return
        pending.timeout_event = None
        if self.has_route(dest_id):
            self._flush_pending(dest_id)
            return
        if pending.attempts < self._max_discovery_attempts:
            self._issue_rreq(dest_id)
            return
        del self._pending[dest_id]
        self.stats.discovery_failures += 1
        for packet, on_result in pending.queue:
            self.stats.data_failed += 1
            if on_result is not None:
                on_result(False)

    def _flush_pending(self, dest_id: int) -> None:
        pending = self._pending.pop(dest_id, None)
        if pending is None:
            return
        if pending.timeout_event is not None:
            pending.timeout_event.cancel()
        for packet, on_result in pending.queue:
            self._forward(packet, on_result)

    # ------------------------------------------------------ packet hooks

    def _on_broadcast(self, packet: BroadcastPacket, sender_id: int) -> None:
        if not isinstance(packet, RouteRequest):
            return
        now = self.host.scheduler.now
        # Reverse route toward the originator through whoever relayed this.
        self.table.update(
            packet.source_id, next_hop=sender_id, hop_count=packet.hops + 1,
            now=now,
        )
        if packet.target_id == self.host.host_id:
            self.stats.rreps_originated += 1
            self._send_reply(
                RouteReply(
                    origin_id=packet.source_id,
                    target_id=self.host.host_id,
                    request_seq=packet.seq,
                    hop_count=0,
                )
            )

    def _on_unicast(self, frame: Any, sender_id: int) -> None:
        now = self.host.scheduler.now
        if isinstance(frame, RouteReply):
            # Forward route to the discovered target through the sender.
            self.table.update(
                frame.target_id, next_hop=sender_id,
                hop_count=frame.hop_count + 1, now=now,
            )
            if frame.origin_id == self.host.host_id:
                self.stats.routes_discovered += 1
                self._flush_pending(frame.target_id)
            else:
                self.stats.rreps_forwarded += 1
                self._send_reply(frame.forwarded())
            return
        if isinstance(frame, DataPacket):
            if frame.dest_id == self.host.host_id:
                self.stats.data_delivered += 1
                self.received.append(frame)
            else:
                self.stats.data_forwarded += 1
                self._forward(frame, None)
            return
        raise TypeError(
            f"routing agent at host {self.host.host_id} got unknown unicast "
            f"{frame!r}"
        )

    # ---------------------------------------------------------- forwarding

    def _send_reply(self, reply: RouteReply) -> None:
        route = self.table.lookup(reply.origin_id, self.host.scheduler.now)
        if route is None:
            self.stats.rreps_dropped += 1
            return

        def done(ok: bool) -> None:
            if not ok:
                self.stats.forward_failures += 1
                self.table.invalidate_via(route.next_hop)

        self.host.mac.send_unicast(
            reply, reply.size_bytes, route.next_hop, on_complete=done
        )

    def _forward(
        self, packet: DataPacket, on_result: Optional[ResultCallback]
    ) -> None:
        now = self.host.scheduler.now
        route = self.table.lookup(packet.dest_id, now)
        if route is None:
            # Route evaporated between queueing and sending.
            self.stats.data_failed += 1
            if on_result is not None:
                on_result(False)
            return

        def done(ok: bool) -> None:
            if ok:
                self.table.refresh(packet.dest_id, self.host.scheduler.now)
            else:
                self.stats.forward_failures += 1
                self.table.invalidate_via(route.next_hop)
                if on_result is None:
                    self.stats.data_failed += 1
            if on_result is not None:
                if not ok:
                    self.stats.data_failed += 1
                on_result(ok)

        self.host.mac.send_unicast(
            packet, packet.size_bytes, route.next_hop, on_complete=done
        )


def attach_agents(network: Network, **agent_kwargs: Any) -> Dict[int, RoutingAgent]:
    """Create one :class:`RoutingAgent` per host of ``network``."""
    return {
        host.host_id: RoutingAgent(host, **agent_kwargs)
        for host in network.hosts
    }
