"""On-demand routing over the broadcast schemes (AODV-lite).

The paper motivates its broadcast schemes as the substrate for MANET route
discovery (DSR/AODV/ZRP flood a *route_request* through the network).  This
package closes that loop with a minimal AODV-style protocol:

- :class:`~repro.routing.messages.RouteRequest` is a broadcast packet --
  it propagates through **whatever rebroadcast scheme the hosts run**, so
  the storm-relief schemes directly reduce discovery cost.
- Hosts forwarding an RREQ learn a *reverse route* to the originator; the
  target answers with a unicast :class:`~repro.routing.messages.RouteReply`
  that hops back along the reverse pointers, installing forward routes.
- Data packets are then forwarded hop-by-hop via the acknowledged unicast
  MAC (:meth:`repro.mac.csma.CsmaCaMac.send_unicast`), with route
  invalidation on link failure and bounded re-discovery.

Typical use::

    from repro.routing import attach_agents

    agents = attach_agents(network)   # one agent per host
    agents[3].send_data(dest=42, payload="hello",
                        on_result=lambda ok: print("delivered:", ok))
"""

from repro.routing.agent import RoutingAgent, RoutingStats, attach_agents
from repro.routing.messages import DataPacket, RouteReply, RouteRequest
from repro.routing.table import RouteEntry, RouteTable

__all__ = [
    "RouteRequest",
    "RouteReply",
    "DataPacket",
    "RouteTable",
    "RouteEntry",
    "RoutingAgent",
    "RoutingStats",
    "attach_agents",
]
