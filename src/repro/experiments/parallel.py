"""Parallel, cached experiment execution.

The paper's figures aggregate thousands of *independent* simulation runs
(one per seed per sweep point), which the sequential :func:`replicate` /
:func:`run_sweep` pair executes one at a time on one core.  This module
fans those runs out across a process pool and memoizes finished runs on
disk, so regenerating a figure only simulates the seeds it has not seen.

Guarantees
----------
- **Determinism**: results come back in submission order regardless of
  which worker finished first, so confidence intervals are bit-identical
  to the sequential path (simulations themselves are seed-deterministic).
- **Caching**: a result is keyed by a stable SHA-256 digest of the full
  :class:`ScenarioConfig` plus a code-relevant version tag
  (:data:`RESULT_CACHE_VERSION` and the package version), so stale caches
  cannot survive a semantics change -- bump the tag when simulation
  behavior changes.
- **Graceful fallback**: configs that cannot be pickled or digested (e.g.
  a ``threshold_fn`` callable in ``scheme_params``) run inline in the
  parent process and skip the cache; everything else parallelizes.
- **Graceful interrupt**: a ``KeyboardInterrupt`` (Ctrl-C / SIGTERM
  translated by the CLI) no longer tears the pool down mid-write.
  Completed results are already in the cache; pending work is cancelled
  and :class:`ExecutionInterrupted` is raised carrying the partial,
  submission-order-aligned results so callers (the campaign executor)
  can flush a checkpoint and exit in a resumable state.

Example::

    runner = ParallelRunner(max_workers=4, cache_dir=".repro-cache")
    replicated = runner.replicate(config, seeds=[1, 2, 3, 4])
    print(runner.perf)   # runs, cache hit-rate, events/sec, wall time
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Union,
)

from repro.experiments.config import ScenarioConfig
from repro.experiments.replication import (
    ReplicatedResult,
    aggregate,
    check_seeds,
)
from repro.experiments.runner import SimulationResult, run_broadcast_simulation
from repro.perf import KernelPerf
from repro.telemetry.registry import registry as telemetry_registry

__all__ = [
    "RESULT_CACHE_VERSION",
    "CacheKeyError",
    "CacheStats",
    "ExecutionInterrupted",
    "PruneReport",
    "ResultCache",
    "RunnerPerf",
    "ParallelRunner",
    "config_digest",
]

#: Bump when simulation semantics change in a way that invalidates cached
#: results (new RNG consumption order, metric definition changes, ...).
RESULT_CACHE_VERSION = "1"


class CacheKeyError(ValueError):
    """The config contains values with no stable serial form (callables,
    exotic objects) and therefore cannot be cached."""


class ExecutionInterrupted(KeyboardInterrupt):
    """A batch was interrupted (Ctrl-C / SIGTERM) partway through.

    Subclasses :class:`KeyboardInterrupt` so existing ``except
    KeyboardInterrupt`` handlers keep working, but carries enough state to
    resume: ``results`` is aligned with the submitted configs (``None``
    where a run never finished) and every finished result has already
    been written to the cache, so a re-run only simulates the holes.
    """

    def __init__(self, results: Sequence[Optional[SimulationResult]]) -> None:
        self.results: List[Optional[SimulationResult]] = list(results)
        self.completed = sum(1 for r in self.results if r is not None)
        super().__init__(
            f"interrupted after {self.completed}/{len(self.results)} runs"
        )


def _canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-serializable canonical form.

    Dataclasses become ``[type-name, sorted field pairs]``, tuples become
    lists, frozensets sorted lists.  Anything without an obvious stable
    form (functions, arbitrary objects) raises :class:`CacheKeyError`.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return [
            type(value).__name__,
            [
                [f.name, _canonical(getattr(value, f.name))]
                for f in dataclasses.fields(value)
            ],
        ]
    if isinstance(value, dict):
        try:
            items = sorted(value.items())
        except TypeError as exc:
            raise CacheKeyError(f"unorderable dict keys in {value!r}") from exc
        return {"__dict__": [[str(k), _canonical(v)] for k, v in items]}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return {"__set__": sorted(_canonical(v) for v in value)}
    raise CacheKeyError(
        f"cannot build a stable cache key from {type(value).__name__}: "
        f"{value!r}"
    )


def config_digest(config: ScenarioConfig) -> str:
    """Stable hex digest identifying a scenario *and* the code version.

    Raises :class:`CacheKeyError` when the config holds uncacheable values
    (e.g. callables in ``scheme_params``).
    """
    try:
        from repro import __version__ as package_version
    except ImportError:  # pragma: no cover - package always has a version
        package_version = "unknown"
    payload = {
        "cache_version": RESULT_CACHE_VERSION,
        "package_version": package_version,
        "config": _canonical(config),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk store of pickled :class:`SimulationResult`\\ s by digest."""

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self._dir = Path(cache_dir)
        self._dir.mkdir(parents=True, exist_ok=True)

    @property
    def directory(self) -> Path:
        return self._dir

    def _path(self, digest: str) -> Path:
        return self._dir / f"{digest}.pkl"

    def get(self, digest: str) -> Optional[SimulationResult]:
        """The cached result, or ``None`` on miss.

        A corrupted or truncated entry (torn write, interrupted disk, a
        pickle from an incompatible class layout, or a file that does not
        hold a :class:`SimulationResult` at all) is treated as a miss:
        the entry is deleted best-effort so the recomputed result can
        take its slot, rather than erroring on every later lookup.
        """
        path = self._path(digest)
        try:
            with path.open("rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            self._note_lookup("miss")
            return None
        except Exception:
            # Unpickling can fail in arbitrary ways on a torn entry
            # (UnpicklingError, EOFError, AttributeError, ImportError,
            # UnicodeDecodeError, ...): drop it and recompute.
            self._discard(path)
            self._note_lookup("miss")
            return None
        if not isinstance(result, SimulationResult):
            self._discard(path)
            self._note_lookup("miss")
            return None
        self._note_lookup("hit")
        # Mark the entry recently-used so prune(max_bytes=...) evicts cold
        # digests first (mtime is the LRU clock).
        try:
            os.utime(path)
        except OSError:
            pass
        result.from_cache = True
        return result

    @staticmethod
    def _note_lookup(outcome: str) -> None:
        """Telemetry: one cache lookup by outcome (no-op when disarmed)."""
        reg = telemetry_registry()
        if reg is not None:
            reg.counter(
                "repro_cache_lookups_total",
                "Result-cache lookups since process start, by outcome.",
                ("outcome",),
            ).labels(outcome).inc()

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def put(self, digest: str, result: SimulationResult) -> None:
        """Store atomically (tmp + rename) so concurrent runners never
        observe a torn entry."""
        fd, tmp = tempfile.mkstemp(dir=str(self._dir), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(digest))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        reg = telemetry_registry()
        if reg is not None:
            reg.counter(
                "repro_cache_writes_total",
                "Result-cache entries written since process start.",
            ).inc()

    def __len__(self) -> int:
        return sum(1 for _ in self._dir.glob("*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        n = 0
        for path in self._dir.glob("*.pkl"):
            path.unlink()
            n += 1
        return n

    def _entries(self) -> List["CacheEntry"]:
        """Live entries with size and mtime (vanished files skipped)."""
        entries = []
        for path in self._dir.glob("*.pkl"):
            try:
                st = path.stat()
            except OSError:
                continue  # deleted by a concurrent runner
            entries.append(
                CacheEntry(path=path, size=st.st_size, mtime=st.st_mtime)
            )
        return entries

    def stats(self) -> "CacheStats":
        """Aggregate entry count / bytes / age span of the cache."""
        entries = self._entries()
        now = time.time()
        mtimes = [e.mtime for e in entries]
        return CacheStats(
            directory=self._dir,
            entries=len(entries),
            total_bytes=sum(e.size for e in entries),
            oldest_age=(now - min(mtimes)) if mtimes else 0.0,
            newest_age=(now - max(mtimes)) if mtimes else 0.0,
        )

    def prune(
        self,
        max_bytes: Optional[int] = None,
        max_age: Optional[float] = None,
    ) -> "PruneReport":
        """Evict entries until the cache fits the given bounds.

        ``max_age`` (seconds) drops every entry whose last use is older;
        ``max_bytes`` then evicts least-recently-used entries until the
        total size fits.  ``get`` touches an entry's mtime on every hit,
        so "least recently used" means coldest digest, not oldest write.
        With neither bound this is a no-op (use :meth:`clear` to wipe).
        """
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if max_age is not None and max_age < 0:
            raise ValueError(f"max_age must be >= 0, got {max_age}")
        entries = sorted(self._entries(), key=lambda e: e.mtime)
        now = time.time()
        removed = 0
        freed = 0
        kept: List[CacheEntry] = []
        for entry in entries:
            if max_age is not None and now - entry.mtime > max_age:
                self._discard(entry.path)
                removed += 1
                freed += entry.size
            else:
                kept.append(entry)
        if max_bytes is not None:
            total = sum(e.size for e in kept)
            survivors = []
            for entry in kept:  # still LRU-first
                if total > max_bytes:
                    self._discard(entry.path)
                    removed += 1
                    freed += entry.size
                    total -= entry.size
                else:
                    survivors.append(entry)
            kept = survivors
        reg = telemetry_registry()
        if reg is not None and removed:
            reg.counter(
                "repro_cache_evictions_total",
                "Result-cache entries evicted by prune since process start.",
            ).inc(removed)
        return PruneReport(
            removed=removed,
            freed_bytes=freed,
            kept=len(kept),
            kept_bytes=sum(e.size for e in kept),
        )


@dataclass(frozen=True)
class CacheEntry:
    """One on-disk cache file (internal to stats/prune)."""

    path: Path
    size: int
    mtime: float


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of a :class:`ResultCache`'s footprint."""

    directory: Path
    entries: int
    total_bytes: int
    oldest_age: float  # seconds since the least recently used entry
    newest_age: float  # seconds since the most recently used entry

    def as_dict(self) -> Dict[str, Any]:
        return {
            "directory": str(self.directory),
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "oldest_age": self.oldest_age,
            "newest_age": self.newest_age,
        }


@dataclass(frozen=True)
class PruneReport:
    """What :meth:`ResultCache.prune` evicted and what survived."""

    removed: int
    freed_bytes: int
    kept: int
    kept_bytes: int


@dataclass
class RunnerPerf:
    """Perf counters accumulated across a :class:`ParallelRunner`'s life."""

    runs: int = 0  # results returned (simulated + cached)
    simulated: int = 0
    cache_hits: int = 0
    uncacheable: int = 0  # configs that could not be digested
    wall_time: float = 0.0  # parent-side wall time across run_many calls
    sim_wall_time: float = 0.0  # summed per-run wall time (worker side)
    events: int = 0  # scheduler events across simulated runs
    #: Kernel counters merged across simulated runs (None until the first
    #: simulated run reports them).
    kernel: Optional[KernelPerf] = None

    @property
    def cache_hit_rate(self) -> float:
        """Hits over lookups (simulated + hits); 0.0 before any run."""
        attempts = self.cache_hits + self.simulated
        return self.cache_hits / attempts if attempts else 0.0

    @property
    def events_per_sec(self) -> float:
        """Aggregate simulated events per summed simulation wall-second."""
        if self.sim_wall_time <= 0.0:
            return 0.0
        return self.events / self.sim_wall_time

    def note_kernel(self, perf: Optional[KernelPerf]) -> None:
        """Fold one run's kernel counters into the aggregate."""
        if perf is None:
            return
        if self.kernel is None:
            self.kernel = KernelPerf()
        self.kernel.merge(perf)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "runs": self.runs,
            "simulated": self.simulated,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "uncacheable": self.uncacheable,
            "wall_time": self.wall_time,
            "sim_wall_time": self.sim_wall_time,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "kernel": self.kernel.as_dict() if self.kernel else None,
        }


def _run_config(config: ScenarioConfig) -> SimulationResult:
    """Process-pool entry point (must be a module-level callable)."""
    return run_broadcast_simulation(config)


class ParallelRunner:
    """Fan simulation runs across worker processes, with an on-disk cache.

    ``max_workers=None`` uses ``os.cpu_count()``; ``max_workers=1`` (or a
    single-run batch) executes inline with no pool overhead.  Results are
    always returned in submission order, so anything computed from them is
    bit-identical to the sequential path.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        use_cache: bool = True,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.cache = (
            ResultCache(cache_dir) if (cache_dir and use_cache) else None
        )
        self.perf = RunnerPerf()

    # ------------------------------------------------------------- core

    def run_many(self, configs: Sequence[ScenarioConfig]) -> List[SimulationResult]:
        """Run every config, preserving order; cache-hit where possible.

        Each finished result is cached the moment it is consumed, so a
        :class:`KeyboardInterrupt` mid-batch loses only in-flight work:
        pending futures are cancelled and :class:`ExecutionInterrupted`
        is raised with the partial, order-aligned results.
        """
        start = time.perf_counter()
        configs = list(configs)
        results: List[Optional[SimulationResult]] = [None] * len(configs)
        digests: List[Optional[str]] = [None] * len(configs)

        reg = telemetry_registry()
        if reg is not None and configs:
            reg.counter(
                "repro_runner_runs_started_total",
                "Runs submitted to the parallel runner since process start.",
            ).inc(len(configs))

        to_run: List[int] = []
        for i, config in enumerate(configs):
            digest = None
            if self.cache is not None:
                try:
                    digest = config_digest(config)
                except CacheKeyError:
                    self.perf.uncacheable += 1
            digests[i] = digest
            cached = self.cache.get(digest) if digest is not None else None
            if cached is not None:
                results[i] = cached
                self.perf.cache_hits += 1
                self._note_completed(reg, cached)
            else:
                to_run.append(i)

        executing = self._execute([configs[i] for i in to_run])
        try:
            for i, result in zip(to_run, executing):
                results[i] = result
                # Throughput counters deliberately exclude cache hits: a
                # cached result's wall_time is the *original* run's, so
                # folding it in would skew events/sec (see perf tests).
                self.perf.simulated += 1
                self.perf.events += result.events_processed
                self.perf.sim_wall_time += result.wall_time
                self.perf.note_kernel(result.perf)
                self._note_completed(reg, result)
                if self.cache is not None and digests[i] is not None:
                    self.cache.put(digests[i], result)
        except KeyboardInterrupt:
            # Account for what did finish, then surface a resumable state
            # (completed results are already in the cache).  Closing the
            # generator cancels any still-queued pool work.
            executing.close()
            self.perf.runs += sum(1 for r in results if r is not None)
            self.perf.wall_time += time.perf_counter() - start
            if reg is not None:
                reg.counter(
                    "repro_runner_interrupts_total",
                    "Batches interrupted (Ctrl-C / SIGTERM) mid-flight.",
                ).inc()
            raise ExecutionInterrupted(results) from None

        self.perf.runs += len(configs)
        self.perf.wall_time += time.perf_counter() - start
        return results  # type: ignore[return-value]

    @staticmethod
    def _note_completed(reg, result: SimulationResult) -> None:
        """Telemetry: one run finished, by source (no-op when disarmed)."""
        if reg is None:
            return
        source = "cache" if result.from_cache else "sim"
        reg.counter(
            "repro_runner_runs_completed_total",
            "Runs completed since process start, by result source.",
            ("source",),
        ).labels(source).inc()
        if not result.from_cache:
            reg.histogram(
                "repro_runner_run_wall_seconds",
                "Per-run simulation wall time (cache hits excluded).",
            ).observe(result.wall_time)

    def _execute(
        self, configs: List[ScenarioConfig]
    ) -> Iterable[SimulationResult]:
        """Simulate ``configs``, yielding results in submission order.

        Pools across processes when it pays; unpicklable configs run
        inline in the parent at their slot in the order.  On interrupt
        the pool's pending futures are cancelled (never mid-write: the
        caller caches each yielded result as it lands) before the
        ``KeyboardInterrupt`` propagates.
        """
        workers = self.max_workers or os.cpu_count() or 1
        workers = min(workers, len(configs))
        if workers <= 1:
            for config in configs:
                yield run_broadcast_simulation(config)
            return

        poolable = set()
        for i, config in enumerate(configs):
            try:
                pickle.dumps(config)
                poolable.add(i)
            except Exception:
                pass

        if len(poolable) <= 1:
            for config in configs:
                yield run_broadcast_simulation(config)
            return

        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            futures = {
                i: pool.submit(_run_config, configs[i]) for i in poolable
            }
            for i, config in enumerate(configs):
                if i in futures:
                    yield futures[i].result()
                else:
                    yield run_broadcast_simulation(config)
        except BaseException:
            # cancel_futures drops queued work; in-flight tasks finish in
            # their workers but are never consumed.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            pool.shutdown(wait=True)

    # ------------------------------------------------------ high level

    def replicate(
        self,
        config: ScenarioConfig,
        seeds: Sequence[int],
        confidence: float = 0.95,
    ) -> ReplicatedResult:
        """Parallel drop-in for :func:`repro.experiments.replication.replicate`.

        Same aggregation over the same per-seed results in the same order,
        so the estimates are bit-identical to the sequential path.
        """
        check_seeds(seeds)
        results = self.run_many(
            [config.with_overrides(seed=seed) for seed in seeds]
        )
        return aggregate(config, results, confidence)

    def run_sweep(
        self,
        configs: Iterable[ScenarioConfig],
        progress: Optional[
            Callable[[ScenarioConfig, SimulationResult], None]
        ] = None,
    ) -> List[SimulationResult]:
        """Parallel drop-in for :func:`repro.experiments.runner.run_sweep`.

        ``progress`` fires in submission order after all runs complete (a
        pool cannot stream strictly ordered completions without stalling).
        """
        configs = list(configs)
        results = self.run_many(configs)
        if progress is not None:
            for config, result in zip(configs, results):
                progress(config, result)
        return results
