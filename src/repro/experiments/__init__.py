"""Experiment harness: scenario configs, the runner, and per-figure builders.

Each figure of the paper's evaluation has a matching module
(:mod:`repro.experiments.figures`) that yields the scenario grid and the
series the figure plots; the pytest-benchmark files under ``benchmarks/``
drive them and assert the qualitative shapes.
"""

from repro.experiments.config import ScenarioConfig, default_max_speed_kmh
from repro.experiments.runner import (
    SimulationResult,
    run_broadcast_simulation,
    run_sweep,
)

__all__ = [
    "ScenarioConfig",
    "default_max_speed_kmh",
    "SimulationResult",
    "run_broadcast_simulation",
    "run_sweep",
]
