"""Result persistence: JSON and CSV export/import.

Long parameter sweeps are expensive; these helpers let the harness save
every scenario's summary as it lands and reload sweeps for later analysis
without re-simulation.

Formats:

- JSON: one document per run / figure, round-trippable
  (:func:`result_to_dict` / :func:`figure_result_to_dict`).
- CSV: one row per (series, x) point, for spreadsheet or pandas use.
"""

from __future__ import annotations

import csv
import io as _io
import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.experiments.config import ScenarioConfig
from repro.experiments.figures.common import FigureResult, SeriesPoint
from repro.experiments.runner import SimulationResult
from repro.faults.plan import FaultPlan
from repro.metrics.collector import (
    FaultEventRecord,
    MetricsCollector,
    SimulationSummary,
    SummaryStat,
)
from repro.net.host import HelloConfig
from repro.perf import KernelPerf
from repro.telemetry.resources import ResourceProfile
from repro.phy.channel import ChannelStats
from repro.phy.params import PhyParams

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "scenario_to_dict",
    "scenario_from_dict",
    "figure_result_to_dict",
    "figure_result_from_dict",
    "save_json",
    "load_json",
    "figure_result_to_csv",
    "write_figure_csv",
]

PathLike = Union[str, Path]


def _stat_to_dict(stat) -> Any:
    if stat is None:
        return None
    return {"mean": stat.mean, "std": stat.std, "count": stat.count}


def _stat_from_dict(data) -> Any:
    if data is None:
        return None
    return SummaryStat(mean=data["mean"], std=data["std"], count=data["count"])


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """Flatten a :class:`SimulationResult` for JSON export.

    Captures the config identity, the headline metrics with their spreads,
    the channel counters and the fault trace -- enough to rebuild any table
    in the paper (and a summary-grade :class:`SimulationResult` via
    :func:`result_from_dict`), not the raw per-broadcast records.
    """
    config = result.config
    channel = result.channel_stats
    return {
        "config": {
            "scheme": config.scheme,
            "scheme_params": {
                k: v for k, v in config.scheme_params.items()
                if isinstance(v, (int, float, str, bool))
            },
            "map_units": config.map_units,
            "num_hosts": config.num_hosts,
            "num_broadcasts": config.num_broadcasts,
            "max_speed_kmh": config.resolved_max_speed_kmh,
            "seed": config.seed,
        },
        "metrics": {
            "re": result.re,
            "srb": result.srb,
            "latency": result.latency,
            "hellos": result.hellos,
            "broadcasts": result.stats.broadcasts,
        },
        "stats": {
            "reachability": _stat_to_dict(result.stats.reachability),
            "saved_rebroadcast": _stat_to_dict(result.stats.saved_rebroadcast),
            "latency": _stat_to_dict(result.stats.latency),
        },
        "channel": {
            "transmissions": channel.transmissions,
            "deliveries": channel.deliveries,
            "collisions": channel.collisions,
            "deaf_misses": channel.deaf_misses,
            "injected_drops": channel.injected_drops,
            "aborted_frames": channel.aborted_frames,
            "truncated_receptions": channel.truncated_receptions,
            "grid_rebuilds": channel.grid_rebuilds,
            "batch_scans": channel.batch_scans,
            "vector_candidates": channel.vector_candidates,
            "total_tx_airtime": channel.total_tx_airtime,
            "total_rx_airtime": channel.total_rx_airtime,
        },
        "events_processed": result.events_processed,
        "end_time": result.end_time,
        "backoffs_started": result.backoffs_started,
        "broadcasts_skipped": result.broadcasts_skipped,
        "fault_trace": [
            [e.time, e.kind, e.host_id] for e in result.fault_trace
        ],
        "perf": {
            "wall_time": result.wall_time,
            "events_per_sec": result.events_per_sec,
            "from_cache": result.from_cache,
            # Kernel counters (None for results predating the perf layer,
            # e.g. old cache entries).
            "kernel": result.perf.as_dict() if result.perf else None,
        },
        # getattr: results unpickled from a pre-resources cache lack the
        # attribute entirely (pickle restores only the fields it saved).
        "resources": (
            result.resources.as_dict()
            if getattr(result, "resources", None) is not None
            else None
        ),
    }


def result_from_dict(data: Dict[str, Any]) -> SimulationResult:
    """Inverse of :func:`result_to_dict`, to summary fidelity.

    The reconstructed result carries the summary statistics, channel
    counters (airtime totals under the sentinel host id ``-1``), fault
    trace and perf metadata -- but not the raw per-broadcast records, so
    its ``metrics`` collector is empty.  Dicts from before a field existed
    load with that field at its default.
    """
    cfg = data["config"]
    config = ScenarioConfig(
        scheme=cfg["scheme"],
        scheme_params=dict(cfg.get("scheme_params", {})),
        map_units=cfg["map_units"],
        num_hosts=cfg["num_hosts"],
        num_broadcasts=cfg["num_broadcasts"],
        max_speed_kmh=cfg.get("max_speed_kmh"),
        seed=cfg["seed"],
    )
    metrics_block = data.get("metrics", {})
    broadcasts = metrics_block.get("broadcasts", 0)
    stats_block = data.get("stats")
    if stats_block is not None:
        reachability = _stat_from_dict(stats_block["reachability"])
        saved = _stat_from_dict(stats_block["saved_rebroadcast"])
        latency = _stat_from_dict(stats_block["latency"])
    else:
        # Legacy dict (means only): spreads are unknowable, report 0.
        def legacy(value):
            if value is None or value != value:  # None or NaN
                return None
            return SummaryStat(mean=value, std=0.0, count=broadcasts)

        reachability = legacy(metrics_block.get("re"))
        saved = legacy(metrics_block.get("srb"))
        latency = legacy(metrics_block.get("latency"))
    summary = SimulationSummary(
        reachability=reachability,
        saved_rebroadcast=saved,
        latency=latency,
        broadcasts=broadcasts,
        hello_packets_sent=metrics_block.get("hellos", 0),
    )

    ch = data.get("channel", {})
    channel_stats = ChannelStats()
    for name in (
        "transmissions", "deliveries", "collisions", "deaf_misses",
        "injected_drops", "aborted_frames", "truncated_receptions",
        "grid_rebuilds", "batch_scans", "vector_candidates",
    ):
        setattr(channel_stats, name, ch.get(name, 0))
    # Per-host airtime breakdowns are not exported; park the totals under a
    # sentinel id so total_tx_airtime / total_rx_airtime still report them.
    if ch.get("total_tx_airtime"):
        channel_stats.tx_airtime[-1] = ch["total_tx_airtime"]
    if ch.get("total_rx_airtime"):
        channel_stats.rx_airtime[-1] = ch["total_rx_airtime"]

    perf_block = data.get("perf", {})
    kernel = perf_block.get("kernel")
    perf = None
    if kernel is not None:
        perf = KernelPerf()
        for name in KernelPerf.__slots__:
            setattr(perf, name, kernel.get(name, 0))

    resources_block = data.get("resources")
    resources = (
        ResourceProfile.from_dict(resources_block)
        if resources_block is not None
        else None
    )

    return SimulationResult(
        config=config,
        metrics=MetricsCollector(),
        stats=summary,
        channel_stats=channel_stats,
        end_time=data["end_time"],
        events_processed=data["events_processed"],
        backoffs_started=data.get("backoffs_started", 0),
        fault_trace=[
            FaultEventRecord(time=e[0], kind=e[1], host_id=e[2])
            for e in data.get("fault_trace", [])
        ],
        broadcasts_skipped=data.get("broadcasts_skipped", 0),
        wall_time=perf_block.get("wall_time", 0.0),
        from_cache=perf_block.get("from_cache", False),
        perf=perf,
        resources=resources,
    )


#: ScenarioConfig fields a scenario dict may set, with their JSON types.
#: ``capture`` and ``phy`` are deliberately absent: they have no stable
#: JSON form yet, so specs and service requests cannot reach them.
_SCENARIO_SCALARS = (
    "scheme", "map_units", "unit_length", "num_hosts", "num_broadcasts",
    "interarrival_max", "max_speed_kmh", "mobility", "oracle_neighbors",
    "store_reachable_sets", "seed", "warmup", "drain",
)
_SCENARIO_KEYS = frozenset(
    _SCENARIO_SCALARS + ("scheme_params", "hello", "faults")
)

_HELLO_FIELDS = (
    "enabled", "interval", "dynamic", "nv_max", "hi_min", "hi_max"
)


def scenario_to_dict(config: ScenarioConfig) -> Dict[str, Any]:
    """Full-fidelity JSON form of a :class:`ScenarioConfig`.

    The inverse of :func:`scenario_from_dict`: the round trip preserves
    the config's cache digest, so a scenario shipped through a campaign
    spec or the HTTP service hits the same :class:`ResultCache` slot as
    one built in-process.  Configs carrying a capture model, a
    non-default PHY, or non-scalar ``scheme_params`` have no stable JSON
    form and raise ``ValueError``.
    """
    if config.capture is not None:
        raise ValueError("capture models have no JSON scenario form")
    if config.phy != PhyParams():
        raise ValueError("non-default PhyParams have no JSON scenario form")
    for key, value in config.scheme_params.items():
        if not isinstance(value, (bool, int, float, str)):
            raise ValueError(
                f"scheme_params[{key!r}] is not a JSON scalar: {value!r}"
            )
    out: Dict[str, Any] = {
        name: getattr(config, name) for name in _SCENARIO_SCALARS
    }
    if config.scheme_params:
        out["scheme_params"] = dict(config.scheme_params)
    if config.hello != HelloConfig():
        out["hello"] = {
            name: getattr(config.hello, name) for name in _HELLO_FIELDS
        }
    if config.faults is not None:
        out["faults"] = config.faults.to_dict()
    return out


def scenario_from_dict(data: Dict[str, Any]) -> ScenarioConfig:
    """Build a :class:`ScenarioConfig` from a scenario dict.

    Accepts the output of :func:`scenario_to_dict` plus two conveniences
    for hand-written specs: ``faults`` may be a CLI spec string
    (``"churn:rate=0.01,downtime=5"``) instead of a plan dict, and any
    field may simply be omitted to take the paper default.  Unknown keys
    raise ``ValueError`` -- a typo'd field silently meaning "default"
    would corrupt an entire sweep.
    """
    unknown = set(data) - _SCENARIO_KEYS
    if unknown:
        raise ValueError(
            f"unknown scenario field(s): {', '.join(sorted(unknown))} "
            f"(allowed: {', '.join(sorted(_SCENARIO_KEYS))})"
        )
    kwargs: Dict[str, Any] = {
        name: data[name] for name in _SCENARIO_SCALARS if name in data
    }
    if "scheme_params" in data:
        kwargs["scheme_params"] = dict(data["scheme_params"])
    if "hello" in data:
        hello = data["hello"]
        bad = set(hello) - set(_HELLO_FIELDS)
        if bad:
            raise ValueError(
                f"unknown hello field(s): {', '.join(sorted(bad))}"
            )
        kwargs["hello"] = HelloConfig(**hello)
    faults = data.get("faults")
    if faults is not None:
        if isinstance(faults, str):
            kwargs["faults"] = FaultPlan.parse(faults)
        else:
            kwargs["faults"] = FaultPlan.from_dict(faults)
    return ScenarioConfig(**kwargs)


def figure_result_to_dict(result: FigureResult) -> Dict[str, Any]:
    """JSON-ready form of a :class:`FigureResult`."""
    return {
        "figure": result.figure,
        "x_label": result.x_label,
        "series": {
            name: [
                {
                    "x": p.x,
                    "re": p.re,
                    "srb": p.srb,
                    "latency": p.latency,
                    "hellos": p.hellos,
                }
                for p in points
            ]
            for name, points in result.series.items()
        },
    }


def figure_result_from_dict(data: Dict[str, Any]) -> FigureResult:
    """Inverse of :func:`figure_result_to_dict`."""
    result = FigureResult(data["figure"], data["x_label"])
    for name, points in data["series"].items():
        for p in points:
            result.add(
                name,
                SeriesPoint(
                    x=p["x"],
                    re=p["re"],
                    srb=p["srb"],
                    latency=p["latency"],
                    hellos=p.get("hellos", 0),
                ),
            )
    return result


def save_json(data: Dict[str, Any], path: PathLike) -> None:
    """Write ``data`` as pretty-printed JSON."""
    Path(path).write_text(json.dumps(data, indent=2, sort_keys=True))


def load_json(path: PathLike) -> Dict[str, Any]:
    return json.loads(Path(path).read_text())


def figure_result_to_csv(result: FigureResult) -> str:
    """Render a figure's series as CSV text (one row per point)."""
    buffer = _io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["figure", "series", result.x_label, "re", "srb",
                     "latency", "hellos"])
    for name, points in result.series.items():
        for p in points:
            writer.writerow(
                [result.figure, name, p.x, p.re, p.srb, p.latency, p.hellos]
            )
    return buffer.getvalue()


def write_figure_csv(result: FigureResult, path: PathLike) -> None:
    Path(path).write_text(figure_result_to_csv(result))
