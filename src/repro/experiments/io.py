"""Result persistence: JSON and CSV export/import.

Long parameter sweeps are expensive; these helpers let the harness save
every scenario's summary as it lands and reload sweeps for later analysis
without re-simulation.

Formats:

- JSON: one document per run / figure, round-trippable
  (:func:`result_to_dict` / :func:`figure_result_to_dict`).
- CSV: one row per (series, x) point, for spreadsheet or pandas use.
"""

from __future__ import annotations

import csv
import io as _io
import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.experiments.figures.common import FigureResult, SeriesPoint
from repro.experiments.runner import SimulationResult

__all__ = [
    "result_to_dict",
    "figure_result_to_dict",
    "figure_result_from_dict",
    "save_json",
    "load_json",
    "figure_result_to_csv",
    "write_figure_csv",
]

PathLike = Union[str, Path]


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """Flatten a :class:`SimulationResult` for JSON export.

    Captures the config identity, the headline metrics and the channel
    counters -- enough to rebuild any table in the paper, not the raw
    per-broadcast records.
    """
    config = result.config
    return {
        "config": {
            "scheme": config.scheme,
            "scheme_params": {
                k: v for k, v in config.scheme_params.items()
                if isinstance(v, (int, float, str, bool))
            },
            "map_units": config.map_units,
            "num_hosts": config.num_hosts,
            "num_broadcasts": config.num_broadcasts,
            "max_speed_kmh": config.resolved_max_speed_kmh,
            "seed": config.seed,
        },
        "metrics": {
            "re": result.re,
            "srb": result.srb,
            "latency": result.latency,
            "hellos": result.hellos,
            "broadcasts": result.stats.broadcasts,
        },
        "channel": {
            "transmissions": result.channel_stats.transmissions,
            "deliveries": result.channel_stats.deliveries,
            "collisions": result.channel_stats.collisions,
            "deaf_misses": result.channel_stats.deaf_misses,
        },
        "events_processed": result.events_processed,
        "end_time": result.end_time,
        "perf": {
            "wall_time": result.wall_time,
            "events_per_sec": result.events_per_sec,
            "from_cache": result.from_cache,
            # Kernel counters (None for results predating the perf layer,
            # e.g. old cache entries).
            "kernel": result.perf.as_dict() if result.perf else None,
        },
    }


def figure_result_to_dict(result: FigureResult) -> Dict[str, Any]:
    """JSON-ready form of a :class:`FigureResult`."""
    return {
        "figure": result.figure,
        "x_label": result.x_label,
        "series": {
            name: [
                {
                    "x": p.x,
                    "re": p.re,
                    "srb": p.srb,
                    "latency": p.latency,
                    "hellos": p.hellos,
                }
                for p in points
            ]
            for name, points in result.series.items()
        },
    }


def figure_result_from_dict(data: Dict[str, Any]) -> FigureResult:
    """Inverse of :func:`figure_result_to_dict`."""
    result = FigureResult(data["figure"], data["x_label"])
    for name, points in data["series"].items():
        for p in points:
            result.add(
                name,
                SeriesPoint(
                    x=p["x"],
                    re=p["re"],
                    srb=p["srb"],
                    latency=p["latency"],
                    hellos=p.get("hellos", 0),
                ),
            )
    return result


def save_json(data: Dict[str, Any], path: PathLike) -> None:
    """Write ``data`` as pretty-printed JSON."""
    Path(path).write_text(json.dumps(data, indent=2, sort_keys=True))


def load_json(path: PathLike) -> Dict[str, Any]:
    return json.loads(Path(path).read_text())


def figure_result_to_csv(result: FigureResult) -> str:
    """Render a figure's series as CSV text (one row per point)."""
    buffer = _io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["figure", "series", result.x_label, "re", "srb",
                     "latency", "hellos"])
    for name, points in result.series.items():
        for p in points:
            writer.writerow(
                [result.figure, name, p.x, p.re, p.srb, p.latency, p.hellos]
            )
    return buffer.getvalue()


def write_figure_csv(result: FigureResult, path: PathLike) -> None:
    Path(path).write_text(figure_result_to_csv(result))
