"""Fig. 12: neighbor coverage with dynamic hello interval (NC-DHI).

Panel (a): RE and SRB across host speeds per map -- RE should stay high
independent of speed and density.  Panel (b): the number of HELLO packets
sent -- near the ``hi_min`` rate on sparse maps (high neighborhood
variation), near the ``hi_max`` rate on the 1x1 map (no variation).

Paper DHI parameters: ``nv_max = 0.02``, ``hi_min = 1 s``, ``hi_max = 10 s``.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.config import ScenarioConfig
from repro.experiments.figures.common import FigureResult, run_series_points
from repro.net.host import HelloConfig

__all__ = ["run", "PAPER_SPEEDS", "PAPER_FIG12_MAPS", "DHI_CONFIG"]

PAPER_SPEEDS = (20.0, 40.0, 60.0, 80.0)
PAPER_FIG12_MAPS = (1, 3, 5, 7, 9, 11)

DHI_CONFIG = HelloConfig(dynamic=True, nv_max=0.02, hi_min=1.0, hi_max=10.0)


def run(
    maps: Sequence[int] = PAPER_FIG12_MAPS,
    speeds: Sequence[float] = PAPER_SPEEDS,
    num_broadcasts: int = 50,
    seed: int = 1,
) -> FigureResult:
    """Series per map; x = speed; ``hellos`` carries panel (b)'s count."""
    entries = [
        (
            f"{units}x{units}",
            speed,
            ScenarioConfig(
                scheme="neighbor-coverage",
                map_units=units,
                max_speed_kmh=speed,
                hello=DHI_CONFIG,
                num_broadcasts=num_broadcasts,
                seed=seed,
            ),
        )
        for units in maps
        for speed in speeds
    ]
    return run_series_points(
        FigureResult("Fig. 12: NC-DHI vs speed", "km/h"), entries
    )
