"""Fig. 9: comparing adaptive-location threshold functions ``A(n)``.

The candidates are the ``(n1, n2)`` pairs of Fig. 8.  The paper finds
``(6, 12)``, ``(8, 12)`` and ``(8, 10)`` all give satisfactory RE and picks
``(6, 12)`` for its better SRB on sparse maps.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.experiments.config import ScenarioConfig
from repro.experiments.figures.common import (
    PAPER_MAPS,
    FigureResult,
    run_series_points,
)
from repro.schemes.thresholds import make_location_threshold

__all__ = ["run", "CANDIDATE_PAIRS"]

CANDIDATE_PAIRS: Tuple[Tuple[int, int], ...] = (
    (2, 8),
    (4, 8),
    (6, 10),
    (6, 12),
    (8, 10),
    (8, 12),
)


def run(
    maps: Sequence[int] = PAPER_MAPS,
    pairs: Sequence[Tuple[int, int]] = CANDIDATE_PAIRS,
    num_broadcasts: int = 50,
    seed: int = 1,
) -> FigureResult:
    entries = []
    for n1, n2 in pairs:
        fn = make_location_threshold(n1=n1, n2=n2)
        for units in maps:
            config = ScenarioConfig(
                scheme="adaptive-location",
                scheme_params={"threshold_fn": fn},
                map_units=units,
                num_broadcasts=num_broadcasts,
                seed=seed,
            )
            entries.append((f"({n1},{n2})", units, config))
    return run_series_points(
        FigureResult("Fig. 9: A(n) candidates", "map"), entries
    )
