"""Fig. 10: adaptive location (AL) versus fixed location thresholds.

Fixed thresholds from [15]: A = 0.1871, 0.0469, 0.0134 (fractions of
``pi r^2``).  Expected: fixed thresholds lose RE on sparse maps (the larger
A, the worse); AL keeps RE high without sacrificing SRB; AL latency lowest
on dense maps, slightly above A = 0.1871 on sparse maps.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.config import ScenarioConfig
from repro.experiments.figures.common import (
    PAPER_MAPS,
    FigureResult,
    run_series_points,
)

__all__ = ["run", "FIXED_THRESHOLDS"]

FIXED_THRESHOLDS = (0.1871, 0.0469, 0.0134)


def run(
    maps: Sequence[int] = PAPER_MAPS,
    num_broadcasts: int = 50,
    seed: int = 1,
    fixed_thresholds: Sequence[float] = FIXED_THRESHOLDS,
) -> FigureResult:
    entries = [
        (
            f"A={threshold}",
            units,
            ScenarioConfig(
                scheme="location",
                scheme_params={"threshold": threshold},
                map_units=units,
                num_broadcasts=num_broadcasts,
                seed=seed,
            ),
        )
        for threshold in fixed_thresholds
        for units in maps
    ] + [
        (
            "AL",
            units,
            ScenarioConfig(
                scheme="adaptive-location",
                map_units=units,
                num_broadcasts=num_broadcasts,
                seed=seed,
            ),
        )
        for units in maps
    ]
    return run_series_points(
        FigureResult("Fig. 10: AL vs fixed location", "map"), entries
    )
