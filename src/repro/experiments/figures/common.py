"""Shared result containers and sweep helpers for the figure drivers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_broadcast_simulation

__all__ = [
    "SeriesPoint",
    "FigureResult",
    "PAPER_MAPS",
    "run_series_point",
]

#: The paper's map-size sweep (side length in 500 m units).
PAPER_MAPS = (1, 3, 5, 7, 9, 11)


@dataclass
class SeriesPoint:
    """One (x, metrics) point of a figure series."""

    x: Any
    re: float
    srb: float
    latency: float
    hellos: int = 0

    def metric(self, name: str) -> float:
        value = getattr(self, name)
        return float(value)


@dataclass
class FigureResult:
    """All series of one reproduced figure."""

    figure: str
    x_label: str
    series: Dict[str, List[SeriesPoint]] = field(default_factory=dict)

    def add(self, series_name: str, point: SeriesPoint) -> None:
        self.series.setdefault(series_name, []).append(point)

    def xs(self, series_name: str) -> List[Any]:
        return [p.x for p in self.series[series_name]]

    def values(self, series_name: str, metric: str = "re") -> List[float]:
        return [p.metric(metric) for p in self.series[series_name]]

    def value_at(self, series_name: str, x: Any, metric: str = "re") -> float:
        for point in self.series[series_name]:
            if point.x == x:
                return point.metric(metric)
        raise KeyError(f"{self.figure}: no x={x!r} in series {series_name!r}")

    def table(self, metrics: Sequence[str] = ("re", "srb")) -> str:
        """Formatted text table, one row per (series, x)."""
        lines = [f"== {self.figure} =="]
        header = f"{'series':<28} {self.x_label:>10} " + " ".join(
            f"{m:>9}" for m in metrics
        )
        lines.append(header)
        for name, points in self.series.items():
            for p in points:
                cells = " ".join(
                    f"{p.metric(m):>9.3f}"
                    if not math.isnan(p.metric(m))
                    else f"{'nan':>9}"
                    for m in metrics
                )
                lines.append(f"{name:<28} {p.x!s:>10} {cells}")
        return "\n".join(lines)


def run_series_point(config: ScenarioConfig, x: Any) -> SeriesPoint:
    """Run one scenario and wrap its summary as a series point."""
    result = run_broadcast_simulation(config)
    return SeriesPoint(
        x=x,
        re=result.re,
        srb=result.srb,
        latency=result.latency,
        hellos=result.hellos,
    )
