"""Shared result containers and sweep helpers for the figure drivers.

Execution layer
---------------
Figure drivers declare *what* to simulate -- ``(series, x, config)``
entries -- and :func:`run_series_points` decides *how*: through the
session's default executor (a
:class:`~repro.experiments.parallel.ParallelRunner` installed via
:func:`set_default_executor`, giving process-pool fan-out and result
caching) or sequentially when none is installed.  Points land in the
:class:`FigureResult` in declaration order either way, so tables and CSVs
are identical no matter how the runs were scheduled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import SimulationResult, run_broadcast_simulation

__all__ = [
    "SeriesPoint",
    "FigureResult",
    "PAPER_MAPS",
    "run_series_point",
    "run_series_points",
    "set_default_executor",
    "get_default_executor",
]

#: The paper's map-size sweep (side length in 500 m units).
PAPER_MAPS = (1, 3, 5, 7, 9, 11)


@dataclass
class SeriesPoint:
    """One (x, metrics) point of a figure series."""

    x: Any
    re: float
    srb: float
    latency: float
    hellos: int = 0

    def metric(self, name: str) -> float:
        value = getattr(self, name)
        return float(value)


@dataclass
class FigureResult:
    """All series of one reproduced figure."""

    figure: str
    x_label: str
    series: Dict[str, List[SeriesPoint]] = field(default_factory=dict)

    def add(self, series_name: str, point: SeriesPoint) -> None:
        self.series.setdefault(series_name, []).append(point)

    def xs(self, series_name: str) -> List[Any]:
        return [p.x for p in self.series[series_name]]

    def values(self, series_name: str, metric: str = "re") -> List[float]:
        return [p.metric(metric) for p in self.series[series_name]]

    def value_at(self, series_name: str, x: Any, metric: str = "re") -> float:
        for point in self.series[series_name]:
            if point.x == x:
                return point.metric(metric)
        raise KeyError(f"{self.figure}: no x={x!r} in series {series_name!r}")

    def table(self, metrics: Sequence[str] = ("re", "srb")) -> str:
        """Formatted text table, one row per (series, x)."""
        lines = [f"== {self.figure} =="]
        header = f"{'series':<28} {self.x_label:>10} " + " ".join(
            f"{m:>9}" for m in metrics
        )
        lines.append(header)
        for name, points in self.series.items():
            for p in points:
                cells = " ".join(
                    f"{p.metric(m):>9.3f}"
                    if not math.isnan(p.metric(m))
                    else f"{'nan':>9}"
                    for m in metrics
                )
                lines.append(f"{name:<28} {p.x!s:>10} {cells}")
        return "\n".join(lines)


#: The installed execution backend (duck-typed: anything with
#: ``run_many(configs) -> List[SimulationResult]``), or None = sequential.
_default_executor: Optional[Any] = None


def set_default_executor(executor: Optional[Any]) -> Optional[Any]:
    """Install the executor figure drivers route their runs through.

    Pass a :class:`~repro.experiments.parallel.ParallelRunner` (or any
    object with ``run_many``); ``None`` restores plain sequential
    execution.  Returns the previous executor so callers can restore it.
    """
    global _default_executor
    previous = _default_executor
    _default_executor = executor
    return previous


def get_default_executor() -> Optional[Any]:
    return _default_executor


def _execute(configs: List[ScenarioConfig]) -> List[SimulationResult]:
    if _default_executor is not None:
        return _default_executor.run_many(configs)
    return [run_broadcast_simulation(config) for config in configs]


def _point(result: SimulationResult, x: Any) -> SeriesPoint:
    return SeriesPoint(
        x=x,
        re=result.re,
        srb=result.srb,
        latency=result.latency,
        hellos=result.hellos,
    )


def run_series_point(config: ScenarioConfig, x: Any) -> SeriesPoint:
    """Run one scenario and wrap its summary as a series point."""
    return _point(_execute([config])[0], x)


def run_series_points(
    figure: FigureResult,
    entries: Sequence[Tuple[str, Any, ScenarioConfig]],
) -> FigureResult:
    """Run a whole figure's ``(series, x, config)`` entries as one batch.

    The batch goes to the default executor in one call -- the unit of
    parallelism -- and the points are added to ``figure`` in declaration
    order, keeping output identical to the sequential path.
    """
    results = _execute([config for _, _, config in entries])
    for (series_name, x, _), result in zip(entries, results):
        figure.add(series_name, _point(result, x))
    return figure
