"""Fig. 2: contention-free probabilities ``cf(n, k)``.

Paper reference shapes: ``cf(n, 0)`` exceeds 0.8 for ``n >= 6``; ``cf(n, 1)``
drops sharply with ``n``; ``cf(n, k)`` is tiny for ``k >= 2``; and
``cf(n, n-1) = 0`` exactly.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.contention import contention_free_probabilities

__all__ = ["run", "format_table"]


def run(
    max_n: int = 10, trials: int = 10000, seed: int = 0
) -> Dict[int, Dict[int, float]]:
    """``{n: {k: cf(n, k)}}`` for ``n = 1 .. max_n``."""
    import random

    rng = random.Random(seed)
    return {
        n: contention_free_probabilities(n, trials=trials, rng=rng)
        for n in range(1, max_n + 1)
    }


def format_table(series: Dict[int, Dict[int, float]]) -> str:
    lines = ["== Fig. 2: cf(n, k) ==", f"{'n':>3} " + " ".join(f"k={k:<2}" for k in range(5))]
    for n, cf in sorted(series.items()):
        row = " ".join(f"{cf.get(k, 0.0):.3f}" for k in range(5))
        lines.append(f"{n:>3} {row}")
    return "\n".join(lines)
