"""Fig. 1: expected additional coverage ``EAC(k)`` after k receptions.

Paper reference values (read off the figure / text): ``EAC(1) ~= 0.41``,
monotonically decreasing, below 0.05 for ``k >= 4``.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.coverage import eac_table

__all__ = ["run", "PAPER_EAC1", "PAPER_TAIL_BOUND", "PAPER_TAIL_K"]

PAPER_EAC1 = 0.41
PAPER_TAIL_BOUND = 0.05
PAPER_TAIL_K = 4


def run(max_k: int = 10, trials: int = 2000, seed: int = 0) -> Dict[int, float]:
    """The Fig. 1 series: ``{k: EAC(k) / pi r^2}``."""
    return eac_table(max_k=max_k, trials=trials, seed=seed)


def format_table(series: Dict[int, float]) -> str:
    lines = ["== Fig. 1: EAC(k) / (pi r^2) ==", f"{'k':>3} {'EAC(k)':>8}"]
    for k, v in sorted(series.items()):
        lines.append(f"{k:>3} {v:>8.4f}")
    return "\n".join(lines)
