"""Per-figure reproduction drivers.

Each module regenerates the data behind one figure of the paper's
evaluation; the pytest-benchmark files in ``benchmarks/`` call these and
assert the qualitative shapes.  All drivers accept ``num_broadcasts`` /
``seed`` / grid-reduction arguments so the same code scales from a quick CI
run to a full paper-scale reproduction.
"""

from repro.experiments.figures.common import FigureResult, SeriesPoint
from repro.experiments.figures import (
    fig01,
    fig02,
    fig05,
    fig07,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
)

__all__ = [
    "FigureResult",
    "SeriesPoint",
    "fig01",
    "fig02",
    "fig05",
    "fig07",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
]
