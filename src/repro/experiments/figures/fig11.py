"""Fig. 11: neighbor-coverage RE versus hello interval and host speed.

Four panels (maps 5x5, 7x7, 9x9, 11x11); series = hello interval in
{1, 5, 10, 20, 30} seconds; x = max host speed in {20, 40, 60, 80} km/h.

Expected: long hello intervals significantly degrade RE on sparse maps,
worse at higher speed; on the small map mobility matters little.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.config import ScenarioConfig
from repro.experiments.figures.common import FigureResult, run_series_points
from repro.net.host import HelloConfig

__all__ = ["run", "PAPER_HELLO_INTERVALS", "PAPER_SPEEDS", "PAPER_FIG11_MAPS"]

PAPER_HELLO_INTERVALS = (1.0, 5.0, 10.0, 20.0, 30.0)
PAPER_SPEEDS = (20.0, 40.0, 60.0, 80.0)
PAPER_FIG11_MAPS = (5, 7, 9, 11)


def run(
    maps: Sequence[int] = PAPER_FIG11_MAPS,
    speeds: Sequence[float] = PAPER_SPEEDS,
    hello_intervals: Sequence[float] = PAPER_HELLO_INTERVALS,
    num_broadcasts: int = 50,
    seed: int = 1,
) -> Dict[int, FigureResult]:
    """One :class:`FigureResult` per map panel; series keyed by interval."""
    panels: Dict[int, FigureResult] = {}
    for units in maps:
        entries = [
            (
                f"hello={interval:g}s",
                speed,
                ScenarioConfig(
                    scheme="neighbor-coverage",
                    map_units=units,
                    max_speed_kmh=speed,
                    hello=HelloConfig(interval=interval),
                    num_broadcasts=num_broadcasts,
                    seed=seed,
                ),
            )
            for interval in hello_intervals
            for speed in speeds
        ]
        panels[units] = run_series_points(
            FigureResult(
                f"Fig. 11 ({units}x{units}): NC vs hello interval", "km/h"
            ),
            entries,
        )
    return panels
