"""Fig. 5: tuning the adaptive-counter threshold function ``C(n)``.

Four panels, reproducing the paper's tuning methodology (Section 4.1):

- **5a** slope of the rising part (1/3, 1/2, 1) -- slope 1 wins RE on
  sparse maps.
- **5b** cap ``n1`` (2..5) -- 4 and 5 give satisfactory RE; 4 saves more.
- **5c** floor point ``n2`` (8, 12, 16) with linear decrease -- 12 is best
  on sparse maps.
- **5d** the mid-curve shape between n1 and n2 (Fig. 6 candidates).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.config import ScenarioConfig
from repro.experiments.figures.common import (
    PAPER_MAPS,
    FigureResult,
    run_series_points,
)
from repro.schemes.thresholds import (
    FIG5A_SEQUENCES,
    FIG5B_SEQUENCES,
    MIDCURVE_SHAPES,
    counter_sequence,
    make_counter_threshold,
)

__all__ = ["run_5a", "run_5b", "run_5c", "run_5d"]


def _ac_config(
    threshold_fn, map_units: int, num_broadcasts: int, seed: int
) -> ScenarioConfig:
    return ScenarioConfig(
        scheme="adaptive-counter",
        scheme_params={"threshold_fn": threshold_fn},
        map_units=map_units,
        num_broadcasts=num_broadcasts,
        seed=seed,
    )


def run_5a(
    maps: Sequence[int] = PAPER_MAPS, num_broadcasts: int = 50, seed: int = 1
) -> FigureResult:
    """Slope candidates (Fig. 5a)."""
    entries = []
    for name, seq in FIG5A_SEQUENCES.items():
        fn = counter_sequence(seq, name=name)
        for units in maps:
            entries.append(
                (name, units, _ac_config(fn, units, num_broadcasts, seed))
            )
    return run_series_points(
        FigureResult("Fig. 5a: C(n) slope before n1", "map"), entries
    )


def run_5b(
    maps: Sequence[int] = PAPER_MAPS, num_broadcasts: int = 50, seed: int = 1
) -> FigureResult:
    """Cap point n1 candidates (Fig. 5b)."""
    entries = []
    for n1, seq in FIG5B_SEQUENCES.items():
        fn = counter_sequence(seq, name=f"n1={n1}")
        for units in maps:
            entries.append(
                (f"n1={n1}", units, _ac_config(fn, units, num_broadcasts, seed))
            )
    return run_series_points(
        FigureResult("Fig. 5b: C(n) cap point n1", "map"), entries
    )


def run_5c(
    maps: Sequence[int] = PAPER_MAPS,
    n2_values: Sequence[int] = (8, 12, 16),
    num_broadcasts: int = 50,
    seed: int = 1,
) -> FigureResult:
    """Floor point n2 candidates with linear decrease, n1 fixed at 4 (Fig. 5c)."""
    entries = []
    for n2 in n2_values:
        fn = make_counter_threshold(n1=4, n2=n2, shape="linear")
        for units in maps:
            entries.append(
                (f"n2={n2}", units, _ac_config(fn, units, num_broadcasts, seed))
            )
    return run_series_points(
        FigureResult("Fig. 5c: C(n) floor point n2", "map"), entries
    )


def run_5d(
    maps: Sequence[int] = PAPER_MAPS, num_broadcasts: int = 50, seed: int = 1
) -> FigureResult:
    """Mid-curve shapes between n1=4 and n2=12 (Fig. 5d / Fig. 6)."""
    entries = []
    for shape in MIDCURVE_SHAPES:
        fn = make_counter_threshold(n1=4, n2=12, shape=shape)
        for units in maps:
            entries.append(
                (shape, units, _ac_config(fn, units, num_broadcasts, seed))
            )
    return run_series_points(
        FigureResult("Fig. 5d: C(n) mid-curve shape", "map"), entries
    )
