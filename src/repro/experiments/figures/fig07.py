"""Fig. 7: adaptive counter (AC) versus fixed-threshold counter (C = 2, 4, 6).

Expected shapes (paper Section 4.1): C = 2 has high SRB but RE collapses on
sparse maps; C = 6 keeps RE but loses SRB everywhere; AC holds RE high on
every map while keeping SRB comparable to C = 2 on dense maps.  Latency
(7b): AC smallest on 1x1/3x3, slightly above C = 2 on sparse maps.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.config import ScenarioConfig
from repro.experiments.figures.common import (
    PAPER_MAPS,
    FigureResult,
    run_series_points,
)

__all__ = ["run", "FIXED_THRESHOLDS"]

FIXED_THRESHOLDS = (2, 4, 6)


def run(
    maps: Sequence[int] = PAPER_MAPS,
    num_broadcasts: int = 50,
    seed: int = 1,
    fixed_thresholds: Sequence[int] = FIXED_THRESHOLDS,
) -> FigureResult:
    entries = [
        (
            f"C={threshold}",
            units,
            ScenarioConfig(
                scheme="counter",
                scheme_params={"threshold": threshold},
                map_units=units,
                num_broadcasts=num_broadcasts,
                seed=seed,
            ),
        )
        for threshold in fixed_thresholds
        for units in maps
    ] + [
        (
            "AC",
            units,
            ScenarioConfig(
                scheme="adaptive-counter",
                map_units=units,
                num_broadcasts=num_broadcasts,
                seed=seed,
            ),
        )
        for units in maps
    ]
    return run_series_points(
        FigureResult("Fig. 7: AC vs fixed counter", "map"), entries
    )
