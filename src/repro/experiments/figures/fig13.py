"""Fig. 13: overall comparison (RE vs SRB scatter per map).

Schemes compared, each at its best setting (paper Section 4.4): counter
C = 2 and C = 6, adaptive counter (AC), location A = 0.1871 and A = 0.0134,
adaptive location (AL), neighbor coverage with dynamic hello interval
(NC-DHI), and flooding.  Max speed follows the paper's map-scaled default
(10 km/h per map unit).

Expected: flooding has SRB = 0 and suboptimal RE on dense maps; the
adaptive schemes sit toward the upper-right; their RE stays ~>= 95 %; NC is
strongest on dense maps, AC/AL on sparse maps.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.experiments.config import ScenarioConfig
from repro.experiments.figures.common import (
    PAPER_MAPS,
    FigureResult,
    run_series_points,
)
from repro.net.host import HelloConfig

__all__ = ["run", "SCHEME_LINEUP"]


def _dhi() -> HelloConfig:
    return HelloConfig(dynamic=True, nv_max=0.02, hi_min=1.0, hi_max=10.0)


#: label -> (scheme name, scheme params, hello config or None)
SCHEME_LINEUP: Dict[str, Tuple[str, dict, HelloConfig]] = {
    "C=2": ("counter", {"threshold": 2}, HelloConfig()),
    "C=6": ("counter", {"threshold": 6}, HelloConfig()),
    "AC": ("adaptive-counter", {}, HelloConfig()),
    "A=0.1871": ("location", {"threshold": 0.1871}, HelloConfig()),
    "A=0.0134": ("location", {"threshold": 0.0134}, HelloConfig()),
    "AL": ("adaptive-location", {}, HelloConfig()),
    "NC-DHI": ("neighbor-coverage", {}, _dhi()),
    "flooding": ("flooding", {}, HelloConfig()),
}


def run(
    maps: Sequence[int] = PAPER_MAPS,
    num_broadcasts: int = 50,
    seed: int = 1,
    lineup: Dict[str, Tuple[str, dict, HelloConfig]] = None,
) -> FigureResult:
    """Series per scheme; x = map size.  Each (series, x) is one scatter
    point of the corresponding panel."""
    lineup = lineup or SCHEME_LINEUP
    entries = [
        (
            label,
            units,
            ScenarioConfig(
                scheme=scheme,
                scheme_params=params,
                map_units=units,
                hello=hello,
                num_broadcasts=num_broadcasts,
                seed=seed,
            ),
        )
        for label, (scheme, params, hello) in lineup.items()
        for units in maps
    ]
    return run_series_points(
        FigureResult("Fig. 13: overall comparison", "map"), entries
    )
