"""Scenario configuration.

Defaults mirror the paper's simulation setup (Section 4): 100 hosts, square
maps measured in 500 m units, uniform 0-2 s broadcast interarrival,
random-direction roaming with a map-scaled maximum speed (10 km/h on the
1x1 map, 30 on 3x3, 50 on 5x5, ... -- i.e. ``10 * map_units``), and the
DSSS PHY constants of :class:`repro.phy.params.PhyParams`.

The paper runs 10,000 broadcasts per simulation; RE/SRB/latency are
per-broadcast means that converge much earlier, so ``num_broadcasts``
defaults to a laptop-friendly value and EXPERIMENTS.md records what each
reproduction used.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.faults.plan import FaultPlan
from repro.net.host import HelloConfig
from repro.phy.capture import CaptureModel
from repro.phy.params import PhyParams

__all__ = ["ScenarioConfig", "default_max_speed_kmh"]


def default_max_speed_kmh(map_units: int) -> float:
    """The paper's map-scaled default speed: 10 km/h per map unit."""
    return 10.0 * map_units


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to run one simulation."""

    scheme: str = "flooding"
    scheme_params: Dict[str, Any] = field(default_factory=dict)
    map_units: int = 5
    unit_length: float = 500.0
    num_hosts: int = 100
    num_broadcasts: int = 100
    interarrival_max: float = 2.0
    max_speed_kmh: Optional[float] = None  # None -> 10 * map_units
    mobility: str = "random-direction"
    hello: HelloConfig = field(default_factory=HelloConfig)
    oracle_neighbors: bool = False
    #: Keep the per-broadcast reachable sets on the records (extra memory;
    #: needed by analyses that ask "did host X get packet P?").
    store_reachable_sets: bool = False
    #: Optional capture-effect model (None = the paper's no-capture
    #: assumption; see repro.phy.capture).
    capture: Optional[CaptureModel] = None
    #: Optional fault schedule (host churn, link loss, HELLO suppression);
    #: executed by a FaultInjector drawing from the "faults" substream so
    #: mobility traces stay identical with faults on or off.
    faults: Optional[FaultPlan] = None
    phy: PhyParams = field(default_factory=PhyParams)
    seed: int = 1
    warmup: Optional[float] = None  # None -> derived from hello settings
    drain: float = 5.0

    def __post_init__(self) -> None:
        if self.map_units < 1:
            raise ValueError(f"map_units must be >= 1, got {self.map_units}")
        if self.num_hosts < 1:
            raise ValueError(f"num_hosts must be >= 1, got {self.num_hosts}")
        if self.num_broadcasts < 0:
            raise ValueError(
                f"num_broadcasts must be >= 0, got {self.num_broadcasts}"
            )
        if self.interarrival_max <= 0:
            raise ValueError(
                f"interarrival_max must be > 0, got {self.interarrival_max}"
            )
        if self.drain < 0:
            raise ValueError(f"drain must be >= 0, got {self.drain}")

    @property
    def resolved_max_speed_kmh(self) -> float:
        if self.max_speed_kmh is not None:
            return self.max_speed_kmh
        return default_max_speed_kmh(self.map_units)

    def resolved_warmup(self, hello_enabled: bool) -> float:
        """Warm-up time before traffic starts.

        Neighbor tables need roughly two hello rounds to become accurate;
        without hellos only a short settling period is used.
        """
        if self.warmup is not None:
            return self.warmup
        if not hello_enabled:
            return 0.5
        interval = self.hello.hi_max if self.hello.dynamic else self.hello.interval
        return 2.0 * interval + 1.0

    def with_overrides(self, **changes: Any) -> "ScenarioConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def label(self) -> str:
        """Compact human-readable identity for tables."""
        speed = self.resolved_max_speed_kmh
        return (
            f"{self.scheme}@{self.map_units}x{self.map_units}"
            f"/{speed:g}km/h/seed{self.seed}"
        )
