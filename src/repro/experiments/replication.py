"""Multi-seed replication with confidence intervals.

The paper reports single numbers from very long runs (10,000 broadcasts);
on reduced workloads the honest equivalent is several independent
replications and a confidence interval.  :func:`replicate` runs the same
scenario under different master seeds (each seed changes mobility, MAC
backoff, scheme jitter and traffic together) and aggregates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from scipy import stats as scipy_stats

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import SimulationResult, run_broadcast_simulation

__all__ = [
    "MetricEstimate",
    "ReplicatedResult",
    "aggregate",
    "check_seeds",
    "replicate",
]


@dataclass(frozen=True)
class MetricEstimate:
    """Mean with a Student-t confidence interval over replications."""

    mean: float
    half_width: float
    confidence: float
    samples: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.3f} +/- {self.half_width:.3f}"

    @classmethod
    def of(
        cls, values: Sequence[float], confidence: float = 0.95
    ) -> Optional["MetricEstimate"]:
        # isfinite, not just not-isnan: one +/-inf sample (e.g. latency of a
        # replication where no broadcast completed) would otherwise poison
        # the mean and CI of every finite replication.
        clean = [v for v in values if math.isfinite(v)]
        if not clean:
            return None
        n = len(clean)
        mean = sum(clean) / n
        if n == 1:
            return cls(mean=mean, half_width=0.0, confidence=confidence, samples=1)
        var = sum((v - mean) ** 2 for v in clean) / (n - 1)
        sem = math.sqrt(var / n)
        t = scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1)
        return cls(
            mean=mean, half_width=t * sem, confidence=confidence, samples=n
        )


@dataclass
class ReplicatedResult:
    """Aggregate of one scenario run under several seeds."""

    config: ScenarioConfig
    results: List[SimulationResult]
    re: Optional[MetricEstimate]
    srb: Optional[MetricEstimate]
    latency: Optional[MetricEstimate]

    def summary(self) -> str:
        return (
            f"{self.config.scheme}@{self.config.map_units}x"
            f"{self.config.map_units} x{len(self.results)} seeds: "
            f"RE={self.re} SRB={self.srb}"
        )


def aggregate(
    config: ScenarioConfig,
    results: List[SimulationResult],
    confidence: float = 0.95,
) -> ReplicatedResult:
    """Fold per-seed results into a :class:`ReplicatedResult`.

    The estimates depend only on the order-independent multiset of sample
    values, but ``results`` is kept in caller order so a parallel runner
    that preserves seed order reproduces the sequential output exactly.
    """
    return ReplicatedResult(
        config=config,
        results=results,
        re=MetricEstimate.of([r.re for r in results], confidence),
        srb=MetricEstimate.of([r.srb for r in results], confidence),
        latency=MetricEstimate.of([r.latency for r in results], confidence),
    )


def check_seeds(seeds: Sequence[int]) -> None:
    """Shared validation for replication seed lists."""
    if not seeds:
        raise ValueError("need at least one seed")
    if len(set(seeds)) != len(seeds):
        raise ValueError(f"duplicate seeds in {seeds}")


def replicate(
    config: ScenarioConfig,
    seeds: Sequence[int],
    confidence: float = 0.95,
) -> ReplicatedResult:
    """Run ``config`` once per seed and aggregate RE/SRB/latency.

    The ``seed`` field of ``config`` is ignored; each replication uses one
    entry of ``seeds``.  (:class:`repro.experiments.parallel.ParallelRunner`
    offers the same aggregation fanned out over worker processes.)
    """
    check_seeds(seeds)
    results = [
        run_broadcast_simulation(config.with_overrides(seed=seed))
        for seed in seeds
    ]
    return aggregate(config, results, confidence)
