"""Controlled static topologies (line, grid, star, ring).

Used by integration tests and the examples to exercise schemes on networks
with *known* structure: a line forces multihop relaying through every host,
a star makes the hub an articulation point, a dense grid produces maximal
redundancy, two distant clusters demonstrate partitioning.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple

from repro.metrics.collector import MetricsCollector
from repro.mobility.map import RectMap
from repro.mobility.models import StaticMobility
from repro.net.host import HelloConfig
from repro.net.network import Network
from repro.phy.params import PhyParams
from repro.schemes.base import RebroadcastScheme
from repro.sim.engine import Scheduler
from repro.sim.randomness import RandomStreams

__all__ = [
    "line_positions",
    "grid_positions",
    "star_positions",
    "ring_positions",
    "two_clusters_positions",
    "build_static_network",
]

Position = Tuple[float, float]


def line_positions(
    n: int, spacing: float, origin: Position = (0.0, 0.0)
) -> List[Position]:
    """``n`` hosts in a horizontal line, ``spacing`` meters apart."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    x0, y0 = origin
    return [(x0 + i * spacing, y0) for i in range(n)]


def grid_positions(
    rows: int, cols: int, spacing: float, origin: Position = (0.0, 0.0)
) -> List[Position]:
    """``rows x cols`` hosts on a square lattice."""
    if rows < 1 or cols < 1:
        raise ValueError(f"need rows, cols >= 1, got {rows}x{cols}")
    x0, y0 = origin
    return [
        (x0 + c * spacing, y0 + r * spacing)
        for r in range(rows)
        for c in range(cols)
    ]


def star_positions(
    leaves: int, radius: float, center: Position = (0.0, 0.0)
) -> List[Position]:
    """A hub (index 0) surrounded by ``leaves`` hosts at ``radius``.

    With ``radius`` larger than half the radio range, leaves cannot hear
    each other directly (for typical counts), making the hub an
    articulation point.
    """
    if leaves < 1:
        raise ValueError(f"need leaves >= 1, got {leaves}")
    cx, cy = center
    out = [center]
    for i in range(leaves):
        angle = 2.0 * math.pi * i / leaves
        out.append((cx + radius * math.cos(angle), cy + radius * math.sin(angle)))
    return out


def ring_positions(
    n: int, radius: float, center: Position = (0.0, 0.0)
) -> List[Position]:
    """``n`` hosts evenly spaced on a circle."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    cx, cy = center
    return [
        (
            cx + radius * math.cos(2.0 * math.pi * i / n),
            cy + radius * math.sin(2.0 * math.pi * i / n),
        )
        for i in range(n)
    ]


def two_clusters_positions(
    per_cluster: int, cluster_radius: float, gap: float
) -> List[Position]:
    """Two rings separated by ``gap`` (center to center): a partitioned net
    when ``gap`` exceeds radio range plus diameters."""
    left = ring_positions(per_cluster, cluster_radius, center=(0.0, 0.0))
    right = ring_positions(per_cluster, cluster_radius, center=(gap, 0.0))
    return left + right


def build_static_network(
    scheduler: Scheduler,
    positions: Sequence[Position],
    scheme_factory: Callable[[], RebroadcastScheme],
    metrics: Optional[MetricsCollector] = None,
    params: Optional[PhyParams] = None,
    hello_config: Optional[HelloConfig] = None,
    seed: int = 0,
    oracle_neighbors: bool = False,
    drop_predicate: Optional[Callable[[int, int], bool]] = None,
) -> Tuple[Network, MetricsCollector]:
    """A :class:`Network` of motionless hosts at exactly ``positions``.

    The world rectangle is sized to contain all positions (plus a radio-
    radius margin) and positions are shifted into the positive quadrant.
    """
    if not positions:
        raise ValueError("need at least one position")
    params = params or PhyParams()
    metrics = metrics if metrics is not None else MetricsCollector()
    min_x = min(p[0] for p in positions)
    min_y = min(p[1] for p in positions)
    margin = params.radio_radius
    shifted = [(p[0] - min_x + margin, p[1] - min_y + margin) for p in positions]
    width = max(p[0] for p in shifted) + margin
    height = max(p[1] for p in shifted) + margin
    world = RectMap(width, height)
    network = Network(
        scheduler=scheduler,
        params=params,
        world=world,
        streams=RandomStreams(seed),
        num_hosts=len(shifted),
        scheme_factory=scheme_factory,
        metrics=metrics,
        max_speed_kmh=0.0,
        hello_config=hello_config,
        oracle_neighbors=oracle_neighbors,
        drop_predicate=drop_predicate,
        mobility_factory=lambda host_id: StaticMobility(shifted[host_id]),
    )
    return network, metrics
