"""Run one scenario end to end (or a sweep of them)."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.recorder import TraceRecorder

from repro.experiments.config import ScenarioConfig
from repro.faults.injector import FaultInjector
from repro.metrics.collector import (
    FaultEventRecord,
    MetricsCollector,
    SimulationSummary,
)
from repro.mobility.map import RectMap
from repro.net.network import Network
from repro.perf import KernelPerf
from repro.phy.channel import ChannelStats
from repro.schemes import make_scheme
from repro.sim.engine import Scheduler
from repro.sim.randomness import RandomStreams
from repro.telemetry.resources import ResourceMonitor, ResourceProfile

__all__ = [
    "SimulationResult",
    "run_broadcast_simulation",
    "run_broadcast_batch",
    "run_sweep",
]


@dataclass
class SimulationResult:
    """Output of one simulation run."""

    config: ScenarioConfig
    metrics: MetricsCollector
    stats: SimulationSummary
    channel_stats: ChannelStats
    end_time: float
    events_processed: int
    #: Total MAC backoff procedures across all hosts (contention proxy).
    backoffs_started: int = 0
    #: Executed fault events, in order (empty without a fault plan).
    fault_trace: List[FaultEventRecord] = field(default_factory=list)
    #: Broadcast requests skipped because the drawn source was down.
    broadcasts_skipped: int = 0
    #: Host wall-clock seconds this run took (build + simulate + summarize).
    #: Perf metadata: excluded from value equality.
    wall_time: float = field(default=0.0, compare=False)
    #: Whether this result was served from the on-disk result cache
    #: (see :mod:`repro.experiments.parallel`) instead of simulated.
    #: Provenance metadata: excluded from value equality.
    from_cache: bool = field(default=False, compare=False)
    #: Kernel counters collected at the end of the run (see
    #: :class:`repro.perf.KernelPerf`).  Perf metadata: excluded from
    #: value equality (the counters themselves are deterministic, but a
    #: cached result may predate the field).
    perf: Optional[KernelPerf] = field(default=None, compare=False)
    #: What the run cost the process (peak RSS, GC pressure, subsystem
    #: wall estimate; see :class:`repro.telemetry.resources.
    #: ResourceProfile`).  Host-machine noise: excluded from equality,
    #: and ``None`` on results unpickled from a pre-resources cache.
    resources: Optional["ResourceProfile"] = field(default=None, compare=False)

    @property
    def events_per_sec(self) -> float:
        """Scheduler events executed per wall-clock second (perf counter)."""
        if self.wall_time <= 0.0:
            return math.nan
        return self.events_processed / self.wall_time

    @property
    def re(self) -> float:
        """Mean reachability (NaN if undefined for every broadcast)."""
        return self.stats.reachability.mean if self.stats.reachability else math.nan

    @property
    def srb(self) -> float:
        """Mean saved-rebroadcast fraction."""
        return (
            self.stats.saved_rebroadcast.mean
            if self.stats.saved_rebroadcast
            else math.nan
        )

    @property
    def latency(self) -> float:
        """Mean broadcast latency in seconds."""
        return self.stats.latency.mean if self.stats.latency else math.nan

    @property
    def hellos(self) -> int:
        return self.stats.hello_packets_sent

    def summary(self) -> str:
        """One-line human-readable result."""
        line = (
            f"{self.config.label()}: RE={self.re:.3f} SRB={self.srb:.3f} "
            f"latency={self.latency * 1000:.1f}ms "
            f"broadcasts={self.stats.broadcasts} hellos={self.hellos}"
        )
        if self.fault_trace or self.broadcasts_skipped:
            line += (
                f" faults={len(self.fault_trace)}"
                f" skipped={self.broadcasts_skipped}"
            )
        return line


def run_broadcast_simulation(
    config: ScenarioConfig,
    network_hook: Optional[Callable[[Network], None]] = None,
    trace: Optional["TraceRecorder"] = None,
    kernel: Optional[str] = None,
    position_buffers: Optional[Any] = None,
) -> SimulationResult:
    """Build the world from ``config``, drive traffic, and summarize.

    ``network_hook`` (if given) runs after network construction but before
    the simulation starts -- used by tests to inject faults or replace
    pieces.

    ``trace`` (an optional :class:`repro.trace.TraceRecorder`) arms the
    structured tracing instrumentation across every layer; with the
    recorder's ``sample_dt`` set, the time-series sampler runs too.  Tracing
    is not part of :class:`ScenarioConfig` on purpose: it never changes
    results, so cached-result digests stay comparable traced or not.

    ``kernel`` overrides the process-wide kernel mode for this run (see
    :mod:`repro.kernel`); ``position_buffers`` lets a batch driver share
    the vector kernel's numpy allocations across runs.  Neither is part of
    :class:`ScenarioConfig`: like tracing, the kernel is an execution
    detail that never changes results, so cached-result digests stay
    comparable across kernels.

    Broadcast sources are picked uniformly at random per request and the
    interarrival time is uniform in [0, ``interarrival_max``], per the
    paper.  Traffic begins after a warm-up long enough for neighbor tables
    to populate.
    """
    wall_start = time.perf_counter()
    monitor = ResourceMonitor().start()
    scheduler = Scheduler()
    streams = RandomStreams(config.seed)
    metrics = MetricsCollector(store_reachable_sets=config.store_reachable_sets)
    world = RectMap.square_units(config.map_units, config.unit_length)

    def scheme_factory():
        return make_scheme(config.scheme, **config.scheme_params)

    network = Network(
        scheduler=scheduler,
        params=config.phy,
        world=world,
        streams=streams,
        num_hosts=config.num_hosts,
        scheme_factory=scheme_factory,
        metrics=metrics,
        max_speed_kmh=config.resolved_max_speed_kmh,
        mobility=config.mobility,
        hello_config=config.hello,
        oracle_neighbors=config.oracle_neighbors,
        capture=config.capture,
        trace=trace,
        kernel=kernel,
        position_buffers=position_buffers,
    )
    if trace is not None:
        trace.meta.update(
            scheme=config.scheme,
            seed=config.seed,
            num_hosts=config.num_hosts,
            map_units=config.map_units,
        )
    if network_hook is not None:
        network_hook(network)
    network.start()

    hello_enabled = any(h.hello_enabled for h in network.hosts)
    warmup = config.resolved_warmup(hello_enabled)
    traffic_rng = streams.stream("traffic")

    def initiate(source_id: int) -> None:
        # With faults enabled the drawn source may be down; skip the request
        # (the draw itself already happened, so traffic timing is identical
        # across schemes and across fault plans).
        if not network.hosts[source_id].alive:
            metrics.on_broadcast_skipped(source_id, scheduler.now)
            return
        network.initiate_broadcast(source_id)

    t = warmup
    for _ in range(config.num_broadcasts):
        t += traffic_rng.uniform(0.0, config.interarrival_max)
        source = traffic_rng.randrange(config.num_hosts)
        scheduler.schedule_at(t, initiate, source)
    end_time = t + config.drain

    injector = None
    if config.faults is not None and not config.faults.is_empty():
        # Faults draw exclusively from a forked substream: mobility / MAC /
        # scheme streams see the same sequences with faults on or off.
        injector = FaultInjector(
            scheduler,
            network,
            config.faults,
            streams.fork("faults"),
            horizon=end_time,
            trace_recorder=trace,
        )
        injector.install()

    if trace is not None:
        trace.meta["end_time"] = end_time
        if trace.sample_dt is not None:
            from repro.trace.sampler import TimeSeriesSampler

            TimeSeriesSampler(scheduler, network, metrics, trace).start(
                end_time
            )

    scheduler.run(until=end_time)

    stats = metrics.summarize(end_time)
    perf = KernelPerf.collect(scheduler, network)
    wall_time = time.perf_counter() - wall_start
    return SimulationResult(
        config=config,
        metrics=metrics,
        stats=stats,
        channel_stats=network.channel.stats,
        end_time=end_time,
        events_processed=scheduler.events_processed,
        backoffs_started=sum(
            host.mac.stats.backoffs_started for host in network.hosts
        ),
        fault_trace=list(injector.trace) if injector is not None else [],
        broadcasts_skipped=metrics.broadcasts_skipped,
        wall_time=wall_time,
        perf=perf,
        resources=monitor.finish(wall_time, perf),
    )


def run_sweep(
    configs: Iterable[ScenarioConfig],
    progress: Optional[Callable[[ScenarioConfig, SimulationResult], None]] = None,
) -> List[SimulationResult]:
    """Run several scenarios sequentially, optionally reporting progress."""
    results = []
    for config in configs:
        result = run_broadcast_simulation(config)
        if progress is not None:
            progress(config, result)
        results.append(result)
    return results


def run_broadcast_batch(
    config: ScenarioConfig,
    seeds: Iterable[int],
    kernel: Optional[str] = None,
    progress: Optional[Callable[[ScenarioConfig, SimulationResult], None]] = None,
) -> List[SimulationResult]:
    """Run ``config`` once per seed in this process, sharing world setup.

    The multi-broadcast batch mode for replication sweeps: one process,
    many seeds, one set of vector-kernel numpy allocations
    (:class:`repro.mobility.store.PositionBuffers`) reused across the
    world builds instead of reallocated per seed.  Each run is otherwise
    the full :func:`run_broadcast_simulation` pipeline with its own
    scheduler, RNG streams and network, so every result is bit-identical
    to running that seed solo.
    """
    from dataclasses import replace

    from repro.kernel import resolve_kernel

    buffers = None
    if resolve_kernel(kernel) == "vector":
        from repro.mobility.store import PositionBuffers

        buffers = PositionBuffers(config.num_hosts)
    results = []
    for seed in seeds:
        seeded = config if seed == config.seed else replace(config, seed=seed)
        result = run_broadcast_simulation(
            seeded, kernel=kernel, position_buffers=buffers
        )
        if progress is not None:
            progress(seeded, result)
        results.append(result)
    return results
