"""Generate a paper-vs-measured reproduction report (markdown).

Drives every figure module and renders the measured series next to the
paper's expected qualitative shape.  This is the programmatic source of
EXPERIMENTS.md::

    python -m repro.experiments.report > report.md
    python -m repro.experiments.report --full   # paper-scale grids (slow)
"""

from __future__ import annotations

import sys
import time
from typing import List, Sequence

from repro.experiments.figures import (
    fig01,
    fig02,
    fig05,
    fig07,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
)

__all__ = ["generate_report", "main"]


def _code_block(text: str) -> str:
    return "```\n" + text + "\n```"


def generate_report(
    maps: Sequence[int] = (1, 5, 9),
    num_broadcasts: int = 30,
    seed: int = 1,
    progress=None,
) -> str:
    """Run every figure and return the full markdown report."""

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    sections: List[str] = []
    started = time.time()

    note("fig01")
    eac = fig01.run(max_k=10, trials=2000, seed=seed)
    sections.append(
        "## Fig. 1 — Expected additional coverage EAC(k)\n\n"
        "Paper: EAC(1) ~ 0.41, decreasing, below 0.05 from k = 4.\n\n"
        + _code_block(fig01.format_table(eac))
    )

    note("fig02")
    cf = fig02.run(max_n=10, trials=5000, seed=seed)
    sections.append(
        "## Fig. 2 — Contention-free probabilities cf(n, k)\n\n"
        "Paper: cf(n, 0) > 0.8 for n >= 6; cf(n, 1) drops sharply; "
        "cf(n, n-1) = 0.\n\n" + _code_block(fig02.format_table(cf))
    )

    note("fig05a")
    sections.append(
        "## Fig. 5 — Tuning C(n) for the adaptive counter scheme\n\n"
        "Paper: slope 1 (C(n) = n + 1) best on sparse maps; n1 = 4 "
        "satisfies RE with the best saving; n2 = 12 best sparse-map RE; "
        "mid-curves trade SRB at similar RE.\n\n"
        + _code_block(
            fig05.run_5a(maps=maps, num_broadcasts=num_broadcasts, seed=seed).table()
        )
    )
    note("fig05b")
    sections.append(
        _code_block(
            fig05.run_5b(maps=maps, num_broadcasts=num_broadcasts, seed=seed).table()
        )
    )
    note("fig05c")
    sections.append(
        _code_block(
            fig05.run_5c(maps=maps, num_broadcasts=num_broadcasts, seed=seed).table()
        )
    )
    note("fig05d")
    sections.append(
        _code_block(
            fig05.run_5d(maps=maps, num_broadcasts=num_broadcasts, seed=seed).table()
        )
    )

    note("fig07")
    sections.append(
        "## Fig. 7 — Adaptive counter vs fixed counter\n\n"
        "Paper: C = 2 collapses on sparse maps, C = 6 wastes SRB "
        "everywhere, AC keeps RE high with C = 2-like saving on dense "
        "maps; AC latency smallest on dense maps.\n\n"
        + _code_block(
            fig07.run(maps=maps, num_broadcasts=num_broadcasts, seed=seed)
            .table(metrics=("re", "srb", "latency"))
        )
    )

    note("fig09")
    sections.append(
        "## Fig. 9 — A(n) candidates for the adaptive location scheme\n\n"
        "Paper: (6,12), (8,12), (8,10) all satisfactory; (6,12) chosen.\n\n"
        + _code_block(
            fig09.run(maps=maps, num_broadcasts=num_broadcasts, seed=seed).table()
        )
    )

    note("fig10")
    sections.append(
        "## Fig. 10 — Adaptive location vs fixed location\n\n"
        "Paper: fixed thresholds lose RE on sparse maps (worse for larger "
        "A); AL keeps RE and SRB; AL latency lowest on dense maps.\n\n"
        + _code_block(
            fig10.run(maps=maps, num_broadcasts=num_broadcasts, seed=seed)
            .table(metrics=("re", "srb", "latency"))
        )
    )

    note("fig11")
    # Fig. 11 is about sparse maps; take the sparser half of the sweep.
    fig11_maps = tuple(m for m in maps if m >= 5) or tuple(maps)
    panels = fig11.run(
        maps=fig11_maps,
        speeds=(20.0, 80.0),
        hello_intervals=(1.0, 10.0, 30.0),
        num_broadcasts=num_broadcasts,
        seed=seed,
    )
    fig11_tables = "\n\n".join(
        panel.table(metrics=("re", "srb")) for panel in panels.values()
    )
    sections.append(
        "## Fig. 11 — Neighbor coverage vs hello interval and speed\n\n"
        "Paper: long hello intervals significantly degrade RE on sparse "
        "maps, worse at higher speed; small maps barely affected.\n\n"
        + _code_block(fig11_tables)
    )

    note("fig12")
    sections.append(
        "## Fig. 12 — NC with dynamic hello interval\n\n"
        "Paper: RE high independent of speed/density with significant "
        "SRB; hello count near the hi_min rate on sparse maps and near "
        "the hi_max rate on the 1x1 map.\n\n"
        + _code_block(
            fig12.run(
                maps=maps, speeds=(20.0, 80.0),
                num_broadcasts=num_broadcasts, seed=seed,
            ).table(metrics=("re", "srb", "hellos"))
        )
    )

    note("fig13")
    sections.append(
        "## Fig. 13 — Overall comparison\n\n"
        "Paper: flooding SRB = 0 with suboptimal dense-map RE; adaptive "
        "schemes upper-right; NC best dense, AC/AL best sparse.\n\n"
        + _code_block(
            fig13.run(maps=maps, num_broadcasts=num_broadcasts, seed=seed)
            .table(metrics=("re", "srb"))
        )
    )

    elapsed = time.time() - started
    header = (
        "# Reproduction report\n\n"
        f"Generated by `python -m repro.experiments.report` "
        f"(maps={list(maps)}, broadcasts/scenario={num_broadcasts}, "
        f"seed={seed}; wall time {elapsed:.0f}s).\n"
    )
    return header + "\n\n" + "\n\n".join(sections) + "\n"


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    full = "--full" in argv
    maps = (1, 3, 5, 7, 9, 11) if full else (1, 5, 9)
    n = 100 if full else 30
    report = generate_report(
        maps=maps,
        num_broadcasts=n,
        progress=lambda msg: print(f"[report] {msg}...", file=sys.stderr),
    )
    print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
