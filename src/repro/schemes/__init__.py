"""Broadcast schemes: the paper's contributions and the [15] baselines.

===================  ==========================================  ==========
Registry name        Scheme                                      Origin
===================  ==========================================  ==========
flooding             blind flooding                              baseline
counter              fixed-threshold counter ``C``               [15]
distance             fixed-threshold distance ``D``              [15]
location             fixed-threshold additional coverage ``A``   [15]
adaptive-counter     ``C(n)`` of neighbor count                  this paper
adaptive-location    ``A(n)`` of neighbor count                  this paper
neighbor-coverage    two-hop pending-set suppression             this paper
===================  ==========================================  ==========

:func:`make_scheme` builds a configured scheme instance from a registry
name plus keyword parameters (e.g. ``make_scheme("counter", threshold=4)``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.schemes.adaptive_counter import AdaptiveCounterScheme
from repro.schemes.adaptive_location import AdaptiveLocationScheme
from repro.schemes.base import (
    DeferredRebroadcastScheme,
    PendingBroadcast,
    RebroadcastScheme,
    SchemeHost,
)
from repro.schemes.counter import CounterScheme
from repro.schemes.distance import DistanceScheme
from repro.schemes.flooding import FloodingScheme
from repro.schemes.location import LocationScheme
from repro.schemes.neighbor_coverage import NeighborCoverageScheme
from repro.schemes.thresholds import (
    make_counter_threshold,
    make_location_threshold,
)

__all__ = [
    "RebroadcastScheme",
    "DeferredRebroadcastScheme",
    "PendingBroadcast",
    "SchemeHost",
    "FloodingScheme",
    "CounterScheme",
    "DistanceScheme",
    "LocationScheme",
    "AdaptiveCounterScheme",
    "AdaptiveLocationScheme",
    "NeighborCoverageScheme",
    "SCHEME_REGISTRY",
    "make_scheme",
    "make_counter_threshold",
    "make_location_threshold",
]

SCHEME_REGISTRY: Dict[str, Callable[..., RebroadcastScheme]] = {
    "flooding": FloodingScheme,
    "counter": CounterScheme,
    "distance": DistanceScheme,
    "location": LocationScheme,
    "adaptive-counter": AdaptiveCounterScheme,
    "adaptive-location": AdaptiveLocationScheme,
    "neighbor-coverage": NeighborCoverageScheme,
}


def make_scheme(name: str, **params: Any) -> RebroadcastScheme:
    """Instantiate a scheme from its registry name.

    Raises ``ValueError`` with the list of known names on a bad name, so a
    typo in an experiment config fails loudly and early.
    """
    factory = SCHEME_REGISTRY.get(name)
    if factory is None:
        known = ", ".join(sorted(SCHEME_REGISTRY))
        raise ValueError(f"unknown scheme {name!r}; known schemes: {known}")
    return factory(**params)
