"""Broadcast schemes: the paper's contributions, [15] baselines, and a zoo.

===================  ==========================================  ==========
Registry name        Scheme                                      Origin
===================  ==========================================  ==========
flooding             blind flooding                              baseline
counter              fixed-threshold counter ``C``               [15]
distance             fixed-threshold distance ``D``              [15]
location             fixed-threshold additional coverage ``A``   [15]
adaptive-counter     ``C(n)`` of neighbor count                  this paper
adaptive-location    ``A(n)`` of neighbor count                  this paper
neighbor-coverage    two-hop pending-set suppression             this paper
gossip               rebroadcast with fixed probability ``p``    literature
adaptive-gossip      gossip with ``p(n)`` of neighbor count      literature
counter-gossip       coin gate ``p`` + counter gate ``C``        literature
self-pruning         one-shot pending-set pruning at S1          literature
===================  ==========================================  ==========

Each scheme class registers itself with the plugin registry
(:mod:`repro.schemes.registry`) via the ``@register_scheme`` decorator,
declaring its constructor parameter schema and provenance;
:data:`SCHEME_REGISTRY` maps registry names to those
:class:`~repro.schemes.registry.SchemeSpec` entries (each spec is itself a
callable factory).  :func:`make_scheme` builds a configured instance from a
registry name plus keyword parameters
(e.g. ``make_scheme("counter", threshold=4)``), schema-validating the
parameters first.
"""

from __future__ import annotations

from repro.schemes.base import (
    DeferredRebroadcastScheme,
    PendingBroadcast,
    RebroadcastScheme,
    SchemeHost,
)
from repro.schemes.registry import (
    SCHEME_REGISTRY,
    ParamSpec,
    SchemeSpec,
    get_spec,
    make_scheme,
    register_scheme,
)

# Importing the scheme modules runs their @register_scheme decorators and
# populates SCHEME_REGISTRY.  Order fixes the registry's listing order:
# paper schemes first, zoo variants after.
from repro.schemes.flooding import FloodingScheme
from repro.schemes.counter import CounterScheme
from repro.schemes.distance import DistanceScheme
from repro.schemes.location import LocationScheme
from repro.schemes.adaptive_counter import AdaptiveCounterScheme
from repro.schemes.adaptive_location import AdaptiveLocationScheme
from repro.schemes.neighbor_coverage import NeighborCoverageScheme
from repro.schemes.gossip import AdaptiveGossipScheme, GossipScheme
from repro.schemes.hybrid import CounterGossipScheme
from repro.schemes.self_pruning import SelfPruningScheme
from repro.schemes.thresholds import (
    make_counter_threshold,
    make_location_threshold,
)

__all__ = [
    "RebroadcastScheme",
    "DeferredRebroadcastScheme",
    "PendingBroadcast",
    "SchemeHost",
    "FloodingScheme",
    "CounterScheme",
    "DistanceScheme",
    "LocationScheme",
    "AdaptiveCounterScheme",
    "AdaptiveLocationScheme",
    "NeighborCoverageScheme",
    "GossipScheme",
    "AdaptiveGossipScheme",
    "CounterGossipScheme",
    "SelfPruningScheme",
    "ParamSpec",
    "SchemeSpec",
    "SCHEME_REGISTRY",
    "register_scheme",
    "get_spec",
    "make_scheme",
    "make_counter_threshold",
    "make_location_threshold",
]
