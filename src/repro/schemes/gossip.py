"""Probabilistic (gossip) rebroadcast: ``P(p)`` and a neighbor-adaptive p.

The gossip family (PAPERS.md: "Probabilistic algorithm in noisy MANETs";
Haas/Halpern/Li's GOSSIP1) replaces the counter/coverage assessment with a
single Bernoulli draw at S1: rebroadcast with probability ``p``, stay
silent with probability ``1 - p``.  There is no S4 cancellation -- the coin
is the whole decision -- so a losing draw is an immediate inhibit and a
winning draw always reaches the air (after the usual S2 jitter).

:class:`AdaptiveGossipScheme` makes ``p`` a function of the current
neighbor count, mirroring the paper's Observations 1 and 2: a sparse host
(``n <= n1``) is likely at a critical position and rebroadcasts surely
(``p = 1``); in crowded neighborhoods ``p`` decays as ``n1 / n`` down to a
floor ``p_min`` so the expected number of relays per neighborhood stays
roughly constant.

The coin is drawn from ``host.scheme_rng`` -- the same per-host stream the
S2 jitter uses -- so runs stay deterministic per seed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.net.packets import BroadcastPacket
from repro.schemes.base import DeferredRebroadcastScheme, PendingBroadcast
from repro.schemes.registry import ParamSpec, register_scheme

__all__ = ["GossipScheme", "AdaptiveGossipScheme"]

#: Default rebroadcast probability (GOSSIP1's sweet spot 0.65-0.75).
DEFAULT_GOSSIP_P = 0.7

#: Adaptive variant: sure rebroadcast up to this many neighbors (the same
#: knee the paper tunes for A(n); below it a host is likely critical).
DEFAULT_GOSSIP_N1 = 6
#: ...then p decays as n1/n but never below this floor.
DEFAULT_GOSSIP_P_MIN = 0.4


@register_scheme(
    params=(
        ParamSpec("p", "float", DEFAULT_GOSSIP_P, minimum=0.0, maximum=1.0,
                  doc="rebroadcast probability (one Bernoulli draw at S1)"),
    ),
    description="gossip: rebroadcast with fixed probability p",
    origin="literature",
)
class GossipScheme(DeferredRebroadcastScheme):
    """Rebroadcast with probability ``p``, decided once at first hearing."""

    name = "gossip"

    def __init__(self, p: float = DEFAULT_GOSSIP_P) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"gossip p is a probability, got {p}")
        super().__init__()
        self.p = p

    def describe(self) -> str:
        return f"P(p={self.p:g})"

    def rebroadcast_probability(self) -> float:
        """The ``p`` in force at draw time (constant here; adaptive in
        subclasses)."""
        return self.p

    def init_assessment(
        self,
        packet: BroadcastPacket,
        sender_id: int,
        sender_position: Optional[Tuple[float, float]],
    ) -> List[float]:
        # S1: draw the coin once; [draw, p] is the entire assessment.
        # A draw of exactly p loses, so p = 0 never relays and p = 1
        # always does (random() is in [0, 1)).
        draw = self.host.scheme_rng.random()
        return [draw, self.rebroadcast_probability()]

    def update_assessment(
        self,
        state: PendingBroadcast,
        sender_id: int,
        sender_position: Optional[Tuple[float, float]],
    ) -> None:
        pass  # no S4: hearing the packet again never changes the coin

    def should_inhibit(self, state: PendingBroadcast) -> bool:
        draw, p = state.assessment
        return draw >= p

    def trace_provenance(self, state: PendingBroadcast):
        draw, p = state.assessment
        return (None, p, draw)


@register_scheme(
    params=(
        ParamSpec("n1", "int", DEFAULT_GOSSIP_N1, minimum=1,
                  doc="sure rebroadcast (p = 1) up to n1 neighbors"),
        ParamSpec("p_min", "float", DEFAULT_GOSSIP_P_MIN,
                  minimum=0.0, maximum=1.0,
                  doc="floor of the n1/n decay in dense neighborhoods"),
    ),
    description="gossip with neighbor-count-adaptive p(n)",
    origin="literature",
)
class AdaptiveGossipScheme(GossipScheme):
    """Gossip with ``p(n) = 1`` below ``n1`` neighbors, else
    ``max(p_min, n1 / n)``."""

    name = "adaptive-gossip"
    needs_hello = True

    def __init__(
        self,
        n1: int = DEFAULT_GOSSIP_N1,
        p_min: float = DEFAULT_GOSSIP_P_MIN,
    ) -> None:
        if n1 < 1:
            raise ValueError(f"n1 must be >= 1, got {n1}")
        if not 0.0 <= p_min <= 1.0:
            raise ValueError(f"p_min is a probability, got {p_min}")
        super().__init__(p=1.0)
        self.n1 = n1
        self.p_min = p_min

    def describe(self) -> str:
        return f"P(n1={self.n1},p_min={self.p_min:g})"

    def rebroadcast_probability(self) -> float:
        n = self.host.neighbor_count()
        if n <= self.n1:
            return 1.0
        return max(self.p_min, self.n1 / n)

    def trace_provenance(self, state: PendingBroadcast):
        draw, p = state.assessment
        return (self.host.neighbor_count(), p, draw)
