"""Self-pruning efficient flooding (PAPERS.md: "Towards Optimal Broadcast").

The simplest connected-dominating-set-flavoured baseline on the existing
two-hop neighbor tables (Lim & Kim's self-pruning): when host ``x`` hears
packet P from ``h``, it computes the same pending set the
neighbor-coverage scheme does -- ``T = N_x - N_{x,h} - {h}`` -- but decides
*once*, at S1.  If ``T`` is empty the rebroadcast is pruned immediately;
otherwise the host relays after the usual jitter, and later copies of P
never revisit the decision (no S4/S5 machinery).

Compared with the paper's neighbor-coverage scheme this trades S4's extra
suppression for a fixed, locally-evaluable forwarding rule -- the hosts
that relay approximate a dominating set chosen against the first sender
only.  Same knowledge requirements: HELLOs with piggybacked neighbor
lists (``needs_hello`` + ``needs_two_hop_hello``).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.schemes.base import PendingBroadcast
from repro.schemes.neighbor_coverage import NeighborCoverageScheme
from repro.schemes.registry import ParamSpec, register_scheme

__all__ = ["SelfPruningScheme"]


@register_scheme(
    params=(
        ParamSpec("oracle", "bool", False,
                  doc="read neighbor sets from geometric truth instead of "
                      "HELLO-built tables (staleness ablation)"),
    ),
    description="self-pruning: relay iff the first sender left "
                "some neighbor uncovered",
    origin="literature",
)
class SelfPruningScheme(NeighborCoverageScheme):
    """Neighbor-coverage's S1 test with the S4 updates switched off."""

    name = "self-pruning"

    def describe(self) -> str:
        return "SP(oracle)" if self.oracle else "SP"

    def update_assessment(
        self,
        state: PendingBroadcast,
        sender_id: int,
        sender_position: Optional[Tuple[float, float]],
    ) -> None:
        # The decision is fixed at S1: later senders never shrink T, so a
        # deferred rebroadcast always reaches the air.
        pass
