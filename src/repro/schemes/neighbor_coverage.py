"""Neighbor-coverage scheme (paper Section 3.3 -- third contribution).

No GPS needed: HELLO packets piggyback each host's one-hop neighbor set, so
host ``x`` knows ``N_x`` and ``N_{x,h}`` (the neighbors of each neighbor
``h``).  When ``x`` hears packet P from ``h``, every member of
``N_{x,h} | {h}`` is presumed covered; ``x`` keeps a pending set ``T`` of
neighbors it still believes uncovered:

- S1: ``T = N_x - N_{x,h} - {h}``; if empty, inhibit immediately.
- S4: on hearing P again from ``h'``, ``T = T - N_{x,h'} - {h'}``; if empty,
  cancel the pending rebroadcast.

Accuracy of ``N_x`` / ``N_{x,h}`` depends on host mobility versus the hello
interval -- the subject of Figs. 11 and 12.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.net.packets import BroadcastPacket
from repro.schemes.base import DeferredRebroadcastScheme, PendingBroadcast
from repro.schemes.registry import ParamSpec, register_scheme

__all__ = ["NeighborCoverageScheme"]


@register_scheme(
    params=(
        ParamSpec("oracle", "bool", False,
                  doc="read neighbor sets from geometric truth instead of "
                      "HELLO-built tables (staleness ablation)"),
    ),
    description="two-hop pending-set suppression",
    origin="this paper",
)
class NeighborCoverageScheme(DeferredRebroadcastScheme):
    """Rebroadcast only while some neighbor is believed uncovered.

    With ``oracle=True`` the one-hop and two-hop sets are read from the
    channel's geometric truth instead of the HELLO-built tables -- an
    ablation that isolates how much of NC's reachability loss is neighbor-
    knowledge staleness versus plain collisions.
    """

    name = "neighbor-coverage"
    needs_hello = True
    needs_two_hop_hello = True

    def __init__(self, oracle: bool = False) -> None:
        super().__init__()
        self.oracle = oracle

    def describe(self) -> str:
        return "NC(oracle)" if self.oracle else "NC"

    def _current_neighbors(self) -> Set[int]:
        if self.oracle:
            return set(self.host.channel.neighbors_in_range(self.host.host_id))
        return self.host.neighbor_table.neighbor_ids(self.host.scheduler.now)

    def _covered_by(self, sender_id: int) -> Set[int]:
        if self.oracle:
            return set(self.host.channel.neighbors_in_range(sender_id)) | {
                sender_id
            }
        table = self.host.neighbor_table
        return set(table.two_hop_neighbors(sender_id)) | {sender_id}

    def init_assessment(
        self,
        packet: BroadcastPacket,
        sender_id: int,
        sender_position: Optional[Tuple[float, float]],
    ) -> Set[int]:
        return self._current_neighbors() - self._covered_by(sender_id)

    def update_assessment(
        self,
        state: PendingBroadcast,
        sender_id: int,
        sender_position: Optional[Tuple[float, float]],
    ) -> None:
        state.assessment -= self._covered_by(sender_id)

    def should_inhibit(self, state: PendingBroadcast) -> bool:
        return not state.assessment

    def trace_provenance(self, state: PendingBroadcast):
        # The "threshold" is the empty pending set: inhibit iff |T| == 0.
        return (self.host.neighbor_count(), 0, len(state.assessment))
