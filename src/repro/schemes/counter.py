"""Fixed-threshold counter-based scheme (from [15], reviewed in Section 2.3.1).

A counter ``c`` tracks how many times the host has heard the same broadcast
packet; when ``c`` reaches the constant threshold ``C`` before the
rebroadcast gets on the air, the rebroadcast is cancelled.  ``C`` of 3-4
saves many rebroadcasts in dense networks; ``C > 6`` behaves almost like
flooding.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.net.packets import BroadcastPacket
from repro.schemes.base import DeferredRebroadcastScheme, PendingBroadcast
from repro.schemes.registry import ParamSpec, register_scheme

__all__ = ["CounterScheme"]


@register_scheme(
    params=(
        ParamSpec("threshold", "int", 3, minimum=2,
                  doc="inhibit after hearing the packet C times"),
    ),
    description="fixed-threshold counter C",
    origin="[15]",
)
class CounterScheme(DeferredRebroadcastScheme):
    """Inhibit once the packet has been heard ``threshold`` times."""

    name = "counter"

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 2:
            raise ValueError(
                f"counter threshold must be >= 2 (got {threshold}); C < 2 "
                "would inhibit every rebroadcast"
            )
        super().__init__()
        self.threshold = threshold

    def describe(self) -> str:
        return f"C={self.threshold}"

    def init_assessment(
        self,
        packet: BroadcastPacket,
        sender_id: int,
        sender_position: Optional[Tuple[float, float]],
    ) -> List[int]:
        return [1]  # S1: c = 1

    def update_assessment(
        self,
        state: PendingBroadcast,
        sender_id: int,
        sender_position: Optional[Tuple[float, float]],
    ) -> None:
        state.assessment[0] += 1  # S4: c += 1

    def should_inhibit(self, state: PendingBroadcast) -> bool:
        return state.assessment[0] >= self.threshold

    def trace_provenance(self, state: PendingBroadcast):
        return (None, self.threshold, state.assessment[0])
