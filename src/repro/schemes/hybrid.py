"""Counter + probability hybrid (PAPERS.md: "Improvised Broadcast Algorithm").

The pure counter scheme always relays in sparse spots but wastes nothing on
the coin; pure gossip thins the storm but can starve sparse regions.  The
hybrid composes both gates: at S1 the host draws one Bernoulli coin with
probability ``p`` -- a losing draw inhibits immediately, exactly like
gossip -- and a winning draw falls through to the ordinary counter
assessment, so the rebroadcast is still cancelled (S5) if the packet is
heard ``threshold`` times before reaching the air.

Equivalently: rebroadcast with probability ``p``, and only while
``c < C``.  ``p = 1`` degenerates to the counter scheme and ``C = inf``
(practically: a large threshold) to fixed gossip.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.net.packets import BroadcastPacket
from repro.schemes.base import PendingBroadcast
from repro.schemes.counter import CounterScheme
from repro.schemes.gossip import DEFAULT_GOSSIP_P
from repro.schemes.registry import ParamSpec, register_scheme

__all__ = ["CounterGossipScheme"]

#: A slightly laxer counter gate than the pure counter default: the coin
#: already thins the relays, so the counter only needs to catch pile-ups.
DEFAULT_HYBRID_THRESHOLD = 4


@register_scheme(
    params=(
        ParamSpec("threshold", "int", DEFAULT_HYBRID_THRESHOLD, minimum=2,
                  doc="counter gate: cancel once the packet was heard "
                      "C times"),
        ParamSpec("p", "float", DEFAULT_GOSSIP_P, minimum=0.0, maximum=1.0,
                  doc="probability gate: one Bernoulli draw at S1"),
    ),
    description="hybrid: rebroadcast with probability p while c < C",
    origin="literature",
)
class CounterGossipScheme(CounterScheme):
    """Gossip coin at S1 composed with the counter threshold at S4."""

    name = "counter-gossip"

    def __init__(
        self,
        threshold: int = DEFAULT_HYBRID_THRESHOLD,
        p: float = DEFAULT_GOSSIP_P,
    ) -> None:
        super().__init__(threshold=threshold)
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"hybrid p is a probability, got {p}")
        self.p = p

    def describe(self) -> str:
        return f"C={self.threshold},p={self.p:g}"

    def init_assessment(
        self,
        packet: BroadcastPacket,
        sender_id: int,
        sender_position: Optional[Tuple[float, float]],
    ) -> List[float]:
        # [c, draw]: the coin is drawn exactly once, at S1; a draw >= p
        # loses (so p = 0 never relays, p = 1 always passes the gate).
        return [1, self.host.scheme_rng.random()]

    def update_assessment(
        self,
        state: PendingBroadcast,
        sender_id: int,
        sender_position: Optional[Tuple[float, float]],
    ) -> None:
        state.assessment[0] += 1

    def should_inhibit(self, state: PendingBroadcast) -> bool:
        c, draw = state.assessment
        return draw >= self.p or c >= self.threshold

    def trace_provenance(self, state: PendingBroadcast):
        # Report whichever gate is (or would be) decisive: the coin when
        # it lost, the counter otherwise.
        c, draw = state.assessment
        if draw >= self.p:
            return (None, self.p, draw)
        return (None, self.threshold, c)
