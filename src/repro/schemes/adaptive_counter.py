"""Adaptive counter-based scheme (paper Section 3.1 -- first contribution).

Identical to the counter scheme except the threshold is the function
``C(n)`` of the host's *current* neighbor count ``n``: high (``n + 1``) when
the neighborhood is sparse -- a host there is likely at a critical position
and must rebroadcast (Observation 1) -- and the floor value 2 when crowded,
where saving matters more than coverage (Observation 2).

``n`` is re-read from the neighbor table at every threshold test, so a host
whose neighborhood changes mid-wait adapts on the fly.
"""

from __future__ import annotations

from typing import Optional

from repro.schemes.base import PendingBroadcast
from repro.schemes.counter import CounterScheme
from repro.schemes.registry import ParamSpec, register_scheme
from repro.schemes.thresholds import (
    DEFAULT_COUNTER_N1,
    DEFAULT_COUNTER_N2,
    MIDCURVE_SHAPES,
    CounterThresholdFn,
    make_counter_threshold,
)

__all__ = ["AdaptiveCounterScheme"]


@register_scheme(
    params=(
        ParamSpec("threshold_fn", "callable",
                  doc="explicit C(n) (default: the paper's tuned curve)"),
        ParamSpec("n1", "int", minimum=1,
                  doc=f"end of the C(n) = n + 1 rise "
                      f"(default {DEFAULT_COUNTER_N1})"),
        ParamSpec("n2", "int", minimum=2,
                  doc=f"start of the floor C = 2 "
                      f"(default {DEFAULT_COUNTER_N2})"),
        ParamSpec("shape", "str", choices=MIDCURVE_SHAPES,
                  doc="mid-curve shape between n1 and n2 "
                      "(default 'linear')"),
    ),
    description="counter scheme with adaptive threshold C(n)",
    origin="this paper",
)
class AdaptiveCounterScheme(CounterScheme):
    """Counter scheme with threshold ``C(n)``.

    Pass either an explicit ``threshold_fn`` or the scalar curve knobs
    ``(n1, n2, shape)`` -- the latter are sweepable from campaign specs and
    ``--scheme-param``; combining both is an error.
    """

    name = "adaptive-counter"
    needs_hello = True

    def __init__(
        self,
        threshold_fn: Optional[CounterThresholdFn] = None,
        n1: Optional[int] = None,
        n2: Optional[int] = None,
        shape: Optional[str] = None,
    ) -> None:
        # Bypass CounterScheme's constant-threshold validation: we override
        # every use of ``self.threshold`` with the function below.
        super().__init__(threshold=2)
        if threshold_fn is not None and not (n1 is n2 is shape is None):
            raise ValueError(
                "pass either threshold_fn or the curve knobs "
                "(n1, n2, shape), not both"
            )
        if threshold_fn is None:
            threshold_fn = make_counter_threshold(
                n1 if n1 is not None else DEFAULT_COUNTER_N1,
                n2 if n2 is not None else DEFAULT_COUNTER_N2,
                shape if shape is not None else "linear",
            )
        self.threshold_fn = threshold_fn

    def describe(self) -> str:
        label = getattr(self.threshold_fn, "label", "C(n)")
        return f"AC[{label}]"

    def should_inhibit(self, state: PendingBroadcast) -> bool:
        n = self.host.neighbor_count()
        return state.assessment[0] >= self.threshold_fn(n)

    def trace_provenance(self, state: PendingBroadcast):
        n = self.host.neighbor_count()
        return (n, self.threshold_fn(n), state.assessment[0])
