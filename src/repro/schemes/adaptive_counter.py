"""Adaptive counter-based scheme (paper Section 3.1 -- first contribution).

Identical to the counter scheme except the threshold is the function
``C(n)`` of the host's *current* neighbor count ``n``: high (``n + 1``) when
the neighborhood is sparse -- a host there is likely at a critical position
and must rebroadcast (Observation 1) -- and the floor value 2 when crowded,
where saving matters more than coverage (Observation 2).

``n`` is re-read from the neighbor table at every threshold test, so a host
whose neighborhood changes mid-wait adapts on the fly.
"""

from __future__ import annotations

from typing import Optional

from repro.schemes.base import PendingBroadcast
from repro.schemes.counter import CounterScheme
from repro.schemes.thresholds import CounterThresholdFn, make_counter_threshold

__all__ = ["AdaptiveCounterScheme"]


class AdaptiveCounterScheme(CounterScheme):
    """Counter scheme with threshold ``C(n)``."""

    name = "adaptive-counter"
    needs_hello = True

    def __init__(self, threshold_fn: Optional[CounterThresholdFn] = None) -> None:
        # Bypass CounterScheme's constant-threshold validation: we override
        # every use of ``self.threshold`` with the function below.
        super().__init__(threshold=2)
        self.threshold_fn = threshold_fn or make_counter_threshold()

    def describe(self) -> str:
        label = getattr(self.threshold_fn, "label", "C(n)")
        return f"AC[{label}]"

    def should_inhibit(self, state: PendingBroadcast) -> bool:
        n = self.host.neighbor_count()
        return state.assessment[0] >= self.threshold_fn(n)

    def trace_provenance(self, state: PendingBroadcast):
        n = self.host.neighbor_count()
        return (n, self.threshold_fn(n), state.assessment[0])
