"""Fixed-threshold location-based scheme (from [15], Section 2.3.2).

Each host knows its own GPS position and every relayed packet copy carries
its transmitter's position, so a receiver can compute ``ac`` -- the exact
fraction of its radio disk not yet covered by the transmitters it heard the
packet from.  The rebroadcast is inhibited when ``ac < A`` for the constant
threshold ``A``.  The paper's simulated values: A = 0.1871, 0.0469, 0.0134
(fractions of ``pi r^2``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.geometry.coverage import DiskSampler
from repro.net.packets import BroadcastPacket
from repro.schemes.base import DeferredRebroadcastScheme, PendingBroadcast
from repro.schemes.registry import ParamSpec, register_scheme

__all__ = ["LocationScheme", "CoverageAssessment"]


class CoverageAssessment:
    """Heard transmitter positions plus the cached uncovered fraction."""

    __slots__ = ("positions", "ac")

    def __init__(self) -> None:
        self.positions: List[Tuple[float, float]] = []
        self.ac = 1.0


@register_scheme(
    params=(
        ParamSpec("threshold", "float", 0.0469, minimum=0.0, maximum=1.0,
                  doc="inhibit when additional coverage (fraction of "
                      "pi r^2) drops below A"),
    ),
    description="fixed-threshold additional coverage A",
    origin="[15]",
)
class LocationScheme(DeferredRebroadcastScheme):
    """Inhibit when the additional coverage drops below a constant ``A``."""

    name = "location"
    needs_position = True

    #: Shared deterministic lattice for the coverage integration.
    _sampler = DiskSampler(256)

    def __init__(self, threshold: float = 0.0469) -> None:
        if not 0 <= threshold <= 1:
            raise ValueError(
                f"location threshold is a fraction of pi r^2, got {threshold}"
            )
        super().__init__()
        self.threshold = threshold

    def describe(self) -> str:
        return f"A={self.threshold:g}"

    def current_threshold(self) -> float:
        """The threshold in force right now (constant here; adaptive in
        subclasses)."""
        return self.threshold

    def _recompute(self, assessment: CoverageAssessment) -> None:
        assessment.ac = self._sampler.uncovered_fraction(
            self.host.position(),
            self.host.radio_radius(),
            assessment.positions,
            self.host.radio_radius(),
        )

    def init_assessment(
        self,
        packet: BroadcastPacket,
        sender_id: int,
        sender_position: Optional[Tuple[float, float]],
    ) -> CoverageAssessment:
        assessment = CoverageAssessment()
        if sender_position is not None:
            assessment.positions.append(sender_position)
            self._recompute(assessment)
        return assessment

    def update_assessment(
        self,
        state: PendingBroadcast,
        sender_id: int,
        sender_position: Optional[Tuple[float, float]],
    ) -> None:
        if sender_position is None:
            return
        state.assessment.positions.append(sender_position)
        self._recompute(state.assessment)

    def should_inhibit(self, state: PendingBroadcast) -> bool:
        return state.assessment.ac < self.current_threshold()

    def trace_provenance(self, state: PendingBroadcast):
        return (None, self.current_threshold(), state.assessment.ac)
