"""Fixed-threshold distance-based scheme (from [15]).

The paper under reproduction reviews this scheme alongside the counter and
location schemes but does not re-simulate it; we include it for completeness
and for the ablation benches.

The host tracks ``d_min``, the distance to the *closest* transmitter it has
heard the packet from.  A small ``d_min`` means the host's rebroadcast would
add little coverage (the additional-coverage function is increasing in
``d``), so the rebroadcast is inhibited when ``d_min < D``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.geometry.points import distance
from repro.net.packets import BroadcastPacket
from repro.schemes.base import DeferredRebroadcastScheme, PendingBroadcast
from repro.schemes.registry import ParamSpec, register_scheme

__all__ = ["DistanceScheme"]


@register_scheme(
    params=(
        ParamSpec("threshold", "float", 125.0, minimum=0.0,
                  doc="inhibit when the nearest heard transmitter is "
                      "closer than D meters"),
    ),
    description="fixed-threshold distance D",
    origin="[15]",
)
class DistanceScheme(DeferredRebroadcastScheme):
    """Inhibit when the nearest heard transmitter is closer than ``threshold``."""

    name = "distance"
    needs_position = True

    def __init__(self, threshold: float = 125.0) -> None:
        if threshold < 0:
            raise ValueError(f"distance threshold must be >= 0, got {threshold}")
        super().__init__()
        self.threshold = threshold

    def describe(self) -> str:
        return f"D={self.threshold:g}m"

    def _distance_to(self, sender_position: Optional[Tuple[float, float]]) -> float:
        if sender_position is None:
            # Sender without GPS: assume the worst case (zero distance) so
            # behaviour degrades safely toward inhibition.
            return 0.0
        return distance(self.host.position(), sender_position)

    def init_assessment(
        self,
        packet: BroadcastPacket,
        sender_id: int,
        sender_position: Optional[Tuple[float, float]],
    ) -> List[float]:
        return [self._distance_to(sender_position)]

    def update_assessment(
        self,
        state: PendingBroadcast,
        sender_id: int,
        sender_position: Optional[Tuple[float, float]],
    ) -> None:
        state.assessment[0] = min(
            state.assessment[0], self._distance_to(sender_position)
        )

    def should_inhibit(self, state: PendingBroadcast) -> bool:
        return state.assessment[0] < self.threshold

    def trace_provenance(self, state: PendingBroadcast):
        return (None, self.threshold, state.assessment[0])
