"""Scheme plugin registry: declarative specs + a ``register_scheme`` decorator.

Every broadcast scheme registers itself as a :class:`SchemeSpec` -- its
registry name, constructor parameter schema (:class:`ParamSpec` per
keyword: type, default, valid range), capability flags read off the scheme
class (``needs_hello`` / ``needs_two_hop_hello`` / ``needs_position``), and
a short provenance note.  The spec is the single source of truth every
consumer reads:

- :func:`make_scheme` builds instances through :meth:`SchemeSpec.build`,
  which turns unknown/ill-typed keyword arguments into loud ``ValueError``\\ s
  listing the accepted parameters (instead of a bare ``TypeError`` from the
  constructor).
- The CLI derives ``--scheme`` choices, ``--scheme-param`` coercion and the
  ``schemes`` listing from the registry.
- Campaign specs validate swept ``scheme_params.<key>`` axes against each
  swept scheme's schema at load time.

Adding a scheme is one decorated class::

    @register_scheme(
        params=(ParamSpec("p", "float", 0.7, minimum=0.0, maximum=1.0),),
        description="gossip: rebroadcast with probability p",
        origin="literature",
    )
    class GossipScheme(DeferredRebroadcastScheme):
        name = "gossip"
        ...

Importing :mod:`repro.schemes` triggers every built-in registration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "ParamSpec",
    "SchemeSpec",
    "SCHEME_REGISTRY",
    "register_scheme",
    "get_spec",
    "make_scheme",
]

#: Parameter kinds a schema may declare.  ``"callable"`` parameters (the
#: adaptive schemes' ``threshold_fn``) accept function objects and are not
#: sweepable from campaign specs or the CLI.
PARAM_KINDS = ("int", "float", "bool", "str", "callable")


@dataclass(frozen=True)
class ParamSpec:
    """Schema for one constructor keyword of a scheme.

    ``default`` is the value the constructor uses when the keyword is
    omitted (``None`` marks an optional parameter resolved inside the
    constructor).  ``minimum`` / ``maximum`` bound numeric kinds
    inclusively; ``choices`` restricts string kinds.
    """

    name: str
    kind: str
    default: Any = None
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    choices: Optional[Tuple[str, ...]] = None
    doc: str = ""

    def __post_init__(self) -> None:
        if self.kind not in PARAM_KINDS:
            raise ValueError(
                f"parameter {self.name!r}: unknown kind {self.kind!r} "
                f"(use one of {', '.join(PARAM_KINDS)})"
            )
        if self.default is not None:
            error = self.validate(self.default)
            if error is not None:
                raise ValueError(
                    f"parameter {self.name!r}: default violates its own "
                    f"schema: {error}"
                )

    @property
    def sweepable(self) -> bool:
        """Can campaign grids / the CLI sweep this parameter (scalar kind)?"""
        return self.kind != "callable"

    def describe(self) -> str:
        """``name: kind = default [range]`` -- for listings and errors."""
        out = f"{self.name}: {self.kind}"
        if self.default is not None:
            out += f" = {self.default!r}"
        if self.choices is not None:
            out += f" in {{{', '.join(self.choices)}}}"
        elif self.minimum is not None or self.maximum is not None:
            lo = "-inf" if self.minimum is None else f"{self.minimum:g}"
            hi = "inf" if self.maximum is None else f"{self.maximum:g}"
            out += f" in [{lo}, {hi}]"
        return out

    def validate(self, value: Any) -> Optional[str]:
        """Return an error string for a bad ``value``, or ``None`` if OK."""
        if value is None:
            # Optional parameters (default None) may be passed explicitly
            # as None; required-value parameters may not.
            if self.default is None:
                return None
            return f"{self.name} must not be None"
        if self.kind == "callable":
            if not callable(value):
                return f"{self.name} must be callable, got {value!r}"
            return None
        if self.kind == "bool":
            if not isinstance(value, bool):
                return f"{self.name} must be a bool, got {value!r}"
            return None
        if self.kind == "str":
            if not isinstance(value, str):
                return f"{self.name} must be a string, got {value!r}"
            if self.choices is not None and value not in self.choices:
                return (
                    f"{self.name} must be one of "
                    f"{{{', '.join(self.choices)}}}, got {value!r}"
                )
            return None
        # Numeric kinds.  bool is an int subclass; reject it explicitly.
        if isinstance(value, bool):
            return f"{self.name} must be a number, got {value!r}"
        if self.kind == "int" and not isinstance(value, int):
            return f"{self.name} must be an int, got {value!r}"
        if self.kind == "float" and not isinstance(value, (int, float)):
            return f"{self.name} must be a number, got {value!r}"
        if self.minimum is not None and value < self.minimum:
            return f"{self.name} must be >= {self.minimum:g}, got {value!r}"
        if self.maximum is not None and value > self.maximum:
            return f"{self.name} must be <= {self.maximum:g}, got {value!r}"
        return None

    def coerce(self, text: str) -> Any:
        """Parse a command-line string into this parameter's kind.

        Used by ``--scheme-param KEY=VALUE``; raises ``ValueError`` on an
        unparseable value (range checks happen later in :meth:`validate`).
        """
        if self.kind == "int":
            return int(text)
        if self.kind == "float":
            return float(text)
        if self.kind == "bool":
            lowered = text.strip().lower()
            if lowered in ("true", "1", "yes", "on"):
                return True
            if lowered in ("false", "0", "no", "off"):
                return False
            raise ValueError(f"cannot parse {text!r} as a bool")
        if self.kind == "str":
            return text
        raise ValueError(
            f"parameter {self.name!r} takes a function object and cannot "
            "be set from the command line"
        )


@dataclass(frozen=True)
class SchemeSpec:
    """One registry entry: everything a consumer needs to know about a scheme.

    The capability flags are properties reading the scheme class's own
    attributes, so a spec can never disagree with the class it wraps.
    """

    name: str
    factory: Callable[..., Any]
    params: Tuple[ParamSpec, ...] = ()
    description: str = ""
    origin: str = ""

    def __post_init__(self) -> None:
        names = [p.name for p in self.params]
        if len(set(names)) != len(names):
            raise ValueError(
                f"scheme {self.name!r}: duplicate parameter names in schema"
            )

    # ------------------------------------------------------- capabilities

    @property
    def needs_hello(self) -> bool:
        return bool(getattr(self.factory, "needs_hello", False))

    @property
    def needs_two_hop_hello(self) -> bool:
        return bool(getattr(self.factory, "needs_two_hop_hello", False))

    @property
    def needs_position(self) -> bool:
        return bool(getattr(self.factory, "needs_position", False))

    # ------------------------------------------------------------ schema

    @property
    def param_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def param(self, name: str) -> ParamSpec:
        """The :class:`ParamSpec` for ``name`` (``KeyError`` if unknown)."""
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(name)

    def accepted_parameters(self) -> str:
        """Human-readable parameter list for error messages."""
        if not self.params:
            return "(none)"
        return ", ".join(p.describe() for p in self.params)

    def validate_params(self, params: Mapping[str, Any]) -> List[str]:
        """Schema-check a parameter mapping; returns a list of error strings
        (empty when everything is acceptable).  Unknown keys are reported
        alongside the accepted-parameter list."""
        errors: List[str] = []
        known = set(self.param_names)
        for key in sorted(set(params) - known):
            errors.append(
                f"unknown parameter {key!r} (accepted: "
                f"{self.accepted_parameters()})"
            )
        for key, value in params.items():
            if key not in known:
                continue
            error = self.param(key).validate(value)
            if error is not None:
                errors.append(error)
        return errors

    # ----------------------------------------------------------- factory

    def build(self, **params: Any) -> Any:
        """Instantiate the scheme, schema-validating ``params`` first.

        Bad or unknown keyword arguments raise ``ValueError`` naming the
        scheme's accepted parameters, matching ``make_scheme``'s
        loud-and-early bad-name behavior.
        """
        errors = self.validate_params(params)
        if errors:
            raise ValueError(
                f"scheme {self.name!r}: " + "; ".join(errors)
            )
        try:
            return self.factory(**params)
        except TypeError as exc:
            # A factory override (with_factory) whose signature drifted from
            # the declared schema: still surface it as a ValueError.
            raise ValueError(
                f"scheme {self.name!r}: {exc} (accepted parameters: "
                f"{self.accepted_parameters()})"
            ) from exc

    #: Registry entries stay drop-in callable factories, so existing code
    #: (and benches that temporarily swap an entry) keeps working.
    __call__ = build

    def with_factory(self, factory: Callable[..., Any]) -> "SchemeSpec":
        """A copy of this spec with a replacement factory (ablation hook)."""
        return replace(self, factory=factory)

    def default_params(self) -> Dict[str, Any]:
        """The defaults a bare ``make_scheme(name)`` call resolves to."""
        return {
            p.name: p.default for p in self.params if p.default is not None
        }


#: The global name -> spec registry, populated by :func:`register_scheme`
#: at import time of :mod:`repro.schemes`.
SCHEME_REGISTRY: Dict[str, "SchemeSpec"] = {}


def register_scheme(
    *,
    name: Optional[str] = None,
    params: Sequence[ParamSpec] = (),
    description: str = "",
    origin: str = "",
    registry: Optional[Dict[str, SchemeSpec]] = None,
) -> Callable[[type], type]:
    """Class decorator registering a scheme class as a :class:`SchemeSpec`.

    ``name`` defaults to the class's own ``name`` attribute.  Registering a
    name twice is an error (two plugins silently shadowing each other is
    exactly the failure mode a registry exists to prevent).
    """
    target = SCHEME_REGISTRY if registry is None else registry

    def decorator(cls: type) -> type:
        spec = SchemeSpec(
            name=name or cls.name,
            factory=cls,
            params=tuple(params),
            description=description,
            origin=origin,
        )
        if spec.name in target:
            raise ValueError(
                f"scheme name {spec.name!r} is already registered "
                f"(by {target[spec.name].factory!r})"
            )
        target[spec.name] = spec
        return cls

    return decorator


def get_spec(name: str) -> SchemeSpec:
    """The :class:`SchemeSpec` for ``name``; ``ValueError`` listing known
    names on a miss (same contract as :func:`make_scheme`)."""
    spec = SCHEME_REGISTRY.get(name)
    if spec is None:
        known = ", ".join(sorted(SCHEME_REGISTRY))
        raise ValueError(f"unknown scheme {name!r}; known schemes: {known}")
    return spec


def make_scheme(name: str, **params: Any) -> Any:
    """Instantiate a scheme from its registry name.

    Raises ``ValueError`` with the list of known names on a bad name and
    ``ValueError`` listing the scheme's accepted parameters on bad keyword
    arguments, so a typo in an experiment config fails loudly and early.
    """
    spec = SCHEME_REGISTRY.get(name)
    if spec is None:
        known = ", ".join(sorted(SCHEME_REGISTRY))
        raise ValueError(f"unknown scheme {name!r}; known schemes: {known}")
    if not isinstance(spec, SchemeSpec):
        # A bench/test swapped in a bare factory; honor it.
        return spec(**params)
    return spec.build(**params)
