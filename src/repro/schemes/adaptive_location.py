"""Adaptive location-based scheme (paper Section 3.2 -- second contribution).

The location scheme with threshold ``A(n)``: zero below ``n1`` neighbors
(forcing sparse hosts to rebroadcast), rising linearly to
``EAC(2)/pi r^2 = 0.187`` at ``n2`` and constant after.  The tuned values
from Fig. 9 are ``(n1, n2) = (6, 12)``.
"""

from __future__ import annotations

from typing import Optional

from repro.schemes.location import LocationScheme
from repro.schemes.thresholds import LocationThresholdFn, make_location_threshold

__all__ = ["AdaptiveLocationScheme"]


class AdaptiveLocationScheme(LocationScheme):
    """Location scheme with threshold ``A(n)``."""

    name = "adaptive-location"
    needs_hello = True

    def __init__(self, threshold_fn: Optional[LocationThresholdFn] = None) -> None:
        super().__init__(threshold=0.0)
        self.threshold_fn = threshold_fn or make_location_threshold()

    def describe(self) -> str:
        label = getattr(self.threshold_fn, "label", "A(n)")
        return f"AL[{label}]"

    def current_threshold(self) -> float:
        return self.threshold_fn(self.host.neighbor_count())

    def trace_provenance(self, state):
        n = self.host.neighbor_count()
        return (n, self.threshold_fn(n), state.assessment.ac)
