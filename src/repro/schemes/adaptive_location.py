"""Adaptive location-based scheme (paper Section 3.2 -- second contribution).

The location scheme with threshold ``A(n)``: zero below ``n1`` neighbors
(forcing sparse hosts to rebroadcast), rising linearly to
``EAC(2)/pi r^2 = 0.187`` at ``n2`` and constant after.  The tuned values
from Fig. 9 are ``(n1, n2) = (6, 12)``.
"""

from __future__ import annotations

from typing import Optional

from repro.schemes.location import LocationScheme
from repro.schemes.registry import ParamSpec, register_scheme
from repro.schemes.thresholds import (
    DEFAULT_LOCATION_N1,
    DEFAULT_LOCATION_N2,
    EAC2_FRACTION,
    LocationThresholdFn,
    make_location_threshold,
)

__all__ = ["AdaptiveLocationScheme"]


@register_scheme(
    params=(
        ParamSpec("threshold_fn", "callable",
                  doc="explicit A(n) (default: the paper's tuned curve)"),
        ParamSpec("n1", "int", minimum=1,
                  doc=f"force rebroadcast up to n1 neighbors "
                      f"(default {DEFAULT_LOCATION_N1})"),
        ParamSpec("n2", "int", minimum=2,
                  doc=f"reach the a_max plateau at n2 neighbors "
                      f"(default {DEFAULT_LOCATION_N2})"),
        ParamSpec("a_max", "float", minimum=0.0, maximum=1.0,
                  doc=f"plateau of A(n) as a fraction of pi r^2 "
                      f"(default {EAC2_FRACTION})"),
    ),
    description="location scheme with adaptive threshold A(n)",
    origin="this paper",
)
class AdaptiveLocationScheme(LocationScheme):
    """Location scheme with threshold ``A(n)``.

    Pass either an explicit ``threshold_fn`` or the scalar curve knobs
    ``(n1, n2, a_max)`` -- the latter are sweepable from campaign specs and
    ``--scheme-param``; combining both is an error.
    """

    name = "adaptive-location"
    needs_hello = True

    def __init__(
        self,
        threshold_fn: Optional[LocationThresholdFn] = None,
        n1: Optional[int] = None,
        n2: Optional[int] = None,
        a_max: Optional[float] = None,
    ) -> None:
        super().__init__(threshold=0.0)
        if threshold_fn is not None and not (n1 is n2 is a_max is None):
            raise ValueError(
                "pass either threshold_fn or the curve knobs "
                "(n1, n2, a_max), not both"
            )
        if threshold_fn is None:
            threshold_fn = make_location_threshold(
                n1 if n1 is not None else DEFAULT_LOCATION_N1,
                n2 if n2 is not None else DEFAULT_LOCATION_N2,
                a_max if a_max is not None else EAC2_FRACTION,
            )
        self.threshold_fn = threshold_fn

    def describe(self) -> str:
        label = getattr(self.threshold_fn, "label", "A(n)")
        return f"AL[{label}]"

    def current_threshold(self) -> float:
        return self.threshold_fn(self.host.neighbor_count())

    def trace_provenance(self, state):
        n = self.host.neighbor_count()
        return (n, self.threshold_fn(n), state.assessment.ac)
