"""Blind flooding (the baseline the storm indicts).

On the first reception of a broadcast packet the host rebroadcasts it,
unconditionally and at most once.  No scheme-level jitter is applied -- all
timing differentiation is left to the MAC's backoff, which is exactly what
makes flooding collide so badly.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.net.packets import BroadcastPacket
from repro.schemes.base import DeferredRebroadcastScheme, PendingBroadcast
from repro.schemes.registry import register_scheme

__all__ = ["FloodingScheme"]


@register_scheme(
    description="blind flooding: every host rebroadcasts exactly once",
    origin="baseline",
)
class FloodingScheme(DeferredRebroadcastScheme):
    """Rebroadcast every packet exactly once, immediately."""

    name = "flooding"
    jitter_slots = 0

    def init_assessment(
        self,
        packet: BroadcastPacket,
        sender_id: int,
        sender_position: Optional[Tuple[float, float]],
    ) -> Any:
        return None

    def update_assessment(
        self,
        state: PendingBroadcast,
        sender_id: int,
        sender_position: Optional[Tuple[float, float]],
    ) -> None:
        pass

    def should_inhibit(self, state: PendingBroadcast) -> bool:
        return False
