"""Scheme interface and the shared S1-S5 rebroadcast state machine.

Every scheme in the paper follows one skeleton (Section 3):

- **S1** -- on hearing packet P for the first time, initialize an
  assessment (counter ``c``, additional coverage ``ac``, or pending set
  ``T``); some schemes can inhibit immediately.
- **S2** -- wait a random number (0..31) of slots, then submit P to the MAC
  and wait until the transmission actually starts.
- **S3** -- P is on the air; done.
- **S4** -- if P is heard again during the waiting, update the assessment;
  if it crosses the threshold go to S5, otherwise resume waiting.
- **S5** -- cancel the (scheduled or queued) transmission; the host is
  inhibited from rebroadcasting P in the future.

:class:`DeferredRebroadcastScheme` implements S2/S3/S5 once; concrete
schemes supply the assessment in S1/S4 via three hooks
(:meth:`~DeferredRebroadcastScheme.init_assessment`,
:meth:`~DeferredRebroadcastScheme.update_assessment`,
:meth:`~DeferredRebroadcastScheme.should_inhibit`).

Schemes talk to their host through the small service interface documented on
:class:`SchemeHost` (implemented by :class:`repro.net.host.MobileHost`).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, Dict, Optional, Tuple

from repro.mac.csma import MacFrameHandle
from repro.net.packets import BroadcastPacket, PacketKey
from repro.sim.engine import Event, Scheduler

__all__ = [
    "SchemeHost",
    "RebroadcastScheme",
    "DeferredRebroadcastScheme",
    "PendingBroadcast",
    "ASSESSMENT_JITTER_SLOTS",
]

# The paper's S2: "wait for a random number (0 ~ 31) of slots".
ASSESSMENT_JITTER_SLOTS = 31


class SchemeHost:
    """Services a host provides to its scheme (duck-typed interface).

    Attributes:
        scheduler: the shared :class:`~repro.sim.engine.Scheduler`.
        scheme_rng: this host's scheme-jitter random stream.
        slot_time: the PHY slot time in seconds.
        neighbor_table: this host's :class:`~repro.net.neighbors.NeighborTable`
            (valid when the scheme sets ``needs_hello``).
    """

    scheduler: Scheduler
    scheme_rng: random.Random
    slot_time: float

    def position(self) -> Tuple[float, float]:
        """Current true position (the GPS assumption)."""
        raise NotImplementedError

    def radio_radius(self) -> float:
        raise NotImplementedError

    def neighbor_count(self) -> int:
        """``n``: current number of known one-hop neighbors."""
        raise NotImplementedError

    def submit_rebroadcast(
        self, packet: BroadcastPacket, on_transmit_start
    ) -> MacFrameHandle:
        """Queue a relayed copy of ``packet`` at the MAC."""
        raise NotImplementedError

    def record_inhibit(self, key: PacketKey) -> None:
        """Tell the metrics layer this host decided not to rebroadcast."""
        raise NotImplementedError


class RebroadcastScheme(ABC):
    """A host's rebroadcast decision policy.

    Class attributes declare the scheme's requirements so the host can turn
    on the matching machinery:

    - ``needs_hello`` -- periodic HELLO packets / a neighbor table.
    - ``needs_two_hop_hello`` -- HELLOs must piggyback neighbor lists.
    - ``needs_position`` -- relayed packets must carry GPS coordinates.
    """

    name: str = "abstract"
    needs_hello: bool = False
    needs_two_hop_hello: bool = False
    needs_position: bool = False

    def __init__(self) -> None:
        self.host: Optional[SchemeHost] = None

    def attach(self, host: SchemeHost) -> None:
        """Bind the scheme to its host.  Called once by the host."""
        self.host = host

    def on_originate(self, packet: BroadcastPacket) -> None:
        """The host is the broadcast source: transmit unconditionally."""
        self.host.submit_rebroadcast(packet, on_transmit_start=None)

    def reset(self) -> None:
        """Discard all per-packet state (host crash).

        No inhibit decisions are recorded for abandoned packets -- a crashed
        host never decided anything; the metrics layer charges it the
        simulation-end fallback.  The default implementation is a no-op for
        stateless schemes.
        """

    @abstractmethod
    def on_first_hear(
        self,
        packet: BroadcastPacket,
        sender_id: int,
        sender_position: Optional[Tuple[float, float]],
    ) -> None:
        """S1: first successful reception of this broadcast."""

    @abstractmethod
    def on_hear_again(
        self,
        packet: BroadcastPacket,
        sender_id: int,
        sender_position: Optional[Tuple[float, float]],
    ) -> None:
        """S4: another successful reception of an already-seen broadcast."""

    def describe(self) -> str:
        """Human-readable configuration string (used in result tables)."""
        return self.name


class PendingBroadcast:
    """Per-packet S1-S5 state at one host."""

    __slots__ = ("packet", "assessment", "jitter_event", "mac_handle")

    def __init__(self, packet: BroadcastPacket, assessment: Any) -> None:
        self.packet = packet
        self.assessment = assessment
        self.jitter_event: Optional[Event] = None
        self.mac_handle: Optional[MacFrameHandle] = None


class DeferredRebroadcastScheme(RebroadcastScheme):
    """Shared implementation of the S1-S5 skeleton.

    Subclasses override :meth:`init_assessment`, :meth:`update_assessment`
    and :meth:`should_inhibit`.  The assessment object is scheme-defined
    (an ``[int]`` counter cell, a list of heard positions, a pending set...).
    """

    #: Slots of scheme-level jitter (0 disables S2's random wait).
    jitter_slots: int = ASSESSMENT_JITTER_SLOTS

    def __init__(self) -> None:
        super().__init__()
        self._pending: Dict[PacketKey, PendingBroadcast] = {}

    # ---------------------------------------------------------- hooks

    @abstractmethod
    def init_assessment(
        self,
        packet: BroadcastPacket,
        sender_id: int,
        sender_position: Optional[Tuple[float, float]],
    ) -> Any:
        """S1: build the initial assessment after the first reception."""

    @abstractmethod
    def update_assessment(
        self,
        state: PendingBroadcast,
        sender_id: int,
        sender_position: Optional[Tuple[float, float]],
    ) -> None:
        """S4: fold one more reception into the assessment."""

    @abstractmethod
    def should_inhibit(self, state: PendingBroadcast) -> bool:
        """Threshold test, applied after S1 and after every S4 update."""

    def trace_provenance(
        self, state: PendingBroadcast
    ) -> Tuple[Optional[int], Optional[float], Optional[float]]:
        """``(n, threshold, observed)`` for suppression-decision records.

        ``n`` is the neighbor count the threshold was derived from (``None``
        for fixed-threshold schemes), ``threshold`` the scheme's current
        ``C(n)``/``A(n)``/``D`` value and ``observed`` the assessment it is
        compared against.  Only consulted on traced runs; the default (used
        by flooding) reports nothing.
        """
        return (None, None, None)

    # ------------------------------------------------------- skeleton

    def _trace_decision(
        self, trace: Any, state: PendingBroadcast, verdict: str
    ) -> None:
        n, threshold, observed = self.trace_provenance(state)
        key = state.packet.key
        trace.records.append((
            self.host.scheduler._now, "decision", key[0], key[1],
            self._host_id(), self.name, verdict, n, threshold, observed,
        ))

    def pending_count(self) -> int:
        """Packets currently in the S2/S4 waiting stage (for tests)."""
        return len(self._pending)

    def reset(self) -> None:
        """Drop every pending assessment: cancel jitter waits and withdraw
        queued-but-unsent MAC frames.  (The MAC flushes its queue separately
        on a crash; cancelling here keeps the handles consistent if the
        scheme is reset without a full MAC shutdown.)"""
        for state in list(self._pending.values()):
            if state.jitter_event is not None:
                state.jitter_event.cancel()
                state.jitter_event = None
            if state.mac_handle is not None:
                state.mac_handle.cancel()
        self._pending.clear()

    def on_first_hear(
        self,
        packet: BroadcastPacket,
        sender_id: int,
        sender_position: Optional[Tuple[float, float]],
    ) -> None:
        state = PendingBroadcast(
            packet, self.init_assessment(packet, sender_id, sender_position)
        )
        trace = getattr(self.host, "trace", None)
        if self.should_inhibit(state):
            if trace is not None:
                self._trace_decision(trace, state, "inhibit-immediate")
            self.host.record_inhibit(packet.key)
            return
        self._pending[packet.key] = state
        jitter = (
            self.host.scheme_rng.randint(0, self.jitter_slots)
            * self.host.slot_time
            if self.jitter_slots > 0
            else 0.0
        )
        if trace is not None:
            self._trace_decision(trace, state, "defer")
            key = packet.key
            trace.records.append((
                self.host.scheduler._now, "rad-wait", key[0], key[1],
                self._host_id(), jitter,
            ))
        state.jitter_event = self.host.scheduler.schedule(
            jitter, self._submit, state
        )

    def on_hear_again(
        self,
        packet: BroadcastPacket,
        sender_id: int,
        sender_position: Optional[Tuple[float, float]],
    ) -> None:
        state = self._pending.get(packet.key)
        if state is None:
            # Already decided (transmitted or inhibited): S5's "inhibited
            # from rebroadcasting P in the future".
            return
        self.update_assessment(state, sender_id, sender_position)
        trace = getattr(self.host, "trace", None)
        if self.should_inhibit(state):
            cancelled = self._cancel(state)
            if trace is not None:
                self._trace_decision(
                    trace, state, "inhibit" if cancelled else "cancel-too-late"
                )
        elif trace is not None:
            self._trace_decision(trace, state, "assess")

    def _submit(self, state: PendingBroadcast) -> None:
        state.jitter_event = None
        relayed = state.packet.relayed_by(
            self._host_id(), self.host.position() if self.needs_position else None
        )
        state.mac_handle = self.host.submit_rebroadcast(
            relayed, on_transmit_start=lambda: self._on_air(state)
        )

    def _on_air(self, state: PendingBroadcast) -> None:
        # S3: the packet is on the air; the decision is final.
        self._pending.pop(state.packet.key, None)
        trace = getattr(self.host, "trace", None)
        if trace is not None:
            self._trace_decision(trace, state, "rebroadcast")

    def _cancel(self, state: PendingBroadcast) -> bool:
        # S5: withdraw the rebroadcast wherever it currently waits.
        # Returns False when the frame already won the race to the air.
        if state.jitter_event is not None:
            state.jitter_event.cancel()
            state.jitter_event = None
        if state.mac_handle is not None and not state.mac_handle.cancel():
            # Too late: the frame is already on the air (benign race).
            return False
        self._pending.pop(state.packet.key, None)
        self.host.record_inhibit(state.packet.key)
        return True

    def _host_id(self) -> int:
        return self.host.host_id  # type: ignore[attr-defined]
