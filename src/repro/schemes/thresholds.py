"""Threshold functions ``C(n)`` and ``A(n)`` (paper Figs. 3, 4, 6, 8).

The adaptive counter scheme uses an integer threshold function ``C(n)`` of
the neighbor count with the tuned shape of Section 4.1: ``C(n) = n + 1``
up to ``n1`` (= 4), a plateau of ``n1 + 1``, a decreasing mid-curve, and the
floor value 2 from ``n2`` (= 12) on.

The adaptive location scheme uses a real-valued ``A(n)``: 0 up to ``n1``
(= 6, forcing rebroadcast), rising linearly to ``EAC(2)/pi r^2 = 0.187`` at
``n2`` (= 12) and constant after.

The paper reports only the *abstract* shape of the tuned mid-curve (the
"solid line" of Fig. 6); we provide the three qualitative candidates the
figure sketches (linear, convex = drop-early, concave = drop-late) and use
the rounded **linear** curve as the suggested default.  EXPERIMENTS.md
records this choice; Fig. 5d's bench compares all three, reproducing the
tuning experiment itself.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence

__all__ = [
    "CounterThresholdFn",
    "LocationThresholdFn",
    "counter_sequence",
    "make_counter_threshold",
    "make_location_threshold",
    "midcurve_values",
    "MIDCURVE_SHAPES",
    "EAC2_FRACTION",
    "DEFAULT_COUNTER_N1",
    "DEFAULT_COUNTER_N2",
    "DEFAULT_LOCATION_N1",
    "DEFAULT_LOCATION_N2",
    "FIG5A_SEQUENCES",
    "FIG5B_SEQUENCES",
]

CounterThresholdFn = Callable[[int], int]
LocationThresholdFn = Callable[[int], float]

#: ``EAC(2) / (pi r^2)``: the plateau of A(n) (paper Section 3.2).
EAC2_FRACTION = 0.187

DEFAULT_COUNTER_N1 = 4
DEFAULT_COUNTER_N2 = 12
DEFAULT_LOCATION_N1 = 6
DEFAULT_LOCATION_N2 = 12

MIDCURVE_SHAPES = ("linear", "convex", "concave")


def _round_half_up(value: float) -> int:
    return int(math.floor(value + 0.5))


def counter_sequence(values: Sequence[int], name: str = "") -> CounterThresholdFn:
    """``C(n)`` from an explicit sequence ``x1 x2 x3 ...`` (paper notation).

    ``C(n) = values[n - 1]``; indices past the end repeat the last value.
    ``C(0)`` (no known neighbors) maps to ``values[0]``, which keeps an
    isolated host on the forced-rebroadcast side.
    """
    if not values:
        raise ValueError("sequence must be non-empty")
    if any(v < 2 for v in values):
        raise ValueError(f"counter thresholds below 2 never rebroadcast: {values}")
    seq: List[int] = list(values)

    def threshold(n: int) -> int:
        if n < 0:
            raise ValueError(f"neighbor count must be >= 0, got {n}")
        index = max(0, min(n - 1, len(seq) - 1))
        return seq[index]

    threshold.sequence = seq  # type: ignore[attr-defined]
    # Single-digit sequences keep the paper's compact "234" notation; any
    # threshold >= 10 forces a delimiter ([2, 10] must not read as "210").
    if any(v >= 10 for v in seq):
        label = "-".join(str(v) for v in seq)
    else:
        label = "".join(str(v) for v in seq)
    threshold.label = name or label  # type: ignore[attr-defined]
    return threshold


def midcurve_values(n1: int, n2: int, shape: str) -> List[int]:
    """The decreasing curve ``C(n)`` for ``n1 < n < n2`` (paper Fig. 6).

    All shapes start from ``C(n1) = n1 + 1`` and end at ``C(n2) = 2``:

    - ``"linear"`` -- straight interpolation, rounded half-up (the default).
    - ``"convex"`` -- drops early, hugging the floor.
    - ``"concave"`` -- holds high, drops late.
    """
    if shape not in MIDCURVE_SHAPES:
        raise ValueError(f"unknown midcurve shape {shape!r}; use {MIDCURVE_SHAPES}")
    high = n1 + 1
    low = 2
    span = n2 - n1
    values = []
    for n in range(n1 + 1, n2):
        t = (n - n1) / span
        if shape == "linear":
            y = high - (high - low) * t
        elif shape == "convex":
            y = low + (high - low) * (1.0 - t) ** 2
        else:  # concave
            y = high - (high - low) * t ** 2
        values.append(max(low, min(high, _round_half_up(y))))
    return values


def make_counter_threshold(
    n1: int = DEFAULT_COUNTER_N1,
    n2: int = DEFAULT_COUNTER_N2,
    shape: str = "linear",
) -> CounterThresholdFn:
    """The tuned adaptive-counter ``C(n)`` (paper Fig. 3 shape).

    ``C(n) = n + 1`` for ``n <= n1``; the chosen mid-curve for
    ``n1 < n < n2``; ``C(n) = 2`` for ``n >= n2``.
    """
    if not 1 <= n1 < n2:
        raise ValueError(f"need 1 <= n1 < n2, got n1={n1}, n2={n2}")
    rising = [n + 1 for n in range(1, n1 + 1)]
    middle = midcurve_values(n1, n2, shape)
    fn = counter_sequence(
        rising + middle + [2], name=f"AC(n1={n1},n2={n2},{shape})"
    )
    return fn


def make_location_threshold(
    n1: int = DEFAULT_LOCATION_N1,
    n2: int = DEFAULT_LOCATION_N2,
    a_max: float = EAC2_FRACTION,
) -> LocationThresholdFn:
    """The adaptive-location ``A(n)`` (paper Fig. 4 / Fig. 8).

    0 for ``n <= n1`` (force rebroadcast), linear between ``n1`` and ``n2``,
    ``a_max`` for ``n >= n2``.
    """
    if not 1 <= n1 < n2:
        raise ValueError(f"need 1 <= n1 < n2, got n1={n1}, n2={n2}")
    if not 0 < a_max <= 1:
        raise ValueError(f"a_max must be in (0, 1], got {a_max}")

    def threshold(n: int) -> float:
        if n < 0:
            raise ValueError(f"neighbor count must be >= 0, got {n}")
        if n <= n1:
            return 0.0
        if n >= n2:
            return a_max
        return a_max * (n - n1) / (n2 - n1)

    threshold.label = f"AL(n1={n1},n2={n2})"  # type: ignore[attr-defined]
    threshold.n1 = n1  # type: ignore[attr-defined]
    threshold.n2 = n2  # type: ignore[attr-defined]
    return threshold


def _slope_sequence(slope_denominator: int, top: int = 5) -> List[int]:
    """Fig. 5a sequences: climb from 2 to ``top`` one step per
    ``slope_denominator`` values of n, then plateau."""
    values = []
    level = 2
    while level < top:
        values.extend([level] * slope_denominator)
        level += 1
    values.append(top)
    return values


#: Fig. 5a candidates, keyed by slope (1/3, 1/2, 1).
FIG5A_SEQUENCES: Dict[str, List[int]] = {
    "slope-1/3": _slope_sequence(3),  # 2 2 2 3 3 3 4 4 4 5 ...
    "slope-1/2": _slope_sequence(2),  # 2 2 3 3 4 4 5 ...
    "slope-1": _slope_sequence(1),  # 2 3 4 5 ...
}

#: Fig. 5b candidates: C(n) = n + 1 capped at n1 + 1, for n1 = 2..5.
FIG5B_SEQUENCES: Dict[int, List[int]] = {
    n1: [n + 1 for n in range(1, n1 + 1)] for n1 in (2, 3, 4, 5)
}
