"""Per-broadcast reconstruction from a trace.

Turns the flat record stream back into causal stories: one
:class:`BroadcastTrace` per logical broadcast ``(src, seq)`` with its
reception tree, suppression breakdown by verdict, redundancy, and
time-to-quiescence.  The counts reconstructed here are defined to match
the metrics layer exactly -- ``reached`` equals the SRB denominator
``r`` and ``rebroadcasts`` the numerator ``t`` reported by
:class:`~repro.metrics.collector.MetricsCollector` for the same run
(asserted by the integration tests).

Use :func:`analyze_recorder` on an in-memory
:class:`~repro.trace.recorder.TraceRecorder` or :func:`load_jsonl` +
:func:`analyze_records` on an exported file.  ``python -m
repro.trace.analyze TRACE.jsonl`` prints a human summary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.trace.recorder import TraceRecorder
from repro.trace.schema import record_to_dict, validate_record

__all__ = [
    "BroadcastTrace",
    "TraceAnalysis",
    "analyze_recorder",
    "analyze_records",
    "load_jsonl",
]

Key = Tuple[int, int]


@dataclass
class BroadcastTrace:
    """Everything the trace says about one logical broadcast."""

    source: int
    seq: int
    origin_time: float = 0.0
    #: host -> (first-hear time, sender it heard it from)
    receives: Dict[int, Tuple[float, int]] = field(default_factory=dict)
    #: host -> time its own copy went on the air (decision "rebroadcast")
    rebroadcasts: Dict[int, float] = field(default_factory=dict)
    #: host -> (time, verdict) for terminal suppression verdicts
    suppressions: Dict[int, Tuple[float, str]] = field(default_factory=dict)
    duplicate_hears: int = 0
    rx_clean: int = 0
    rx_corrupt: int = 0
    last_event_time: float = 0.0

    @property
    def key(self) -> Key:
        return (self.source, self.seq)

    @property
    def reached(self) -> int:
        """Hosts that first-heard the packet (the SRB denominator ``r``)."""
        return len(self.receives)

    @property
    def transmissions(self) -> int:
        """Non-source copies put on the air (the SRB numerator ``t``)."""
        return len(self.rebroadcasts)

    @property
    def srb(self) -> float:
        """Saved ReBroadcast ``1 - t/r`` (paper Sec. 5); NaN if unreached."""
        if not self.receives:
            return float("nan")
        return 1.0 - len(self.rebroadcasts) / len(self.receives)

    @property
    def redundancy(self) -> float:
        """Mean hears per reached host (duplicates / reach, + the first)."""
        if not self.receives:
            return float("nan")
        return 1.0 + self.duplicate_hears / len(self.receives)

    @property
    def time_to_quiescence(self) -> float:
        """Last trace event attributed to this broadcast minus origination."""
        return self.last_event_time - self.origin_time

    def suppression_breakdown(self) -> Dict[str, int]:
        """verdict -> host count among suppressed hosts."""
        out: Dict[str, int] = {}
        for _, verdict in self.suppressions.values():
            out[verdict] = out.get(verdict, 0) + 1
        return out

    def tree(self) -> Dict[int, Optional[int]]:
        """host -> parent (the sender it first heard from; source -> None)."""
        parents: Dict[int, Optional[int]] = {self.source: None}
        for host, (_, sender) in self.receives.items():
            parents[host] = sender
        return parents

    def summary(self) -> Dict[str, Any]:
        return {
            "src": self.source,
            "seq": self.seq,
            "origin_time": self.origin_time,
            "reached": self.reached,
            "rebroadcasts": self.transmissions,
            "suppressed": len(self.suppressions),
            "srb": self.srb,
            "redundancy": self.redundancy,
            "duplicate_hears": self.duplicate_hears,
            "rx_corrupt": self.rx_corrupt,
            "time_to_quiescence": self.time_to_quiescence,
            "suppression_breakdown": self.suppression_breakdown(),
        }


@dataclass
class TraceAnalysis:
    """Whole-trace rollup: per-broadcast trees plus fault timeline."""

    broadcasts: Dict[Key, BroadcastTrace] = field(default_factory=dict)
    faults: List[Tuple[float, str, int]] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def total_reached(self) -> int:
        return sum(b.reached for b in self.broadcasts.values())

    @property
    def total_rebroadcasts(self) -> int:
        return sum(b.transmissions for b in self.broadcasts.values())

    def suppression_breakdown(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for b in self.broadcasts.values():
            for verdict, count in b.suppression_breakdown().items():
                out[verdict] = out.get(verdict, 0) + count
        return out

    def report(self) -> str:
        lines = []
        if self.meta:
            pairs = ", ".join(
                f"{k}={self.meta[k]}" for k in sorted(self.meta)
                if k not in ("ev", "schema_version")
            )
            lines.append(f"trace: {pairs}")
        lines.append(
            f"{len(self.broadcasts)} broadcasts, "
            f"{self.total_reached} first-hears, "
            f"{self.total_rebroadcasts} rebroadcasts, "
            f"{len(self.faults)} fault events"
        )
        for key in sorted(self.broadcasts):
            s = self.broadcasts[key].summary()
            breakdown = ", ".join(
                f"{v}:{n}" for v, n in sorted(s["suppression_breakdown"].items())
            ) or "none"
            lines.append(
                f"  ({s['src']},{s['seq']}) t={s['origin_time']:.3f}s: "
                f"reached {s['reached']}, rebroadcast {s['rebroadcasts']}, "
                f"srb={s['srb']:.3f}, redundancy={s['redundancy']:.2f}, "
                f"quiescence={s['time_to_quiescence'] * 1e3:.1f}ms, "
                f"suppressed [{breakdown}]"
            )
        return "\n".join(lines)


_TERMINAL_SUPPRESSIONS = ("inhibit-immediate", "inhibit")


def analyze_records(
    records: Iterable[Dict[str, Any]],
    meta: Optional[Dict[str, Any]] = None,
) -> TraceAnalysis:
    """Build a :class:`TraceAnalysis` from schema-expanded record dicts."""
    analysis = TraceAnalysis(meta=dict(meta or {}))
    broadcasts = analysis.broadcasts

    def bcast(src: int, seq: int) -> BroadcastTrace:
        key = (src, seq)
        b = broadcasts.get(key)
        if b is None:
            b = broadcasts[key] = BroadcastTrace(source=src, seq=seq)
        return b

    for d in records:
        ev = d["ev"]
        if ev == "trace-meta":
            analysis.meta.update(d)
            continue
        t = d["t"]
        if ev == "originate":
            b = bcast(d["src"], d["seq"])
            b.origin_time = t
            b.last_event_time = max(b.last_event_time, t)
        elif ev == "receive":
            b = bcast(d["src"], d["seq"])
            b.receives.setdefault(d["host"], (t, d["sender"]))
            b.last_event_time = max(b.last_event_time, t)
        elif ev == "dup":
            b = bcast(d["src"], d["seq"])
            b.duplicate_hears += 1
            b.last_event_time = max(b.last_event_time, t)
        elif ev == "decision":
            b = bcast(d["src"], d["seq"])
            verdict = d["verdict"]
            if verdict == "rebroadcast":
                b.rebroadcasts.setdefault(d["host"], t)
                b.suppressions.pop(d["host"], None)
            elif verdict in _TERMINAL_SUPPRESSIONS:
                b.suppressions[d["host"]] = (t, verdict)
            # "defer"/"assess"/"cancel-too-late" are intermediate steps;
            # the terminal verdict for the host arrives later (or never,
            # if the run ended mid-assessment).
            b.last_event_time = max(b.last_event_time, t)
        elif ev in ("rad-wait", "tx-abort", "mac-enqueue"):
            src, seq = d.get("src", -1), d.get("seq", -1)
            if src is not None and src >= 0 and seq >= 0:
                b = bcast(src, seq)
                b.last_event_time = max(b.last_event_time, t)
        elif ev in ("rx", "rx-corrupt"):
            if d["src"] >= 0 and d["seq"] >= 0:
                b = bcast(d["src"], d["seq"])
                if ev == "rx":
                    b.rx_clean += 1
                else:
                    b.rx_corrupt += 1
                b.last_event_time = max(b.last_event_time, t)
        elif ev == "tx-start":
            if d["kind"] == "bcast":
                b = bcast(d["src"], d["seq"])
                b.last_event_time = max(b.last_event_time, t + d["duration"])
        elif ev == "fault":
            analysis.faults.append((t, d["kind"], d["host"]))
    return analysis


def analyze_recorder(recorder: TraceRecorder) -> TraceAnalysis:
    """Analyze an in-memory :class:`TraceRecorder`."""
    return analyze_records(
        (record_to_dict(r) for r in recorder.records), meta=recorder.meta
    )


def load_jsonl(path: Union[str, Path]) -> TraceAnalysis:
    """Load and analyze an exported JSONL trace file (validates records)."""
    def records():
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                obj = json.loads(line)
                validate_record(obj)
                yield obj

    return analyze_records(records())


def main(argv: List[str]) -> int:  # pragma: no cover - exercised by CI
    """``python -m repro.trace.analyze TRACE.jsonl`` -- print a summary."""
    if not argv:
        print("usage: python -m repro.trace.analyze TRACE.jsonl [...]")
        return 2
    for path in argv:
        print(load_jsonl(path).report())
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main(sys.argv[1:]))
