"""The opt-in trace sink the instrumented layers append to.

Design constraints (the tentpole's "zero-cost-when-off, cheap-when-on"):

- **Off**: every instrumentation site is guarded by a single
  ``trace is not None`` check on an attribute-loaded local; no recorder
  object exists, no call is made, and the simulation is bit-identical to
  an uninstrumented tree (covered by the golden determinism suite).
- **On**: hot sites append **bare tuples** ``(time, category, *values)``
  directly onto :attr:`TraceRecorder.records` -- no dict building, no
  method call, no formatting.  Field names live in
  :data:`repro.trace.schema.SCHEMA`; :meth:`TraceRecorder.as_dicts`
  expands records for exporters, the analyzer and tests.

Timestamps are **simulation time** (seconds); no wall-clock value ever
enters a record, so a traced run is deterministic: same seed, same records.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.trace.schema import SCHEMA, record_to_dict

__all__ = ["TraceRecorder", "frame_ident"]


def frame_ident(frame: Any) -> Tuple[str, int, int, int]:
    """``(kind, src, seq, hops)`` identity of any on-air frame.

    Unwraps MAC :class:`~repro.mac.frames.DataFrame` envelopes via their
    ``payload`` attribute and duck-types the payload, so the channel can
    trace without importing the net layer: broadcast copies report their
    global key and hop count, HELLOs their sender, anything else its
    lowered class name with ``(-1, -1)``.
    """
    payload = getattr(frame, "payload", frame)
    src = getattr(payload, "source_id", None)
    if src is not None:
        return ("bcast", src, payload.seq, payload.hops)
    sender = getattr(payload, "sender_id", None)
    if sender is not None:
        return ("hello", sender, -1, 0)
    return (type(payload).__name__.lower(), -1, -1, 0)


class TraceRecorder:
    """Collects structured trace records from one simulation run.

    Pass an instance as the ``trace`` argument of
    :func:`repro.experiments.runner.run_broadcast_simulation`; afterwards
    export with :mod:`repro.trace.export` or analyze with
    :mod:`repro.trace.analyze`.

    ``sample_dt`` (seconds) arms the time-series sampler; ``None`` or 0
    disables it, leaving the traced run's scheduler event count identical
    to an untraced run.
    """

    __slots__ = ("records", "sample_dt", "meta")

    def __init__(self, sample_dt: Optional[float] = None) -> None:
        if sample_dt is not None and sample_dt < 0:
            raise ValueError(f"sample_dt must be >= 0, got {sample_dt}")
        #: Raw record tuples ``(time, category, *values)`` in emission
        #: order (which is simulation-time order).
        self.records: List[tuple] = []
        self.sample_dt = sample_dt or None
        #: Run metadata (scheme, seed, ...) filled in by the runner;
        #: exported as the JSONL header / Chrome trace metadata.
        self.meta: Dict[str, Any] = {}

    # ------------------------------------------------------------ emission

    def emit(self, time: float, category: str, **fields: Any) -> None:
        """Keyword-style emission (compatible with the legacy
        :class:`repro.sim.trace.Tracer` interface).

        Hot paths bypass this and append tuples directly; ``emit`` is for
        cold sites and tests.  Unknown categories or fields raise.
        """
        order = SCHEMA.get(category)
        if order is None:
            raise ValueError(f"unknown trace category {category!r}")
        extra = set(fields) - set(order)
        if extra:
            raise ValueError(
                f"{category}: unknown fields {sorted(extra)} "
                f"(schema: {order})"
            )
        self.records.append(
            (time, category) + tuple(fields.get(name) for name in order)
        )

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self.records)

    def count(self, category: str) -> int:
        return sum(1 for r in self.records if r[1] == category)

    def filter(self, category: str) -> List[tuple]:
        """Raw record tuples of one category, in order."""
        return [r for r in self.records if r[1] == category]

    def as_dicts(
        self, category: Optional[str] = None
    ) -> Iterator[Dict[str, Any]]:
        """Records expanded to dicts via the schema (optionally filtered)."""
        for record in self.records:
            if category is None or record[1] == category:
                yield record_to_dict(record)

    def categories(self) -> Dict[str, int]:
        """Category -> record count histogram."""
        out: Dict[str, int] = {}
        for record in self.records:
            out[record[1]] = out.get(record[1], 0) + 1
        return out

    def clear(self) -> None:
        self.records.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceRecorder({len(self.records)} records, "
            f"sample_dt={self.sample_dt})"
        )
