"""Trace exporters: JSONL and Chrome trace-event format.

JSONL
-----
One JSON object per line.  The first line is a ``trace-meta`` header
(schema version + run metadata); every following line is one record with
``t`` (simulation seconds), ``ev`` (category) and the category's schema
fields.  Validate with :func:`repro.trace.schema.validate_jsonl`.

Chrome trace-event format
-------------------------
A single JSON object with ``traceEvents``, loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.  Mapping:

- one process (pid 0 = "the medium"), one thread track per host;
- transmissions (``tx-start``) and RAD waits (``rad-wait``) become ``X``
  complete events (spans with duration);
- receptions, decisions, MAC steps and faults become ``i`` instants on the
  owning host's track;
- ``sample`` records become ``C`` counter tracks (channel, queues, hosts,
  cumulative totals).

Timestamps are converted from simulation seconds to the format's
microseconds; everything stays simulation-time (no wall clock).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Union

from repro.trace.recorder import TraceRecorder
from repro.trace.schema import SCHEMA_VERSION, record_to_dict

__all__ = [
    "iter_jsonl",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
]

PathLike = Union[str, Path]


# ----------------------------------------------------------------- JSONL


def iter_jsonl(recorder: TraceRecorder) -> Iterator[str]:
    """Yield the JSONL lines (header first) for a recorded trace."""
    header = {"ev": "trace-meta", "schema_version": SCHEMA_VERSION}
    header.update(recorder.meta)
    yield json.dumps(header, sort_keys=True)
    for record in recorder.records:
        yield json.dumps(record_to_dict(record))


def write_jsonl(recorder: TraceRecorder, path: PathLike) -> int:
    """Write the trace as JSONL; returns the number of records written."""
    count = 0
    with open(path, "w") as fh:
        for line in iter_jsonl(recorder):
            fh.write(line)
            fh.write("\n")
            count += 1
    return count - 1  # header excluded


# ------------------------------------------------------- Chrome trace JSON

_MEDIUM_PID = 0
#: Synthetic tid for medium-wide instants (faults without a live track).
_MEDIUM_TID = -1


def _span(name: str, cat: str, ts: float, dur: float, tid: int,
          args: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "name": name, "cat": cat, "ph": "X", "ts": ts, "dur": dur,
        "pid": _MEDIUM_PID, "tid": tid, "args": args,
    }


def _instant(name: str, cat: str, ts: float, tid: int,
             args: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "name": name, "cat": cat, "ph": "i", "s": "t", "ts": ts,
        "pid": _MEDIUM_PID, "tid": tid, "args": args,
    }


def _counter(name: str, ts: float, args: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "name": name, "ph": "C", "ts": ts, "pid": _MEDIUM_PID,
        "tid": _MEDIUM_TID, "args": args,
    }


def chrome_trace(recorder: TraceRecorder) -> Dict[str, Any]:
    """Convert a recorded trace to a Chrome trace-event document."""
    events: List[Dict[str, Any]] = []
    tids = set()

    for record in recorder.records:
        d = record_to_dict(record)
        ev = d["ev"]
        ts = d["t"] * 1e6  # seconds -> microseconds

        if ev == "tx-start":
            tids.add(d["host"])
            key = f"({d['src']},{d['seq']})" if d["kind"] == "bcast" else ""
            events.append(_span(
                f"tx {d['kind']} {key}".rstrip(), "tx", ts,
                d["duration"] * 1e6, d["host"],
                {"src": d["src"], "seq": d["seq"], "hops": d["hops"],
                 "receivers": d["receivers"]},
            ))
        elif ev == "rad-wait":
            tids.add(d["host"])
            events.append(_span(
                f"rad-wait ({d['src']},{d['seq']})", "scheme", ts,
                d["jitter"] * 1e6, d["host"],
                {"src": d["src"], "seq": d["seq"]},
            ))
        elif ev in ("rx", "rx-corrupt"):
            tids.add(d["receiver"])
            events.append(_instant(
                f"{ev} {d['kind']} ({d['src']},{d['seq']})", ev, ts,
                d["receiver"], {"sender": d["sender"]},
            ))
        elif ev == "decision":
            tids.add(d["host"])
            events.append(_instant(
                f"{d['verdict']} ({d['src']},{d['seq']})", "decision", ts,
                d["host"],
                {"scheme": d["scheme"], "n": d["n"],
                 "threshold": d["threshold"], "observed": d["observed"]},
            ))
        elif ev in ("originate", "receive", "dup"):
            tids.add(d["host"])
            events.append(_instant(
                f"{ev} ({d['src']},{d['seq']})", ev, ts, d["host"],
                {"sender": d.get("sender")},
            ))
        elif ev in ("mac-enqueue", "mac-backoff", "mac-freeze", "tx-abort"):
            tids.add(d["host"])
            args = {k: v for k, v in d.items()
                    if k not in ("t", "ev", "host")}
            events.append(_instant(ev, "mac", ts, d["host"], args))
        elif ev == "fault":
            tids.add(d["host"])
            events.append(_instant(
                f"fault:{d['kind']}", "fault", ts, d["host"],
                {"kind": d["kind"]},
            ))
        elif ev == "sample":
            events.append(_counter("channel", ts, {
                "busy_frac": d["busy_frac"], "in_flight": d["in_flight"],
            }))
            events.append(_counter("queues", ts, {
                "total": d["queue_total"], "max": d["queue_max"],
            }))
            events.append(_counter("hosts", ts, {"alive": d["alive"]}))
            events.append(_counter("cumulative", ts, {
                "transmissions": d["transmissions"],
                "deliveries": d["deliveries"],
                "collisions": d["collisions"],
                "receives": d["receives"],
            }))
        # queue-depths: folded into the "queues" counters above.

    name_events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": _MEDIUM_PID,
        "args": {"name": "repro-manet"},
    }]
    for tid in sorted(tids):
        name_events.append({
            "name": "thread_name", "ph": "M", "pid": _MEDIUM_PID,
            "tid": tid,
            "args": {"name": f"host {tid}" if tid >= 0 else "medium"},
        })
    return {
        "traceEvents": name_events + events,
        "displayTimeUnit": "ms",
        "metadata": dict(recorder.meta, schema_version=SCHEMA_VERSION),
    }


def write_chrome_trace(recorder: TraceRecorder, path: PathLike) -> int:
    """Write the Perfetto-loadable JSON; returns the trace-event count."""
    doc = chrome_trace(recorder)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])
