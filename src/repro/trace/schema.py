"""Trace record schema: category -> field names, plus JSONL validation.

Hot-path emitters append **bare tuples** ``(time, category, *values)``
straight onto :attr:`~repro.trace.recorder.TraceRecorder.records`; this
module is the single source of truth for what the positional values mean.
Exporters and the analyzer expand tuples into dicts through :data:`SCHEMA`,
and the CI smoke job validates exported JSONL against it.

Record categories
-----------------
Packet lifecycle (keyed by the global broadcast id ``(src, seq)`` plus the
hop id ``hops`` where the event is per-copy):

- ``originate`` -- a source created a new logical broadcast.
- ``receive`` -- first successful reception of a broadcast at a host.
- ``dup`` -- duplicate-cache hit (the host heard the packet again).
- ``decision`` -- one suppression-decision step with full provenance
  (scheme name, neighbor count ``n``, threshold ``C(n)``/``A(n)`` -- or the
  pending-set floor 0 for NC -- the observed counter/coverage/pending size,
  and the verdict).  Verdicts: ``inhibit-immediate`` (S1), ``defer`` (S2
  entered), ``assess`` (S4 update below threshold), ``inhibit`` (S5),
  ``cancel-too-late`` (S5 lost the race to the air) and ``rebroadcast``
  (S3, the copy is on the air).
- ``rad-wait`` -- the random-assessment-delay drawn at S2.
- ``mac-enqueue`` / ``mac-backoff`` / ``mac-freeze`` -- MAC queue and
  contention steps.
- ``tx-start`` / ``tx-abort`` -- a frame entering / being truncated on the
  medium (``receivers`` is the frozen receiver-set size).
- ``rx`` / ``rx-corrupt`` -- per-receiver frame completion, clean or
  garbled (collision, half-duplex deafness or injected loss).
- ``fault`` -- an executed fault-plan event (crash/recover/hello-mute).
- ``sample`` / ``queue-depths`` -- time-series telemetry emitted by the
  :class:`~repro.trace.sampler.TimeSeriesSampler`.

``kind`` distinguishes frame payloads: ``bcast``, ``hello``, or the lowered
class name for anything else (e.g. ``ackframe``).  ``src``/``seq`` are
``-1`` for frames that are not broadcast copies.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "DECISION_VERDICTS",
    "record_to_dict",
    "validate_record",
    "validate_jsonl",
    "TraceSchemaError",
]

SCHEMA_VERSION = 1

#: category -> ordered field names following ``(time, category)``.
SCHEMA: Dict[str, Tuple[str, ...]] = {
    # net layer
    "originate": ("src", "seq", "host"),
    "receive": ("src", "seq", "host", "sender"),
    "dup": ("src", "seq", "host", "sender"),
    # scheme layer
    "decision": (
        "src", "seq", "host", "scheme", "verdict", "n", "threshold",
        "observed",
    ),
    "rad-wait": ("src", "seq", "host", "jitter"),
    # MAC layer
    "mac-enqueue": ("host", "kind", "src", "seq"),
    "mac-backoff": ("host", "slots", "cw"),
    "mac-freeze": ("host", "remaining"),
    # channel layer
    "tx-start": ("host", "kind", "src", "seq", "hops", "duration",
                 "receivers"),
    "tx-abort": ("host", "kind", "src", "seq"),
    "rx": ("sender", "receiver", "kind", "src", "seq"),
    "rx-corrupt": ("sender", "receiver", "kind", "src", "seq"),
    # faults
    "fault": ("kind", "host"),
    # time-series sampler
    "sample": (
        "busy_frac", "in_flight", "queue_total", "queue_max", "alive",
        "transmissions", "deliveries", "collisions", "receives",
    ),
    "queue-depths": ("depths",),
}

DECISION_VERDICTS = frozenset({
    "inhibit-immediate", "defer", "assess", "inhibit", "cancel-too-late",
    "rebroadcast",
})


class TraceSchemaError(ValueError):
    """A trace record does not conform to :data:`SCHEMA`."""


def record_to_dict(record: Tuple[Any, ...]) -> Dict[str, Any]:
    """Expand one ``(time, category, *values)`` tuple into a dict."""
    category = record[1]
    fields = SCHEMA.get(category)
    if fields is None:
        raise TraceSchemaError(f"unknown trace category {category!r}")
    values = record[2:]
    if len(values) != len(fields):
        raise TraceSchemaError(
            f"{category}: expected {len(fields)} fields {fields}, "
            f"got {len(values)}"
        )
    out: Dict[str, Any] = {"t": record[0], "ev": category}
    out.update(zip(fields, values))
    return out


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_record(obj: Dict[str, Any]) -> None:
    """Validate one JSONL record dict; raises :class:`TraceSchemaError`.

    The ``trace-meta`` header record is accepted with free-form fields.
    """
    if not isinstance(obj, dict):
        raise TraceSchemaError(f"record is not an object: {obj!r}")
    category = obj.get("ev")
    if category == "trace-meta":
        if obj.get("schema_version") != SCHEMA_VERSION:
            raise TraceSchemaError(
                f"trace-meta schema_version {obj.get('schema_version')!r} "
                f"!= {SCHEMA_VERSION}"
            )
        return
    fields = SCHEMA.get(category)
    if fields is None:
        raise TraceSchemaError(f"unknown trace category {category!r}")
    if not _is_number(obj.get("t")) or obj["t"] < 0:
        raise TraceSchemaError(
            f"{category}: 't' must be a non-negative sim time, "
            f"got {obj.get('t')!r}"
        )
    expected = set(fields) | {"t", "ev"}
    actual = set(obj)
    if actual != expected:
        raise TraceSchemaError(
            f"{category}: field mismatch (missing {sorted(expected - actual)}, "
            f"unexpected {sorted(actual - expected)})"
        )
    if category == "decision" and obj["verdict"] not in DECISION_VERDICTS:
        raise TraceSchemaError(
            f"decision: unknown verdict {obj['verdict']!r}"
        )


def validate_jsonl(path: Union[str, Path]) -> int:
    """Validate every line of a JSONL trace file; returns the record count.

    Raises :class:`TraceSchemaError` (with the line number) on the first
    malformed record.
    """
    count = 0
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceSchemaError(
                    f"{path}:{lineno}: not JSON: {exc}"
                ) from exc
            try:
                validate_record(obj)
            except TraceSchemaError as exc:
                raise TraceSchemaError(f"{path}:{lineno}: {exc}") from exc
            count += 1
    return count


def main(argv: List[str]) -> int:  # pragma: no cover - exercised by CI
    """``python -m repro.trace.schema TRACE.jsonl ...`` -- validate files."""
    if not argv:
        print("usage: python -m repro.trace.schema TRACE.jsonl [...]")
        return 2
    for path in argv:
        count = validate_jsonl(path)
        print(f"{path}: {count} records OK (schema v{SCHEMA_VERSION})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main(sys.argv[1:]))
