"""Fixed-Δt time-series telemetry for traced runs.

Every ``sample_dt`` seconds the sampler appends one ``sample`` record
(channel busy fraction over the window, in-flight frame count, aggregate
MAC queue depth, alive-host count and the cumulative transmission /
delivery / collision / reception totals) plus, when any host has frames
queued, one sparse ``queue-depths`` record with the nonzero per-host
depths.

Determinism: the sampler reads state, draws no randomness and fires at a
late tie-break priority, so same-time simulation events run first and two
traced runs sample identical values.  Its tick events do consume scheduler
sequence numbers, which shifts ``events_processed`` (and only that) versus
an unsampled run; FIFO tie order among the simulation's own events is
unchanged because relative sequence order is preserved.
"""

from __future__ import annotations

from typing import Any

from repro.trace.recorder import TraceRecorder

__all__ = ["TimeSeriesSampler"]


class TimeSeriesSampler:
    """Emits periodic ``sample`` records into a :class:`TraceRecorder`."""

    #: Tie-break priority: strictly after same-instant simulation events
    #: (which schedule at the default priority 0), so a sample observes
    #: the post-event state of its instant.
    PRIORITY = 1000

    def __init__(
        self,
        scheduler: Any,
        network: Any,
        metrics: Any,
        recorder: TraceRecorder,
    ) -> None:
        dt = recorder.sample_dt
        if not dt or dt <= 0:
            raise ValueError(
                f"recorder.sample_dt must be > 0 to sample, got {dt!r}"
            )
        self._scheduler = scheduler
        self._network = network
        self._metrics = metrics
        self._recorder = recorder
        self._dt = dt
        self._until = 0.0
        self._prev_tx_airtime = 0.0
        self.samples_taken = 0

    def start(self, until: float) -> None:
        """Arm the first tick; sampling stops after time ``until``."""
        self._until = until
        first = self._scheduler.now + self._dt
        if first <= until:
            self._scheduler.schedule_at(
                first, self._tick, priority=self.PRIORITY
            )

    def _tick(self) -> None:
        scheduler = self._scheduler
        now = scheduler._now
        network = self._network
        channel = network.channel
        stats = channel.stats

        # Busy fraction: tx airtime *started* in this window over the
        # window length (aborts credit their unsent remainder back).
        tx_airtime = stats.total_tx_airtime
        busy_frac = (tx_airtime - self._prev_tx_airtime) / self._dt
        self._prev_tx_airtime = tx_airtime

        queue_total = 0
        queue_max = 0
        alive = 0
        depths = []
        for host in network.hosts:
            if not host.alive:
                continue
            alive += 1
            depth = host.mac.queue_length
            if depth:
                queue_total += depth
                if depth > queue_max:
                    queue_max = depth
                depths.append((host.host_id, depth))

        receives = sum(
            len(record.received_times)
            for record in self._metrics.records.values()
        )
        self._recorder.records.append((
            now, "sample", busy_frac, len(channel._active), queue_total,
            queue_max, alive, stats.transmissions, stats.deliveries,
            stats.collisions, receives,
        ))
        if depths:
            self._recorder.records.append((now, "queue-depths", depths))
        self.samples_taken += 1

        nxt = now + self._dt
        if nxt <= self._until:
            scheduler.schedule_at(nxt, self._tick, priority=self.PRIORITY)
