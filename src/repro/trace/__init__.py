"""Opt-in structured tracing for simulation runs.

Pass a :class:`TraceRecorder` as the ``trace`` argument of
:func:`repro.experiments.runner.run_broadcast_simulation` (or use the CLI
``run --trace out.jsonl``).  With no recorder the instrumented layers are
bit-identical to an untraced build; with one, they append sim-time-stamped
tuples describing packet lifecycles, suppression decisions, MAC/channel
activity, faults, and (optionally) periodic telemetry samples.

See :mod:`repro.trace.schema` for the record catalogue,
:mod:`repro.trace.export` for JSONL / Chrome trace-event output and
:mod:`repro.trace.analyze` for per-broadcast reconstruction.
"""

from repro.trace.analyze import (
    BroadcastTrace,
    TraceAnalysis,
    analyze_records,
    analyze_recorder,
    load_jsonl,
)
from repro.trace.export import (
    chrome_trace,
    iter_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.trace.recorder import TraceRecorder, frame_ident
from repro.trace.sampler import TimeSeriesSampler
from repro.trace.schema import (
    DECISION_VERDICTS,
    SCHEMA,
    SCHEMA_VERSION,
    TraceSchemaError,
    record_to_dict,
    validate_jsonl,
    validate_record,
)

__all__ = [
    "TraceRecorder",
    "frame_ident",
    "TimeSeriesSampler",
    "SCHEMA",
    "SCHEMA_VERSION",
    "DECISION_VERDICTS",
    "TraceSchemaError",
    "record_to_dict",
    "validate_record",
    "validate_jsonl",
    "iter_jsonl",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "BroadcastTrace",
    "TraceAnalysis",
    "analyze_recorder",
    "analyze_records",
    "load_jsonl",
]
