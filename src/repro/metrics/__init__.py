"""Performance metrics (paper Section 4).

- **RE** (reachability): ``r / e`` -- hosts that received the broadcast over
  hosts reachable (directly or indirectly) from the source at the moment of
  initiation, so network partitioning does not count against a scheme.
- **SRB** (saved rebroadcast): ``(r - t) / r`` -- the fraction of receiving
  hosts whose rebroadcast was saved.
- **Average latency**: initiation to the time the last host finishes its
  rebroadcast or decides not to rebroadcast.

Both r and t count non-source hosts; the source's initial transmission is a
broadcast, not a *re*-broadcast.
"""

from repro.metrics.collector import (
    BroadcastRecord,
    MetricsCollector,
    SimulationSummary,
    SummaryStat,
)
from repro.metrics.connectivity import connected_components, reachable_set

__all__ = [
    "BroadcastRecord",
    "MetricsCollector",
    "SimulationSummary",
    "SummaryStat",
    "reachable_set",
    "connected_components",
]
