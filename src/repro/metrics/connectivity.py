"""Connectivity snapshots over the unit-disk graph.

``e`` in the RE metric is the number of hosts reachable from the source,
directly or indirectly, at the moment the broadcast is initiated.  Positions
are hashed into a grid of radio-radius-sized cells so neighbor candidates
come from the 3x3 surrounding cells only, making a snapshot O(n * density)
instead of O(n^2).
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, Hashable, List, Set, Tuple

__all__ = ["reachable_set", "connected_components"]

Position = Tuple[float, float]


def _grid_index(
    positions: Dict[Hashable, Position], cell: float
) -> Dict[Tuple[int, int], List[Hashable]]:
    grid: Dict[Tuple[int, int], List[Hashable]] = defaultdict(list)
    for host_id, (x, y) in positions.items():
        grid[(int(x // cell), int(y // cell))].append(host_id)
    return grid


def _neighbors(
    host_id: Hashable,
    positions: Dict[Hashable, Position],
    grid: Dict[Tuple[int, int], List[Hashable]],
    radius: float,
) -> List[Hashable]:
    x, y = positions[host_id]
    cx, cy = int(x // radius), int(y // radius)
    rr = radius * radius
    out = []
    for gx in (cx - 1, cx, cx + 1):
        for gy in (cy - 1, cy, cy + 1):
            for other in grid.get((gx, gy), ()):
                if other == host_id:
                    continue
                ox, oy = positions[other]
                dx, dy = x - ox, y - oy
                if dx * dx + dy * dy <= rr:
                    out.append(other)
    return out


def reachable_set(
    positions: Dict[Hashable, Position], source: Hashable, radius: float
) -> Set[Hashable]:
    """Hosts reachable from ``source`` by multihop paths (source excluded)."""
    if source not in positions:
        raise KeyError(f"source {source!r} has no position")
    if radius <= 0:
        raise ValueError(f"radius must be > 0, got {radius}")
    grid = _grid_index(positions, radius)
    visited = {source}
    queue = deque([source])
    rr = radius * radius
    grid_get = grid.get
    pop = queue.popleft
    push = queue.append
    while queue:
        current = pop()
        x, y = positions[current]
        cx, cy = int(x // radius), int(y // radius)
        for gx in (cx - 1, cx, cx + 1):
            for gy in (cy - 1, cy, cy + 1):
                for other in grid_get((gx, gy), ()):
                    # Checking ``visited`` first also skips ``current``
                    # itself, which is always visited.
                    if other in visited:
                        continue
                    ox, oy = positions[other]
                    dx = x - ox
                    dy = y - oy
                    if dx * dx + dy * dy <= rr:
                        visited.add(other)
                        push(other)
    visited.discard(source)
    return visited


def connected_components(
    positions: Dict[Hashable, Position], radius: float
) -> List[Set[Hashable]]:
    """All connected components of the unit-disk graph (largest first)."""
    remaining = set(positions)
    components = []
    while remaining:
        seed = next(iter(remaining))
        component = reachable_set(positions, seed, radius) | {seed}
        components.append(component)
        remaining -= component
    components.sort(key=len, reverse=True)
    return components
