"""Per-broadcast records and simulation-wide aggregation."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro.net.packets import PacketKey

__all__ = [
    "BroadcastRecord",
    "FaultEventRecord",
    "MetricsCollector",
    "SummaryStat",
    "SimulationSummary",
    "WindowSummary",
]


@dataclass
class BroadcastRecord:
    """Everything observed about one logical broadcast."""

    key: PacketKey
    source_id: int
    origin_time: float
    reachable_count: int  # e: hosts reachable from the source at initiation
    received_times: Dict[int, float] = field(default_factory=dict)
    rebroadcasters: Set[int] = field(default_factory=set)
    decision_times: Dict[int, float] = field(default_factory=dict)
    source_tx_end: Optional[float] = None
    #: Present only when the collector was built with
    #: ``store_reachable_sets=True`` (costs memory on long runs).
    reachable_set: Optional[FrozenSet[int]] = None

    @property
    def received_count(self) -> int:
        """r: non-source hosts that successfully received the packet."""
        return len(self.received_times)

    @property
    def rebroadcast_count(self) -> int:
        """t: non-source hosts that actually put a rebroadcast on the air."""
        return len(self.rebroadcasters)

    @property
    def reachability(self) -> Optional[float]:
        """RE = r / e, or ``None`` when the source was isolated (e = 0)."""
        if self.reachable_count == 0:
            return None
        return self.received_count / self.reachable_count

    @property
    def saved_rebroadcast(self) -> Optional[float]:
        """SRB = (r - t) / r, or ``None`` when nothing was received."""
        if self.received_count == 0:
            return None
        return (
            self.received_count - self.rebroadcast_count
        ) / self.received_count

    def latency(self, fallback_end: Optional[float] = None) -> Optional[float]:
        """Initiation to the last rebroadcast-finish / inhibit decision.

        Receiving hosts still undecided (possible only if the simulation was
        cut off) are charged ``fallback_end``.  Returns ``None`` when nobody
        received the packet.
        """
        if self.received_count == 0:
            return None
        last = self.source_tx_end if self.source_tx_end is not None else self.origin_time
        for host_id in self.received_times:
            decided = self.decision_times.get(host_id)
            if decided is None:
                decided = fallback_end if fallback_end is not None else self.origin_time
            last = max(last, decided)
        return last - self.origin_time


@dataclass
class SummaryStat:
    """Mean / spread / count of one metric over all broadcasts."""

    mean: float
    std: float
    count: int

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.count <= 1:
            return 0.0
        return self.std / math.sqrt(self.count)

    @classmethod
    def of(cls, values: List[float]) -> Optional["SummaryStat"]:
        if not values:
            return None
        n = len(values)
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / (n - 1) if n > 1 else 0.0
        return cls(mean=mean, std=math.sqrt(var), count=n)


@dataclass
class SimulationSummary:
    """Aggregated RE / SRB / latency for one simulation run."""

    reachability: Optional[SummaryStat]
    saved_rebroadcast: Optional[SummaryStat]
    latency: Optional[SummaryStat]
    broadcasts: int
    hello_packets_sent: int

    def row(self) -> Dict[str, float]:
        """Flat dict for result tables (NaN for undefined metrics)."""
        return {
            "re": self.reachability.mean if self.reachability else math.nan,
            "srb": self.saved_rebroadcast.mean if self.saved_rebroadcast else math.nan,
            "latency": self.latency.mean if self.latency else math.nan,
            "broadcasts": self.broadcasts,
            "hellos": self.hello_packets_sent,
        }


@dataclass(frozen=True)
class FaultEventRecord:
    """One executed fault event, for the deterministic fault trace."""

    time: float
    kind: str  # "crash" | "recover" | "hello-mute" | "skipped-broadcast"
    host_id: int


@dataclass
class WindowSummary:
    """RE / SRB aggregated over broadcasts originated in ``[start, end)``."""

    start: float
    end: float
    reachability: Optional[SummaryStat]
    saved_rebroadcast: Optional[SummaryStat]
    broadcasts: int

    def row(self) -> Dict[str, float]:
        return {
            "start": self.start,
            "end": self.end,
            "re": self.reachability.mean if self.reachability else math.nan,
            "srb": self.saved_rebroadcast.mean if self.saved_rebroadcast else math.nan,
            "broadcasts": self.broadcasts,
        }


class MetricsCollector:
    """Receives events from hosts and produces the simulation summary."""

    def __init__(self, store_reachable_sets: bool = False) -> None:
        self.records: Dict[PacketKey, BroadcastRecord] = {}
        self.hello_packets_sent = 0
        self.hello_counts_by_host: Dict[int, int] = {}
        self.store_reachable_sets = store_reachable_sets
        #: Executed fault events in time order (crashes, recoveries, mutes,
        #: broadcasts skipped because the drawn source was down).
        self.fault_events: List[FaultEventRecord] = []
        self.broadcasts_skipped = 0

    def __eq__(self, other: object) -> bool:
        """Value equality over everything recorded.

        Lets a :class:`~repro.experiments.runner.SimulationResult` that
        round-tripped through the on-disk result cache compare equal to the
        original.
        """
        if not isinstance(other, MetricsCollector):
            return NotImplemented
        return (
            self.records == other.records
            and self.hello_packets_sent == other.hello_packets_sent
            and self.hello_counts_by_host == other.hello_counts_by_host
            and self.store_reachable_sets == other.store_reachable_sets
            and self.fault_events == other.fault_events
            and self.broadcasts_skipped == other.broadcasts_skipped
        )

    __hash__ = None  # mutable container; identity hashing would be a trap

    # ----------------------------------------------------------- events

    def on_originate(
        self,
        key: PacketKey,
        source_id: int,
        time: float,
        reachable_count: int,
        reachable_set: Optional[FrozenSet[int]] = None,
    ) -> None:
        if key in self.records:
            raise ValueError(f"duplicate broadcast key {key}")
        self.records[key] = BroadcastRecord(
            key=key,
            source_id=source_id,
            origin_time=time,
            reachable_count=reachable_count,
            reachable_set=(
                reachable_set if self.store_reachable_sets else None
            ),
        )

    def on_source_tx_end(self, key: PacketKey, time: float) -> None:
        record = self.records.get(key)
        if record is not None:
            record.source_tx_end = time

    def on_receive(self, key: PacketKey, host_id: int, time: float) -> None:
        record = self.records.get(key)
        if record is not None:
            record.received_times.setdefault(host_id, time)

    def on_rebroadcast_start(self, key: PacketKey, host_id: int, time: float) -> None:
        record = self.records.get(key)
        if record is not None:
            record.rebroadcasters.add(host_id)

    def on_rebroadcast_end(self, key: PacketKey, host_id: int, time: float) -> None:
        record = self.records.get(key)
        if record is not None:
            record.decision_times[host_id] = time

    def on_inhibit(self, key: PacketKey, host_id: int, time: float) -> None:
        record = self.records.get(key)
        if record is not None:
            record.decision_times.setdefault(host_id, time)

    def on_hello_sent(self, host_id: int) -> None:
        self.hello_packets_sent += 1
        self.hello_counts_by_host[host_id] = (
            self.hello_counts_by_host.get(host_id, 0) + 1
        )

    # ---------------------------------------------------- fault events

    def on_host_crash(self, host_id: int, time: float) -> None:
        self.fault_events.append(FaultEventRecord(time, "crash", host_id))

    def on_host_recover(self, host_id: int, time: float) -> None:
        self.fault_events.append(FaultEventRecord(time, "recover", host_id))

    def on_hello_mute(self, host_id: int, time: float) -> None:
        self.fault_events.append(FaultEventRecord(time, "hello-mute", host_id))

    def on_broadcast_skipped(self, source_id: int, time: float) -> None:
        """The traffic generator drew a source that is currently down."""
        self.broadcasts_skipped += 1
        self.fault_events.append(
            FaultEventRecord(time, "skipped-broadcast", source_id)
        )

    # ------------------------------------------------------- aggregation

    def summarize(self, end_time: Optional[float] = None) -> SimulationSummary:
        """Aggregate every recorded broadcast into a summary."""
        res, srbs, lats = [], [], []
        for record in self.records.values():
            re = record.reachability
            if re is not None:
                res.append(re)
            srb = record.saved_rebroadcast
            if srb is not None:
                srbs.append(srb)
            lat = record.latency(fallback_end=end_time)
            if lat is not None:
                lats.append(lat)
        return SimulationSummary(
            reachability=SummaryStat.of(res),
            saved_rebroadcast=SummaryStat.of(srbs),
            latency=SummaryStat.of(lats),
            broadcasts=len(self.records),
            hello_packets_sent=self.hello_packets_sent,
        )

    # ------------------------------------- graceful-degradation metrics

    def window_summary(
        self, boundaries: List[float], end_time: float
    ) -> List[WindowSummary]:
        """RE / SRB per time window, split at ``boundaries``.

        Broadcasts are bucketed by origin time into the half-open windows
        ``[0, b0), [b0, b1), ..., [b_last, end_time)``.  Used to read how
        the schemes behave before / during / after a fault wave.
        """
        cuts = sorted(set(b for b in boundaries if 0.0 < b < end_time))
        edges = [0.0] + cuts + [end_time]
        out = []
        for start, end in zip(edges[:-1], edges[1:]):
            res, srbs, count = [], [], 0
            for record in self.records.values():
                if not start <= record.origin_time < end:
                    continue
                count += 1
                re = record.reachability
                if re is not None:
                    res.append(re)
                srb = record.saved_rebroadcast
                if srb is not None:
                    srbs.append(srb)
            out.append(
                WindowSummary(
                    start=start,
                    end=end,
                    reachability=SummaryStat.of(res),
                    saved_rebroadcast=SummaryStat.of(srbs),
                    broadcasts=count,
                )
            )
        return out

    def fault_window_summary(self, end_time: float) -> List[WindowSummary]:
        """Windows cut at every recorded crash / recover event."""
        boundaries = [
            ev.time for ev in self.fault_events
            if ev.kind in ("crash", "recover")
        ]
        return self.window_summary(boundaries, end_time)

    def time_to_recover(
        self,
        after: float,
        baseline_re: float,
        fraction: float = 0.9,
        consecutive: int = 1,
    ) -> Optional[float]:
        """Seconds from ``after`` until RE first returns to
        ``fraction * baseline_re`` for ``consecutive`` broadcasts in a row.

        The standard time-to-recover probe after a crash wave: take the
        pre-fault mean RE as the baseline, pass the recovery instant as
        ``after``, and read how long the degraded neighbor knowledge takes
        to heal.  Returns ``None`` if RE never recovers in the record.
        """
        if consecutive < 1:
            raise ValueError(f"consecutive must be >= 1, got {consecutive}")
        target = fraction * baseline_re
        eligible = sorted(
            (r for r in self.records.values()
             if r.origin_time >= after and r.reachability is not None),
            key=lambda r: r.origin_time,
        )
        run = 0
        run_start: Optional[float] = None
        for record in eligible:
            if record.reachability >= target:
                run += 1
                if run_start is None:
                    run_start = record.origin_time
                if run >= consecutive:
                    return run_start - after
            else:
                run = 0
                run_start = None
        return None
