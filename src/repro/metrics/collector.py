"""Per-broadcast records and simulation-wide aggregation."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro.net.packets import PacketKey

__all__ = [
    "BroadcastRecord",
    "MetricsCollector",
    "SummaryStat",
    "SimulationSummary",
]


@dataclass
class BroadcastRecord:
    """Everything observed about one logical broadcast."""

    key: PacketKey
    source_id: int
    origin_time: float
    reachable_count: int  # e: hosts reachable from the source at initiation
    received_times: Dict[int, float] = field(default_factory=dict)
    rebroadcasters: Set[int] = field(default_factory=set)
    decision_times: Dict[int, float] = field(default_factory=dict)
    source_tx_end: Optional[float] = None
    #: Present only when the collector was built with
    #: ``store_reachable_sets=True`` (costs memory on long runs).
    reachable_set: Optional[FrozenSet[int]] = None

    @property
    def received_count(self) -> int:
        """r: non-source hosts that successfully received the packet."""
        return len(self.received_times)

    @property
    def rebroadcast_count(self) -> int:
        """t: non-source hosts that actually put a rebroadcast on the air."""
        return len(self.rebroadcasters)

    @property
    def reachability(self) -> Optional[float]:
        """RE = r / e, or ``None`` when the source was isolated (e = 0)."""
        if self.reachable_count == 0:
            return None
        return self.received_count / self.reachable_count

    @property
    def saved_rebroadcast(self) -> Optional[float]:
        """SRB = (r - t) / r, or ``None`` when nothing was received."""
        if self.received_count == 0:
            return None
        return (
            self.received_count - self.rebroadcast_count
        ) / self.received_count

    def latency(self, fallback_end: Optional[float] = None) -> Optional[float]:
        """Initiation to the last rebroadcast-finish / inhibit decision.

        Receiving hosts still undecided (possible only if the simulation was
        cut off) are charged ``fallback_end``.  Returns ``None`` when nobody
        received the packet.
        """
        if self.received_count == 0:
            return None
        last = self.source_tx_end if self.source_tx_end is not None else self.origin_time
        for host_id in self.received_times:
            decided = self.decision_times.get(host_id)
            if decided is None:
                decided = fallback_end if fallback_end is not None else self.origin_time
            last = max(last, decided)
        return last - self.origin_time


@dataclass
class SummaryStat:
    """Mean / spread / count of one metric over all broadcasts."""

    mean: float
    std: float
    count: int

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.count <= 1:
            return 0.0
        return self.std / math.sqrt(self.count)

    @classmethod
    def of(cls, values: List[float]) -> Optional["SummaryStat"]:
        if not values:
            return None
        n = len(values)
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / (n - 1) if n > 1 else 0.0
        return cls(mean=mean, std=math.sqrt(var), count=n)


@dataclass
class SimulationSummary:
    """Aggregated RE / SRB / latency for one simulation run."""

    reachability: Optional[SummaryStat]
    saved_rebroadcast: Optional[SummaryStat]
    latency: Optional[SummaryStat]
    broadcasts: int
    hello_packets_sent: int

    def row(self) -> Dict[str, float]:
        """Flat dict for result tables (NaN for undefined metrics)."""
        return {
            "re": self.reachability.mean if self.reachability else math.nan,
            "srb": self.saved_rebroadcast.mean if self.saved_rebroadcast else math.nan,
            "latency": self.latency.mean if self.latency else math.nan,
            "broadcasts": self.broadcasts,
            "hellos": self.hello_packets_sent,
        }


class MetricsCollector:
    """Receives events from hosts and produces the simulation summary."""

    def __init__(self, store_reachable_sets: bool = False) -> None:
        self.records: Dict[PacketKey, BroadcastRecord] = {}
        self.hello_packets_sent = 0
        self.hello_counts_by_host: Dict[int, int] = {}
        self.store_reachable_sets = store_reachable_sets

    # ----------------------------------------------------------- events

    def on_originate(
        self,
        key: PacketKey,
        source_id: int,
        time: float,
        reachable_count: int,
        reachable_set: Optional[FrozenSet[int]] = None,
    ) -> None:
        if key in self.records:
            raise ValueError(f"duplicate broadcast key {key}")
        self.records[key] = BroadcastRecord(
            key=key,
            source_id=source_id,
            origin_time=time,
            reachable_count=reachable_count,
            reachable_set=(
                reachable_set if self.store_reachable_sets else None
            ),
        )

    def on_source_tx_end(self, key: PacketKey, time: float) -> None:
        record = self.records.get(key)
        if record is not None:
            record.source_tx_end = time

    def on_receive(self, key: PacketKey, host_id: int, time: float) -> None:
        record = self.records.get(key)
        if record is not None:
            record.received_times.setdefault(host_id, time)

    def on_rebroadcast_start(self, key: PacketKey, host_id: int, time: float) -> None:
        record = self.records.get(key)
        if record is not None:
            record.rebroadcasters.add(host_id)

    def on_rebroadcast_end(self, key: PacketKey, host_id: int, time: float) -> None:
        record = self.records.get(key)
        if record is not None:
            record.decision_times[host_id] = time

    def on_inhibit(self, key: PacketKey, host_id: int, time: float) -> None:
        record = self.records.get(key)
        if record is not None:
            record.decision_times.setdefault(host_id, time)

    def on_hello_sent(self, host_id: int) -> None:
        self.hello_packets_sent += 1
        self.hello_counts_by_host[host_id] = (
            self.hello_counts_by_host.get(host_id, 0) + 1
        )

    # ------------------------------------------------------- aggregation

    def summarize(self, end_time: Optional[float] = None) -> SimulationSummary:
        """Aggregate every recorded broadcast into a summary."""
        res, srbs, lats = [], [], []
        for record in self.records.values():
            re = record.reachability
            if re is not None:
                res.append(re)
            srb = record.saved_rebroadcast
            if srb is not None:
                srbs.append(srb)
            lat = record.latency(fallback_end=end_time)
            if lat is not None:
                lats.append(lat)
        return SimulationSummary(
            reachability=SummaryStat.of(res),
            saved_rebroadcast=SummaryStat.of(srbs),
            latency=SummaryStat.of(lats),
            broadcasts=len(self.records),
            hello_packets_sent=self.hello_packets_sent,
        )
