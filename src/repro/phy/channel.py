"""The shared radio medium.

Propagation model
-----------------
Unit disk: a frame transmitted from position *p* is heard by every attached
host within ``radio_radius`` of *p*.  The receiver set is frozen at
transmission start; at the paper's parameters a frame lasts 2.432 ms, during
which even an 80 km/h host moves under 6 cm, so mid-frame topology change is
negligible.

Collision model
---------------
Receiver-side overlap, no capture effect, which is what makes the broadcast
storm bite:

- If two or more frames overlap in time at a receiver, **all** of them are
  corrupted at that receiver (the paper: without collision detection a host
  keeps transmitting even if foregoing bits were garbled).
- A host is half-duplex: frames arriving while it transmits are corrupted
  for it, though they still occupy its carrier sense afterwards.

Carrier sensing
---------------
Edge-triggered ``on_medium_state(busy)`` notifications track *incoming*
energy only (transitions of the host's in-flight reception set between empty
and non-empty); a host's own transmission state is something its MAC already
knows, so it is deliberately excluded from the notifications.  The
:meth:`Channel.carrier_busy` poll, used by tests, reports the physical truth
(incoming energy or own transmission).

Busy notifications are delivered through a zero-delay event rather than
synchronously.  This models the fact that clear-channel assessment cannot
sense a carrier instantaneously (the paper: "carriers cannot be sensed
immediately due to things such as RF delays"): stations whose backoff
countdowns expire at the same instant all transmit and collide, instead of
the second one impossibly sensing the first with zero delay.  Idle
notifications are synchronous -- at frame end there is no equivalent race.

Failure injection
-----------------
``drop_predicate(sender_id, receiver_id)`` lets tests corrupt arbitrary
links deterministically; it is a writable property so the fault subsystem
(:mod:`repro.faults`) can compose bursty link-loss processes onto it at
runtime.  :meth:`Channel.abort_transmission` truncates an in-flight frame
(a crashing radio): the frame is removed from every receiver's air without
ever being delivered, and :meth:`Channel.detach` aborts the host's own
transmission first so a dead radio can neither KeyError the end-of-frame
event nor deliver from beyond the grave.

Neighbor indexing
-----------------
With a ``max_speed_ms`` bound the channel maintains a uniform spatial grid
(cell side = ``radio_radius``) over host positions, so finding a frame's
receivers scans a few cells instead of every attached host.  The grid is a
*pruning* structure only -- every candidate still gets the exact distance
check against its live position -- so results are bit-identical to the full
scan.  Correctness of the pruning: a snapshot taken at time ``t0`` can be
off by at most ``max_speed_ms * (now - t0)`` per host, so queries inflate
the search radius by that slop and the grid is rebuilt before the slop
exceeds half a cell.  Static networks (speed bound 0) never rebuild.
Candidates are iterated in attach order -- the same order the full scan
uses -- so stateful drop predicates (fault-injected loss processes) draw
their RNG in an identical sequence either way.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.phy.capture import CaptureModel
from repro.phy.params import PhyParams
from repro.sim.engine import Scheduler
from repro.sim.trace import NullTracer, Tracer
from repro.trace.recorder import frame_ident

__all__ = ["Channel", "ChannelStats", "RadioListener"]

PositionFn = Callable[[int], Tuple[float, float]]


class RadioListener:
    """What the channel needs from an attached host (implemented by the MAC)."""

    def on_medium_state(self, busy: bool) -> None:
        """Edge-triggered carrier-sense change."""
        raise NotImplementedError

    def on_frame_received(self, frame: Any, sender_id: int) -> None:
        """A frame completed without collision."""
        raise NotImplementedError

    def on_frame_corrupted(self, frame: Any, sender_id: int) -> None:
        """A frame completed but was garbled at this receiver."""


class ChannelStats:
    """Medium-wide counters, cumulative over a simulation.

    A plain ``__slots__`` class (not a dataclass): the counters sit on the
    per-frame hot path and the slot layout keeps the increments cheap.
    """

    __slots__ = (
        "transmissions", "deliveries", "collisions", "deaf_misses",
        "injected_drops", "aborted_frames", "truncated_receptions",
        "grid_rebuilds", "tx_airtime", "rx_airtime",
    )

    def __init__(self) -> None:
        self.transmissions = 0
        self.deliveries = 0
        self.collisions = 0
        #: Frames that arrived while the receiver was itself transmitting.
        self.deaf_misses = 0
        self.injected_drops = 0
        #: Transmissions truncated mid-frame (crash).
        self.aborted_frames = 0
        #: Receptions scrubbed by a sender abort.
        self.truncated_receptions = 0
        #: Spatial-grid neighbor index rebuilds (0 when the index is off).
        self.grid_rebuilds = 0
        #: Per-host seconds spent transmitting / receiving energy.  A
        #: standard first-order energy proxy:
        #: radio energy ~ a*tx_airtime + b*rx_airtime.
        self.tx_airtime: Dict[int, float] = {}
        self.rx_airtime: Dict[int, float] = {}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChannelStats):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name)
            for name in self.__slots__
        )

    __hash__ = None  # mutable counters

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}"
            for name in self.__slots__ if "airtime" not in name
        )
        return f"ChannelStats({fields})"

    def add_tx_airtime(self, host_id: int, duration: float) -> None:
        self.tx_airtime[host_id] = self.tx_airtime.get(host_id, 0.0) + duration

    def add_rx_airtime(self, host_id: int, duration: float) -> None:
        self.rx_airtime[host_id] = self.rx_airtime.get(host_id, 0.0) + duration

    @property
    def total_tx_airtime(self) -> float:
        return sum(self.tx_airtime.values())

    @property
    def total_rx_airtime(self) -> float:
        return sum(self.rx_airtime.values())


# One in-flight reception at one receiver.  A bare 4-slot list rather than
# a class: hundreds of thousands are created per run and list display is
# the cheapest allocation CPython offers.  Layout (indices _RX_*):
# [frame, sender_id, corrupted, power]
_RX_FRAME = 0
_RX_SENDER = 1
_RX_CORRUPTED = 2
_RX_POWER = 3
_Reception = list


class _Transmission:
    __slots__ = (
        "sender_id", "frame", "end_time", "receiver_ids", "position",
        "end_event",
    )

    def __init__(
        self,
        sender_id: int,
        frame: Any,
        end_time: float,
        receiver_ids: List[int],
        position: Tuple[float, float],
    ) -> None:
        self.sender_id = sender_id
        self.frame = frame
        self.end_time = end_time
        self.receiver_ids = receiver_ids
        self.position = position
        self.end_event: Any = None


class Channel:
    """Unit-disk broadcast medium with receiver-side collisions."""

    #: Grid staleness bound, as a fraction of the radio radius: rebuild
    #: before any host can have drifted further than this from its snapshot
    #: cell.  Smaller = more rebuilds, larger = wider query rings.
    GRID_MAX_DRIFT_FRACTION = 0.5

    # No __slots__ here on purpose: there is exactly one Channel per
    # simulation (nothing to save), and tests spy on its methods by
    # instance assignment.

    def __init__(
        self,
        scheduler: Scheduler,
        params: PhyParams,
        position_of: PositionFn,
        drop_predicate: Optional[Callable[[int, int], bool]] = None,
        tracer: Optional[Tracer] = None,
        capture: Optional["CaptureModel"] = None,
        max_speed_ms: Optional[float] = None,
        trace: Optional[Any] = None,
    ) -> None:
        self._scheduler = scheduler
        self._params = params
        self._position_of = position_of
        self._drop_predicate = drop_predicate
        self._tracer = tracer or NullTracer()
        # Per-reception tracer dispatch is pure overhead with the default
        # NullTracer; the hot paths check this flag instead of calling it.
        self._tracing = not isinstance(self._tracer, NullTracer)
        #: Structured :class:`repro.trace.TraceRecorder` sink (orthogonal to
        #: the legacy per-test ``tracer`` above); ``None`` keeps the guarded
        #: emission sites inert.
        self._trace = trace
        self._capture = capture
        self._radio_radius_sq = params.radio_radius * params.radio_radius
        self._listeners: Dict[int, RadioListener] = {}
        self._active: Dict[int, _Transmission] = {}
        self._incoming: Dict[int, Dict[int, _Reception]] = {}
        # Per-instant position memo.  Positions are a pure function of
        # simulation time (mobility models; see module docstring), so within
        # one timestamp every query for the same host returns the same
        # point -- and dense scenarios ask repeatedly (multiple same-slot
        # transmissions each scanning ~all hosts).
        self._pos_cache: Dict[int, Tuple[float, float]] = {}
        self._pos_cache_time = -1.0
        self.stats = ChannelStats()
        # Spatial-grid neighbor index (enabled by a finite speed bound).
        self._attach_order: Dict[int, int] = {}
        self._attach_counter = itertools.count()
        self._grid: Optional[Dict[Tuple[int, int], List[int]]] = None
        self._grid_cell_of: Dict[int, Tuple[int, int]] = {}
        self._grid_time = 0.0
        self.set_speed_bound(max_speed_ms)

    @property
    def params(self) -> PhyParams:
        return self._params

    @property
    def drop_predicate(self) -> Optional[Callable[[int, int], bool]]:
        return self._drop_predicate

    @drop_predicate.setter
    def drop_predicate(
        self, predicate: Optional[Callable[[int, int], bool]]
    ) -> None:
        self._drop_predicate = predicate

    # ------------------------------------------- spatial neighbor index

    @property
    def speed_bound_ms(self) -> Optional[float]:
        """Upper bound on host speed (m/s) backing the grid index, or
        ``None`` when the index is disabled (full scans)."""
        return self._max_speed_ms

    def set_speed_bound(self, max_speed_ms: Optional[float]) -> None:
        """Enable the grid index with a speed bound, or disable it (None).

        The bound must dominate every host's actual speed; a violated bound
        can silently miss receivers.  Callers that cannot bound speed (e.g.
        externally supplied mobility models) must pass ``None``.
        """
        if max_speed_ms is not None and max_speed_ms < 0:
            raise ValueError(f"negative speed bound {max_speed_ms}")
        self._max_speed_ms = max_speed_ms
        self._grid = None
        self._grid_cell_of = {}

    def _cell_key(self, position: Tuple[float, float]) -> Tuple[int, int]:
        cell = self._params.radio_radius
        return (int(position[0] // cell), int(position[1] // cell))

    def _positions_now(self) -> Dict[int, Tuple[float, float]]:
        """The per-instant position memo, cleared on time advance."""
        now = self._scheduler._now
        if self._pos_cache_time != now:
            self._pos_cache.clear()
            self._pos_cache_time = now
        return self._pos_cache

    def _rebuild_grid(self) -> None:
        grid: Dict[Tuple[int, int], List[int]] = {}
        cell_of: Dict[int, Tuple[int, int]] = {}
        pos_cache = self._positions_now()
        pos_cache_get = pos_cache.get
        position_of = self._position_of
        for host_id in self._listeners:
            pos = pos_cache_get(host_id)
            if pos is None:
                pos = pos_cache[host_id] = position_of(host_id)
            key = self._cell_key(pos)
            grid.setdefault(key, []).append(host_id)
            cell_of[host_id] = key
        self._grid = grid
        self._grid_cell_of = cell_of
        self._grid_time = self._scheduler._now
        self.stats.grid_rebuilds += 1

    def _candidate_ids(self, center: Tuple[float, float]) -> Iterable[int]:
        """Hosts possibly within radio range of ``center`` right now.

        A superset of the true in-range set, in attach order (the caller
        does the exact distance check).  Falls back to all listeners when
        the grid is disabled.
        """
        if self._max_speed_ms is None:
            return self._listeners
        now = self._scheduler._now
        radius = self._params.radio_radius
        max_drift = self.GRID_MAX_DRIFT_FRACTION * radius
        if (
            self._grid is None
            or self._max_speed_ms * (now - self._grid_time) > max_drift
        ):
            self._rebuild_grid()
        slop = self._max_speed_ms * (now - self._grid_time)
        reach = radius + slop
        cell = radius
        cx, cy = int(center[0] // cell), int(center[1] // cell)
        ring = int(reach // cell) + 1
        grid = self._grid
        ids: List[int] = []
        buckets_hit = 0
        for ix in range(cx - ring, cx + ring + 1):
            for iy in range(cy - ring, cy + ring + 1):
                bucket = grid.get((ix, iy))
                if bucket:
                    buckets_hit += 1
                    ids.extend(bucket)
        if buckets_hit > 1:
            # Each bucket is already in attach order (built by iterating the
            # listener dict); a single-bucket result needs no sort.
            ids.sort(key=self._attach_order.__getitem__)
        return ids

    # ----------------------------------------------------- attach/detach

    def attach(self, host_id: int, listener: RadioListener) -> None:
        """Register a host's radio.  Host ids must be unique."""
        if host_id in self._listeners:
            raise ValueError(f"host {host_id} already attached")
        self._listeners[host_id] = listener
        self._incoming[host_id] = {}
        self._attach_order[host_id] = next(self._attach_counter)
        # The new host's position may not be queryable yet (hosts attach
        # during construction), so invalidate instead of inserting.
        self._grid = None

    def detach(self, host_id: int) -> None:
        """Remove a host (e.g. crash / going offline).

        If the host is mid-transmission its frame is aborted first, so the
        scheduled end-of-frame event neither KeyErrors nor delivers a frame
        from a radio that no longer exists.  Receptions in progress at the
        host simply vanish with its inbox.
        """
        if host_id in self._active:
            self.abort_transmission(host_id)
        self._listeners.pop(host_id, None)
        self._incoming.pop(host_id, None)
        self._attach_order.pop(host_id, None)
        if self._grid is not None:
            key = self._grid_cell_of.pop(host_id, None)
            if key is not None:
                self._grid[key].remove(host_id)

    def abort_transmission(self, sender_id: int) -> bool:
        """Truncate ``sender_id``'s in-flight frame (radio crash / power-off).

        The frame disappears from the air immediately: every receiver's
        reception of it is scrubbed without any delivery or corruption
        callback (a truncated frame fails its CRC and carries no decodable
        information; the energy stops now, so receivers whose inbox empties
        get a medium-idle edge).  TX/RX airtime counters are credited back
        for the unsent remainder.  Returns ``True`` if a frame was actually
        aborted, ``False`` if the host was not transmitting.
        """
        tx = self._active.pop(sender_id, None)
        if tx is None:
            return False
        if tx.end_event is not None:
            tx.end_event.cancel()
        now = self._scheduler.now
        remainder = max(0.0, tx.end_time - now)
        self.stats.aborted_frames += 1
        self.stats.add_tx_airtime(sender_id, -remainder)
        if self._tracing:
            self._tracer.emit(now, "tx-abort", sender=sender_id)
        if self._trace is not None:
            kind, src, seq, _hops = frame_ident(tx.frame)
            self._trace.records.append(
                (now, "tx-abort", sender_id, kind, src, seq)
            )
        newly_idle: List[int] = []
        for host_id in tx.receiver_ids:
            inbox = self._incoming.get(host_id)
            if inbox is None:  # receiver itself detached mid-frame
                continue
            reception = inbox.pop(sender_id, None)
            if reception is None:
                continue
            self.stats.truncated_receptions += 1
            self.stats.add_rx_airtime(host_id, -remainder)
            if not inbox:
                newly_idle.append(host_id)
        for host_id in newly_idle:
            listener = self._listeners.get(host_id)
            if listener is not None:
                listener.on_medium_state(False)
        return True

    @property
    def attached_ids(self) -> List[int]:
        return list(self._listeners)

    def is_transmitting(self, host_id: int) -> bool:
        return host_id in self._active

    def carrier_busy(self, host_id: int) -> bool:
        """Whether ``host_id`` senses energy (incoming or its own TX)."""
        return bool(self._incoming.get(host_id)) or host_id in self._active

    def neighbors_in_range(self, host_id: int) -> List[int]:
        """Geometric oracle: attached hosts within radio range right now."""
        position_of = self._position_of
        pos_cache = self._positions_now()
        pos_cache_get = pos_cache.get
        center = pos_cache_get(host_id)
        if center is None:
            center = pos_cache[host_id] = position_of(host_id)
        cx, cy = center
        rr = self._radio_radius_sq
        out = []
        for other_id in self._candidate_ids((cx, cy)):
            if other_id == host_id:
                continue
            pos = pos_cache_get(other_id)
            if pos is None:
                pos = pos_cache[other_id] = position_of(other_id)
            ox, oy = pos
            dx = cx - ox
            dy = cy - oy
            if dx * dx + dy * dy <= rr:
                out.append(other_id)
        return out

    def start_transmission(self, sender_id: int, frame: Any, duration: float) -> None:
        """Put ``frame`` on the air from ``sender_id`` for ``duration`` seconds.

        Called by the MAC exactly when transmission begins (after DIFS /
        backoff).  Raises if the sender is already transmitting.
        """
        if sender_id not in self._listeners:
            raise ValueError(f"host {sender_id} not attached")
        if sender_id in self._active:
            raise RuntimeError(f"host {sender_id} is already transmitting")
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")

        scheduler = self._scheduler
        now = scheduler._now
        position_of = self._position_of
        pos_cache = self._positions_now()
        pos_cache_get = pos_cache.get
        sender_pos = pos_cache_get(sender_id)
        if sender_pos is None:
            sender_pos = pos_cache[sender_id] = position_of(sender_id)
        sx, sy = sender_pos
        rr = self._radio_radius_sq
        stats = self.stats
        stats.transmissions += 1
        stats.add_tx_airtime(sender_id, duration)
        if self._tracing:
            self._tracer.emit(
                now, "tx-start", sender=sender_id, duration=duration,
                position=sender_pos,
            )

        # Half-duplex: anything the sender was receiving is now garbled.
        # (deaf_misses / injected_drops / collisions accumulate in locals
        # through the receiver loop; slot stores are hoisted out.)
        deaf_misses = 0
        collisions = 0
        injected_drops = 0
        incoming = self._incoming
        for reception in incoming[sender_id].values():
            if not reception[_RX_CORRUPTED]:
                reception[_RX_CORRUPTED] = True
                deaf_misses += 1

        receiver_ids: List[int] = []
        tx = _Transmission(sender_id, frame, now + duration, receiver_ids, sender_pos)
        active = self._active
        active[sender_id] = tx
        newly_busy: List[int] = []
        drop_predicate = self._drop_predicate
        capture = self._capture
        rx_air = stats.rx_airtime
        append_receiver = receiver_ids.append

        for host_id in self._candidate_ids(sender_pos):
            if host_id == sender_id:
                continue
            pos = pos_cache_get(host_id)
            if pos is None:
                pos = pos_cache[host_id] = position_of(host_id)
            hx, hy = pos
            dx = sx - hx
            dy = sy - hy
            dist_sq = dx * dx + dy * dy
            if dist_sq > rr:
                continue
            append_receiver(host_id)
            try:
                rx_air[host_id] += duration
            except KeyError:
                rx_air[host_id] = duration
            corrupted = False
            if host_id in active:
                # Receiver is itself on the air: deaf to this frame.
                corrupted = True
                deaf_misses += 1
            elif drop_predicate is not None and drop_predicate(
                sender_id, host_id
            ):
                corrupted = True
                injected_drops += 1
            power = (
                capture.power(dist_sq ** 0.5) if capture is not None else 1.0
            )
            inbox = incoming[host_id]
            if inbox:
                inbox[sender_id] = [frame, sender_id, corrupted, power]
                if capture is None:
                    # Inlined no-capture overlap rule: everything in the
                    # overlap is garbled (no capture effect).
                    for reception in inbox.values():
                        if not reception[_RX_CORRUPTED]:
                            reception[_RX_CORRUPTED] = True
                            collisions += 1
                else:
                    self._resolve_overlap(inbox)
            else:
                inbox[sender_id] = [frame, sender_id, corrupted, power]
                newly_busy.append(host_id)

        if deaf_misses:
            stats.deaf_misses += deaf_misses
        if collisions:
            stats.collisions += collisions
        if injected_drops:
            stats.injected_drops += injected_drops
        if self._trace is not None:
            kind, src, seq, hops = frame_ident(frame)
            self._trace.records.append((
                now, "tx-start", sender_id, kind, src, seq, hops, duration,
                len(receiver_ids),
            ))
        if newly_busy:
            scheduler.schedule_at(now, self._notify_busy, newly_busy)
        tx.end_event = scheduler.schedule_at(
            now + duration, self._end_transmission, sender_id
        )

    def _resolve_overlap(self, inbox: Dict[int, "_Reception"]) -> None:
        """Corrupt overlapping receptions, honoring the capture model.

        Without capture every frame in the overlap is garbled.  With
        capture each still-live frame survives only if its power beats the
        summed interference of the others by the configured SIR threshold;
        once corrupted, a frame stays corrupted (receivers cannot resync
        mid-frame).
        """
        stats = self.stats
        if self._capture is None:
            for reception in inbox.values():
                if not reception[_RX_CORRUPTED]:
                    reception[_RX_CORRUPTED] = True
                    stats.collisions += 1
            return
        total = sum(r[_RX_POWER] for r in inbox.values())
        for reception in inbox.values():
            if reception[_RX_CORRUPTED]:
                continue
            power = reception[_RX_POWER]
            if not self._capture.survives(power, total - power):
                reception[_RX_CORRUPTED] = True
                stats.collisions += 1

    def _notify_busy(self, host_ids: List[int]) -> None:
        for host_id in host_ids:
            listener = self._listeners.get(host_id)
            if listener is not None:
                listener.on_medium_state(True)

    def _end_transmission(self, sender_id: int) -> None:
        tx = self._active.pop(sender_id, None)
        if tx is None:  # aborted mid-frame (the end event should have been
            return      # cancelled; this guard makes the race harmless)
        completed: List[list] = []
        newly_idle: List[int] = []
        incoming = self._incoming
        incoming_get = incoming.get
        append_completed = completed.append
        for host_id in tx.receiver_ids:
            inbox = incoming_get(host_id)
            if inbox is None:  # receiver detached mid-frame
                continue
            reception = inbox.pop(sender_id, None)
            if reception is None:
                continue
            # Tack the receiver id onto the reception record itself instead
            # of allocating a (host_id, reception) pair per delivery.
            reception.append(host_id)
            append_completed(reception)
            if not inbox:
                newly_idle.append(host_id)

        listeners_get = self._listeners.get
        for host_id in newly_idle:
            listener = listeners_get(host_id)
            if listener is not None:
                listener.on_medium_state(False)
        tracing = self._tracing
        trace = self._trace
        if trace is not None:
            # One ident per transmission covers every reception below.
            kind, src, seq, _hops = frame_ident(tx.frame)
            trace_records = trace.records
            now = self._scheduler._now
        deliveries = 0
        for reception in completed:
            host_id = reception[4]
            listener = listeners_get(host_id)
            if listener is None:
                continue
            if reception[_RX_CORRUPTED]:
                if tracing:
                    self._tracer.emit(
                        self._scheduler.now, "rx-corrupted",
                        sender=sender_id, receiver=host_id,
                    )
                if trace is not None:
                    trace_records.append(
                        (now, "rx-corrupt", sender_id, host_id, kind, src, seq)
                    )
                listener.on_frame_corrupted(reception[_RX_FRAME], sender_id)
            else:
                deliveries += 1
                if tracing:
                    self._tracer.emit(
                        self._scheduler.now, "rx",
                        sender=sender_id, receiver=host_id,
                    )
                if trace is not None:
                    trace_records.append(
                        (now, "rx", sender_id, host_id, kind, src, seq)
                    )
                listener.on_frame_received(reception[_RX_FRAME], sender_id)
        if deliveries:
            self.stats.deliveries += deliveries
