"""The shared radio medium.

Propagation model
-----------------
Unit disk: a frame transmitted from position *p* is heard by every attached
host within ``radio_radius`` of *p*.  The receiver set is frozen at
transmission start; at the paper's parameters a frame lasts 2.432 ms, during
which even an 80 km/h host moves under 6 cm, so mid-frame topology change is
negligible.

Collision model
---------------
Receiver-side overlap, no capture effect, which is what makes the broadcast
storm bite:

- If two or more frames overlap in time at a receiver, **all** of them are
  corrupted at that receiver (the paper: without collision detection a host
  keeps transmitting even if foregoing bits were garbled).
- A host is half-duplex: frames arriving while it transmits are corrupted
  for it, though they still occupy its carrier sense afterwards.

Carrier sensing
---------------
Edge-triggered ``on_medium_state(busy)`` notifications track *incoming*
energy only (transitions of the host's in-flight reception set between empty
and non-empty); a host's own transmission state is something its MAC already
knows, so it is deliberately excluded from the notifications.  The
:meth:`Channel.carrier_busy` poll, used by tests, reports the physical truth
(incoming energy or own transmission).

Busy notifications are delivered through a zero-delay event rather than
synchronously.  This models the fact that clear-channel assessment cannot
sense a carrier instantaneously (the paper: "carriers cannot be sensed
immediately due to things such as RF delays"): stations whose backoff
countdowns expire at the same instant all transmit and collide, instead of
the second one impossibly sensing the first with zero delay.  Idle
notifications are synchronous -- at frame end there is no equivalent race.

Failure injection
-----------------
``drop_predicate(sender_id, receiver_id)`` lets tests corrupt arbitrary
links deterministically; it is a writable property so the fault subsystem
(:mod:`repro.faults`) can compose bursty link-loss processes onto it at
runtime.  :meth:`Channel.abort_transmission` truncates an in-flight frame
(a crashing radio): the frame is removed from every receiver's air without
ever being delivered, and :meth:`Channel.detach` aborts the host's own
transmission first so a dead radio can neither KeyError the end-of-frame
event nor deliver from beyond the grave.

Neighbor indexing
-----------------
With a ``max_speed_ms`` bound the channel maintains a uniform spatial grid
(cell side = ``radio_radius``) over host positions, so finding a frame's
receivers scans a few cells instead of every attached host.  The grid is a
*pruning* structure only -- every candidate still gets the exact distance
check against its live position -- so results are bit-identical to the full
scan.  Correctness of the pruning: a snapshot taken at time ``t0`` can be
off by at most ``max_speed_ms * (now - t0)`` per host, so queries inflate
the search radius by that slop and the grid is rebuilt before the slop
exceeds half a cell.  Static networks (speed bound 0) never rebuild.
Candidates are iterated in attach order -- the same order the full scan
uses -- so stateful drop predicates (fault-injected loss processes) draw
their RNG in an identical sequence either way.

Vector kernel
-------------
With a :class:`repro.mobility.store.PositionStore` attached (see
:mod:`repro.kernel`), the per-transmission receiver scan is a single numpy
distance mask over the store's batched position arrays instead of a Python
loop over grid candidates.  The mask yields hosts in id order; when attach
order and id order have diverged (a host crashed and recovered), the
matched set is re-sorted by attach order so receiver iteration -- and with
it RNG draw order of stateful drop predicates, medium-busy edge order and
delivery callback order -- is identical to the scalar scan.

The vector path also replaces the per-host inbox dicts with flat arrays,
justified by the *all-corrupted invariant* of the no-capture collision
rule: any arrival into a non-empty inbox garbles everything in it, and
receptions only leave an inbox by ending, so at every instant a receiver
has **at most one clean reception** (the first frame into an idle inbox).
An in-flight count plus a single clean-sender slot per receiver therefore
carry the full reception state, and per-transmission bookkeeping becomes
a handful of numpy fancy-index operations; corruption-flip counts (and so
``collisions`` / ``deaf_misses``) are reproduced exactly.  Consequences:

- the vector kernel refuses a capture model (capture lets a strong frame
  survive an overlap, breaking the single-clean-slot invariant) -- the
  builder falls back to the scalar kernel instead;
- per-host rx airtime and MAC ``frames_corrupted`` tallies accumulate in
  arrays and are folded into their scalar-form dicts/stats by
  :meth:`Channel.finalize_vector_stats` (idempotent; called by
  :meth:`repro.perf.KernelPerf.collect` at end of run);
- a ``drop_predicate`` (stateful fault-injected loss) switches the scan
  from whole-array operations to a per-receiver loop over the same
  arrays, preserving the predicate's per-pair RNG call order;
- tracing or a corrupted-frame-notify listener forces the per-reception
  dispatch loop at frame end, keeping callback/record order identical.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

try:  # The vector kernel needs numpy; the scalar kernel must not.
    import numpy as _np
except ImportError:  # pragma: no cover - image always ships numpy
    _np = None

from repro.phy.capture import CaptureModel
from repro.phy.params import PhyParams
from repro.sim.engine import Scheduler
from repro.sim.trace import NullTracer, Tracer
from repro.trace.recorder import frame_ident

__all__ = ["Channel", "ChannelStats", "RadioListener"]

PositionFn = Callable[[int], Tuple[float, float]]


class RadioListener:
    """What the channel needs from an attached host (implemented by the MAC)."""

    def on_medium_state(self, busy: bool) -> None:
        """Edge-triggered carrier-sense change."""
        raise NotImplementedError

    def on_frame_received(self, frame: Any, sender_id: int) -> None:
        """A frame completed without collision."""
        raise NotImplementedError

    def on_frame_corrupted(self, frame: Any, sender_id: int) -> None:
        """A frame completed but was garbled at this receiver."""


class ChannelStats:
    """Medium-wide counters, cumulative over a simulation.

    A plain ``__slots__`` class (not a dataclass): the counters sit on the
    per-frame hot path and the slot layout keeps the increments cheap.
    """

    __slots__ = (
        "transmissions", "deliveries", "collisions", "deaf_misses",
        "injected_drops", "aborted_frames", "truncated_receptions",
        "grid_rebuilds", "batch_scans", "vector_candidates",
        "tx_airtime", "rx_airtime",
    )

    def __init__(self) -> None:
        self.transmissions = 0
        self.deliveries = 0
        self.collisions = 0
        #: Frames that arrived while the receiver was itself transmitting.
        self.deaf_misses = 0
        self.injected_drops = 0
        #: Transmissions truncated mid-frame (crash).
        self.aborted_frames = 0
        #: Receptions scrubbed by a sender abort.
        self.truncated_receptions = 0
        #: Spatial-grid neighbor index rebuilds (0 when the index is off).
        self.grid_rebuilds = 0
        #: Vectorized receiver scans (0 on the scalar kernel).
        self.batch_scans = 0
        #: Total size of the vector distance masks (in-range hosts summed
        #: over all batch scans) -- mean mask size = vector_candidates /
        #: batch_scans.
        self.vector_candidates = 0
        #: Per-host seconds spent transmitting / receiving energy.  A
        #: standard first-order energy proxy:
        #: radio energy ~ a*tx_airtime + b*rx_airtime.
        self.tx_airtime: Dict[int, float] = {}
        self.rx_airtime: Dict[int, float] = {}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChannelStats):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name)
            for name in self.__slots__
        )

    __hash__ = None  # mutable counters

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}"
            for name in self.__slots__ if "airtime" not in name
        )
        return f"ChannelStats({fields})"

    def add_tx_airtime(self, host_id: int, duration: float) -> None:
        self.tx_airtime[host_id] = self.tx_airtime.get(host_id, 0.0) + duration

    def add_rx_airtime(self, host_id: int, duration: float) -> None:
        self.rx_airtime[host_id] = self.rx_airtime.get(host_id, 0.0) + duration

    @property
    def total_tx_airtime(self) -> float:
        return sum(self.tx_airtime.values())

    @property
    def total_rx_airtime(self) -> float:
        return sum(self.rx_airtime.values())


# One in-flight reception at one receiver.  A bare 4-slot list rather than
# a class: hundreds of thousands are created per run and list display is
# the cheapest allocation CPython offers.  Layout (indices _RX_*):
# [frame, sender_id, corrupted, power]
_RX_FRAME = 0
_RX_SENDER = 1
_RX_CORRUPTED = 2
_RX_POWER = 3
_Reception = list


class _Transmission:
    __slots__ = (
        "sender_id", "frame", "end_time", "receiver_ids", "position",
        "end_event", "gens",
    )

    def __init__(
        self,
        sender_id: int,
        frame: Any,
        end_time: float,
        receiver_ids: Any,  # List[int] (scalar) or int ndarray (vector)
        position: Tuple[float, float],
    ) -> None:
        self.sender_id = sender_id
        self.frame = frame
        self.end_time = end_time
        self.receiver_ids = receiver_ids
        self.position = position
        self.end_event: Any = None
        #: Vector kernel: each receiver's detach generation at TX start
        #: (ndarray parallel to receiver_ids); None on the scalar kernel.
        self.gens: Any = None


class Channel:
    """Unit-disk broadcast medium with receiver-side collisions."""

    #: Grid staleness bound, as a fraction of the radio radius: rebuild
    #: before any host can have drifted further than this from its snapshot
    #: cell.  Smaller = more rebuilds, larger = wider query rings.
    GRID_MAX_DRIFT_FRACTION = 0.5

    # No __slots__ here on purpose: there is exactly one Channel per
    # simulation (nothing to save), and tests spy on its methods by
    # instance assignment.

    def __init__(
        self,
        scheduler: Scheduler,
        params: PhyParams,
        position_of: PositionFn,
        drop_predicate: Optional[Callable[[int, int], bool]] = None,
        tracer: Optional[Tracer] = None,
        capture: Optional["CaptureModel"] = None,
        max_speed_ms: Optional[float] = None,
        trace: Optional[Any] = None,
        position_store: Optional[Any] = None,
    ) -> None:
        self._scheduler = scheduler
        self._params = params
        self._position_of = position_of
        self._drop_predicate = drop_predicate
        self._tracer = tracer or NullTracer()
        # Per-reception tracer dispatch is pure overhead with the default
        # NullTracer; the hot paths check this flag instead of calling it.
        self._tracing = not isinstance(self._tracer, NullTracer)
        #: Structured :class:`repro.trace.TraceRecorder` sink (orthogonal to
        #: the legacy per-test ``tracer`` above); ``None`` keeps the guarded
        #: emission sites inert.
        self._trace = trace
        self._capture = capture
        self._radio_radius_sq = params.radio_radius * params.radio_radius
        self._listeners: Dict[int, RadioListener] = {}
        self._active: Dict[int, _Transmission] = {}
        self._incoming: Dict[int, Dict[int, _Reception]] = {}
        # Per-instant position memo.  Positions are a pure function of
        # simulation time (mobility models; see module docstring), so within
        # one timestamp every query for the same host returns the same
        # point -- and dense scenarios ask repeatedly (multiple same-slot
        # transmissions each scanning ~all hosts).
        self._pos_cache: Dict[int, Tuple[float, float]] = {}
        self._pos_cache_time = -1.0
        self.stats = ChannelStats()
        # Spatial-grid neighbor index (enabled by a finite speed bound).
        self._attach_order: Dict[int, int] = {}
        self._attach_counter = itertools.count()
        self._grid: Optional[Dict[Tuple[int, int], List[int]]] = None
        self._grid_cell_of: Dict[int, Tuple[int, int]] = {}
        self._grid_time = 0.0
        self.set_speed_bound(max_speed_ms)
        # Vector kernel (see module docstring): a PositionStore switches
        # the receiver scan to a numpy distance mask over host ids
        # 0 .. store.size-1, and reception state to flat arrays.
        # _vector_sorted tracks whether attach order still equals id
        # order; any detach (crash) clears it and matched sets are
        # re-sorted per scan from then on.
        self._store = position_store
        if position_store is not None:
            if _np is None:  # pragma: no cover - store implies numpy
                raise RuntimeError("position_store requires numpy")
            if capture is not None:
                raise ValueError(
                    "the vector kernel does not support a capture model "
                    "(see module docstring); build without position_store"
                )
            n = position_store.size
            self._attached_mask = _np.zeros(n, dtype=bool)
            # Array reception state: in-flight count + the id of the at
            # most one clean reception's sender (-1 none) per receiver.
            self._vec_inflight = _np.zeros(n, dtype=_np.int32)
            self._vec_clean_sender = _np.full(n, -1, dtype=_np.int32)
            self._vec_transmitting = _np.zeros(n, dtype=bool)
            # Detach generation: receptions in flight across a receiver's
            # detach (and possible re-attach) must vanish, exactly like
            # the scalar kernel dropping its inbox.
            self._vec_gen = _np.zeros(n, dtype=_np.int32)
            self._vec_order = _np.zeros(n, dtype=_np.int64)
            # Array-accumulated per-host tallies, folded into the scalar
            # dict/stats form by finalize_vector_stats().
            self._vec_corrupted = _np.zeros(n, dtype=_np.int64)
            self._vec_corrupted_flushed = _np.zeros(n, dtype=_np.int64)
            self._vec_rx_air = _np.zeros(n, dtype=_np.float64)
            self._vec_rx_seen = _np.zeros(n, dtype=bool)
            self._vec_rx_order: List[int] = []
            self._vec_mac_stats: Dict[int, Any] = {}
            # Any attached listener that wants per-frame corruption
            # upcalls forces the ordered dispatch loop at frame end.
            self._vec_any_notify = False
        else:
            self._attached_mask = None
        self._vector_sorted = True

    @property
    def params(self) -> PhyParams:
        return self._params

    @property
    def drop_predicate(self) -> Optional[Callable[[int, int], bool]]:
        return self._drop_predicate

    @drop_predicate.setter
    def drop_predicate(
        self, predicate: Optional[Callable[[int, int], bool]]
    ) -> None:
        self._drop_predicate = predicate

    # ------------------------------------------- spatial neighbor index

    @property
    def speed_bound_ms(self) -> Optional[float]:
        """Upper bound on host speed (m/s) backing the grid index, or
        ``None`` when the index is disabled (full scans)."""
        return self._max_speed_ms

    def set_speed_bound(self, max_speed_ms: Optional[float]) -> None:
        """Enable the grid index with a speed bound, or disable it (None).

        The bound must dominate every host's actual speed; a violated bound
        can silently miss receivers.  Callers that cannot bound speed (e.g.
        externally supplied mobility models) must pass ``None``.
        """
        if max_speed_ms is not None and max_speed_ms < 0:
            raise ValueError(f"negative speed bound {max_speed_ms}")
        self._max_speed_ms = max_speed_ms
        self._grid = None
        self._grid_cell_of = {}

    def _cell_key(self, position: Tuple[float, float]) -> Tuple[int, int]:
        cell = self._params.radio_radius
        return (int(position[0] // cell), int(position[1] // cell))

    def _positions_now(self) -> Dict[int, Tuple[float, float]]:
        """The per-instant position memo, cleared on time advance."""
        now = self._scheduler._now
        if self._pos_cache_time != now:
            self._pos_cache.clear()
            self._pos_cache_time = now
        return self._pos_cache

    def _rebuild_grid(self) -> None:
        grid: Dict[Tuple[int, int], List[int]] = {}
        cell_of: Dict[int, Tuple[int, int]] = {}
        pos_cache = self._positions_now()
        pos_cache_get = pos_cache.get
        position_of = self._position_of
        for host_id in self._listeners:
            pos = pos_cache_get(host_id)
            if pos is None:
                pos = pos_cache[host_id] = position_of(host_id)
            key = self._cell_key(pos)
            grid.setdefault(key, []).append(host_id)
            cell_of[host_id] = key
        self._grid = grid
        self._grid_cell_of = cell_of
        self._grid_time = self._scheduler._now
        self.stats.grid_rebuilds += 1

    def _candidate_ids(self, center: Tuple[float, float]) -> Iterable[int]:
        """Hosts possibly within radio range of ``center`` right now.

        A superset of the true in-range set, in attach order (the caller
        does the exact distance check).  Falls back to all listeners when
        the grid is disabled.
        """
        if self._max_speed_ms is None:
            return self._listeners
        now = self._scheduler._now
        radius = self._params.radio_radius
        max_drift = self.GRID_MAX_DRIFT_FRACTION * radius
        if (
            self._grid is None
            or self._max_speed_ms * (now - self._grid_time) > max_drift
        ):
            self._rebuild_grid()
        slop = self._max_speed_ms * (now - self._grid_time)
        reach = radius + slop
        cell = radius
        cx, cy = int(center[0] // cell), int(center[1] // cell)
        ring = int(reach // cell) + 1
        grid = self._grid
        ids: List[int] = []
        buckets_hit = 0
        for ix in range(cx - ring, cx + ring + 1):
            for iy in range(cy - ring, cy + ring + 1):
                bucket = grid.get((ix, iy))
                if bucket:
                    buckets_hit += 1
                    ids.extend(bucket)
        if buckets_hit > 1:
            # Each bucket is already in attach order (built by iterating the
            # listener dict); a single-bucket result needs no sort.
            ids.sort(key=self._attach_order.__getitem__)
        return ids

    # ----------------------------------------------------- attach/detach

    def attach(self, host_id: int, listener: RadioListener) -> None:
        """Register a host's radio.  Host ids must be unique."""
        if host_id in self._listeners:
            raise ValueError(f"host {host_id} already attached")
        mask = self._attached_mask
        if mask is not None and not 0 <= host_id < len(mask):
            raise ValueError(
                f"host {host_id} outside the position store's id range "
                f"0..{len(mask) - 1}"
            )
        self._listeners[host_id] = listener
        self._incoming[host_id] = {}
        order = next(self._attach_counter)
        self._attach_order[host_id] = order
        if mask is not None:
            mask[host_id] = True
            self._vec_order[host_id] = order
            self._vec_inflight[host_id] = 0
            self._vec_clean_sender[host_id] = -1
            self._vec_transmitting[host_id] = False
            stats_obj = getattr(listener, "stats", None)
            if (
                stats_obj is not None
                and getattr(listener, "_notify_corrupt", True) is False
            ):
                # MAC that swallows corruption upcalls: its counter can be
                # bumped in bulk from the corruption array at flush time.
                self._vec_mac_stats[host_id] = stats_obj
            else:
                self._vec_any_notify = True
            if host_id != order:
                self._vector_sorted = False
        # The new host's position may not be queryable yet (hosts attach
        # during construction), so invalidate instead of inserting.
        self._grid = None

    def detach(self, host_id: int) -> None:
        """Remove a host (e.g. crash / going offline).

        If the host is mid-transmission its frame is aborted first, so the
        scheduled end-of-frame event neither KeyErrors nor delivers a frame
        from a radio that no longer exists.  Receptions in progress at the
        host simply vanish with its inbox.
        """
        if host_id in self._active:
            self.abort_transmission(host_id)
        self._listeners.pop(host_id, None)
        self._incoming.pop(host_id, None)
        self._attach_order.pop(host_id, None)
        mask = self._attached_mask
        if mask is not None and 0 <= host_id < len(mask):
            mask[host_id] = False
            # Receptions in flight at this host vanish with it (the scalar
            # kernel drops the inbox): bump the generation so their
            # ending transmissions skip this receiver.
            self._vec_gen[host_id] += 1
            self._vec_inflight[host_id] = 0
            self._vec_clean_sender[host_id] = -1
            # A later re-attach gets a fresh (higher) order index, so
            # attach order and id order have permanently diverged.
            self._vector_sorted = False
        if self._grid is not None:
            key = self._grid_cell_of.pop(host_id, None)
            if key is not None:
                self._grid[key].remove(host_id)

    def abort_transmission(self, sender_id: int) -> bool:
        """Truncate ``sender_id``'s in-flight frame (radio crash / power-off).

        The frame disappears from the air immediately: every receiver's
        reception of it is scrubbed without any delivery or corruption
        callback (a truncated frame fails its CRC and carries no decodable
        information; the energy stops now, so receivers whose inbox empties
        get a medium-idle edge).  TX/RX airtime counters are credited back
        for the unsent remainder.  Returns ``True`` if a frame was actually
        aborted, ``False`` if the host was not transmitting.
        """
        tx = self._active.pop(sender_id, None)
        if tx is None:
            return False
        if tx.end_event is not None:
            tx.end_event.cancel()
        now = self._scheduler.now
        remainder = max(0.0, tx.end_time - now)
        self.stats.aborted_frames += 1
        self.stats.add_tx_airtime(sender_id, -remainder)
        if self._tracing:
            self._tracer.emit(now, "tx-abort", sender=sender_id)
        if self._trace is not None:
            kind, src, seq, _hops = frame_ident(tx.frame)
            self._trace.records.append(
                (now, "tx-abort", sender_id, kind, src, seq)
            )
        if self._store is not None:
            self._vec_transmitting[sender_id] = False
            ids = tx.receiver_ids
            if ids.size:
                valid = self._attached_mask[ids]
                valid &= self._vec_gen[ids] == tx.gens
                vids = ids if valid.all() else ids[valid]
                inflight = self._vec_inflight
                inflight[vids] -= 1
                self.stats.truncated_receptions += int(vids.size)
                self._vec_rx_air[vids] -= remainder
                clean_sender = self._vec_clean_sender
                mine = vids[clean_sender[vids] == sender_id]
                if mine.size:
                    clean_sender[mine] = -1
                idle = vids[inflight[vids] == 0]
                for host_id in idle.tolist():
                    listener = self._listeners.get(host_id)
                    if listener is not None:
                        listener.on_medium_state(False)
            return True
        newly_idle: List[int] = []
        for host_id in tx.receiver_ids:
            inbox = self._incoming.get(host_id)
            if inbox is None:  # receiver itself detached mid-frame
                continue
            reception = inbox.pop(sender_id, None)
            if reception is None:
                continue
            self.stats.truncated_receptions += 1
            self.stats.add_rx_airtime(host_id, -remainder)
            if not inbox:
                newly_idle.append(host_id)
        for host_id in newly_idle:
            listener = self._listeners.get(host_id)
            if listener is not None:
                listener.on_medium_state(False)
        return True

    @property
    def attached_ids(self) -> List[int]:
        return list(self._listeners)

    def is_transmitting(self, host_id: int) -> bool:
        return host_id in self._active

    def carrier_busy(self, host_id: int) -> bool:
        """Whether ``host_id`` senses energy (incoming or its own TX)."""
        if self._store is not None:
            return (
                bool(self._vec_inflight[host_id]) or host_id in self._active
            )
        return bool(self._incoming.get(host_id)) or host_id in self._active

    def _vector_scan(self, cx: float, cy: float, xs, ys, exclude: int):
        """Attached host ids within radio range of ``(cx, cy)`` (minus
        ``exclude``) as one vectorized distance mask over the store arrays.

        The mask yields id order; re-sorted by attach order when the two
        have diverged (``_vector_sorted`` False) so receiver iteration
        matches the scalar scan.
        """
        dx = xs - cx
        dy = ys - cy
        dsq = dx * dx
        dsq += dy * dy
        mask = dsq <= self._radio_radius_sq
        mask &= self._attached_mask
        if 0 <= exclude < mask.shape[0]:
            mask[exclude] = False
        ids = _np.nonzero(mask)[0]
        if not self._vector_sorted and ids.size > 1:
            ids = ids[_np.argsort(self._vec_order[ids], kind="stable")]
        self.stats.batch_scans += 1
        self.stats.vector_candidates += int(ids.size)
        return ids

    def neighbors_in_range(self, host_id: int) -> List[int]:
        """Geometric oracle: attached hosts within radio range right now."""
        store = self._store
        if store is not None:
            xs, ys = store.arrays_at(self._scheduler._now)
            return self._vector_scan(
                float(xs[host_id]), float(ys[host_id]), xs, ys, host_id
            ).tolist()
        position_of = self._position_of
        pos_cache = self._positions_now()
        pos_cache_get = pos_cache.get
        center = pos_cache_get(host_id)
        if center is None:
            center = pos_cache[host_id] = position_of(host_id)
        cx, cy = center
        rr = self._radio_radius_sq
        out = []
        for other_id in self._candidate_ids((cx, cy)):
            if other_id == host_id:
                continue
            pos = pos_cache_get(other_id)
            if pos is None:
                pos = pos_cache[other_id] = position_of(other_id)
            ox, oy = pos
            dx = cx - ox
            dy = cy - oy
            if dx * dx + dy * dy <= rr:
                out.append(other_id)
        return out

    def start_transmission(self, sender_id: int, frame: Any, duration: float) -> None:
        """Put ``frame`` on the air from ``sender_id`` for ``duration`` seconds.

        Called by the MAC exactly when transmission begins (after DIFS /
        backoff).  Raises if the sender is already transmitting.
        """
        if sender_id not in self._listeners:
            raise ValueError(f"host {sender_id} not attached")
        if sender_id in self._active:
            raise RuntimeError(f"host {sender_id} is already transmitting")
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")

        scheduler = self._scheduler
        now = scheduler._now
        store = self._store
        if store is not None:
            xs, ys = store.arrays_at(now)
            sx = float(xs[sender_id])
            sy = float(ys[sender_id])
            sender_pos = (sx, sy)
        else:
            position_of = self._position_of
            pos_cache = self._positions_now()
            pos_cache_get = pos_cache.get
            sender_pos = pos_cache_get(sender_id)
            if sender_pos is None:
                sender_pos = pos_cache[sender_id] = position_of(sender_id)
            sx, sy = sender_pos
        rr = self._radio_radius_sq
        stats = self.stats
        stats.transmissions += 1
        stats.add_tx_airtime(sender_id, duration)
        if self._tracing:
            self._tracer.emit(
                now, "tx-start", sender=sender_id, duration=duration,
                position=sender_pos,
            )

        # (deaf_misses / injected_drops / collisions accumulate in locals
        # through the receiver scan; slot stores are hoisted out.)
        deaf_misses = 0
        collisions = 0
        injected_drops = 0
        active = self._active
        drop_predicate = self._drop_predicate
        newly_busy: List[int] = []

        if store is not None:
            inflight = self._vec_inflight
            clean_sender = self._vec_clean_sender
            transmitting = self._vec_transmitting
            # Half-duplex: anything the sender was receiving is now
            # garbled.  At most one clean reception can exist (module
            # docstring), so the whole inbox sweep is one slot check.
            if clean_sender[sender_id] >= 0:
                clean_sender[sender_id] = -1
                deaf_misses += 1
            ids = self._vector_scan(sx, sy, xs, ys, sender_id)
            receiver_ids = ids
            tx = _Transmission(
                sender_id, frame, now + duration, ids, sender_pos
            )
            tx.gens = self._vec_gen[ids]
            active[sender_id] = tx
            transmitting[sender_id] = True
            if ids.size:
                rx_seen = self._vec_rx_seen
                new_first = ids[~rx_seen[ids]]
                if new_first.size:
                    # Track first-touch order so the flushed rx_airtime
                    # dict sums in the scalar kernel's insertion order.
                    rx_seen[new_first] = True
                    self._vec_rx_order.extend(new_first.tolist())
                self._vec_rx_air[ids] += duration
                if drop_predicate is None:
                    prev = inflight[ids]
                    inflight[ids] = prev + 1
                    deaf = transmitting[ids]
                    deaf_misses += int(deaf.sum())
                    fresh = prev == 0
                    overlap_ids = ids[~fresh]
                    if overlap_ids.size:
                        # Overlap rule, batched: the (at most one) clean
                        # reception already at each overlapped receiver
                        # flips, and the new arrival lands corrupted --
                        # one collision each, unless it was already deaf.
                        old_clean = overlap_ids[
                            clean_sender[overlap_ids] >= 0
                        ]
                        if old_clean.size:
                            collisions += int(old_clean.size)
                            clean_sender[old_clean] = -1
                        collisions += int((~transmitting[overlap_ids]).sum())
                    new_clean = ids[fresh & ~deaf]
                    if new_clean.size:
                        clean_sender[new_clean] = sender_id
                    if fresh.any():
                        newly_busy = ids[fresh].tolist()
                else:
                    # Stateful drop predicates draw RNG per (sender,
                    # receiver) pair: iterate receivers in attach order
                    # over the same arrays the batched path updates.
                    newly_busy_append = newly_busy.append
                    for host_id in ids.tolist():
                        corrupted = False
                        if transmitting[host_id]:
                            corrupted = True
                            deaf_misses += 1
                        elif drop_predicate(sender_id, host_id):
                            corrupted = True
                            injected_drops += 1
                        count = inflight[host_id]
                        inflight[host_id] = count + 1
                        if count:
                            if clean_sender[host_id] >= 0:
                                clean_sender[host_id] = -1
                                collisions += 1
                            if not corrupted:
                                collisions += 1
                        else:
                            newly_busy_append(host_id)
                            if not corrupted:
                                clean_sender[host_id] = sender_id
        else:
            # Half-duplex: anything the sender was receiving is now garbled.
            incoming = self._incoming
            for reception in incoming[sender_id].values():
                if not reception[_RX_CORRUPTED]:
                    reception[_RX_CORRUPTED] = True
                    deaf_misses += 1

            receiver_ids = []
            tx = _Transmission(
                sender_id, frame, now + duration, receiver_ids, sender_pos
            )
            active[sender_id] = tx
            capture = self._capture
            rx_air = stats.rx_airtime
            append_receiver = receiver_ids.append
            for host_id in self._candidate_ids(sender_pos):
                if host_id == sender_id:
                    continue
                pos = pos_cache_get(host_id)
                if pos is None:
                    pos = pos_cache[host_id] = position_of(host_id)
                hx, hy = pos
                dx = sx - hx
                dy = sy - hy
                dist_sq = dx * dx + dy * dy
                if dist_sq > rr:
                    continue
                append_receiver(host_id)
                try:
                    rx_air[host_id] += duration
                except KeyError:
                    rx_air[host_id] = duration
                corrupted = False
                if host_id in active:
                    # Receiver is itself on the air: deaf to this frame.
                    corrupted = True
                    deaf_misses += 1
                elif drop_predicate is not None and drop_predicate(
                    sender_id, host_id
                ):
                    corrupted = True
                    injected_drops += 1
                power = (
                    capture.power(dist_sq ** 0.5) if capture is not None
                    else 1.0
                )
                inbox = incoming[host_id]
                if inbox:
                    inbox[sender_id] = [frame, sender_id, corrupted, power]
                    if capture is None:
                        # Inlined no-capture overlap rule: everything in
                        # the overlap is garbled (no capture effect).
                        for reception in inbox.values():
                            if not reception[_RX_CORRUPTED]:
                                reception[_RX_CORRUPTED] = True
                                collisions += 1
                    else:
                        self._resolve_overlap(inbox)
                else:
                    inbox[sender_id] = [frame, sender_id, corrupted, power]
                    newly_busy.append(host_id)

        if deaf_misses:
            stats.deaf_misses += deaf_misses
        if collisions:
            stats.collisions += collisions
        if injected_drops:
            stats.injected_drops += injected_drops
        if self._trace is not None:
            kind, src, seq, hops = frame_ident(frame)
            self._trace.records.append((
                now, "tx-start", sender_id, kind, src, seq, hops, duration,
                len(receiver_ids),
            ))
        if newly_busy:
            scheduler.schedule_at(now, self._notify_busy, newly_busy)
        tx.end_event = scheduler.schedule_at(
            now + duration, self._end_transmission, sender_id
        )

    def _resolve_overlap(self, inbox: Dict[int, "_Reception"]) -> None:
        """Corrupt overlapping receptions, honoring the capture model.

        Without capture every frame in the overlap is garbled.  With
        capture each still-live frame survives only if its power beats the
        summed interference of the others by the configured SIR threshold;
        once corrupted, a frame stays corrupted (receivers cannot resync
        mid-frame).
        """
        stats = self.stats
        if self._capture is None:
            for reception in inbox.values():
                if not reception[_RX_CORRUPTED]:
                    reception[_RX_CORRUPTED] = True
                    stats.collisions += 1
            return
        total = sum(r[_RX_POWER] for r in inbox.values())
        for reception in inbox.values():
            if reception[_RX_CORRUPTED]:
                continue
            power = reception[_RX_POWER]
            if not self._capture.survives(power, total - power):
                reception[_RX_CORRUPTED] = True
                stats.collisions += 1

    def _notify_busy(self, host_ids: List[int]) -> None:
        for host_id in host_ids:
            listener = self._listeners.get(host_id)
            if listener is not None:
                listener.on_medium_state(True)

    def _end_transmission(self, sender_id: int) -> None:
        tx = self._active.pop(sender_id, None)
        if tx is None:  # aborted mid-frame (the end event should have been
            return      # cancelled; this guard makes the race harmless)
        if self._store is not None:
            self._end_transmission_vector(sender_id, tx)
            return
        completed: List[list] = []
        newly_idle: List[int] = []
        incoming = self._incoming
        incoming_get = incoming.get
        append_completed = completed.append
        for host_id in tx.receiver_ids:
            inbox = incoming_get(host_id)
            if inbox is None:  # receiver detached mid-frame
                continue
            reception = inbox.pop(sender_id, None)
            if reception is None:
                continue
            # Tack the receiver id onto the reception record itself instead
            # of allocating a (host_id, reception) pair per delivery.
            reception.append(host_id)
            append_completed(reception)
            if not inbox:
                newly_idle.append(host_id)

        listeners_get = self._listeners.get
        for host_id in newly_idle:
            listener = listeners_get(host_id)
            if listener is not None:
                listener.on_medium_state(False)
        tracing = self._tracing
        trace = self._trace
        if trace is not None:
            # One ident per transmission covers every reception below.
            kind, src, seq, _hops = frame_ident(tx.frame)
            trace_records = trace.records
            now = self._scheduler._now
        deliveries = 0
        for reception in completed:
            host_id = reception[4]
            listener = listeners_get(host_id)
            if listener is None:
                continue
            if reception[_RX_CORRUPTED]:
                if tracing:
                    self._tracer.emit(
                        self._scheduler.now, "rx-corrupted",
                        sender=sender_id, receiver=host_id,
                    )
                if trace is not None:
                    trace_records.append(
                        (now, "rx-corrupt", sender_id, host_id, kind, src, seq)
                    )
                listener.on_frame_corrupted(reception[_RX_FRAME], sender_id)
            else:
                deliveries += 1
                if tracing:
                    self._tracer.emit(
                        self._scheduler.now, "rx",
                        sender=sender_id, receiver=host_id,
                    )
                if trace is not None:
                    trace_records.append(
                        (now, "rx", sender_id, host_id, kind, src, seq)
                    )
                listener.on_frame_received(reception[_RX_FRAME], sender_id)
        if deliveries:
            self.stats.deliveries += deliveries

    def _end_transmission_vector(self, sender_id: int, tx: _Transmission) -> None:
        """Array-state frame end (see module docstring).

        Mirrors the scalar :meth:`_end_transmission` exactly: idle edges
        fire first in receiver order, then reception outcomes dispatch in
        receiver order.  Receivers that detached (or detached and
        re-attached) mid-frame are skipped via the generation snapshot,
        like the scalar kernel's vanished-inbox pop.
        """
        self._vec_transmitting[sender_id] = False
        ids = tx.receiver_ids
        listeners_get = self._listeners.get
        clean_sender = self._vec_clean_sender
        if ids.size:
            valid = self._attached_mask[ids]
            valid &= self._vec_gen[ids] == tx.gens
            vids = ids if valid.all() else ids[valid]
            inflight = self._vec_inflight
            inflight[vids] -= 1
            idle = vids[inflight[vids] == 0]
            for host_id in idle.tolist():
                listener = listeners_get(host_id)
                if listener is not None:
                    listener.on_medium_state(False)
        else:
            vids = ids
        clean = clean_sender[vids] == sender_id
        delivered = vids[clean]
        if delivered.size:
            clean_sender[delivered] = -1
        frame = tx.frame
        tracing = self._tracing
        trace = self._trace
        deliveries = 0
        if tracing or trace is not None or self._vec_any_notify:
            # Ordered per-reception dispatch: corruption upcalls and trace
            # records interleave with deliveries in receiver order, byte
            # for byte like the scalar loop.
            if trace is not None:
                kind, src, seq, _hops = frame_ident(frame)
                trace_records = trace.records
                now = self._scheduler._now
            clean_list = clean.tolist()
            for index, host_id in enumerate(vids.tolist()):
                listener = listeners_get(host_id)
                if listener is None:
                    continue
                if clean_list[index]:
                    deliveries += 1
                    if tracing:
                        self._tracer.emit(
                            self._scheduler.now, "rx",
                            sender=sender_id, receiver=host_id,
                        )
                    if trace is not None:
                        trace_records.append(
                            (now, "rx", sender_id, host_id, kind, src, seq)
                        )
                    listener.on_frame_received(frame, sender_id)
                else:
                    if tracing:
                        self._tracer.emit(
                            self._scheduler.now, "rx-corrupted",
                            sender=sender_id, receiver=host_id,
                        )
                    if trace is not None:
                        trace_records.append(
                            (now, "rx-corrupt", sender_id, host_id, kind,
                             src, seq)
                        )
                    listener.on_frame_corrupted(frame, sender_id)
        else:
            corrupted_ids = vids[~clean]
            if corrupted_ids.size:
                # Every attached listener swallows corruption upcalls
                # (MAC stat bump only) -- accumulate the bumps in the
                # array; finalize_vector_stats() folds them into MacStats.
                self._vec_corrupted[corrupted_ids] += 1
            deliveries = int(delivered.size)
            for host_id in delivered.tolist():
                listener = listeners_get(host_id)
                if listener is not None:
                    listener.on_frame_received(frame, sender_id)
        if deliveries:
            self.stats.deliveries += deliveries

    def finalize_vector_stats(self) -> None:
        """Fold the vector kernel's array-accumulated per-host tallies
        into the dict/stats form the scalar kernel maintains inline.

        Idempotent and safe to call mid-run: the arrays stay the source
        of truth -- the rx-airtime dict is rebuilt (in first-touch order,
        matching the scalar kernel's insertion order and therefore its
        float summation order), and MAC ``frames_corrupted`` bumps are
        delta-flushed.  No-op on the scalar kernel.  Called by
        :meth:`repro.perf.KernelPerf.collect` at end of run.
        """
        if self._store is None:
            return
        rx_vec = self._vec_rx_air
        rx_air = self.stats.rx_airtime
        rx_air.clear()
        for host_id in self._vec_rx_order:
            rx_air[host_id] = float(rx_vec[host_id])
        corrupted = self._vec_corrupted
        flushed = self._vec_corrupted_flushed
        pending = corrupted - flushed
        if pending.any():
            mac_stats = self._vec_mac_stats
            for host_id in _np.nonzero(pending)[0].tolist():
                stats_obj = mac_stats.get(host_id)
                if stats_obj is not None:
                    stats_obj.frames_corrupted += int(pending[host_id])
            flushed[:] = corrupted
