"""The shared radio medium.

Propagation model
-----------------
Unit disk: a frame transmitted from position *p* is heard by every attached
host within ``radio_radius`` of *p*.  The receiver set is frozen at
transmission start; at the paper's parameters a frame lasts 2.432 ms, during
which even an 80 km/h host moves under 6 cm, so mid-frame topology change is
negligible.

Collision model
---------------
Receiver-side overlap, no capture effect, which is what makes the broadcast
storm bite:

- If two or more frames overlap in time at a receiver, **all** of them are
  corrupted at that receiver (the paper: without collision detection a host
  keeps transmitting even if foregoing bits were garbled).
- A host is half-duplex: frames arriving while it transmits are corrupted
  for it, though they still occupy its carrier sense afterwards.

Carrier sensing
---------------
Edge-triggered ``on_medium_state(busy)`` notifications track *incoming*
energy only (transitions of the host's in-flight reception set between empty
and non-empty); a host's own transmission state is something its MAC already
knows, so it is deliberately excluded from the notifications.  The
:meth:`Channel.carrier_busy` poll, used by tests, reports the physical truth
(incoming energy or own transmission).

Busy notifications are delivered through a zero-delay event rather than
synchronously.  This models the fact that clear-channel assessment cannot
sense a carrier instantaneously (the paper: "carriers cannot be sensed
immediately due to things such as RF delays"): stations whose backoff
countdowns expire at the same instant all transmit and collide, instead of
the second one impossibly sensing the first with zero delay.  Idle
notifications are synchronous -- at frame end there is no equivalent race.

Failure injection
-----------------
``drop_predicate(sender_id, receiver_id)`` lets tests corrupt arbitrary
links deterministically; it is a writable property so the fault subsystem
(:mod:`repro.faults`) can compose bursty link-loss processes onto it at
runtime.  :meth:`Channel.abort_transmission` truncates an in-flight frame
(a crashing radio): the frame is removed from every receiver's air without
ever being delivered, and :meth:`Channel.detach` aborts the host's own
transmission first so a dead radio can neither KeyError the end-of-frame
event nor deliver from beyond the grave.

Neighbor indexing
-----------------
With a ``max_speed_ms`` bound the channel maintains a uniform spatial grid
(cell side = ``radio_radius``) over host positions, so finding a frame's
receivers scans a few cells instead of every attached host.  The grid is a
*pruning* structure only -- every candidate still gets the exact distance
check against its live position -- so results are bit-identical to the full
scan.  Correctness of the pruning: a snapshot taken at time ``t0`` can be
off by at most ``max_speed_ms * (now - t0)`` per host, so queries inflate
the search radius by that slop and the grid is rebuilt before the slop
exceeds half a cell.  Static networks (speed bound 0) never rebuild.
Candidates are iterated in attach order -- the same order the full scan
uses -- so stateful drop predicates (fault-injected loss processes) draw
their RNG in an identical sequence either way.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.geometry.points import distance_sq
from repro.phy.capture import CaptureModel
from repro.phy.params import PhyParams
from repro.sim.engine import Scheduler
from repro.sim.trace import NullTracer, Tracer

__all__ = ["Channel", "ChannelStats", "RadioListener"]

PositionFn = Callable[[int], Tuple[float, float]]


class RadioListener:
    """What the channel needs from an attached host (implemented by the MAC)."""

    def on_medium_state(self, busy: bool) -> None:
        """Edge-triggered carrier-sense change."""
        raise NotImplementedError

    def on_frame_received(self, frame: Any, sender_id: int) -> None:
        """A frame completed without collision."""
        raise NotImplementedError

    def on_frame_corrupted(self, frame: Any, sender_id: int) -> None:
        """A frame completed but was garbled at this receiver."""


@dataclass
class ChannelStats:
    """Medium-wide counters, cumulative over a simulation."""

    transmissions: int = 0
    deliveries: int = 0
    collisions: int = 0
    deaf_misses: int = 0  # frame arrived while the receiver was transmitting
    injected_drops: int = 0
    aborted_frames: int = 0  # transmissions truncated mid-frame (crash)
    truncated_receptions: int = 0  # receptions scrubbed by a sender abort
    #: Spatial-grid neighbor index rebuilds (0 when the index is disabled).
    grid_rebuilds: int = 0
    #: Per-host seconds spent transmitting / receiving energy.  A standard
    #: first-order energy proxy: radio energy ~ a*tx_airtime + b*rx_airtime.
    tx_airtime: Dict[int, float] = field(default_factory=dict)
    rx_airtime: Dict[int, float] = field(default_factory=dict)

    def add_tx_airtime(self, host_id: int, duration: float) -> None:
        self.tx_airtime[host_id] = self.tx_airtime.get(host_id, 0.0) + duration

    def add_rx_airtime(self, host_id: int, duration: float) -> None:
        self.rx_airtime[host_id] = self.rx_airtime.get(host_id, 0.0) + duration

    @property
    def total_tx_airtime(self) -> float:
        return sum(self.tx_airtime.values())

    @property
    def total_rx_airtime(self) -> float:
        return sum(self.rx_airtime.values())


class _Reception:
    __slots__ = ("frame", "sender_id", "corrupted", "power")

    def __init__(
        self, frame: Any, sender_id: int, corrupted: bool, power: float = 1.0
    ) -> None:
        self.frame = frame
        self.sender_id = sender_id
        self.corrupted = corrupted
        self.power = power


class _Transmission:
    __slots__ = (
        "sender_id", "frame", "end_time", "receiver_ids", "position",
        "end_event",
    )

    def __init__(
        self,
        sender_id: int,
        frame: Any,
        end_time: float,
        receiver_ids: List[int],
        position: Tuple[float, float],
    ) -> None:
        self.sender_id = sender_id
        self.frame = frame
        self.end_time = end_time
        self.receiver_ids = receiver_ids
        self.position = position
        self.end_event: Any = None


class Channel:
    """Unit-disk broadcast medium with receiver-side collisions."""

    #: Grid staleness bound, as a fraction of the radio radius: rebuild
    #: before any host can have drifted further than this from its snapshot
    #: cell.  Smaller = more rebuilds, larger = wider query rings.
    GRID_MAX_DRIFT_FRACTION = 0.5

    def __init__(
        self,
        scheduler: Scheduler,
        params: PhyParams,
        position_of: PositionFn,
        drop_predicate: Optional[Callable[[int, int], bool]] = None,
        tracer: Optional[Tracer] = None,
        capture: Optional["CaptureModel"] = None,
        max_speed_ms: Optional[float] = None,
    ) -> None:
        self._scheduler = scheduler
        self._params = params
        self._position_of = position_of
        self._drop_predicate = drop_predicate
        self._tracer = tracer or NullTracer()
        self._capture = capture
        self._listeners: Dict[int, RadioListener] = {}
        self._active: Dict[int, _Transmission] = {}
        self._incoming: Dict[int, Dict[int, _Reception]] = {}
        self.stats = ChannelStats()
        # Spatial-grid neighbor index (enabled by a finite speed bound).
        self._attach_order: Dict[int, int] = {}
        self._attach_counter = itertools.count()
        self._grid: Optional[Dict[Tuple[int, int], List[int]]] = None
        self._grid_cell_of: Dict[int, Tuple[int, int]] = {}
        self._grid_time = 0.0
        self.set_speed_bound(max_speed_ms)

    @property
    def params(self) -> PhyParams:
        return self._params

    @property
    def drop_predicate(self) -> Optional[Callable[[int, int], bool]]:
        return self._drop_predicate

    @drop_predicate.setter
    def drop_predicate(
        self, predicate: Optional[Callable[[int, int], bool]]
    ) -> None:
        self._drop_predicate = predicate

    # ------------------------------------------- spatial neighbor index

    @property
    def speed_bound_ms(self) -> Optional[float]:
        """Upper bound on host speed (m/s) backing the grid index, or
        ``None`` when the index is disabled (full scans)."""
        return self._max_speed_ms

    def set_speed_bound(self, max_speed_ms: Optional[float]) -> None:
        """Enable the grid index with a speed bound, or disable it (None).

        The bound must dominate every host's actual speed; a violated bound
        can silently miss receivers.  Callers that cannot bound speed (e.g.
        externally supplied mobility models) must pass ``None``.
        """
        if max_speed_ms is not None and max_speed_ms < 0:
            raise ValueError(f"negative speed bound {max_speed_ms}")
        self._max_speed_ms = max_speed_ms
        self._grid = None
        self._grid_cell_of = {}

    def _cell_key(self, position: Tuple[float, float]) -> Tuple[int, int]:
        cell = self._params.radio_radius
        return (int(position[0] // cell), int(position[1] // cell))

    def _rebuild_grid(self) -> None:
        grid: Dict[Tuple[int, int], List[int]] = {}
        cell_of: Dict[int, Tuple[int, int]] = {}
        for host_id in self._listeners:
            key = self._cell_key(self._position_of(host_id))
            grid.setdefault(key, []).append(host_id)
            cell_of[host_id] = key
        self._grid = grid
        self._grid_cell_of = cell_of
        self._grid_time = self._scheduler.now
        self.stats.grid_rebuilds += 1

    def _candidate_ids(self, center: Tuple[float, float]) -> Iterable[int]:
        """Hosts possibly within radio range of ``center`` right now.

        A superset of the true in-range set, in attach order (the caller
        does the exact distance check).  Falls back to all listeners when
        the grid is disabled.
        """
        if self._max_speed_ms is None:
            return self._listeners
        now = self._scheduler.now
        radius = self._params.radio_radius
        max_drift = self.GRID_MAX_DRIFT_FRACTION * radius
        if (
            self._grid is None
            or self._max_speed_ms * (now - self._grid_time) > max_drift
        ):
            self._rebuild_grid()
        slop = self._max_speed_ms * (now - self._grid_time)
        reach = radius + slop
        cell = radius
        cx, cy = int(center[0] // cell), int(center[1] // cell)
        ring = int(reach // cell) + 1
        grid = self._grid
        ids: List[int] = []
        for ix in range(cx - ring, cx + ring + 1):
            for iy in range(cy - ring, cy + ring + 1):
                bucket = grid.get((ix, iy))
                if bucket:
                    ids.extend(bucket)
        ids.sort(key=self._attach_order.__getitem__)
        return ids

    # ----------------------------------------------------- attach/detach

    def attach(self, host_id: int, listener: RadioListener) -> None:
        """Register a host's radio.  Host ids must be unique."""
        if host_id in self._listeners:
            raise ValueError(f"host {host_id} already attached")
        self._listeners[host_id] = listener
        self._incoming[host_id] = {}
        self._attach_order[host_id] = next(self._attach_counter)
        # The new host's position may not be queryable yet (hosts attach
        # during construction), so invalidate instead of inserting.
        self._grid = None

    def detach(self, host_id: int) -> None:
        """Remove a host (e.g. crash / going offline).

        If the host is mid-transmission its frame is aborted first, so the
        scheduled end-of-frame event neither KeyErrors nor delivers a frame
        from a radio that no longer exists.  Receptions in progress at the
        host simply vanish with its inbox.
        """
        if host_id in self._active:
            self.abort_transmission(host_id)
        self._listeners.pop(host_id, None)
        self._incoming.pop(host_id, None)
        self._attach_order.pop(host_id, None)
        if self._grid is not None:
            key = self._grid_cell_of.pop(host_id, None)
            if key is not None:
                self._grid[key].remove(host_id)

    def abort_transmission(self, sender_id: int) -> bool:
        """Truncate ``sender_id``'s in-flight frame (radio crash / power-off).

        The frame disappears from the air immediately: every receiver's
        reception of it is scrubbed without any delivery or corruption
        callback (a truncated frame fails its CRC and carries no decodable
        information; the energy stops now, so receivers whose inbox empties
        get a medium-idle edge).  TX/RX airtime counters are credited back
        for the unsent remainder.  Returns ``True`` if a frame was actually
        aborted, ``False`` if the host was not transmitting.
        """
        tx = self._active.pop(sender_id, None)
        if tx is None:
            return False
        if tx.end_event is not None:
            tx.end_event.cancel()
        now = self._scheduler.now
        remainder = max(0.0, tx.end_time - now)
        self.stats.aborted_frames += 1
        self.stats.add_tx_airtime(sender_id, -remainder)
        self._tracer.emit(now, "tx-abort", sender=sender_id)
        newly_idle: List[int] = []
        for host_id in tx.receiver_ids:
            inbox = self._incoming.get(host_id)
            if inbox is None:  # receiver itself detached mid-frame
                continue
            reception = inbox.pop(sender_id, None)
            if reception is None:
                continue
            self.stats.truncated_receptions += 1
            self.stats.add_rx_airtime(host_id, -remainder)
            if not inbox:
                newly_idle.append(host_id)
        for host_id in newly_idle:
            listener = self._listeners.get(host_id)
            if listener is not None:
                listener.on_medium_state(False)
        return True

    @property
    def attached_ids(self) -> List[int]:
        return list(self._listeners)

    def is_transmitting(self, host_id: int) -> bool:
        return host_id in self._active

    def carrier_busy(self, host_id: int) -> bool:
        """Whether ``host_id`` senses energy (incoming or its own TX)."""
        return bool(self._incoming.get(host_id)) or host_id in self._active

    def neighbors_in_range(self, host_id: int) -> List[int]:
        """Geometric oracle: attached hosts within radio range right now."""
        center = self._position_of(host_id)
        rr = self._params.radio_radius ** 2
        out = []
        for other_id in self._candidate_ids(center):
            if other_id == host_id:
                continue
            if distance_sq(center, self._position_of(other_id)) <= rr:
                out.append(other_id)
        return out

    def start_transmission(self, sender_id: int, frame: Any, duration: float) -> None:
        """Put ``frame`` on the air from ``sender_id`` for ``duration`` seconds.

        Called by the MAC exactly when transmission begins (after DIFS /
        backoff).  Raises if the sender is already transmitting.
        """
        if sender_id not in self._listeners:
            raise ValueError(f"host {sender_id} not attached")
        if sender_id in self._active:
            raise RuntimeError(f"host {sender_id} is already transmitting")
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")

        now = self._scheduler.now
        sender_pos = self._position_of(sender_id)
        rr = self._params.radio_radius ** 2
        self.stats.transmissions += 1
        self.stats.add_tx_airtime(sender_id, duration)
        self._tracer.emit(
            now, "tx-start", sender=sender_id, duration=duration,
            position=sender_pos,
        )

        # Half-duplex: anything the sender was receiving is now garbled.
        for reception in self._incoming[sender_id].values():
            if not reception.corrupted:
                reception.corrupted = True
                self.stats.deaf_misses += 1

        receiver_ids: List[int] = []
        tx = _Transmission(sender_id, frame, now + duration, receiver_ids, sender_pos)
        self._active[sender_id] = tx
        newly_busy: List[int] = []

        for host_id in self._candidate_ids(sender_pos):
            if host_id == sender_id:
                continue
            dist_sq = distance_sq(sender_pos, self._position_of(host_id))
            if dist_sq > rr:
                continue
            receiver_ids.append(host_id)
            self.stats.add_rx_airtime(host_id, duration)
            corrupted = False
            if host_id in self._active:
                # Receiver is itself on the air: deaf to this frame.
                corrupted = True
                self.stats.deaf_misses += 1
            elif self._drop_predicate is not None and self._drop_predicate(
                sender_id, host_id
            ):
                corrupted = True
                self.stats.injected_drops += 1
            power = (
                self._capture.power(dist_sq ** 0.5)
                if self._capture is not None
                else 1.0
            )
            inbox = self._incoming[host_id]
            was_idle = not inbox
            reception = _Reception(frame, sender_id, corrupted, power)
            inbox[sender_id] = reception
            if len(inbox) > 1:
                self._resolve_overlap(inbox)
            if was_idle:
                newly_busy.append(host_id)

        if newly_busy:
            self._scheduler.schedule(0.0, self._notify_busy, newly_busy)
        tx.end_event = self._scheduler.schedule(
            duration, self._end_transmission, sender_id
        )

    def _resolve_overlap(self, inbox: Dict[int, "_Reception"]) -> None:
        """Corrupt overlapping receptions, honoring the capture model.

        Without capture every frame in the overlap is garbled.  With
        capture each still-live frame survives only if its power beats the
        summed interference of the others by the configured SIR threshold;
        once corrupted, a frame stays corrupted (receivers cannot resync
        mid-frame).
        """
        if self._capture is None:
            for reception in inbox.values():
                if not reception.corrupted:
                    reception.corrupted = True
                    self.stats.collisions += 1
            return
        total = sum(r.power for r in inbox.values())
        for reception in inbox.values():
            if reception.corrupted:
                continue
            if not self._capture.survives(
                reception.power, total - reception.power
            ):
                reception.corrupted = True
                self.stats.collisions += 1

    def _notify_busy(self, host_ids: List[int]) -> None:
        for host_id in host_ids:
            listener = self._listeners.get(host_id)
            if listener is not None:
                listener.on_medium_state(True)

    def _end_transmission(self, sender_id: int) -> None:
        tx = self._active.pop(sender_id, None)
        if tx is None:  # aborted mid-frame (the end event should have been
            return      # cancelled; this guard makes the race harmless)
        completed: List[Tuple[int, _Reception]] = []
        newly_idle: List[int] = []
        for host_id in tx.receiver_ids:
            inbox = self._incoming.get(host_id)
            if inbox is None:  # receiver detached mid-frame
                continue
            reception = inbox.pop(sender_id, None)
            if reception is None:
                continue
            completed.append((host_id, reception))
            if not inbox:
                newly_idle.append(host_id)

        for host_id in newly_idle:
            listener = self._listeners.get(host_id)
            if listener is not None:
                listener.on_medium_state(False)
        for host_id, reception in completed:
            listener = self._listeners.get(host_id)
            if listener is None:
                continue
            if reception.corrupted:
                self._tracer.emit(
                    self._scheduler.now, "rx-corrupted",
                    sender=sender_id, receiver=host_id,
                )
                listener.on_frame_corrupted(reception.frame, sender_id)
            else:
                self.stats.deliveries += 1
                self._tracer.emit(
                    self._scheduler.now, "rx",
                    sender=sender_id, receiver=host_id,
                )
                listener.on_frame_received(reception.frame, sender_id)
