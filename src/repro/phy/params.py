"""Physical-layer parameters (paper Section 4, "fixed parameters").

All times are in **seconds**, sizes in bytes, rates in bits/second.
Defaults are exactly the paper's values: transmission radius 500 m,
broadcast packet 280 bytes, 1 Mbit/s, DSSS timing (slot 20 us, SIFS 10 us,
DIFS 50 us, backoff window 31..1023, PLCP preamble 144 us + header 48 us).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PhyParams"]


@dataclass(frozen=True)
class PhyParams:
    """Immutable physical/MAC layer constants."""

    radio_radius: float = 500.0
    bitrate: float = 1_000_000.0
    slot_time: float = 20e-6
    sifs: float = 10e-6
    difs: float = 50e-6
    cw_min: int = 31
    cw_max: int = 1023
    plcp_preamble: float = 144e-6
    plcp_header: float = 48e-6
    broadcast_payload_bytes: int = 280
    hello_payload_bytes: int = 20

    def __post_init__(self) -> None:
        if self.radio_radius <= 0:
            raise ValueError(f"radio_radius must be > 0, got {self.radio_radius}")
        if self.bitrate <= 0:
            raise ValueError(f"bitrate must be > 0, got {self.bitrate}")
        if self.slot_time <= 0:
            raise ValueError(f"slot_time must be > 0, got {self.slot_time}")
        if not 0 < self.cw_min <= self.cw_max:
            raise ValueError(
                f"need 0 < cw_min <= cw_max, got {self.cw_min}..{self.cw_max}"
            )

    @property
    def plcp_overhead(self) -> float:
        """Total PLCP preamble + header time prepended to every frame."""
        return self.plcp_preamble + self.plcp_header

    def airtime(self, payload_bytes: int) -> float:
        """On-air duration of a frame carrying ``payload_bytes``.

        ``PLCP overhead + payload_bits / bitrate``.  For the paper's default
        280-byte broadcast at 1 Mbit/s this is 192 us + 2240 us = 2.432 ms.
        """
        if payload_bytes < 0:
            raise ValueError(f"negative payload {payload_bytes}")
        return self.plcp_overhead + payload_bytes * 8.0 / self.bitrate

    @property
    def broadcast_airtime(self) -> float:
        """Airtime of the standard 280-byte broadcast packet."""
        return self.airtime(self.broadcast_payload_bytes)

    @property
    def hello_airtime(self) -> float:
        """Airtime of a (base-size) HELLO packet."""
        return self.airtime(self.hello_payload_bytes)
