"""Optional capture-effect model.

The paper's collision analysis (and our default channel) assumes **no
capture**: any overlap at a receiver garbles every frame involved.  Real
receivers can often decode the strongest of overlapping frames when its
signal-to-interference ratio is high enough.  :class:`CaptureModel` adds
that as an opt-in, letting an ablation quantify how much of the broadcast
storm's damage the no-capture assumption is responsible for.

Power model: unit-disk with path-loss exponent ``alpha`` -- the received
power of a frame sent from distance ``d`` is proportional to
``max(d, d_min)^-alpha``.  A frame survives an overlap at a receiver iff
its power divided by the summed power of all other overlapping frames is at
least ``threshold`` (given in dB, typically ~10 dB).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CaptureModel"]


@dataclass(frozen=True)
class CaptureModel:
    """SIR-based capture: strongest frame may survive an overlap."""

    threshold_db: float = 10.0
    pathloss_exponent: float = 4.0
    min_distance: float = 1.0  # clamp to avoid infinite power at d = 0

    def __post_init__(self) -> None:
        if self.pathloss_exponent <= 0:
            raise ValueError(
                f"pathloss_exponent must be > 0, got {self.pathloss_exponent}"
            )
        if self.min_distance <= 0:
            raise ValueError(
                f"min_distance must be > 0, got {self.min_distance}"
            )

    @property
    def threshold_linear(self) -> float:
        return 10.0 ** (self.threshold_db / 10.0)

    def power(self, distance: float) -> float:
        """Relative received power for a sender at ``distance`` meters."""
        if distance < 0:
            raise ValueError(f"negative distance {distance}")
        return max(distance, self.min_distance) ** (-self.pathloss_exponent)

    def survives(self, own_power: float, interference: float) -> bool:
        """Whether a frame with ``own_power`` endures ``interference``."""
        if interference <= 0.0:
            return True
        return own_power / interference >= self.threshold_linear
