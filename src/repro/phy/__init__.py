"""Physical layer: DSSS timing constants and the radio channel.

- :class:`~repro.phy.params.PhyParams` holds the paper's fixed parameters
  (500 m radius, 1 Mbit/s, IEEE 802.11 DSSS slot/SIFS/DIFS/PLCP timing).
- :class:`~repro.phy.channel.Channel` is the shared medium: unit-disk
  propagation, receiver-side overlap collisions (no capture effect), carrier
  sensing, and busy/idle notifications to each host's MAC.
"""

from repro.phy.capture import CaptureModel
from repro.phy.channel import Channel, ChannelStats, RadioListener
from repro.phy.params import PhyParams

__all__ = [
    "PhyParams",
    "Channel",
    "ChannelStats",
    "RadioListener",
    "CaptureModel",
]
