"""Command-line interface.

Two subcommands::

    repro-manet run --scheme adaptive-counter --map 9 --broadcasts 100
    repro-manet figure fig07 --broadcasts 50 --maps 3 7 11

``run`` executes a single scenario and prints its summary line; ``figure``
regenerates one of the paper's figures (fig01, fig02, fig05a-d, fig07,
fig09, fig10, fig11, fig12, fig13) as a text table.

``figure`` and ``sweep`` accept ``--jobs N`` to fan independent runs
across N worker processes (results stay bit-identical to ``--jobs 1``)
and ``--cache-dir DIR`` to reuse finished runs across invocations;
``--no-cache`` forces fresh simulation even when a cache dir is set.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.config import ScenarioConfig
from repro.experiments.figures import (
    fig01,
    fig02,
    fig05,
    fig07,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
)
from repro.experiments.runner import run_broadcast_simulation
from repro.net.host import HelloConfig
from repro.schemes import SCHEME_REGISTRY

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-manet",
        description="Reproduction of the adaptive broadcast-storm schemes "
        "(Tseng, Ni & Shih, ICDCS 2001 / IEEE TC 2003).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a single scenario")
    run_p.add_argument(
        "--scheme", default="adaptive-counter", choices=sorted(SCHEME_REGISTRY)
    )
    run_p.add_argument("--map", type=int, default=5, dest="map_units",
                       help="map side in 500 m units (paper: 1..11)")
    run_p.add_argument("--hosts", type=int, default=100)
    run_p.add_argument("--broadcasts", type=int, default=100)
    run_p.add_argument("--speed", type=float, default=None,
                       help="max host speed km/h (default: 10 per map unit)")
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--counter-threshold", type=int, default=None)
    run_p.add_argument("--location-threshold", type=float, default=None)
    run_p.add_argument("--hello-interval", type=float, default=1.0)
    run_p.add_argument("--dynamic-hello", action="store_true")
    run_p.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="fault plan: ';'-separated clauses "
        "(crash:host=3,at=5,recover=12 / mute:host=1,at=2,until=8 / "
        "churn:rate=0.01,downtime=5 / loss:p=0.1 / "
        "ge:p=0.05,r=0.5,bad=0.8), or @plan.json",
    )
    run_p.add_argument(
        "--fault-windows", action="store_true",
        help="with --faults: also print per-fault-window RE/SRB",
    )
    _add_profile_arg(run_p)
    run_p.add_argument(
        "--perf", action="store_true",
        help="also print the run's kernel counters "
        "(events, cancellations, collisions, memo hit rates, ...)",
    )
    run_p.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a structured packet-lifecycle trace to PATH",
    )
    run_p.add_argument(
        "--trace-format", choices=["jsonl", "chrome"], default="jsonl",
        help="trace file format: line-delimited JSON records, or "
        "Chrome trace-event JSON loadable in Perfetto (default: jsonl)",
    )
    run_p.add_argument(
        "--sample-dt", type=float, default=None, metavar="SECONDS",
        help="with --trace: also sample channel/queue/host telemetry "
        "every SECONDS of simulation time",
    )

    fig_p = sub.add_parser("figure", help="regenerate a paper figure")
    fig_p.add_argument(
        "name",
        choices=[
            "fig01", "fig02", "fig05a", "fig05b", "fig05c", "fig05d",
            "fig07", "fig09", "fig10", "fig11", "fig12", "fig13",
        ],
    )
    fig_p.add_argument("--broadcasts", type=int, default=50)
    fig_p.add_argument("--seed", type=int, default=1)
    fig_p.add_argument("--maps", type=int, nargs="+", default=None,
                       help="map sizes to sweep (default: the paper's grid)")
    fig_p.add_argument("--chart", action="store_true",
                       help="also render an ASCII chart of RE per series")
    fig_p.add_argument("--csv", metavar="PATH", default=None,
                       help="write the series to a CSV file")
    _add_exec_args(fig_p)
    _add_profile_arg(fig_p)

    sweep_p = sub.add_parser(
        "sweep", help="run a scheme x map grid and print RE/SRB"
    )
    sweep_p.add_argument("--schemes", nargs="+",
                         default=["flooding", "adaptive-counter"],
                         choices=sorted(SCHEME_REGISTRY))
    sweep_p.add_argument("--maps", type=int, nargs="+", default=[1, 5, 9])
    sweep_p.add_argument("--hosts", type=int, default=100)
    sweep_p.add_argument("--broadcasts", type=int, default=30)
    sweep_p.add_argument("--seeds", type=int, nargs="+", default=[1],
                         help="multiple seeds aggregate with a 95%% CI")
    sweep_p.add_argument("--json", metavar="PATH", default=None,
                         help="also dump every run to a JSON file")
    _add_exec_args(sweep_p)
    return parser


def _add_profile_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--profile", type=int, nargs="?", const=25, default=None,
        metavar="N",
        help="profile the command with cProfile and print the top N "
        "functions (default 25) by cumulative and internal time",
    )


def _add_exec_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes (default 1 = sequential; "
                   "0 = one per CPU core)")
    p.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="reuse finished runs from this on-disk result cache")
    p.add_argument("--no-cache", action="store_true",
                   help="always simulate, even when --cache-dir is set")


def _make_executor(args: argparse.Namespace):
    from repro.experiments.parallel import ParallelRunner

    if args.jobs < 0:
        raise SystemExit(f"error: --jobs must be >= 0, got {args.jobs}")
    return ParallelRunner(
        max_workers=None if args.jobs == 0 else args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )


def _print_perf(runner) -> None:
    perf = runner.perf
    print(
        f"\n[perf] runs={perf.runs} simulated={perf.simulated} "
        f"cache_hits={perf.cache_hits} ({perf.cache_hit_rate:.0%}) "
        f"events/sec={perf.events_per_sec:,.0f} wall={perf.wall_time:.2f}s"
    )


def _render_extras(result, args) -> None:
    """Optional chart / CSV output for a FigureResult."""
    if getattr(args, "chart", False):
        from repro.viz import line_chart

        series = {
            name: [(float(p.x), p.re) for p in points]
            for name, points in result.series.items()
        }
        print()
        print(line_chart(series, title=f"{result.figure} (RE)",
                         y_range=(0.0, 1.0)))
    if getattr(args, "csv", None):
        from repro.experiments.io import write_figure_csv

        write_figure_csv(result, args.csv)
        print(f"\nwrote {args.csv}")


def _run_single(args: argparse.Namespace) -> int:
    params = {}
    if args.counter_threshold is not None:
        params["threshold"] = args.counter_threshold
    if args.location_threshold is not None:
        params["threshold"] = args.location_threshold
    hello = HelloConfig(interval=args.hello_interval, dynamic=args.dynamic_hello)
    faults = None
    if args.faults is not None:
        from repro.faults import FaultPlan

        try:
            faults = FaultPlan.parse(args.faults)
        except (ValueError, OSError) as exc:
            print(f"error: invalid --faults spec: {exc}", file=sys.stderr)
            return 2
    config = ScenarioConfig(
        scheme=args.scheme,
        scheme_params=params,
        map_units=args.map_units,
        num_hosts=args.hosts,
        num_broadcasts=args.broadcasts,
        max_speed_kmh=args.speed,
        hello=hello,
        seed=args.seed,
        faults=faults,
    )
    trace = None
    if args.trace is not None:
        from repro.trace import TraceRecorder

        # Fail on an unwritable destination now, not after the whole
        # simulation has run.
        try:
            with open(args.trace, "a"):
                pass
        except OSError as exc:
            print(f"error: cannot write --trace file: {exc}", file=sys.stderr)
            return 2
        trace = TraceRecorder(sample_dt=args.sample_dt)
    elif args.sample_dt is not None:
        print("error: --sample-dt requires --trace", file=sys.stderr)
        return 2
    if args.profile is not None:
        from repro.perf import format_profile, profiled

        with profiled() as prof:
            result = run_broadcast_simulation(config, trace=trace)
        print(format_profile(prof, top_n=args.profile))
    else:
        result = run_broadcast_simulation(config, trace=trace)
    print(result.summary())
    if trace is not None:
        if args.trace_format == "chrome":
            from repro.trace import write_chrome_trace

            count = write_chrome_trace(trace, args.trace)
            print(
                f"wrote {count} trace events to {args.trace} "
                "(load at https://ui.perfetto.dev)"
            )
        else:
            from repro.trace import write_jsonl

            count = write_jsonl(trace, args.trace)
            print(
                f"wrote {count} trace records to {args.trace} "
                f"(analyze: python -m repro.trace.analyze {args.trace})"
            )
    if getattr(args, "perf", False) and result.perf is not None:
        print("\nkernel counters:")
        for name, value in result.perf.as_dict().items():
            print(f"  {name:<22} {value:>12,}")
        print(f"  {'pos_hit_rate':<22} {result.perf.pos_hit_rate:>12.1%}")
        print(f"  {'events_per_sec':<22} {result.events_per_sec:>12,.0f}")
    if getattr(args, "fault_windows", False) and result.fault_trace:
        print("\nfault trace:")
        for event in result.fault_trace:
            print(f"  t={event.time:9.3f}  {event.kind:<12} host {event.host_id}")
        print("\nper-fault-window RE/SRB:")
        for window in result.metrics.fault_window_summary(result.end_time):
            row = window.row()
            print(
                f"  [{row['start']:9.3f}, {row['end']:9.3f})  "
                f"RE={row['re']:.3f}  SRB={row['srb']:.3f}  "
                f"broadcasts={window.broadcasts}"
            )
    return 0


def _show(result, args, metrics=("re", "srb")) -> None:
    print(result.table(metrics=metrics))
    _render_extras(result, args)


def _run_figure(args: argparse.Namespace) -> int:
    from repro.experiments.figures.common import set_default_executor

    runner = _make_executor(args)
    previous = set_default_executor(runner)
    try:
        if args.profile is not None:
            from repro.perf import format_profile, profiled

            with profiled() as prof:
                _dispatch_figure(args)
            print(format_profile(prof, top_n=args.profile))
        else:
            _dispatch_figure(args)
    finally:
        set_default_executor(previous)
    if runner.perf.runs:
        _print_perf(runner)
    return 0


def _dispatch_figure(args: argparse.Namespace) -> None:
    n = args.broadcasts
    seed = args.seed
    maps = tuple(args.maps) if args.maps else None

    def kw(**extra):
        out = {"num_broadcasts": n, "seed": seed}
        if maps:
            out["maps"] = maps
        out.update(extra)
        return out

    name = args.name
    if name == "fig01":
        print(fig01.format_table(fig01.run(seed=seed)))
    elif name == "fig02":
        print(fig02.format_table(fig02.run(seed=seed)))
    elif name == "fig05a":
        _show(fig05.run_5a(**kw()), args)
    elif name == "fig05b":
        _show(fig05.run_5b(**kw()), args)
    elif name == "fig05c":
        _show(fig05.run_5c(**kw()), args)
    elif name == "fig05d":
        _show(fig05.run_5d(**kw()), args)
    elif name == "fig07":
        _show(fig07.run(**kw()), args, metrics=("re", "srb", "latency"))
    elif name == "fig09":
        _show(fig09.run(**kw()), args)
    elif name == "fig10":
        _show(fig10.run(**kw()), args, metrics=("re", "srb", "latency"))
    elif name == "fig11":
        for units, panel in fig11.run(**kw()).items():
            _show(panel, args, metrics=("re",))
            print()
    elif name == "fig12":
        _show(fig12.run(**kw()), args, metrics=("re", "srb", "hellos"))
    elif name == "fig13":
        _show(fig13.run(**kw()), args, metrics=("re", "srb"))
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(name)


def _run_sweep(args: argparse.Namespace) -> int:
    runner = _make_executor(args)
    rows = []
    print(
        f"{'scheme':<20} {'map':>4} {'RE':>16} {'SRB':>16} {'latency':>10}"
    )
    for scheme in args.schemes:
        for units in args.maps:
            config = ScenarioConfig(
                scheme=scheme,
                map_units=units,
                num_hosts=args.hosts,
                num_broadcasts=args.broadcasts,
            )
            result = runner.replicate(config, seeds=args.seeds)
            print(
                f"{scheme:<20} {units:>4} {str(result.re):>16} "
                f"{str(result.srb):>16} "
                f"{result.latency.mean * 1000 if result.latency else float('nan'):>8.1f}ms"
            )
            rows.append((config, result))
    if args.json:
        import json

        from repro.experiments.io import result_to_dict

        payload = [
            result_to_dict(run)
            for _config, replicated in rows
            for run in replicated.results
        ]
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {args.json}")
    _print_perf(runner)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _run_single(args)
    if args.command == "sweep":
        return _run_sweep(args)
    return _run_figure(args)


if __name__ == "__main__":
    sys.exit(main())
