"""Command-line interface.

Subcommands::

    repro-manet run --scheme adaptive-counter --map 9 --broadcasts 100
    repro-manet run --scheme gossip --scheme-param p=0.6
    repro-manet figure fig07 --broadcasts 50 --maps 3 7 11
    repro-manet sweep --schemes flooding counter --maps 1 5 9
    repro-manet schemes -v
    repro-manet campaign run sweep.toml --dir campaigns/ --jobs 4
    repro-manet serve --port 8642 --cache-dir .repro-cache
    repro-manet cache stats --cache-dir .repro-cache
    repro-manet bench record BENCH_kernel.json --history bench_history.jsonl
    repro-manet bench check --history bench_history.jsonl --threshold 0.2

``run`` executes a single scenario and prints its summary line; ``figure``
regenerates one of the paper's figures (fig01, fig02, fig05a-d, fig07,
fig09, fig10, fig11, fig12, fig13) as a text table.

``figure`` and ``sweep`` accept ``--jobs N`` to fan independent runs
across N worker processes (results stay bit-identical to ``--jobs 1``)
and ``--cache-dir DIR`` to reuse finished runs across invocations;
``--no-cache`` forces fresh simulation even when a cache dir is set.

``campaign plan|run|status`` expands a declarative sweep spec into a
resumable, checkpointed campaign (SIGTERM/Ctrl-C mid-flight exits with
code 3 and ``campaign run`` later resumes without re-simulating);
``serve`` starts the async HTTP result service; ``cache`` inspects,
prunes or clears the shared on-disk result cache; ``bench record|check``
turns ``BENCH_*.json`` documents into a ``bench_history.jsonl``
trajectory and gates CI on throughput regressions against its rolling
baseline (see :mod:`repro.telemetry.bench`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.config import ScenarioConfig
from repro.experiments.figures import (
    fig01,
    fig02,
    fig05,
    fig07,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
)
from repro.experiments.runner import run_broadcast_simulation
from repro.net.host import HelloConfig
from repro.schemes import SCHEME_REGISTRY

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-manet",
        description="Reproduction of the adaptive broadcast-storm schemes "
        "(Tseng, Ni & Shih, ICDCS 2001 / IEEE TC 2003).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a single scenario")
    run_p.add_argument(
        "--scheme", default="adaptive-counter", choices=sorted(SCHEME_REGISTRY)
    )
    run_p.add_argument("--map", type=int, default=5, dest="map_units",
                       help="map side in 500 m units (paper: 1..11)")
    run_p.add_argument("--hosts", type=int, default=100)
    run_p.add_argument("--broadcasts", type=int, default=100)
    run_p.add_argument("--speed", type=float, default=None,
                       help="max host speed km/h (default: 10 per map unit)")
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--counter-threshold", type=int, default=None)
    run_p.add_argument("--location-threshold", type=float, default=None)
    _add_scheme_param_arg(run_p)
    run_p.add_argument("--hello-interval", type=float, default=1.0)
    run_p.add_argument("--dynamic-hello", action="store_true")
    run_p.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="fault plan: ';'-separated clauses "
        "(crash:host=3,at=5,recover=12 / mute:host=1,at=2,until=8 / "
        "churn:rate=0.01,downtime=5 / loss:p=0.1 / "
        "ge:p=0.05,r=0.5,bad=0.8), or @plan.json",
    )
    run_p.add_argument(
        "--fault-windows", action="store_true",
        help="with --faults: also print per-fault-window RE/SRB",
    )
    _add_profile_arg(run_p)
    run_p.add_argument(
        "--kernel", choices=["auto", "scalar", "vector"], default=None,
        help="simulation kernel: scalar reference loops, numpy-vectorized "
        "fast path, or auto-detect (default: REPRO_KERNEL env or auto)",
    )
    run_p.add_argument(
        "--perf", action="store_true",
        help="also print the run's kernel counters "
        "(events, cancellations, collisions, memo hit rates, ...)",
    )
    run_p.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a structured packet-lifecycle trace to PATH",
    )
    run_p.add_argument(
        "--trace-format", choices=["jsonl", "chrome"], default="jsonl",
        help="trace file format: line-delimited JSON records, or "
        "Chrome trace-event JSON loadable in Perfetto (default: jsonl)",
    )
    run_p.add_argument(
        "--sample-dt", type=float, default=None, metavar="SECONDS",
        help="with --trace: also sample channel/queue/host telemetry "
        "every SECONDS of simulation time",
    )

    fig_p = sub.add_parser("figure", help="regenerate a paper figure")
    fig_p.add_argument(
        "name",
        choices=[
            "fig01", "fig02", "fig05a", "fig05b", "fig05c", "fig05d",
            "fig07", "fig09", "fig10", "fig11", "fig12", "fig13",
        ],
    )
    fig_p.add_argument("--broadcasts", type=int, default=50)
    fig_p.add_argument("--seed", type=int, default=1)
    fig_p.add_argument("--maps", type=int, nargs="+", default=None,
                       help="map sizes to sweep (default: the paper's grid)")
    fig_p.add_argument("--chart", action="store_true",
                       help="also render an ASCII chart of RE per series")
    fig_p.add_argument("--csv", metavar="PATH", default=None,
                       help="write the series to a CSV file")
    _add_exec_args(fig_p)
    _add_profile_arg(fig_p)

    sweep_p = sub.add_parser(
        "sweep", help="run a scheme x map grid and print RE/SRB"
    )
    sweep_p.add_argument("--schemes", nargs="+",
                         default=["flooding", "adaptive-counter"],
                         choices=sorted(SCHEME_REGISTRY))
    _add_scheme_param_arg(sweep_p)
    sweep_p.add_argument("--maps", type=int, nargs="+", default=[1, 5, 9])
    sweep_p.add_argument("--hosts", type=int, default=100)
    sweep_p.add_argument("--broadcasts", type=int, default=30)
    sweep_p.add_argument("--seeds", type=int, nargs="+", default=[1],
                         help="multiple seeds aggregate with a 95%% CI")
    sweep_p.add_argument("--json", metavar="PATH", default=None,
                         help="also dump every run to a JSON file")
    _add_exec_args(sweep_p)

    schemes_p = sub.add_parser(
        "schemes", help="list every registered scheme and its parameters"
    )
    schemes_p.add_argument(
        "--verbose", "-v", action="store_true",
        help="also print each parameter's type, default and range",
    )

    camp_p = sub.add_parser(
        "campaign",
        help="plan / run / inspect a resumable sweep campaign",
    )
    camp_sub = camp_p.add_subparsers(dest="campaign_command", required=True)

    plan_p = camp_sub.add_parser(
        "plan", help="expand a spec and print the run table (no execution)"
    )
    plan_p.add_argument("spec", help="campaign spec file (.toml or .json)")
    plan_p.add_argument("--limit", type=int, default=20, metavar="N",
                        help="show at most N runs (default 20; 0 = all)")

    crun_p = camp_sub.add_parser(
        "run", help="execute (or resume) a campaign from its spec"
    )
    crun_p.add_argument("spec", help="campaign spec file (.toml or .json)")
    crun_p.add_argument("--dir", dest="directory", metavar="DIR", default=None,
                        help="campaign directory (default: "
                        "campaigns/<campaign-id>)")
    crun_p.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (0 = one per CPU core)")
    crun_p.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="result cache (default: <dir>/cache; share one "
                        "across campaigns to dedup overlapping grids)")
    crun_p.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="N", help="flush the progress checkpoint "
                        "every N runs (default: 2x jobs, min 4)")
    crun_p.add_argument("--quiet", action="store_true",
                        help="no per-run progress lines")
    crun_p.add_argument("--resources", action="store_true",
                        help="add an aggregate resource profile (peak RSS, "
                        "GC, subsystem wall estimate) to results.json; "
                        "opt-in because it makes the file depend on the "
                        "host machine, forfeiting resume byte-identity")

    cstat_p = camp_sub.add_parser(
        "status", help="print a campaign directory's progress"
    )
    cstat_p.add_argument("directory", metavar="DIR")

    serve_p = sub.add_parser(
        "serve", help="start the async HTTP result service"
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8642,
                         help="TCP port (0 = pick a free one)")
    serve_p.add_argument("--cache-dir", metavar="DIR", default=".repro-cache",
                         help="result cache served by GET /results/<digest>")
    serve_p.add_argument("--campaigns", metavar="ROOT", default=None,
                         help="directory of campaign dirs to expose under "
                         "/campaigns")
    serve_p.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes for queued runs "
                         "(0 = one per CPU core)")

    cache_p = sub.add_parser(
        "cache", help="inspect / prune / clear the on-disk result cache"
    )
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
        ("stats", "entry count, size and age span"),
        ("prune", "evict entries by age and/or LRU size bound"),
        ("clear", "delete every entry"),
    ):
        p = cache_sub.add_parser(name, help=help_text)
        p.add_argument("--cache-dir", metavar="DIR", required=True)
        if name == "prune":
            p.add_argument("--max-bytes", metavar="SIZE", default=None,
                           help="keep at most SIZE total (e.g. 500M, 2G); "
                           "least recently used entries go first")
            p.add_argument("--max-age", metavar="AGE", default=None,
                           help="drop entries unused for AGE (e.g. 36h, 7d)")

    bench_p = sub.add_parser(
        "bench",
        help="track BENCH_*.json measurements over time and gate regressions",
    )
    bench_sub = bench_p.add_subparsers(dest="bench_command", required=True)
    brec_p = bench_sub.add_parser(
        "record", help="append a BENCH_*.json snapshot to the history"
    )
    brec_p.add_argument("bench", metavar="BENCH_JSON",
                        help="benchmark document (e.g. BENCH_kernel.json)")
    brec_p.add_argument("--history", metavar="PATH",
                        default="bench_history.jsonl",
                        help="history file to append to "
                        "(default: bench_history.jsonl)")
    brec_p.add_argument("--name", default=None,
                        help="bench name for the entry "
                        "(default: inferred from the filename)")
    bchk_p = bench_sub.add_parser(
        "check",
        help="diff the newest history entry against its rolling baseline; "
        "exits 1 when a gated metric regressed",
    )
    bchk_p.add_argument("--history", metavar="PATH",
                        default="bench_history.jsonl")
    bchk_p.add_argument("--name", default=None,
                        help="only consider entries for this bench name")
    bchk_p.add_argument("--threshold", type=float, default=0.2,
                        metavar="FRAC",
                        help="regression threshold as a fraction below the "
                        "baseline (default 0.2 = 20%%)")
    bchk_p.add_argument("--window", type=int, default=5, metavar="N",
                        help="rolling baseline = median of the previous N "
                        "entries (default 5)")
    return parser


def _add_scheme_param_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--scheme-param", action="append", default=None, metavar="KEY=VALUE",
        dest="scheme_param",
        help="set a scheme constructor parameter (repeatable; values are "
        "coerced and range-checked against the scheme's schema -- see "
        "'repro-manet schemes -v')",
    )


def _parse_scheme_params(scheme: str, pairs) -> dict:
    """``--scheme-param KEY=VALUE`` pairs -> a schema-validated dict."""
    from repro.schemes import get_spec

    spec = get_spec(scheme)
    params = {}
    for pair in pairs or ():
        key, sep, text = pair.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"error: --scheme-param expects KEY=VALUE, got {pair!r}"
            )
        if key not in spec.param_names:
            raise SystemExit(
                f"error: scheme {scheme!r} has no parameter {key!r} "
                f"(accepted: {spec.accepted_parameters()})"
            )
        try:
            params[key] = spec.param(key).coerce(text)
        except ValueError as exc:
            raise SystemExit(f"error: --scheme-param {pair!r}: {exc}")
    errors = spec.validate_params(params)
    if errors:
        raise SystemExit(f"error: scheme {scheme!r}: " + "; ".join(errors))
    return params


def _schemes_cmd(args: argparse.Namespace) -> int:
    flags_of = lambda spec: ",".join(
        flag for flag, on in (
            ("hello", spec.needs_hello),
            ("2hop", spec.needs_two_hop_hello),
            ("gps", spec.needs_position),
        ) if on
    ) or "-"
    print(
        f"{'name':<18} {'default':<22} {'needs':<15} {'origin':<10} "
        "description"
    )
    for name, spec in SCHEME_REGISTRY.items():
        print(
            f"{name:<18} {spec.build().describe():<22} "
            f"{flags_of(spec):<15} {spec.origin:<10} {spec.description}"
        )
        if args.verbose:
            for param in spec.params:
                line = f"    {param.describe()}"
                if param.doc:
                    line += f"  -- {param.doc}"
                print(line)
    return 0


def _add_profile_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--profile", type=int, nargs="?", const=25, default=None,
        metavar="N",
        help="profile the command with cProfile and print the top N "
        "functions (default 25) by cumulative and internal time",
    )


def _add_exec_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes (default 1 = sequential; "
                   "0 = one per CPU core)")
    p.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="reuse finished runs from this on-disk result cache")
    p.add_argument("--no-cache", action="store_true",
                   help="always simulate, even when --cache-dir is set")


def _make_executor(args: argparse.Namespace):
    from repro.experiments.parallel import ParallelRunner

    if args.jobs < 0:
        raise SystemExit(f"error: --jobs must be >= 0, got {args.jobs}")
    return ParallelRunner(
        max_workers=None if args.jobs == 0 else args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )


def _print_perf(runner) -> None:
    perf = runner.perf
    print(
        f"\n[perf] runs={perf.runs} simulated={perf.simulated} "
        f"cache_hits={perf.cache_hits} ({perf.cache_hit_rate:.0%}) "
        f"events/sec={perf.events_per_sec:,.0f} wall={perf.wall_time:.2f}s"
    )


def _render_extras(result, args) -> None:
    """Optional chart / CSV output for a FigureResult."""
    if getattr(args, "chart", False):
        from repro.viz import line_chart

        series = {
            name: [(float(p.x), p.re) for p in points]
            for name, points in result.series.items()
        }
        print()
        print(line_chart(series, title=f"{result.figure} (RE)",
                         y_range=(0.0, 1.0)))
    if getattr(args, "csv", None):
        from repro.experiments.io import write_figure_csv

        write_figure_csv(result, args.csv)
        print(f"\nwrote {args.csv}")


def _run_single(args: argparse.Namespace) -> int:
    params = {}
    if args.counter_threshold is not None:
        params["threshold"] = args.counter_threshold
    if args.location_threshold is not None:
        params["threshold"] = args.location_threshold
    params.update(_parse_scheme_params(args.scheme, args.scheme_param))
    hello = HelloConfig(interval=args.hello_interval, dynamic=args.dynamic_hello)
    faults = None
    if args.faults is not None:
        from repro.faults import FaultPlan

        try:
            faults = FaultPlan.parse(args.faults)
        except (ValueError, OSError) as exc:
            print(f"error: invalid --faults spec: {exc}", file=sys.stderr)
            return 2
    config = ScenarioConfig(
        scheme=args.scheme,
        scheme_params=params,
        map_units=args.map_units,
        num_hosts=args.hosts,
        num_broadcasts=args.broadcasts,
        max_speed_kmh=args.speed,
        hello=hello,
        seed=args.seed,
        faults=faults,
    )
    trace = None
    if args.trace is not None:
        from repro.trace import TraceRecorder

        # Fail on an unwritable destination now, not after the whole
        # simulation has run.
        try:
            with open(args.trace, "a"):
                pass
        except OSError as exc:
            print(f"error: cannot write --trace file: {exc}", file=sys.stderr)
            return 2
        trace = TraceRecorder(sample_dt=args.sample_dt)
    elif args.sample_dt is not None:
        print("error: --sample-dt requires --trace", file=sys.stderr)
        return 2
    if args.profile is not None:
        from repro.perf import format_profile, profiled

        with profiled() as prof:
            result = run_broadcast_simulation(
                config, trace=trace, kernel=args.kernel
            )
        print(format_profile(prof, top_n=args.profile))
    else:
        result = run_broadcast_simulation(
            config, trace=trace, kernel=args.kernel
        )
    print(result.summary())
    if trace is not None:
        if args.trace_format == "chrome":
            from repro.trace import write_chrome_trace

            count = write_chrome_trace(trace, args.trace)
            print(
                f"wrote {count} trace events to {args.trace} "
                "(load at https://ui.perfetto.dev)"
            )
        else:
            from repro.trace import write_jsonl

            count = write_jsonl(trace, args.trace)
            print(
                f"wrote {count} trace records to {args.trace} "
                f"(analyze: python -m repro.trace.analyze {args.trace})"
            )
    if getattr(args, "perf", False) and result.perf is not None:
        print("\nkernel counters:")
        for name, value in result.perf.as_dict().items():
            print(f"  {name:<22} {value:>12,}")
        print(f"  {'pos_hit_rate':<22} {result.perf.pos_hit_rate:>12.1%}")
        print(f"  {'events_per_sec':<22} {result.events_per_sec:>12,.0f}")
    if getattr(args, "fault_windows", False) and result.fault_trace:
        print("\nfault trace:")
        for event in result.fault_trace:
            print(f"  t={event.time:9.3f}  {event.kind:<12} host {event.host_id}")
        print("\nper-fault-window RE/SRB:")
        for window in result.metrics.fault_window_summary(result.end_time):
            row = window.row()
            print(
                f"  [{row['start']:9.3f}, {row['end']:9.3f})  "
                f"RE={row['re']:.3f}  SRB={row['srb']:.3f}  "
                f"broadcasts={window.broadcasts}"
            )
    return 0


def _show(result, args, metrics=("re", "srb")) -> None:
    print(result.table(metrics=metrics))
    _render_extras(result, args)


def _run_figure(args: argparse.Namespace) -> int:
    from repro.experiments.figures.common import set_default_executor

    runner = _make_executor(args)
    previous = set_default_executor(runner)
    try:
        if args.profile is not None:
            from repro.perf import format_profile, profiled

            with profiled() as prof:
                _dispatch_figure(args)
            print(format_profile(prof, top_n=args.profile))
        else:
            _dispatch_figure(args)
    finally:
        set_default_executor(previous)
    if runner.perf.runs:
        _print_perf(runner)
    return 0


def _dispatch_figure(args: argparse.Namespace) -> None:
    n = args.broadcasts
    seed = args.seed
    maps = tuple(args.maps) if args.maps else None

    def kw(**extra):
        out = {"num_broadcasts": n, "seed": seed}
        if maps:
            out["maps"] = maps
        out.update(extra)
        return out

    name = args.name
    if name == "fig01":
        print(fig01.format_table(fig01.run(seed=seed)))
    elif name == "fig02":
        print(fig02.format_table(fig02.run(seed=seed)))
    elif name == "fig05a":
        _show(fig05.run_5a(**kw()), args)
    elif name == "fig05b":
        _show(fig05.run_5b(**kw()), args)
    elif name == "fig05c":
        _show(fig05.run_5c(**kw()), args)
    elif name == "fig05d":
        _show(fig05.run_5d(**kw()), args)
    elif name == "fig07":
        _show(fig07.run(**kw()), args, metrics=("re", "srb", "latency"))
    elif name == "fig09":
        _show(fig09.run(**kw()), args)
    elif name == "fig10":
        _show(fig10.run(**kw()), args, metrics=("re", "srb", "latency"))
    elif name == "fig11":
        for units, panel in fig11.run(**kw()).items():
            _show(panel, args, metrics=("re",))
            print()
    elif name == "fig12":
        _show(fig12.run(**kw()), args, metrics=("re", "srb", "hellos"))
    elif name == "fig13":
        _show(fig13.run(**kw()), args, metrics=("re", "srb"))
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(name)


def _run_sweep(args: argparse.Namespace) -> int:
    runner = _make_executor(args)
    rows = []
    print(
        f"{'scheme':<20} {'map':>4} {'RE':>16} {'SRB':>16} {'latency':>10}"
    )
    for scheme in args.schemes:
        # Validated per scheme: every swept scheme must accept every key.
        params = _parse_scheme_params(scheme, args.scheme_param)
        for units in args.maps:
            config = ScenarioConfig(
                scheme=scheme,
                scheme_params=params,
                map_units=units,
                num_hosts=args.hosts,
                num_broadcasts=args.broadcasts,
            )
            result = runner.replicate(config, seeds=args.seeds)
            print(
                f"{scheme:<20} {units:>4} {str(result.re):>16} "
                f"{str(result.srb):>16} "
                f"{result.latency.mean * 1000 if result.latency else float('nan'):>8.1f}ms"
            )
            rows.append((config, result))
    if args.json:
        import json

        from repro.experiments.io import result_to_dict

        payload = [
            result_to_dict(run)
            for _config, replicated in rows
            for run in replicated.results
        ]
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {args.json}")
    _print_perf(runner)
    return 0


_SIZE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30, "t": 1 << 40}
_AGE_SUFFIXES = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}


def parse_size(text: str) -> int:
    """``"500M"`` -> bytes (suffixes K/M/G/T, binary; bare number = bytes)."""
    text = text.strip().lower().rstrip("b")
    factor = 1
    if text and text[-1] in _SIZE_SUFFIXES:
        factor = _SIZE_SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        return int(float(text) * factor)
    except ValueError:
        raise ValueError(f"cannot parse size {text!r}") from None


def parse_age(text: str) -> float:
    """``"36h"`` -> seconds (suffixes s/m/h/d/w; bare number = seconds)."""
    text = text.strip().lower()
    factor = 1.0
    if text and text[-1] in _AGE_SUFFIXES:
        factor = _AGE_SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        return float(text) * factor
    except ValueError:
        raise ValueError(f"cannot parse age {text!r}") from None


def _format_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} GiB"  # pragma: no cover - loop always returns


def _load_campaign_plan(spec_path: str):
    from repro.campaigns import SpecError, load_spec, plan_campaign

    try:
        return plan_campaign(load_spec(spec_path))
    except (SpecError, OSError) as exc:
        raise SystemExit(f"error: {exc}")


def _campaign_plan_cmd(args: argparse.Namespace) -> int:
    plan = _load_campaign_plan(args.spec)
    print(f"campaign {plan.campaign_id}: {plan.total} runs")
    shown = plan.runs if args.limit == 0 else plan.runs[:args.limit]
    for run in shown:
        print(f"  {run.run_id}  {run.digest[:12]}  {run.label()}")
    if len(shown) < plan.total:
        print(f"  ... and {plan.total - len(shown)} more")
    return 0


def _campaign_run_cmd(args: argparse.Namespace) -> int:
    import signal

    from repro.campaigns import CampaignExecutor, CampaignMismatch

    if args.jobs < 0:
        raise SystemExit(f"error: --jobs must be >= 0, got {args.jobs}")
    plan = _load_campaign_plan(args.spec)
    directory = args.directory or f"campaigns/{plan.campaign_id}"
    executor = CampaignExecutor(
        plan,
        directory,
        max_workers=None if args.jobs == 0 else args.jobs,
        cache_dir=args.cache_dir,
        checkpoint_every=args.checkpoint_every,
        include_resources=args.resources,
    )

    def _to_interrupt(signum, frame):  # SIGTERM resumes as cleanly as ^C
        raise KeyboardInterrupt

    previous_handler = signal.signal(signal.SIGTERM, _to_interrupt)

    done_box = [0]

    def progress(planned, result):
        done_box[0] += 1
        if not args.quiet:
            source = "cache" if result.from_cache else "sim"
            print(
                f"[{done_box[0]:>5}/{plan.total}] {planned.run_id} "
                f"({source}) {planned.label()}: RE={result.re:.3f} "
                f"SRB={result.srb:.3f}"
            )

    print(f"campaign {plan.campaign_id}: {plan.total} runs -> {directory}")
    try:
        outcome = executor.run(progress=progress)
    except CampaignMismatch as exc:
        raise SystemExit(f"error: {exc}")
    finally:
        signal.signal(signal.SIGTERM, previous_handler)
    _print_perf(executor.runner)
    if outcome.resumable:
        print(
            f"interrupted at {outcome.completed}/{plan.total} runs; "
            f"checkpoint flushed -- rerun the same command to resume"
        )
        return 3
    print(f"complete: {plan.total} runs; results in {directory}/results.json")
    return 0


def _campaign_status_cmd(args: argparse.Namespace) -> int:
    from repro.campaigns import campaign_status

    try:
        status = campaign_status(args.directory)
    except (FileNotFoundError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")
    for key in (
        "campaign_id", "name", "status", "total_runs", "completed_runs",
        "simulated_runs", "cached_runs", "results_available",
    ):
        print(f"{key:<18} {status[key]}")
    print(f"{'progress':<18} {status['progress']:.1%}")
    return 0


def _serve_cmd(args: argparse.Namespace) -> int:
    import asyncio

    from repro.campaigns import CampaignService

    if args.jobs < 0:
        raise SystemExit(f"error: --jobs must be >= 0, got {args.jobs}")
    service = CampaignService(
        cache_dir=args.cache_dir,
        campaign_root=args.campaigns,
        max_workers=None if args.jobs == 0 else args.jobs,
        host=args.host,
        port=args.port,
    )

    async def main() -> None:
        await service.start()
        print(
            f"serving on http://{service.host}:{service.port} "
            f"(cache: {service.cache.directory}"
            + (f", campaigns: {service.campaign_root}" if service.campaign_root
               else "")
            + ") -- Ctrl-C to stop",
            flush=True,
        )
        assert service._server is not None
        await service._server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("\nstopped")
    return 0


def _print_cache_hit_rate() -> None:
    """Process-lifetime cache hit rate from the telemetry counters.

    Meaningful when ``cache stats`` runs inside a process that has been
    serving lookups (the HTTP service, a long notebook session); a fresh
    CLI process has no lookups -- or disarmed telemetry -- and says so.
    """
    from repro.telemetry import counter_value, registry

    hits = counter_value("repro_cache_lookups_total", outcome="hit")
    misses = counter_value("repro_cache_lookups_total", outcome="miss")
    lookups = hits + misses
    if registry() is None or not lookups:
        print(f"{'hit rate':<12} n/a (no lookups this process)")
        return
    print(
        f"{'hit rate':<12} {hits / lookups:.1%} "
        f"({int(hits)}/{int(lookups)} lookups since process start)"
    )


def _bench_cmd(args: argparse.Namespace) -> int:
    from repro.telemetry import bench

    if args.bench_command == "record":
        try:
            entry = bench.record_entry(
                args.bench, args.history, name=args.name
            )
        except (OSError, ValueError) as exc:
            raise SystemExit(f"error: {exc}")
        print(
            f"recorded {entry['bench']!r}: {len(entry['metrics'])} metrics "
            f"-> {args.history}"
        )
        return 0
    try:
        report = bench.check_history(
            args.history,
            name=args.name,
            threshold=args.threshold,
            window=args.window,
        )
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")
    print(report.format())
    return 0 if report.ok else 1


def _cache_cmd(args: argparse.Namespace) -> int:
    from repro.experiments.parallel import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.cache_command == "stats":
        stats = cache.stats()
        print(f"{'directory':<12} {stats.directory}")
        print(f"{'entries':<12} {stats.entries}")
        print(f"{'total':<12} {_format_bytes(stats.total_bytes)}")
        if stats.entries:
            print(f"{'oldest use':<12} {stats.oldest_age:.0f}s ago")
            print(f"{'newest use':<12} {stats.newest_age:.0f}s ago")
        _print_cache_hit_rate()
        return 0
    if args.cache_command == "clear":
        print(f"removed {cache.clear()} entries")
        return 0
    if args.max_bytes is None and args.max_age is None:
        raise SystemExit("error: prune needs --max-bytes and/or --max-age")
    try:
        max_bytes = parse_size(args.max_bytes) if args.max_bytes else None
        max_age = parse_age(args.max_age) if args.max_age else None
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    report = cache.prune(max_bytes=max_bytes, max_age=max_age)
    print(
        f"removed {report.removed} entries "
        f"({_format_bytes(report.freed_bytes)}); "
        f"kept {report.kept} ({_format_bytes(report.kept_bytes)})"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _run_single(args)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "campaign":
        if args.campaign_command == "plan":
            return _campaign_plan_cmd(args)
        if args.campaign_command == "run":
            return _campaign_run_cmd(args)
        return _campaign_status_cmd(args)
    if args.command == "schemes":
        return _schemes_cmd(args)
    if args.command == "serve":
        return _serve_cmd(args)
    if args.command == "cache":
        return _cache_cmd(args)
    if args.command == "bench":
        return _bench_cmd(args)
    return _run_figure(args)


if __name__ == "__main__":
    sys.exit(main())
