"""Per-host mobility models.

Each host owns one model instance and queries ``position(t)``.  Queries must
be non-decreasing in ``t`` (which the event-driven simulator guarantees);
models lazily roll segments forward, so cost is O(1) amortized per query.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Callable, Optional, Tuple

from repro.mobility.map import RectMap, _fold

__all__ = [
    "MobilityModel",
    "RandomDirectionMobility",
    "RandomWaypointMobility",
    "StaticMobility",
    "make_mobility",
    "kmh_to_ms",
]


def kmh_to_ms(kmh: float) -> float:
    """Convert km/hour to meters/second."""
    return kmh / 3.6


class MobilityModel(ABC):
    """Interface: a host's position as a function of simulation time."""

    __slots__ = ()

    @abstractmethod
    def position(self, time: float) -> Tuple[float, float]:
        """Position at ``time`` (seconds).  ``time`` must be non-decreasing
        across calls."""


class StaticMobility(MobilityModel):
    """A host that never moves."""

    __slots__ = ("_position",)

    def __init__(self, position: Tuple[float, float]) -> None:
        self._position = (float(position[0]), float(position[1]))

    def position(self, time: float) -> Tuple[float, float]:
        return self._position


class _SegmentedMobility(MobilityModel):
    """Shared machinery: straight-line segments with reflective boundaries.

    Subclasses implement :meth:`_next_segment` returning
    ``(duration, velocity_x, velocity_y)`` for the segment starting at the
    current position.
    """

    __slots__ = (
        "_world", "_seg_start_time", "_seg_end_time", "_seg_origin",
        "_velocity", "_started",
    )

    def __init__(self, world: RectMap, start: Tuple[float, float]) -> None:
        if not world.contains(start):
            raise ValueError(f"start {start} outside map {world!r}")
        self._world = world
        self._seg_start_time = 0.0
        self._seg_end_time = 0.0
        self._seg_origin = (float(start[0]), float(start[1]))
        self._velocity = (0.0, 0.0)
        self._started = False

    def _next_segment(self, rng_time: float) -> Tuple[float, float, float]:
        raise NotImplementedError

    def _roll_to(self, time: float) -> None:
        while time > self._seg_end_time or not self._started:
            if self._started:
                self._seg_origin = self._raw_position(self._seg_end_time)
                self._seg_start_time = self._seg_end_time
            self._started = True
            duration, vx, vy = self._next_segment(self._seg_start_time)
            self._seg_end_time = self._seg_start_time + duration
            self._velocity = (vx, vy)

    def _raw_position(self, time: float) -> Tuple[float, float]:
        dt = time - self._seg_start_time
        x = self._seg_origin[0] + self._velocity[0] * dt
        y = self._seg_origin[1] + self._velocity[1] * dt
        return self._world.reflect((x, y))

    def position(self, time: float) -> Tuple[float, float]:
        # Fast path: inside the current segment (the overwhelmingly common
        # case -- segments last seconds, events are microseconds apart).
        # ``dt >= 0`` subsumes both the negative-time and the monotonicity
        # checks; the arithmetic is exactly ``_raw_position`` + the in-map
        # ``reflect`` fast path, so the result is bit-identical.
        if self._started and time <= self._seg_end_time:
            dt = time - self._seg_start_time
            if dt >= 0:
                origin = self._seg_origin
                velocity = self._velocity
                x = origin[0] + velocity[0] * dt
                y = origin[1] + velocity[1] * dt
                world = self._world
                if 0.0 <= x <= world.width and 0.0 <= y <= world.height:
                    return (x, y)
                return (_fold(x, world.width), _fold(y, world.height))
        if time < 0:
            raise ValueError(f"negative time {time}")
        self._roll_to(time)
        if time < self._seg_start_time:
            raise ValueError(
                f"non-monotonic position query: t={time} but current segment "
                f"starts at {self._seg_start_time}"
            )
        return self._raw_position(time)


class RandomDirectionMobility(_SegmentedMobility):
    """The paper's roaming pattern (Section 4).

    A series of turns; per turn the direction is uniform over [0, 2*pi), the
    duration uniform over ``turn_duration_range`` (paper: 1..100 s) and the
    speed uniform over [0, ``max_speed_kmh``].  Motion reflects off map
    borders.
    """

    __slots__ = ("_rng", "_max_speed_ms", "_duration_range")

    def __init__(
        self,
        world: RectMap,
        rng: random.Random,
        max_speed_kmh: float,
        start: Optional[Tuple[float, float]] = None,
        turn_duration_range: Tuple[float, float] = (1.0, 100.0),
    ) -> None:
        if max_speed_kmh < 0:
            raise ValueError(f"max speed must be >= 0, got {max_speed_kmh}")
        lo, hi = turn_duration_range
        if lo <= 0 or hi < lo:
            raise ValueError(f"bad turn duration range {turn_duration_range}")
        if start is None:
            start = world.random_point(rng)
        super().__init__(world, start)
        self._rng = rng
        self._max_speed_ms = kmh_to_ms(max_speed_kmh)
        self._duration_range = (float(lo), float(hi))

    @property
    def max_speed_ms(self) -> float:
        return self._max_speed_ms

    def _next_segment(self, rng_time: float) -> Tuple[float, float, float]:
        direction = self._rng.uniform(0.0, 2.0 * math.pi)
        duration = self._rng.uniform(*self._duration_range)
        speed = self._rng.uniform(0.0, self._max_speed_ms)
        return (duration, speed * math.cos(direction), speed * math.sin(direction))


class RandomWaypointMobility(_SegmentedMobility):
    """Classic random waypoint with optional pause, for ablations.

    The host picks a uniform destination in the map, travels to it at a
    uniform speed in ``(min_speed_kmh, max_speed_kmh]``, pauses, and repeats.
    """

    __slots__ = ("_rng", "_min_speed_ms", "_max_speed_ms", "_pause_time", "_pausing")

    def __init__(
        self,
        world: RectMap,
        rng: random.Random,
        max_speed_kmh: float,
        start: Optional[Tuple[float, float]] = None,
        min_speed_kmh: float = 0.1,
        pause_time: float = 0.0,
    ) -> None:
        if max_speed_kmh <= 0:
            raise ValueError(f"max speed must be > 0, got {max_speed_kmh}")
        if not 0 < min_speed_kmh <= max_speed_kmh:
            raise ValueError(
                f"need 0 < min_speed <= max_speed, got "
                f"{min_speed_kmh}..{max_speed_kmh}"
            )
        if pause_time < 0:
            raise ValueError(f"negative pause time {pause_time}")
        if start is None:
            start = world.random_point(rng)
        super().__init__(world, start)
        self._rng = rng
        self._min_speed_ms = kmh_to_ms(min_speed_kmh)
        self._max_speed_ms = kmh_to_ms(max_speed_kmh)
        self._pause_time = pause_time
        self._pausing = False

    def _next_segment(self, rng_time: float) -> Tuple[float, float, float]:
        if self._pausing:
            self._pausing = False
            return (self._pause_time, 0.0, 0.0)
        origin = self._seg_origin
        target = self._world.random_point(self._rng)
        dx = target[0] - origin[0]
        dy = target[1] - origin[1]
        dist = math.hypot(dx, dy)
        if dist < 1e-9:
            return (1.0, 0.0, 0.0)
        speed = self._rng.uniform(self._min_speed_ms, self._max_speed_ms)
        self._pausing = self._pause_time > 0.0
        return (dist / speed, dx / dist * speed, dy / dist * speed)


MobilityFactory = Callable[[RectMap, random.Random, float], MobilityModel]


def make_mobility(
    name: str,
    world: RectMap,
    rng: random.Random,
    max_speed_kmh: float,
    start: Optional[Tuple[float, float]] = None,
) -> MobilityModel:
    """Build a per-host mobility model by name.

    Names: ``"random-direction"`` (the paper's model), ``"random-waypoint"``,
    ``"static"``.
    """
    if name == "random-direction":
        return RandomDirectionMobility(world, rng, max_speed_kmh, start=start)
    if name == "random-waypoint":
        return RandomWaypointMobility(world, rng, max_speed_kmh, start=start)
    if name == "static":
        if start is None:
            start = world.random_point(rng)
        return StaticMobility(start)
    raise ValueError(f"unknown mobility model {name!r}")
