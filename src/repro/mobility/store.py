"""Batched host positions: numpy arrays over every host's mobility state.

The scalar kernel asks each host's :class:`~repro.mobility.models
.MobilityModel` for its position one call at a time, behind per-instant
memos.  At 1000+ hosts a single transmission's receiver scan makes ~N such
calls, and a dense broadcast storm makes thousands of scans -- the Python
call overhead dominates the whole simulation.

:class:`PositionStore` mirrors every host's current motion segment
``(origin, velocity, segment start/end)`` into numpy arrays and evaluates
**all** positions for a timestamp in one batched call per *position epoch*
(the first query at each distinct simulation time).  Subsequent queries at
the same instant are served from the cached arrays.

Bit-identity contract
---------------------
The batched evaluation is float-for-float the same arithmetic as
:meth:`_SegmentedMobility.position`:

- per element, ``x = origin + velocity * dt`` is one IEEE-754 multiply and
  one add, in numpy exactly as in CPython;
- the reflective fold is only applied to out-of-bounds coordinates and is
  delegated to the *same* :func:`repro.mobility.map._fold` scalar code the
  models use (numpy ``%`` has different semantics for negatives, so it is
  deliberately not used);
- segment rolls are delegated to the models themselves (``_roll_to``), so
  every RNG draw happens on the same per-host stream in the same per-host
  order as lazy scalar querying.  Batching *can* roll a host's segments at
  an earlier wall point than the scalar kernel would (e.g. a crashed host
  keeps moving but is never scanned), but since each built-in model draws
  from a private stream the drawn values -- and therefore every position
  ever observed -- are identical.  This is why the store refuses models it
  does not recognize: a custom model might share one RNG across hosts, and
  batched advancement would reorder those draws.

Buffer reuse
------------
``PositionBuffers`` lets a batch driver (many seeds, one process -- see
:func:`repro.experiments.runner.run_broadcast_batch`) reuse the numpy
allocations across world builds instead of reallocating eight arrays per
seed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.mobility.map import RectMap, _fold
from repro.mobility.models import MobilityModel, StaticMobility, _SegmentedMobility

__all__ = ["PositionBuffers", "PositionStore", "supports_models"]


def supports_models(models: Sequence[MobilityModel]) -> bool:
    """Whether every model is a built-in the store can vectorize."""
    return all(
        isinstance(m, (_SegmentedMobility, StaticMobility)) for m in models
    )


class PositionBuffers:
    """Reusable numpy allocations for :class:`PositionStore`.

    Grows monotonically to the largest host count seen; a store for
    ``n <= capacity`` hosts slices views out of the shared arrays.
    """

    __slots__ = ("capacity", "_arrays")

    #: Per-store array fields, in allocation order.
    FIELDS = ("ox", "oy", "vx", "vy", "t0", "t1", "x", "y")

    def __init__(self, capacity: int = 0) -> None:
        self.capacity = 0
        self._arrays: List[np.ndarray] = []
        if capacity:
            self.reserve(capacity)

    def reserve(self, capacity: int) -> None:
        if capacity > self.capacity:
            self._arrays = [
                np.empty(capacity, dtype=np.float64) for _ in self.FIELDS
            ]
            self.capacity = capacity

    def views(self, n: int) -> List[np.ndarray]:
        """Length-``n`` views over the shared buffers (grown as needed)."""
        self.reserve(n)
        return [arr[:n] for arr in self._arrays]


class PositionStore:
    """Vectorized per-instant positions for hosts ``0 .. n-1``.

    One instance per :class:`~repro.net.network.Network` (vector kernel
    only).  Queries must be non-decreasing in time, which the event-driven
    scheduler guarantees.
    """

    __slots__ = (
        "size", "_models", "_world_w", "_world_h",
        "_ox", "_oy", "_vx", "_vy", "_t0", "_t1", "_x", "_y",
        "_time", "_lazy_time",
        "epoch_hits", "batch_evals", "lazy_reads", "segment_rolls",
    )

    def __init__(
        self,
        models: Sequence[MobilityModel],
        world: RectMap,
        buffers: Optional[PositionBuffers] = None,
    ) -> None:
        if not supports_models(models):
            unsupported = sorted(
                {
                    type(m).__name__
                    for m in models
                    if not isinstance(m, (_SegmentedMobility, StaticMobility))
                }
            )
            raise ValueError(
                f"PositionStore cannot vectorize mobility model(s): "
                f"{', '.join(unsupported)}"
            )
        self.size = len(models)
        self._models = list(models)
        self._world_w = world.width
        self._world_h = world.height
        arrays = (buffers or PositionBuffers()).views(self.size)
        (self._ox, self._oy, self._vx, self._vy,
         self._t0, self._t1, self._x, self._y) = arrays
        for i, model in enumerate(self._models):
            if isinstance(model, StaticMobility):
                x, y = model.position(0.0)
                self._ox[i] = x
                self._oy[i] = y
                self._vx[i] = 0.0
                self._vy[i] = 0.0
                self._t0[i] = 0.0
                self._t1[i] = np.inf
            else:
                # Segment state is synced on first evaluation (the model
                # has not started yet); -inf forces the initial roll.
                self._t1[i] = -np.inf
        self._time = -1.0
        self._lazy_time = -1.0
        #: Queries served from the cached current-epoch arrays.
        self.epoch_hits = 0
        #: Batched all-host evaluations (one per position epoch).
        self.batch_evals = 0
        #: Single-host reads at a not-yet-batched timestamp (delegated to
        #: the model's own scalar fast path).
        self.lazy_reads = 0
        #: Motion segments rolled forward during batched evaluations.
        self.segment_rolls = 0

    # -------------------------------------------------------------- sync

    def _sync_row(self, i: int, model: "_SegmentedMobility") -> None:
        self._ox[i], self._oy[i] = model._seg_origin
        self._vx[i], self._vy[i] = model._velocity
        self._t0[i] = model._seg_start_time
        self._t1[i] = model._seg_end_time

    # ----------------------------------------------------------- queries

    def arrays_at(self, time: float) -> Tuple[np.ndarray, np.ndarray]:
        """All host positions at ``time`` as ``(x, y)`` float64 arrays.

        The returned arrays are the store's epoch cache: treat them as
        read-only and do not hold them across epochs.
        """
        if time == self._time:
            self.epoch_hits += 1
            return self._x, self._y
        if time < self._time:
            raise ValueError(
                f"non-monotonic batched position query: t={time} after "
                f"t={self._time}"
            )
        self.batch_evals += 1
        models = self._models
        # Roll hosts whose current segment ended (or never started).  The
        # model does the rolling -- same RNG stream, same draw order as the
        # scalar kernel -- and the row is re-synced from its state.  A row
        # can also be stale because the model was queried directly (lazy
        # read); _roll_to is then a no-op and the sync still repairs it.
        stale = np.nonzero(self._t1 < time)[0]
        if stale.size:
            self.segment_rolls += int(stale.size)
            for i in stale.tolist():
                model = models[i]
                model._roll_to(time)
                self._sync_row(i, model)
        # One multiply + one add per coordinate: exactly the scalar
        # kernel's ``origin + velocity * dt`` (IEEE addition commutes
        # bitwise, so ``vx * dt + ox`` == ``ox + vx * dt``).
        x = self._x
        y = self._y
        dt = time - self._t0
        np.multiply(self._vx, dt, out=x)
        x += self._ox
        np.multiply(self._vy, dt, out=y)
        y += self._oy
        # Reflective fold for the rare segment that exits the map between
        # rolls; in-bounds coordinates are untouched (the scalar fast
        # path's identity).  Static rows (t1 == +inf) never fold: velocity
        # 0 keeps them at their (possibly off-map, in tests) fixed point,
        # just like StaticMobility itself.
        w = self._world_w
        h = self._world_h
        oob = (x < 0.0) | (x > w)
        oob |= (y < 0.0) | (y > h)
        oob &= np.isfinite(self._t1)
        if oob.any():
            for i in np.nonzero(oob)[0].tolist():
                x[i] = _fold(float(x[i]), w)
                y[i] = _fold(float(y[i]), h)
        self._time = time
        return x, y

    def position_of(self, host_id: int, time: float) -> Tuple[float, float]:
        """One host's position at ``time``.

        Served from the epoch cache when the batched arrays are already at
        ``time``.  The first straggler at a new instant (a scheme asking
        for its own position between scans) is delegated to the model's
        own (bit-identical) scalar fast path rather than paying an O(n)
        epoch; a *second* single-host read at the same instant promotes it
        to a batched epoch -- same-instant bursts (every receiver of one
        frame delivering at its end time) then hit the cache.
        """
        if time == self._time:
            self.epoch_hits += 1
            return (float(self._x[host_id]), float(self._y[host_id]))
        if time == self._lazy_time:
            x, y = self.arrays_at(time)
            self.epoch_hits += 1
            return (float(x[host_id]), float(y[host_id]))
        self._lazy_time = time
        self.lazy_reads += 1
        return self._models[host_id].position(time)

    # ------------------------------------------------------------- debug

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PositionStore(n={self.size}, t={self._time}, "
            f"epochs={self.batch_evals}, hits={self.epoch_hits}, "
            f"lazy={self.lazy_reads})"
        )
