"""Host mobility models.

The paper's roaming pattern (Section 4): each host moves as a series of
*turns*; per turn the direction is uniform in [0, 360), the duration uniform
in [1, 100] seconds, and the speed uniform in [0, v_max].  We implement that
as :class:`~repro.mobility.models.RandomDirectionMobility`, plus a static
model and a random-waypoint model for robustness ablations.  Hosts reflect
off map boundaries (the paper does not specify edge behaviour; reflection is
the standard choice that preserves uniform spatial density).
"""

from repro.mobility.map import RectMap
from repro.mobility.models import (
    MobilityModel,
    RandomDirectionMobility,
    RandomWaypointMobility,
    StaticMobility,
    make_mobility,
)

__all__ = [
    "RectMap",
    "MobilityModel",
    "RandomDirectionMobility",
    "RandomWaypointMobility",
    "StaticMobility",
    "make_mobility",
    "PositionBuffers",
    "PositionStore",
]


def __getattr__(name):
    # PositionStore lives behind a lazy import: it needs numpy, which the
    # scalar kernel must not require.
    if name in ("PositionStore", "PositionBuffers"):
        from repro.mobility import store

        return getattr(store, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
