"""The rectangular simulation map.

The paper uses square maps of 1x1 .. 11x11 *units*, where one unit equals the
radio radius (500 m).  :class:`RectMap` also provides the reflective folding
used to keep straight-line motion inside the bounds.
"""

from __future__ import annotations

import random
from typing import Tuple

__all__ = ["RectMap"]


def _fold(value: float, size: float) -> float:
    """Reflectively fold ``value`` into ``[0, size]``.

    Straight-line motion that would exit the map is mirrored at the borders;
    folding with period ``2 * size`` applies any number of bounces at once.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    period = 2.0 * size
    value %= period
    if value < 0:
        value += period
    if value > size:
        value = period - value
    return value


class RectMap:
    """An axis-aligned rectangular world ``[0, width] x [0, height]``."""

    def __init__(self, width: float, height: float) -> None:
        if width <= 0 or height <= 0:
            raise ValueError(f"map must have positive size, got {width}x{height}")
        self.width = float(width)
        self.height = float(height)

    @classmethod
    def square_units(cls, units: int, unit_length: float = 500.0) -> "RectMap":
        """The paper's ``units x units`` square map (unit = radio radius)."""
        if units < 1:
            raise ValueError(f"units must be >= 1, got {units}")
        side = units * unit_length
        return cls(side, side)

    @property
    def area(self) -> float:
        return self.width * self.height

    def contains(self, point: Tuple[float, float]) -> bool:
        """Whether ``point`` lies inside the map (borders inclusive)."""
        x, y = point
        return 0.0 <= x <= self.width and 0.0 <= y <= self.height

    def reflect(self, point: Tuple[float, float]) -> Tuple[float, float]:
        """Fold an unconstrained point back into the map by mirror reflection."""
        x, y = point
        # Fast path: most motion segments stay inside the map, and for
        # 0 <= v <= size the fold is exactly the identity (v % (2*size) == v
        # and the mirror branch does not fire), so skipping it is bit-safe.
        if 0.0 <= x <= self.width and 0.0 <= y <= self.height:
            return (x, y)
        return (_fold(x, self.width), _fold(y, self.height))

    def random_point(self, rng: random.Random) -> Tuple[float, float]:
        """A uniform random point inside the map."""
        return (rng.uniform(0.0, self.width), rng.uniform(0.0, self.height))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RectMap({self.width:g} x {self.height:g} m)"
